// dsltop — live service metrics over the TCP front end.
//
// Usage:
//   dsltop [host] <port> [--interval-ms N] [--once] [--raw]
//
// Connects to a `dslshell --listen` server, sends the `!metrics`
// directive every interval, and renders the scrape as a one-screen
// summary: request counters, queue depth/wait, per-verb latency
// (p50/p99 estimated from the exposed histogram buckets), connection
// lifecycle, and trace/flight-recorder state. `!metrics` is served
// inline by the event loop (no executor drain), so watching a loaded
// server does not perturb it beyond the scrape itself.
//
//   --interval-ms N  refresh period (default 1000)
//   --once           one scrape, print, exit (scripting / tests)
//   --raw            print the Prometheus payload verbatim instead of
//                    the rendered summary (pipe to a file or a pushgateway)
//
// The payload is Prometheus text format terminated by a `# EOF` line —
// that terminator is the framing marker this client reads until, and
// what a real scrape endpoint would return.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "support/strings.hpp"

using namespace dslayer;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int interval_ms = 1000;
  bool once = false;
  bool raw = false;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [host] <port> [--interval-ms N] [--once] [--raw]\n";
  return 2;
}

bool parse_cli(int argc, char** argv, Options& options) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval-ms") {
      if (i + 1 >= argc) return false;
      options.interval_ms = std::atoi(argv[++i]);
      if (options.interval_ms <= 0) return false;
    } else if (arg == "--once") {
      options.once = true;
    } else if (arg == "--raw") {
      options.raw = true;
    } else if (!arg.empty() && arg[0] != '-') {
      positional.push_back(arg);
    } else {
      return false;
    }
  }
  if (positional.size() == 1) {
    options.port = static_cast<std::uint16_t>(std::strtoul(positional[0].c_str(), nullptr, 10));
  } else if (positional.size() == 2) {
    options.host = positional[0];
    options.port = static_cast<std::uint16_t>(std::strtoul(positional[1].c_str(), nullptr, 10));
  } else {
    return false;
  }
  return options.port != 0;
}

int connect_to(const Options& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads one scrape: everything up to and including the "# EOF" line.
bool read_scrape(int fd, std::string& payload) {
  payload.clear();
  char buf[16384];
  for (;;) {
    if (payload.find("# EOF\n") != std::string::npos) return true;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    payload.append(buf, static_cast<std::size_t>(n));
  }
}

/// Flat view of a scrape: plain samples by name; histogram buckets kept
/// as (metric{labels}, value) pairs under their full sample line key.
struct Scrape {
  std::map<std::string, double> plain;                  // unlabeled samples
  std::map<std::string, std::map<std::string, double>> labeled;  // name -> labels -> value
};

Scrape parse_scrape(const std::string& payload) {
  Scrape scrape;
  for (const std::string& line : split(payload, '\n')) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string key = line.substr(0, space);
    const double value = std::strtod(line.c_str() + space + 1, nullptr);
    const std::size_t brace = key.find('{');
    if (brace == std::string::npos) {
      scrape.plain[key] = value;
    } else {
      scrape.labeled[key.substr(0, brace)][key.substr(brace)] = value;
    }
  }
  return scrape;
}

double plain_or(const Scrape& scrape, const std::string& name) {
  const auto it = scrape.plain.find(name);
  return it == scrape.plain.end() ? 0.0 : it->second;
}

/// Estimated quantile from the exposed cumulative buckets of one verb's
/// latency series (upper-bound estimate, like the server's own p50/p99).
double quantile_seconds(const std::map<std::string, double>& buckets, double count, double q) {
  if (count <= 0) return 0.0;
  // Collect (le, cumulative) pairs; labels look like {verb="all",le="0.000001024"}.
  std::vector<std::pair<double, double>> edges;
  for (const auto& [labels, cumulative] : buckets) {
    const std::size_t le = labels.find("le=\"");
    if (le == std::string::npos) continue;
    const std::string bound = labels.substr(le + 4, labels.find('"', le + 4) - (le + 4));
    if (bound == "+Inf") continue;
    edges.emplace_back(std::strtod(bound.c_str(), nullptr), cumulative);
  }
  std::sort(edges.begin(), edges.end());
  const double rank = q * count;
  for (const auto& [bound, cumulative] : edges) {
    if (cumulative >= rank) return bound;
  }
  return edges.empty() ? 0.0 : edges.back().first;
}

void render(const Scrape& scrape, std::ostream& out) {
  out << "dslayer service\n";
  out << "  requests: accepted=" << plain_or(scrape, "dslayer_requests_accepted_total")
      << " executed=" << plain_or(scrape, "dslayer_requests_executed_total")
      << " rejected=" << plain_or(scrape, "dslayer_requests_rejected_total")
      << " errors=" << plain_or(scrape, "dslayer_requests_errors_total")
      << " deadline=" << plain_or(scrape, "dslayer_requests_deadline_expired_total")
      << " shed=" << plain_or(scrape, "dslayer_requests_shed_total") << "\n";
  out << "  queue: depth=" << plain_or(scrape, "dslayer_queue_depth")
      << " peak=" << plain_or(scrape, "dslayer_queue_depth_peak")
      << " wait_ewma=" << format_double(plain_or(scrape, "dslayer_queue_wait_ewma_ms"), 3)
      << "ms\n";
  out << "  sessions: live=" << plain_or(scrape, "dslayer_sessions_live")
      << " created=" << plain_or(scrape, "dslayer_sessions_created_total")
      << " evicted=" << plain_or(scrape, "dslayer_sessions_evicted_total") << "\n";
  if (scrape.plain.count("dslayer_net_connections_open") != 0) {
    out << "  net: open=" << plain_or(scrape, "dslayer_net_connections_open")
        << " accepted=" << plain_or(scrape, "dslayer_net_connections_accepted_total")
        << " closed=" << plain_or(scrape, "dslayer_net_connections_closed_total")
        << " requests=" << plain_or(scrape, "dslayer_net_requests_total")
        << " responses=" << plain_or(scrape, "dslayer_net_responses_total") << "\n";
  }
  out << "  traces: started=" << plain_or(scrape, "dslayer_traces_started_total")
      << " sampled=" << plain_or(scrape, "dslayer_traces_sampled_total")
      << " slow=" << plain_or(scrape, "dslayer_traces_slow_total")
      << " flight=" << plain_or(scrape, "dslayer_flight_records") << "\n";

  // Per-verb latency: pair each _count series with its buckets.
  const auto buckets = scrape.labeled.find("dslayer_request_latency_seconds_bucket");
  const auto counts = scrape.labeled.find("dslayer_request_latency_seconds_count");
  if (counts != scrape.labeled.end()) {
    out << "  latency (upper-bound estimates):\n";
    for (const auto& [labels, count] : counts->second) {
      const std::size_t verb_at = labels.find("verb=\"");
      if (verb_at == std::string::npos) continue;
      const std::string verb =
          labels.substr(verb_at + 6, labels.find('"', verb_at + 6) - (verb_at + 6));
      std::map<std::string, double> verb_buckets;
      if (buckets != scrape.labeled.end()) {
        for (const auto& [bucket_labels, value] : buckets->second) {
          if (bucket_labels.find("verb=\"" + verb + "\"") != std::string::npos) {
            verb_buckets[bucket_labels] = value;
          }
        }
      }
      out << "    " << verb << ": n=" << count
          << " p50=" << format_double(quantile_seconds(verb_buckets, count, 0.50) * 1e6, 4)
          << "us p99=" << format_double(quantile_seconds(verb_buckets, count, 0.99) * 1e6, 4)
          << "us\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_cli(argc, argv, options)) return usage(argv[0]);

  const int fd = connect_to(options);
  if (fd < 0) {
    std::cerr << "cannot connect to " << options.host << ":" << options.port << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }

  std::string payload;
  for (;;) {
    if (!send_all(fd, "!metrics\n") || !read_scrape(fd, payload)) {
      std::cerr << "connection lost\n";
      ::close(fd);
      return 1;
    }
    if (options.raw) {
      std::cout << payload << std::flush;
    } else {
      if (!options.once) std::cout << "\033[H\033[2J";  // clear screen between refreshes
      render(parse_scrape(payload), std::cout);
      std::cout << std::flush;
    }
    if (options.once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(options.interval_ms));
  }
  ::close(fd);
  return 0;
}
