// dslshell — interactive conceptual design over a design space layer.
//
// Usage:
//   dslshell crypto            the Section 5 cryptography layer
//   dslshell crypto-tech       the technology-first coexisting hierarchy
//   dslshell media             the Figs. 2-4 IDCT layer
//   dslshell <file>            a layer in dslayer-format 1 (see dsl/serialize)
//
// Then type `help`. Commands also stream from a pipe, so exploration
// sessions can be scripted:
//   printf 'open Operator.Modular.Multiplier\nreq EffectiveOperandLength 768\n' | dslshell crypto

#include <fstream>
#include <iostream>
#include <sstream>

#include "domains/crypto.hpp"
#include "domains/media.hpp"
#include "dsl/serialize.hpp"
#include "dsl/shell.hpp"

using namespace dslayer;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "crypto";
  std::unique_ptr<dsl::DesignSpaceLayer> layer;
  try {
    if (which == "crypto") {
      layer = domains::build_crypto_layer();
    } else if (which == "crypto-tech") {
      domains::CryptoLayerOptions options;
      options.hierarchy = domains::OmmHierarchy::kTechnologyFirst;
      layer = domains::build_crypto_layer(options);
    } else if (which == "media") {
      layer = domains::build_media_layer();
    } else {
      std::ifstream file(which);
      if (!file) {
        std::cerr << "cannot open layer file '" << which << "'\n";
        return 2;
      }
      std::ostringstream text;
      text << file.rdbuf();
      dsl::ImportResult imported = dsl::import_layer(text.str());
      for (const auto& warning : imported.warnings) std::cerr << "warning: " << warning << "\n";
      layer = std::move(imported.layer);
    }
  } catch (const Error& e) {
    std::cerr << "failed to load layer: " << e.what() << "\n";
    return 2;
  }

  std::cout << "dslayer shell — layer '" << layer->name() << "' (" << layer->space().all().size()
            << " CDOs). Type 'help'.\n";
  const int failures = dsl::run_shell(*layer, std::cin, std::cout);
  return failures == 0 ? 0 : 1;
}
