// dslshell — interactive conceptual design over a design space layer.
//
// Usage:
//   dslshell [layer] [mode options]
//
// Layers:
//   crypto            the Section 5 cryptography layer (default)
//   crypto-tech       the technology-first coexisting hierarchy
//   media             the Figs. 2-4 IDCT layer
//   <file>            a layer in dslayer-format 1 (see dsl/serialize)
//
// Modes:
//   (none)            interactive shell over stdin; type `help`.
//   --batch [file]    concurrent exploration service, batch mode: reads
//                     `<session> <command>` protocol lines from the file
//                     (or stdin when omitted/"-"), executes them on a
//                     worker pool, prints responses in submission order.
//   --serve           same protocol from stdin, but responses stream in
//                     completion order as they finish.
//   --listen PORT     network mode: a non-blocking epoll TCP server on
//                     PORT (0 = kernel-assigned, printed on startup)
//                     speaking the same line protocol with pipelined
//                     requests per connection. Ctrl-C / SIGTERM stops
//                     it gracefully. See README "Network mode".
//
// Service options (with --batch/--serve):
//   --workers N       worker threads (default 2)
//   --queue N         request queue capacity / backpressure bound (256)
//   --max-sessions N  live session bound, LRU-evicted past it (64)
//   --latency-us X    injected per-request latency simulating a remote
//                     IP-provider catalog round trip (0)
//   --max-queue-wait-ms X
//                     overload shedding: requests that waited longer than
//                     X ms in the queue are answered
//                     rejected/overloaded with a retry-after hint
//                     instead of executing late (0 = off)
//   --degraded-after-ms X
//                     degraded read-only mode: a request waits at most
//                     X ms for the shared layer behind a stalled catalog
//                     writer, then fails fast as retryable
//                     rejected/unavailable (0 = wait forever)
//
// Network options (with --listen):
//   --max-connections N   accepts past N are refused with one rejection
//                         line (default 1024)
//   --conn-inflight N     pipelined requests per connection before the
//                         server stops reading it (default 32)
//   --idle-timeout-ms X   close connections idle for X ms — also the
//                         slowloris / half-open defense (0 = never)
//
// Durability options (any mode — see README "Durability"):
//   --data DIR        durable catalog: boot from DIR's snapshot + WAL
//                     replay, journal every catalog mutation, persist
//                     named sessions under DIR/sessions/. The `!snapshot`
//                     and `!restore` directives need this.
//   --wal-sync MODE   journal fsync discipline: always (default; nothing
//                     acknowledged is ever lost), interval (fsync per
//                     --wal-sync-bytes), off (OS cache; bulk loads)
//   --wal-sync-bytes N  interval-mode fsync threshold (default 1 MiB)
//   --import FILE     bulk-import a CSV corpus (DB4HLS-style; header
//                     columns name,class,library,bind:X,metric:Y,view:L)
//                     through the WAL when --data is set, then exit
//                     (combine with --batch/--serve/--listen to serve)
//   --import-batch N  rows per journal frame (default 4096)
//
// Observability options (any service mode — see README "Observability"):
//   --trace-sample N      end-to-end request tracing: 1-in-N requests
//                         keep sweep-level spans and land in the recent-
//                         traces rings (default 64; 1 = every request,
//                         0 = tracing off)
//   --trace-seed N        sampling-hash seed — same seed + same request
//                         order = same sampled set (deterministic tests)
//   --slow-request-ms X   slow-request flight recorder: requests slower
//                         than X ms dump their span breakdown to a
//                         bounded JSONL sink regardless of sampling
//                         (0 = off)
//   --flight-recorder F   also append flight records to file F
//   Scrape live state with the `!metrics` directive (Prometheus text
//   format) or watch it with tools/dsltop.
//
// Fault injection: set DSLAYER_FAILPOINTS="site=mode,..." (e.g.
// "service.session.migrate=error:1,dsl.candidates.sweep=delay:50") or use
// the `!failpoint <spec>` directive mid-stream. Site catalog and spec
// grammar: DESIGN.md §11, src/support/failpoint.hpp.
//
// The interactive mode also streams from a pipe, so single sessions can
// be scripted:
//   printf 'open Operator.Modular.Multiplier\nreq EffectiveOperandLength 768\n' | dslshell crypto

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "domains/crypto.hpp"
#include "domains/media.hpp"
#include "dsl/serialize.hpp"
#include "dsl/shell.hpp"
#include "net/server.hpp"
#include "service/batch_runner.hpp"
#include "storage/csv_import.hpp"
#include "storage/durable_catalog.hpp"
#include "storage/file_io.hpp"
#include "storage/session_store.hpp"
#include "support/trace.hpp"

using namespace dslayer;

namespace {

struct CliOptions {
  std::string layer = "crypto";
  enum class Mode { kInteractive, kBatch, kServe, kListen } mode = Mode::kInteractive;
  std::string batch_file = "-";
  service::SessionManager::Options sessions;
  service::RequestExecutor::Options executor;
  net::NetServer::Options net;
  trace::TracerConfig tracer;  ///< sample_every=64 default; see parse_cli
  std::string data_dir;        ///< --data: durable catalog + session journals
  storage::WalOptions wal;     ///< --wal-sync / --wal-sync-bytes
  std::string import_file;     ///< --import: bulk CSV corpus
  std::size_t import_batch = 4096;  ///< --import-batch: rows per journal frame
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [crypto|crypto-tech|media|<layer-file>]"
               " [--batch [file]|--serve|--listen PORT] [--workers N] [--queue N]"
               " [--max-sessions N] [--latency-us X]"
               " [--max-queue-wait-ms X] [--degraded-after-ms X]"
               " [--max-connections N] [--conn-inflight N] [--idle-timeout-ms X]"
               " [--trace-sample N] [--trace-seed N] [--slow-request-ms X]"
               " [--flight-recorder FILE]"
               " [--data DIR] [--wal-sync always|interval|off] [--wal-sync-bytes N]"
               " [--import FILE.csv] [--import-batch N]\n";
  return 2;
}

bool parse_cli(int argc, char** argv, CliOptions& options) {
  bool layer_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next_number = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::strtod(argv[++i], nullptr);
      return out > 0;
    };
    double n = 0;
    if (arg == "--batch") {
      options.mode = CliOptions::Mode::kBatch;
      if (i + 1 < argc && argv[i + 1][0] != '-') options.batch_file = argv[++i];
    } else if (arg == "--serve") {
      options.mode = CliOptions::Mode::kServe;
    } else if (arg == "--listen") {
      // Port 0 is meaningful (kernel-assigned), so this one bypasses the
      // positive-number helper.
      if (i + 1 >= argc) return false;
      options.mode = CliOptions::Mode::kListen;
      options.net.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--max-connections") {
      if (!next_number(n)) return false;
      options.net.max_connections = static_cast<std::size_t>(n);
    } else if (arg == "--conn-inflight") {
      if (!next_number(n)) return false;
      options.net.conn_inflight_cap = static_cast<std::size_t>(n);
    } else if (arg == "--idle-timeout-ms") {
      if (!next_number(n)) return false;
      options.net.idle_timeout_ms = n;
    } else if (arg == "--workers") {
      if (!next_number(n)) return false;
      options.executor.workers = static_cast<std::size_t>(n);
    } else if (arg == "--queue") {
      if (!next_number(n)) return false;
      options.executor.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--max-sessions") {
      if (!next_number(n)) return false;
      options.sessions.max_sessions = static_cast<std::size_t>(n);
    } else if (arg == "--latency-us") {
      if (!next_number(n)) return false;
      options.executor.injected_latency_us = n;
    } else if (arg == "--max-queue-wait-ms") {
      if (!next_number(n)) return false;
      options.executor.max_queue_wait_ms = n;
    } else if (arg == "--degraded-after-ms") {
      if (!next_number(n)) return false;
      options.sessions.degraded_after_ms = n;
    } else if (arg == "--trace-sample") {
      // 0 is meaningful (tracing off), so bypass the positive-number
      // helper.
      if (i + 1 >= argc) return false;
      options.tracer.sample_every = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--trace-seed") {
      if (i + 1 >= argc) return false;
      options.tracer.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--slow-request-ms") {
      if (!next_number(n)) return false;
      options.tracer.slow_request_ms = n;
    } else if (arg == "--flight-recorder") {
      if (i + 1 >= argc) return false;
      options.tracer.flight_path = argv[++i];
    } else if (arg == "--data") {
      if (i + 1 >= argc) return false;
      options.data_dir = argv[++i];
    } else if (arg == "--wal-sync" || arg.rfind("--wal-sync=", 0) == 0) {
      std::string mode;
      if (arg == "--wal-sync") {
        if (i + 1 >= argc) return false;
        mode = argv[++i];
      } else {
        mode = arg.substr(std::string("--wal-sync=").size());
      }
      try {
        options.wal.sync = storage::parse_sync_mode(mode);
      } catch (const Error& e) {
        std::cerr << e.what() << "\n";
        return false;
      }
    } else if (arg == "--wal-sync-bytes") {
      if (!next_number(n)) return false;
      options.wal.sync_interval_bytes = static_cast<std::uint64_t>(n);
    } else if (arg == "--import") {
      if (i + 1 >= argc) return false;
      options.import_file = argv[++i];
    } else if (arg == "--import-batch") {
      if (!next_number(n)) return false;
      options.import_batch = static_cast<std::size_t>(n);
    } else if (!layer_set && !arg.empty() && arg[0] != '-') {
      options.layer = arg;
      layer_set = true;
    } else {
      return false;
    }
  }
  return true;
}

std::unique_ptr<dsl::DesignSpaceLayer> load_layer(const std::string& which) {
  if (which == "crypto") return domains::build_crypto_layer();
  if (which == "crypto-tech") {
    domains::CryptoLayerOptions options;
    options.hierarchy = domains::OmmHierarchy::kTechnologyFirst;
    return domains::build_crypto_layer(options);
  }
  if (which == "media") return domains::build_media_layer();
  std::ifstream file(which);
  if (!file) throw Error("cannot open layer file '" + which + "'");
  std::ostringstream text;
  text << file.rdbuf();
  dsl::ImportResult imported = dsl::import_layer(text.str());
  for (const auto& warning : imported.warnings) std::cerr << "warning: " << warning << "\n";
  return std::move(imported.layer);
}

volatile std::sig_atomic_t g_stop_requested = 0;

void request_stop(int) { g_stop_requested = 1; }

int run_listen(dsl::DesignSpaceLayer& layer, const CliOptions& options,
               service::SharedLayer::Reindex reindex) {
  service::SharedLayer shared(layer, reindex);
  service::SessionManager manager(shared, options.sessions);
  service::RequestExecutor executor(manager, options.executor);
  net::NetServer server(manager, executor, options.net);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "cannot listen on port " << options.net.port << ": " << error << "\n";
    return 2;
  }
  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);
  std::cout << "dslayer service listening on port " << server.port() << " (layer '"
            << layer.name() << "', " << options.executor.workers << " workers)\n"
            << std::flush;
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const auto stats = server.stats();
  server.stop();
  executor.shutdown();
  std::cout << "net: accepted=" << stats.accepted << " closed=" << stats.closed
            << " requests=" << stats.requests << " responses=" << stats.responses
            << " invalid=" << stats.invalid_lines << " idle_closed=" << stats.idle_closed
            << " faulted=" << stats.faulted << "\n";
  return 0;
}

int run_service(dsl::DesignSpaceLayer& layer, const CliOptions& options,
                storage::DurableCatalog* durable) {
  // Every service front end traces through the process-global tracer;
  // the default config (sample 1-in-64, no flight recorder) keeps the
  // cold hot path at one relaxed load per request.
  trace::Tracer::instance().configure(options.tracer);
  // A snapshot boot restored the index (and its mmap-aliased filter
  // tables) already — re-indexing here would discard it and pay the full
  // re-derivation the snapshot exists to skip.
  const auto reindex = durable != nullptr && durable->boot_report().loaded_snapshot
                           ? service::SharedLayer::Reindex::kPreserve
                           : service::SharedLayer::Reindex::kFull;
  if (options.mode == CliOptions::Mode::kListen) return run_listen(layer, options, reindex);
  service::SharedLayer shared(layer, reindex);
  service::SessionManager manager(shared, options.sessions);
  service::RequestExecutor executor(manager, options.executor);

  service::BatchSummary summary;
  if (options.mode == CliOptions::Mode::kServe) {
    summary = service::run_serve(manager, executor, std::cin, std::cout, durable);
  } else if (options.batch_file == "-") {
    summary = service::run_batch(manager, executor, std::cin, std::cout, durable);
  } else {
    std::ifstream file(options.batch_file);
    if (!file) {
      std::cerr << "cannot open batch file '" << options.batch_file << "'\n";
      return 2;
    }
    summary = service::run_batch(manager, executor, file, std::cout, durable);
  }
  executor.shutdown();
  return summary.errors == 0 && summary.rejected == 0 && summary.deadline_expired == 0 ? 0 : 1;
}

/// Bulk-imports a CSV corpus. With a durable catalog every batch goes
/// through the WAL (apply + journal + fsync per --wal-sync) so a crash
/// mid-import recovers exactly the acknowledged batches; without one the
/// records apply in memory only.
int run_import(dsl::DesignSpaceLayer& layer, const CliOptions& options,
               storage::DurableCatalog* durable) {
  try {
    const std::string csv = storage::read_file(options.import_file);
    const auto emit = [&](storage::CatalogRecord record) {
      if (durable != nullptr) {
        durable->apply_and_log(record);
      } else {
        storage::apply_record(layer, record);
      }
    };
    const storage::CsvImportResult result =
        storage::import_csv(csv, "imported", options.import_batch, emit);
    emit(storage::CatalogRecord::index_cores());
    for (const auto& warning : result.warnings) std::cerr << "warning: " << warning << "\n";
    std::cerr << "imported " << result.rows << " cores in " << result.batches
              << " batches from '" << options.import_file << "'\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "import failed: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_cli(argc, argv, options)) return usage(argv[0]);

  std::unique_ptr<dsl::DesignSpaceLayer> layer;
  try {
    layer = load_layer(options.layer);
  } catch (const Error& e) {
    std::cerr << "failed to load layer: " << e.what() << "\n";
    return 2;
  }

  // Durable catalog: boot (snapshot + journal replay) before any front
  // end sees the layer, and persist named sessions under the same dir.
  std::unique_ptr<storage::DurableCatalog> durable;
  std::unique_ptr<storage::SessionStore> session_store;
  if (!options.data_dir.empty()) {
    try {
      storage::DurableOptions durable_options;
      durable_options.dir = options.data_dir;
      durable_options.wal = options.wal;
      durable = std::make_unique<storage::DurableCatalog>(*layer, durable_options);
      session_store = std::make_unique<storage::SessionStore>(durable->sessions_dir());
      options.sessions.store = session_store.get();
      const storage::BootReport& boot = durable->boot_report();
      if (boot.loaded_snapshot || boot.replayed_records > 0 || boot.truncated_bytes > 0) {
        std::cerr << "durable catalog '" << options.data_dir
                  << "': snapshot=" << (boot.loaded_snapshot ? "yes" : "no")
                  << " snapshot_cores=" << boot.snapshot.cores
                  << " replayed=" << boot.replayed_records
                  << " skipped=" << boot.skipped_records
                  << " torn_bytes=" << boot.truncated_bytes << "\n";
      }
    } catch (const Error& e) {
      std::cerr << "failed to open durable catalog '" << options.data_dir << "': " << e.what()
                << "\n";
      return 2;
    }
  }

  if (!options.import_file.empty()) {
    const int rc = run_import(*layer, options, durable.get());
    if (rc != 0) return rc;
    // A bare `--import` is a bulk-load invocation: import, then exit
    // instead of falling through to an interactive shell blocked on
    // stdin. Combine with --batch/--serve/--listen to keep serving.
    if (options.mode == CliOptions::Mode::kInteractive) return 0;
  }

  if (options.mode != CliOptions::Mode::kInteractive) {
    return run_service(*layer, options, durable.get());
  }

  std::cout << "dslayer shell — layer '" << layer->name() << "' (" << layer->space().all().size()
            << " CDOs). Type 'help'.\n";
  const int failures = dsl::run_shell(*layer, std::cin, std::cout);
  return failures == 0 ? 0 : 1;
}
