// The paper's Section 2 motivating example: why design spaces should be
// organized by generalization/specialization over evaluation-space
// proximity, not by the traditional abstraction levels.
//
// Reproduces Figs. 2 and 3 with the five IDCT hard cores of the media
// layer: prints the evaluation space, clusters it, shows that the
// clustering recovers {1,2,5} vs {3,4}, ranks the candidate design issues
// by how well they explain the clusters (fabrication technology wins), and
// finally explores the resulting hierarchy.

#include <iostream>

#include "analysis/evaluation_space.hpp"
#include "domains/crypto.hpp"  // metric name constants
#include "domains/media.hpp"
#include "dsl/exploration.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace dslayer;
using namespace dslayer::domains;

int main() {
  auto layer = build_media_layer();

  // --- the evaluation space (Fig. 2(c) / Fig. 3(b)) ---------------------------
  const auto points = idct_eval_points(*layer);
  TextTable space({"Core", "Area", "Delay (ns)", "Technology", "Algorithm", "Layout"});
  for (const auto& p : points) {
    space.add_row({p.id, format_double(p.metrics.at("area")),
                   format_double(p.metrics.at("delay_ns")),
                   p.attributes.at("FabricationTechnology"), p.attributes.at(kIdctAlgorithm),
                   p.attributes.at("LayoutStyle")});
  }
  std::cout << "IDCT evaluation space (five hard cores):\n" << space.render() << "\n";

  // --- clustering (Section 2.2) -----------------------------------------------
  const auto clustering = analysis::cluster_auto(points, {"area", "delay_ns"}, 3);
  std::cout << "Agglomerative clustering found " << clustering.cluster_count
            << " clusters (silhouette "
            << format_double(analysis::silhouette(points, {"area", "delay_ns"}, clustering))
            << "):\n";
  for (int c = 0; c < clustering.cluster_count; ++c) {
    std::cout << "  cluster " << c << ": ";
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (clustering.assignment[i] == c) std::cout << "{" << points[i].id << "} ";
    }
    std::cout << "\n";
  }

  // --- which design issue explains the clusters? ---------------------------------
  std::cout << "\nDesign issues ranked by information gain against the clusters:\n";
  for (const auto& score : analysis::rank_issues(points, clustering)) {
    std::cout << "  " << score.issue << "  gain=" << format_double(score.info_gain) << "\n";
  }
  std::cout << "\n=> the generalization hierarchy should split on fabrication technology\n"
            << "   first ('abstraction level' is not even a candidate: designs 1 and 4\n"
            << "   share the same algorithm-level view but sit in different clusters).\n\n";

  // --- explore the hierarchy built that way ----------------------------------------
  dsl::ExplorationSession session(*layer, kPathIdct);
  session.set_requirement(kIdctPrecision, 12.0);
  session.decide("ImplementationStyle", "Hardware");
  std::cout << "At " << session.current().path() << ": " << session.candidates().size()
            << " hard cores\n";
  session.decide("FabricationTechnology", "0.35um");
  std::cout << "After committing to the fast/small family (0.35um): "
            << session.candidates().size() << " cores";
  const auto delay = session.metric_range(kMetricDelayNs);
  if (delay.has_value()) {
    std::cout << ", block delay range [" << format_double(delay->min) << ", "
              << format_double(delay->max) << "] ns";
  }
  std::cout << "\n";
  session.decide(kIdctAlgorithm, "Row-Column");
  std::cout << "After the (fine-grained) algorithm decision: " << session.candidates().size()
            << " cores\n\n";
  for (const dsl::Core* core : session.candidates()) {
    std::cout << "  " << core->describe() << "\n";
  }
  return 0;
}
