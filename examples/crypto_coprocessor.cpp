// The paper's Section 5 case study, end to end: selecting a modular
// multiplier core for the modular exponentiation coprocessor of [10],
// against the specification of [11] (Fig. 8 values).
//
// The walkthrough follows the paper's narrative exactly:
//   1. enter the OMM requirements (EOL 768, codings, odd modulo, <= 8 us);
//   2. Req5 + Fig. 6: software cannot meet the bound -> the generalized
//      "Implementation Style" issue collapses to Hardware;
//   3. Req4 + Fig. 9: Montgomery is usable (odd modulo) and dominates
//      Brickell -> descend to OMM-HM;
//   4. CC4/CC5 eliminate carry-lookahead adders and array multipliers for
//      the loop operators;
//   5. trade-off exploration on the leaf CDO: radix / slice width /
//      number of slices against the derived cycle count (CC2) and the
//      candidate core ranges;
//   6. behavioral decomposition (Section 5.1.6): recurse into the Adder
//      CDO for the loop additions;
//   7. verify the chosen core functionally with the RTL simulator against
//      the bigint reference.

#include <iostream>

#include "bigint/modular.hpp"
#include "domains/crypto.hpp"
#include "rtl/simulator.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace dslayer;
using namespace dslayer::domains;

namespace {

void show_candidates(const dsl::ExplorationSession& session, const char* stage) {
  const auto cores = session.candidates();
  std::cout << "[" << stage << "] scope=" << session.current().path()
            << "  candidates=" << cores.size() << "\n";
  const auto area = session.metric_range(kMetricArea);
  const auto clk = session.metric_range(kMetricClockNs);
  if (area.has_value()) {
    std::cout << "    slice area range  [" << area->min << ", " << area->max << "]\n";
  }
  if (clk.has_value()) {
    std::cout << "    clock range (ns)  [" << clk->min << ", " << clk->max << "]\n";
  }
}

}  // namespace

int main() {
  auto layer = build_crypto_layer();
  std::cout << "Cryptography design space layer: " << layer->libraries().size()
            << " reuse libraries, validation findings: " << layer->validate().size() << "\n\n";

  dsl::ExplorationSession session(*layer, kPathOMM);
  show_candidates(session, "opened");

  // --- 1. the coprocessor specification (Fig. 8) ------------------------------
  apply_coprocessor_spec(session);
  show_candidates(session, "requirements entered");

  // --- 2. implementation style: Req5 makes Software inconsistent (CC6) -----------
  std::cout << "\nImplementationStyle options: ";
  for (const auto& option : session.available_options(kImplStyle)) std::cout << option << " ";
  std::cout << "\n";
  for (const auto& [option, cc] : session.eliminated_options(kImplStyle)) {
    std::cout << "  eliminated '" << option << "' by " << cc << "\n";
  }
  session.decide(kImplStyle, "Hardware");
  show_candidates(session, "hardware selected");

  // --- 3. algorithm: Montgomery usable (odd modulo) and dominant -----------------
  session.decide(kAlgorithm, "Montgomery");
  show_candidates(session, "Montgomery selected");

  // --- 4. CC4/CC5: inferior loop-operator implementations eliminated --------------
  std::cout << "\nLoopAdder options at EOL=768: ";
  for (const auto& option : session.available_options(kLoopAdder)) std::cout << option << " ";
  std::cout << "   (CC4 removed CLA)\n";
  session.decide(kLoopAdder, "CSA");

  // --- 5. trade-off exploration on the leaf CDO -----------------------------------
  TextTable table({"Radix", "SliceWidth", "Slices", "LatencyCycles (CC2)", "candidates"});
  for (const double radix : {2.0, 4.0}) {
    session.decide(kRadix, radix);
    session.decide(kLoopMultiplier, radix == 2.0 ? "N/A" : "MUX");
    for (const double width : {32.0, 64.0, 128.0}) {
      session.decide(kSliceWidth, width);
      session.decide(kNumSlices, 768.0 / width);
      const auto cycles = session.derived(kLatencyCycles);
      table.add_row({format_double(radix), format_double(width), format_double(768.0 / width),
                     cycles.has_value() ? cycles->to_string() : "?",
                     cat(session.candidates().size())});
    }
    session.retract(kLoopMultiplier);
  }
  std::cout << "\n" << table.render() << "\n";

  // Settle on the paper's sweet spot: radix 4, mux-based multiplier, 64-bit
  // slices (#5_64-class cores).
  session.decide(kRadix, 4.0);
  session.decide(kLoopMultiplier, "MUX");
  session.decide(kSliceWidth, 64.0);
  session.decide(kNumSlices, 12.0);
  std::cout << session.report() << "\n";

  // --- 6. behavioral decomposition (DI7): recurse into the operator CDOs -----------
  std::cout << "Behavioral decomposition of the Montgomery loop (DI7):\n";
  for (const auto& site : session.behavioral_decomposition()) {
    if (site.cdo_path.empty() || site.line != 3) continue;
    std::cout << "  " << behavior::to_string(site.kind) << " at line " << site.line << " ["
              << site.width_bits << "b] -> " << site.cdo_path << "\n";
    if (site.kind == behavior::OpKind::kAdd) {
      dsl::ExplorationSession sub = session.open_operator_session(site);
      sub.decide(kAdderAlgorithm, "CSA");
      std::cout << "     sub-exploration: " << sub.candidates().size()
                << " carry-save adder cores of width >= " << site.width_bits << "\n";
      break;  // one recursion is enough for the walkthrough
    }
  }

  // --- 7. functional verification of the selected configuration --------------------
  const auto cores = session.candidates();
  if (!cores.empty()) {
    const dsl::Core& chosen = *cores.front();
    const rtl::SliceConfig config = slice_config_from_core(chosen);
    std::cout << "\nSelected core: " << chosen.describe() << "\n";

    Rng rng(2026);
    auto m = bigint::BigUint::random_bits(rng, 768);
    if (!m.is_odd()) m += bigint::BigUint(1);
    const auto a = bigint::BigUint::random_below(rng, m);
    const auto b = bigint::BigUint::random_below(rng, m);
    const auto hw = rtl::montgomery_hw_modmul(a, b, m, config.radix);
    const auto ref = bigint::mod_mul_paper_pencil(a, b, m);
    std::cout << "RTL simulation of a 768-bit modular multiplication: "
              << (hw == ref ? "MATCHES the bigint reference" : "MISMATCH!") << "\n";

    const rtl::MultiplierDesign design = rtl::MultiplierDesign::for_operand_length(config, 768);
    std::cout << "Composed multiplier: " << design.num_slices() << " slices, area "
              << design.area() << ", latency " << design.latency_ns(768) / 1000.0
              << " us (bound: 8 us)\n";
  }
  return 0;
}
