// Library exchange: the Fig. 1 deployment story as a workflow.
//
// An IP provider maintains reuse libraries; a design environment maintains
// its own design space layer and references the provider's cores through
// it. This example plays both roles:
//
//   1. the "design environment" builds the cryptography layer and exports
//      it to the interchange format (dslayer-format 1);
//   2. the "receiving environment" imports the text, re-authors the code
//      parts (consistency constraints and compliance filters do not travel
//      — they are relations over the layer's properties, not data), and
//      explores;
//   3. the provider ships an updated catalog: a new core is added to the
//      imported layer's library and indexed without rebuilding anything —
//      the "open layer" property the paper contrasts with feature-database
//      approaches ("capable of referencing populations of cores which are
//      constantly increasing, or changing").

#include <algorithm>
#include <iostream>
#include <sstream>

#include "domains/crypto.hpp"
#include "dsl/serialize.hpp"
#include "support/strings.hpp"

using namespace dslayer;
using namespace dslayer::domains;

int main() {
  // --- 1. export -------------------------------------------------------------
  auto original = build_crypto_layer();
  const std::string text = dsl::export_layer(*original);
  std::cout << "Exported layer: " << text.size() << " bytes, "
            << std::count(text.begin(), text.end(), '\n') << " lines\n";
  std::cout << "First lines of the interchange text:\n";
  std::istringstream preview(text);
  std::string line;
  for (int i = 0; i < 8 && std::getline(preview, line); ++i) std::cout << "  | " << line << "\n";

  // --- 2. import + re-author the code parts ---------------------------------------
  dsl::ImportResult imported = dsl::import_layer(text);
  std::cout << "\nImported '" << imported.layer->name() << "': "
            << imported.layer->space().all().size() << " CDOs, "
            << imported.layer->libraries().size() << " libraries, "
            << imported.warnings.size() << " warnings\n";

  // Constraints are code; the receiving environment re-authors the ones it
  // needs (here: just CC1, the odd-modulo rule).
  imported.layer->add_constraint(dsl::ConsistencyConstraint::inconsistent_options(
      "CC1", "Montgomery Algorithm requires odd modulo",
      {dsl::PropertyPath::parse(cat(kModuloIsOdd, "@Multiplier"))},
      {dsl::PropertyPath::parse(cat(kAlgorithm, "@*.Multiplier.Hardware"))},
      [](const dsl::Bindings& b) {
        return dsl::get_or_empty(b, kModuloIsOdd).as_text() == "NotGuaranteed" &&
               dsl::get_or_empty(b, kAlgorithm).as_text() == "Montgomery";
      }));

  dsl::ExplorationSession session(*imported.layer, kPathOMM);
  session.set_requirement(kEOL, 768.0);
  session.decide(kImplStyle, "Hardware");
  session.decide(kAlgorithm, "Montgomery");
  std::cout << "Exploration on the imported layer: " << session.candidates().size()
            << " Montgomery candidates\n";

  // --- 3. the provider ships a new core -------------------------------------------
  // A ninth design appears in the vendor catalog; it indexes into the
  // existing hierarchy without touching the layer definition.
  dsl::Core next_gen("mm_nextgen_w64_0.25um", kPathOMM);
  next_gen.bind(kImplStyle, dsl::Value::text("Hardware"))
      .bind(kAlgorithm, dsl::Value::text("Montgomery"))
      .bind(kRadix, dsl::Value::number(4))
      .bind(kLoopAdder, dsl::Value::text("CSA"))
      .bind(kLoopMultiplier, dsl::Value::text("MUX"))
      .bind(kSliceWidth, dsl::Value::number(64));
  next_gen.set_metric(kMetricArea, 21000).set_metric(kMetricClockNs, 1.7);
  dsl::ReuseLibrary* lib = imported.layer->library("lsi-hardcores");
  lib->add(std::move(next_gen));
  imported.layer->index_cores();
  std::cout << "After the vendor update: " << session.candidates().size()
            << " Montgomery candidates (the new core joined the region it belongs to)\n";
  return 0;
}
