// Authoring a new design space layer from measured cores — the workflow of
// Section 2.2 turned into a tool: start from a flat pile of cores with
// metrics and attributes, let the evaluation-space clustering suggest which
// design issue to generalize at each level, and emit the layer.
//
// The domain here is digital FIR filters (a fresh domain, to show the
// framework is not crypto-specific): eight cores spanning architecture
// (parallel / serial) and technology, where architecture drives the
// top-level clusters.

#include <iostream>

#include "analysis/evaluation_space.hpp"
#include "dsl/exploration.hpp"
#include "dsl/layer.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace dslayer;
using dsl::Property;
using dsl::Value;
using dsl::ValueDomain;

namespace {

struct FirCore {
  const char* name;
  const char* architecture;  // Parallel / Bit-Serial
  const char* technology;    // 0.35um / 0.70um
  double area;
  double sample_ns;
};

constexpr FirCore kCores[] = {
    {"fir_par_35_a", "Parallel", "0.35um", 92000, 12},
    {"fir_par_35_b", "Parallel", "0.35um", 101000, 10},
    {"fir_par_70", "Parallel", "0.70um", 350000, 22},
    {"fir_ser_35_a", "Bit-Serial", "0.35um", 14000, 180},
    {"fir_ser_35_b", "Bit-Serial", "0.35um", 16500, 160},
    {"fir_ser_70_a", "Bit-Serial", "0.70um", 52000, 340},
    {"fir_ser_70_b", "Bit-Serial", "0.70um", 49000, 380},
    {"fir_par_35_c", "Parallel", "0.35um", 88000, 13},
};

}  // namespace

int main() {
  // --- 1. the flat evaluation space -------------------------------------------
  std::vector<analysis::EvalPoint> points;
  for (const FirCore& c : kCores) {
    analysis::EvalPoint p;
    p.id = c.name;
    p.metrics["area"] = c.area;
    p.metrics["sample_ns"] = c.sample_ns;
    p.attributes["Architecture"] = c.architecture;
    p.attributes["FabricationTechnology"] = c.technology;
    points.push_back(std::move(p));
  }

  // --- 2. let the clustering propose the hierarchy --------------------------------
  const auto suggestions =
      analysis::suggest_hierarchy(points, {"area", "sample_ns"}, 4);
  std::cout << "Suggested generalization order:\n";
  for (const auto& s : suggestions) {
    std::cout << "  generalize '" << s.issue << "' (info gain " << format_double(s.info_gain)
              << ")\n";
    for (const auto& [option, ids] : s.groups) {
      std::cout << "    " << option << ": ";
      for (const auto& id : ids) std::cout << id << " ";
      std::cout << "\n";
    }
  }
  if (suggestions.empty()) {
    std::cout << "  (no attribute explains the clusters)\n";
    return 0;
  }

  // --- 3. author the layer accordingly ---------------------------------------------
  dsl::DesignSpaceLayer layer("fir-filters");
  dsl::Cdo& fir = layer.space().add_root("FIR", "Finite impulse response filters");
  fir.add_property(Property::requirement("Taps", ValueDomain::positive_integers(),
                                         "Number of filter taps"));
  fir.add_property(Property::requirement(
                       "SamplePeriod", ValueDomain::real_range(0, 1e9),
                       "Maximum time per output sample", Unit::kNanoseconds)
                       .with_compliance(dsl::Compliance::kCoreAtMost, "sample_ns"));

  const auto& top = suggestions.front();
  std::vector<std::string> options;
  for (const auto& [option, ids] : top.groups) options.push_back(option);
  fir.add_property(Property::generalized_issue(
      top.issue, options, "Generalized per the evaluation-space clustering"));
  for (const auto& option : options) {
    dsl::Cdo& child = fir.specialize(option, option == "Bit-Serial" ? "BitSerial" : option);
    // The runner-up issue stays a regular (fine-grained) trade-off inside
    // each family.
    if (suggestions.size() > 1) {
      child.add_property(Property::design_issue(
          suggestions[1].issue, ValueDomain::options({"0.35um", "0.70um"}),
          "Fine-grained trade-off within the family"));
    }
  }

  dsl::ReuseLibrary& lib = layer.add_library("fir-cores");
  for (const FirCore& c : kCores) {
    dsl::Core core(c.name, "FIR");
    core.bind("Architecture", Value::text(c.architecture))
        .bind("FabricationTechnology", Value::text(c.technology));
    core.set_metric("area", c.area).set_metric("sample_ns", c.sample_ns);
    lib.add(std::move(core));
  }
  layer.index_cores();

  std::cout << "\nAuthored layer (validation findings: " << layer.validate().size() << "):\n"
            << layer.document() << "\n";

  // --- 4. drive it -----------------------------------------------------------------
  dsl::ExplorationSession session(layer, "FIR");
  session.set_requirement("Taps", 64.0);
  session.set_requirement("SamplePeriod", 50.0);  // fast: only parallel cores can comply
  std::cout << "With SamplePeriod <= 50 ns: " << session.candidates().size()
            << " candidates before any decision\n";
  session.decide(top.issue, "Parallel");
  std::cout << session.report();
  return 0;
}
