// Quickstart: author a tiny design space layer, index a few cores, explore.
//
// The domain is deliberately small — a FIFO buffer class with one
// generalized issue (memory style) and a handful of cores — so every
// concept of the library fits on one screen:
//
//   1. build a CDO hierarchy with requirements and design issues,
//   2. attach a reuse library and index its cores,
//   3. add a consistency constraint,
//   4. open an exploration session: enter requirements, make decisions,
//      watch the candidate set shrink and the metric ranges report.

#include <iostream>

#include "dsl/exploration.hpp"
#include "dsl/layer.hpp"

using namespace dslayer;
using dsl::Compliance;
using dsl::ConsistencyConstraint;
using dsl::Property;
using dsl::PropertyPath;
using dsl::Value;
using dsl::ValueDomain;

int main() {
  // 1. The design space: FIFOs, discriminated first by memory style.
  dsl::DesignSpaceLayer layer("quickstart");
  dsl::Cdo& fifo = layer.space().add_root("FIFO", "First-in first-out buffers");
  fifo.add_property(Property::requirement("Depth", ValueDomain::positive_integers(),
                                          "Required number of entries")
                        .with_compliance(Compliance::kCoreAtLeast, "depth"));
  fifo.add_property(Property::requirement("MaxLatency", ValueDomain::real_range(0, 1e9),
                                          "Worst-case pop latency (ns)", Unit::kNanoseconds)
                        .with_compliance(Compliance::kCoreAtMost, "latency_ns"));
  fifo.add_property(Property::generalized_issue(
      "MemoryStyle", {"Register-File", "SRAM"},
      "Flip-flop based FIFOs are fast but large; SRAM FIFOs scale deep"));
  dsl::Cdo& rf = fifo.specialize("Register-File", "RegisterFile");
  rf.add_property(Property::design_issue("Bypass", ValueDomain::options({"Yes", "No"}),
                                         "Combinational same-cycle bypass path"));
  fifo.specialize("SRAM");

  // 2. A reuse library with four cores.
  dsl::ReuseLibrary& lib = layer.add_library("fifo-vendor");
  {
    dsl::Core c("ff_fifo_16", "FIFO");
    c.bind("MemoryStyle", Value::text("Register-File")).bind("Bypass", Value::text("Yes"));
    c.set_metric("depth", 16).set_metric("latency_ns", 1.2).set_metric("area", 5200);
    lib.add(std::move(c));
  }
  {
    dsl::Core c("ff_fifo_64", "FIFO");
    c.bind("MemoryStyle", Value::text("Register-File")).bind("Bypass", Value::text("No"));
    c.set_metric("depth", 64).set_metric("latency_ns", 1.6).set_metric("area", 19800);
    lib.add(std::move(c));
  }
  {
    dsl::Core c("sram_fifo_256", "FIFO");
    c.bind("MemoryStyle", Value::text("SRAM"));
    c.set_metric("depth", 256).set_metric("latency_ns", 3.4).set_metric("area", 9100);
    lib.add(std::move(c));
  }
  {
    dsl::Core c("sram_fifo_1k", "FIFO");
    c.bind("MemoryStyle", Value::text("SRAM"));
    c.set_metric("depth", 1024).set_metric("latency_ns", 4.1).set_metric("area", 21000);
    lib.add(std::move(c));
  }
  layer.index_cores();

  // 3. One consistency constraint: deep FIFOs in flip-flops are dominated.
  layer.add_constraint(ConsistencyConstraint::dominance(
      "QC1", "Register-file FIFOs deeper than 64 entries are dominated by SRAM",
      {PropertyPath::parse("Depth@FIFO")}, {PropertyPath::parse("MemoryStyle@FIFO")},
      [](const dsl::Bindings& b) {
        return dsl::get_or_empty(b, "Depth").as_number() > 64 &&
               dsl::get_or_empty(b, "MemoryStyle").as_text() == "Register-File";
      }));

  std::cout << layer.document() << "\n";

  // 4. Explore: a 128-deep, latency-bounded FIFO.
  dsl::ExplorationSession session(layer, "FIFO");
  session.set_requirement("Depth", 128.0);
  session.set_requirement("MaxLatency", 5.0);

  std::cout << "Options for MemoryStyle after Depth=128: ";
  for (const auto& option : session.available_options("MemoryStyle")) std::cout << option << " ";
  std::cout << "\n\n";  // QC1 has eliminated Register-File

  session.decide("MemoryStyle", "SRAM");
  std::cout << session.report() << "\n";

  const auto area = session.metric_range("area");
  if (area.has_value()) {
    std::cout << "Area range over candidates: [" << area->min << ", " << area->max << "]\n";
  }

  std::cout << "\nTrace:\n";
  for (const auto& line : session.trace()) std::cout << "  " << line << "\n";
  return 0;
}
