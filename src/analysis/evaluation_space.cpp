#include "analysis/evaluation_space.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::analysis {

double EvalPoint::metric(const std::string& name) const {
  const auto it = metrics.find(name);
  if (it == metrics.end()) {
    throw PreconditionError(cat("point '", id, "' has no metric '", name, "'"));
  }
  return it->second;
}

bool dominates(const EvalPoint& a, const EvalPoint& b, const std::vector<std::string>& metrics) {
  DSLAYER_REQUIRE(!metrics.empty(), "dominance needs at least one metric");
  bool strictly_better = false;
  for (const std::string& m : metrics) {
    const double av = a.metric(m);
    const double bv = b.metric(m);
    if (av > bv) return false;
    if (av < bv) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> pareto_front(const std::vector<EvalPoint>& points,
                                      const std::vector<std::string>& metrics) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i], metrics)) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

namespace {

/// Min-max normalized metric matrix: rows = points, cols = metrics.
std::vector<std::vector<double>> normalize(const std::vector<EvalPoint>& points,
                                           const std::vector<std::string>& metrics) {
  std::vector<std::vector<double>> rows(points.size(), std::vector<double>(metrics.size(), 0.0));
  for (std::size_t c = 0; c < metrics.size(); ++c) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const EvalPoint& p : points) {
      const double v = p.metric(metrics[c]);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const double span = hi - lo;
    for (std::size_t r = 0; r < points.size(); ++r) {
      const double v = points[r].metric(metrics[c]);
      rows[r][c] = span > 0.0 ? (v - lo) / span : 0.0;
    }
  }
  return rows;
}

double euclidean(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace

Clustering cluster_k(const std::vector<EvalPoint>& points, const std::vector<std::string>& metrics,
                     int k) {
  const int n = static_cast<int>(points.size());
  DSLAYER_REQUIRE(k >= 1 && k <= n, "cluster count must be in [1, n]");
  const auto rows = normalize(points, metrics);

  // Each cluster is a member list; complete linkage = max pairwise distance.
  std::vector<std::vector<int>> clusters(points.size());
  for (int i = 0; i < n; ++i) clusters[static_cast<std::size_t>(i)] = {i};

  const auto linkage = [&rows](const std::vector<int>& a, const std::vector<int>& b) {
    double worst = 0.0;
    for (int i : a) {
      for (int j : b) {
        worst = std::max(worst, euclidean(rows[static_cast<std::size_t>(i)],
                                          rows[static_cast<std::size_t>(j)]));
      }
    }
    return worst;
  };

  while (static_cast<int>(clusters.size()) > k) {
    std::size_t best_a = 0, best_b = 1;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t a = 0; a < clusters.size(); ++a) {
      for (std::size_t b = a + 1; b < clusters.size(); ++b) {
        const double d = linkage(clusters[a], clusters[b]);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    clusters[best_a].insert(clusters[best_a].end(), clusters[best_b].begin(),
                            clusters[best_b].end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_b));
  }

  Clustering result;
  result.assignment.assign(points.size(), 0);
  result.cluster_count = static_cast<int>(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (int i : clusters[c]) result.assignment[static_cast<std::size_t>(i)] = static_cast<int>(c);
  }
  return result;
}

double silhouette(const std::vector<EvalPoint>& points, const std::vector<std::string>& metrics,
                  const Clustering& clustering) {
  const std::size_t n = points.size();
  DSLAYER_REQUIRE(clustering.assignment.size() == n, "assignment size mismatch");
  DSLAYER_REQUIRE(clustering.cluster_count >= 2 && n >= 2,
                  "silhouette needs at least two clusters and two points");
  const auto rows = normalize(points, metrics);

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const int own = clustering.assignment[i];
    double a_sum = 0.0;
    int a_count = 0;
    std::map<int, std::pair<double, int>> other;  // cluster -> (sum, count)
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double d = euclidean(rows[i], rows[j]);
      if (clustering.assignment[j] == own) {
        a_sum += d;
        ++a_count;
      } else {
        auto& [sum, count] = other[clustering.assignment[j]];
        sum += d;
        ++count;
      }
    }
    if (a_count == 0 || other.empty()) continue;  // singleton contributes 0
    const double a = a_sum / a_count;
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [cluster, pair] : other) {
      b = std::min(b, pair.first / pair.second);
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

Clustering cluster_auto(const std::vector<EvalPoint>& points,
                        const std::vector<std::string>& metrics, int max_k) {
  const int n = static_cast<int>(points.size());
  DSLAYER_REQUIRE(n >= 2, "clustering needs at least two points");
  max_k = std::min(max_k, n);
  DSLAYER_REQUIRE(max_k >= 2, "max_k must be at least 2");

  Clustering best;
  double best_score = -2.0;
  for (int k = 2; k <= max_k; ++k) {
    Clustering c = cluster_k(points, metrics, k);
    const double s = silhouette(points, metrics, c);
    if (s > best_score) {
      best_score = s;
      best = std::move(c);
    }
  }
  return best;
}

std::vector<IssueScore> rank_issues(const std::vector<EvalPoint>& points,
                                    const Clustering& clustering) {
  DSLAYER_REQUIRE(clustering.assignment.size() == points.size(), "assignment size mismatch");
  const double n = static_cast<double>(points.size());

  // Cluster entropy H(C).
  std::map<int, int> cluster_counts;
  for (int c : clustering.assignment) ++cluster_counts[c];
  double h_cluster = 0.0;
  for (const auto& [c, count] : cluster_counts) {
    const double p = count / n;
    h_cluster -= p * std::log2(p);
  }

  // Attribute keys appearing anywhere.
  std::set<std::string> keys;
  for (const EvalPoint& p : points) {
    for (const auto& [k, v] : p.attributes) keys.insert(k);
  }

  std::vector<IssueScore> scores;
  for (const std::string& key : keys) {
    // Joint counts over (option, cluster); points missing the attribute get
    // a dedicated "<unset>" option.
    std::map<std::string, int> option_counts;
    std::map<std::pair<std::string, int>, int> joint;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto it = points[i].attributes.find(key);
      const std::string option = it == points[i].attributes.end() ? "<unset>" : it->second;
      ++option_counts[option];
      ++joint[{option, clustering.assignment[i]}];
    }
    // I(A;C) = H(C) - H(C|A).
    double h_given = 0.0;
    for (const auto& [option, count] : option_counts) {
      const double p_opt = count / n;
      double h = 0.0;
      for (const auto& [oc, jcount] : joint) {
        if (oc.first != option) continue;
        const double p = static_cast<double>(jcount) / count;
        h -= p * std::log2(p);
      }
      h_given += p_opt * h;
    }
    const double gain = h_cluster - h_given;
    scores.push_back({key, h_cluster > 0.0 ? std::max(0.0, gain / h_cluster) : 0.0});
  }
  std::sort(scores.begin(), scores.end(),
            [](const IssueScore& a, const IssueScore& b) { return a.info_gain > b.info_gain; });
  return scores;
}

std::vector<HierarchySuggestion> suggest_hierarchy(const std::vector<EvalPoint>& points,
                                                   const std::vector<std::string>& metrics,
                                                   int max_k) {
  const Clustering clustering = cluster_auto(points, metrics, max_k);
  std::vector<HierarchySuggestion> out;
  for (const IssueScore& score : rank_issues(points, clustering)) {
    if (score.info_gain <= 0.0) continue;
    HierarchySuggestion s;
    s.issue = score.issue;
    s.info_gain = score.info_gain;
    for (const EvalPoint& p : points) {
      const auto it = p.attributes.find(score.issue);
      const std::string option = it == p.attributes.end() ? "<unset>" : it->second;
      s.groups[option].push_back(p.id);
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dslayer::analysis
