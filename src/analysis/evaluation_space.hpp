// Evaluation-space analysis.
//
// Section 2.2 of the paper argues that generalization hierarchies "should
// be based on [the design issues'] impact on the figures of merit of
// interest — this will allow for a coherent organization of designs,
// reflecting their actual proximity in the evaluation space", and shows the
// IDCT cores discriminated into the clusters {1,2,5} and {3,4} (Fig. 3).
//
// This module provides the machinery to do that systematically:
//  * dominance / Pareto fronts over arbitrary minimized metrics (used to
//    recognize inferior solutions, the subject of CC4-style constraints);
//  * complete-linkage agglomerative clustering over normalized metrics,
//    with silhouette-based selection of the cluster count;
//  * ranking of candidate design issues by how well their options explain
//    an observed clustering (normalized information gain) — the basis for
//    choosing which issue to generalize at each hierarchy level.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace dslayer::analysis {

/// One design point in the evaluation space: named metrics (all minimized,
/// e.g. area / delay / power) plus categorical attributes (design-issue
/// options, e.g. "FabricationTechnology" -> "0.35um").
struct EvalPoint {
  std::string id;
  std::map<std::string, double> metrics;
  std::map<std::string, std::string> attributes;

  /// Metric value; throws PreconditionError if absent.
  double metric(const std::string& name) const;
};

/// True if a is at least as good as b on every listed metric and strictly
/// better on at least one (all metrics minimized).
bool dominates(const EvalPoint& a, const EvalPoint& b, const std::vector<std::string>& metrics);

/// Indices of the non-dominated points.
std::vector<std::size_t> pareto_front(const std::vector<EvalPoint>& points,
                                      const std::vector<std::string>& metrics);

/// A flat clustering of the points.
struct Clustering {
  std::vector<int> assignment;  ///< cluster id per point, 0-based
  int cluster_count = 0;
};

/// Complete-linkage agglomerative clustering into exactly k clusters over
/// min-max normalized metrics. Requires 1 <= k <= points.size().
Clustering cluster_k(const std::vector<EvalPoint>& points, const std::vector<std::string>& metrics,
                     int k);

/// Mean silhouette width of a clustering (-1..1; higher = better
/// separated). Requires at least 2 clusters and 2 points.
double silhouette(const std::vector<EvalPoint>& points, const std::vector<std::string>& metrics,
                  const Clustering& clustering);

/// Clusters with k chosen in [2, max_k] by maximum silhouette.
Clustering cluster_auto(const std::vector<EvalPoint>& points,
                        const std::vector<std::string>& metrics, int max_k);

/// How well a categorical attribute explains a clustering.
struct IssueScore {
  std::string issue;
  double info_gain = 0.0;  ///< mutual information, normalized to [0, 1]
};

/// Ranks every attribute appearing in the points by normalized information
/// gain against the clustering, descending — the issue to generalize first
/// is the top-ranked one (Section 2.2's organizing principle).
std::vector<IssueScore> rank_issues(const std::vector<EvalPoint>& points,
                                    const Clustering& clustering);

/// A suggested level of a generalization hierarchy: split by `issue`, whose
/// options partition the points into the listed groups.
struct HierarchySuggestion {
  std::string issue;
  double info_gain = 0.0;
  std::map<std::string, std::vector<std::string>> groups;  ///< option -> point ids
};

/// End-to-end Section 2.2 procedure: cluster the evaluation space, rank the
/// issues, and propose the best-explaining issue as the generalized issue
/// for this level. Returns nothing if no attribute has positive gain.
std::vector<HierarchySuggestion> suggest_hierarchy(const std::vector<EvalPoint>& points,
                                                   const std::vector<std::string>& metrics,
                                                   int max_k);

}  // namespace dslayer::analysis
