#include "bigint/biguint.hpp"

#include <algorithm>
#include <bit>
#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::bigint {

namespace {

using Limb = BigUint::Limb;
constexpr unsigned kLimbBits = BigUint::kLimbBits;
constexpr std::uint64_t kLimbBase = 1ULL << kLimbBits;

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

BigUint::BigUint(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<Limb>(v & 0xFFFFFFFFu));
  if (v >> kLimbBits) limbs_.push_back(static_cast<Limb>(v >> kLimbBits));
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_limbs(std::span<const Limb> limbs) {
  BigUint out;
  out.limbs_.assign(limbs.begin(), limbs.end());
  out.normalize();
  return out;
}

BigUint BigUint::from_dec(std::string_view s) {
  s = trim(s);
  if (s.empty()) throw ArithmeticError("empty decimal literal");
  BigUint out;
  for (char c : s) {
    if (c < '0' || c > '9') {
      throw ArithmeticError(cat("bad decimal digit '", c, "'"));
    }
    // out = out * 10 + digit, done limb-wise to avoid a full multiply.
    std::uint64_t carry = static_cast<std::uint64_t>(c - '0');
    for (auto& limb : out.limbs_) {
      const std::uint64_t acc = static_cast<std::uint64_t>(limb) * 10ULL + carry;
      limb = static_cast<Limb>(acc & 0xFFFFFFFFu);
      carry = acc >> kLimbBits;
    }
    if (carry != 0) out.limbs_.push_back(static_cast<Limb>(carry));
  }
  return out;
}

BigUint BigUint::from_hex(std::string_view s) {
  s = trim(s);
  if (starts_with(s, "0x") || starts_with(s, "0X")) s.remove_prefix(2);
  if (s.empty()) throw ArithmeticError("empty hex literal");
  BigUint out;
  out.limbs_.assign((s.size() + 7) / 8, 0);
  unsigned bit = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const int d = hex_digit(s[s.size() - 1 - i]);
    if (d < 0) throw ArithmeticError(cat("bad hex digit '", s[s.size() - 1 - i], "'"));
    out.limbs_[bit / kLimbBits] |= static_cast<Limb>(d) << (bit % kLimbBits);
    bit += 4;
  }
  out.normalize();
  return out;
}

BigUint BigUint::random_bits(Rng& rng, unsigned bits) {
  DSLAYER_REQUIRE(bits >= 1, "random_bits needs bits >= 1");
  BigUint out;
  const std::size_t n = (bits + kLimbBits - 1) / kLimbBits;
  out.limbs_.resize(n);
  for (auto& limb : out.limbs_) limb = static_cast<Limb>(rng.next_u64());
  const unsigned top = (bits - 1) % kLimbBits;  // bit index of the MSB in the top limb
  out.limbs_.back() &= (top == kLimbBits - 1) ? ~Limb{0} : ((Limb{1} << (top + 1)) - 1);
  out.limbs_.back() |= Limb{1} << top;  // force exact bit length
  return out;
}

BigUint BigUint::random_below(Rng& rng, const BigUint& bound) {
  DSLAYER_REQUIRE(!bound.is_zero(), "bound must be positive");
  const unsigned bits = bound.bit_length();
  // Rejection sampling over [0, 2^bits); expected < 2 iterations.
  while (true) {
    BigUint candidate;
    const std::size_t n = (bits + kLimbBits - 1) / kLimbBits;
    candidate.limbs_.resize(n);
    for (auto& limb : candidate.limbs_) limb = static_cast<Limb>(rng.next_u64());
    const unsigned excess = static_cast<unsigned>(n * kLimbBits) - bits;
    if (excess > 0) candidate.limbs_.back() >>= excess;
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

unsigned BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  const Limb top = limbs_.back();
  const unsigned top_bits = kLimbBits - static_cast<unsigned>(std::countl_zero(top));
  return static_cast<unsigned>((limbs_.size() - 1) * kLimbBits) + top_bits;
}

bool BigUint::bit(unsigned i) const {
  const std::size_t word = i / kLimbBits;
  if (word >= limbs_.size()) return false;
  return (limbs_[word] >> (i % kLimbBits)) & 1u;
}

std::uint64_t BigUint::to_u64() const {
  if (limbs_.size() > 2) throw ArithmeticError("value does not fit in uint64");
  std::uint64_t v = 0;
  if (limbs_.size() >= 2) v = static_cast<std::uint64_t>(limbs_[1]) << kLimbBits;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

std::string BigUint::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = kLimbBits - 4; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

std::string BigUint::to_dec() const {
  if (limbs_.empty()) return "0";
  std::vector<Limb> work(limbs_);
  std::string out;
  while (!work.empty()) {
    // Divide the limb vector by 1e9, collecting the remainder.
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      const std::uint64_t acc = (rem << kLimbBits) | work[i];
      work[i] = static_cast<Limb>(acc / 1000000000ULL);
      rem = acc % 1000000000ULL;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  std::reverse(out.begin(), out.end());
  return out;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t acc =
        static_cast<std::uint64_t>(limbs_[i]) + (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0) + carry;
    limbs_[i] = static_cast<Limb>(acc & 0xFFFFFFFFu);
    carry = acc >> kLimbBits;
    if (carry == 0 && i >= rhs.limbs_.size()) break;  // no further change possible
  }
  if (carry != 0) limbs_.push_back(static_cast<Limb>(carry));
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  if (*this < rhs) throw ArithmeticError("BigUint subtraction underflow");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t sub = (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0) + borrow;
    const std::uint64_t cur = limbs_[i];
    if (cur >= sub) {
      limbs_[i] = static_cast<Limb>(cur - sub);
      borrow = 0;
      if (i >= rhs.limbs_.size()) break;
    } else {
      limbs_[i] = static_cast<Limb>(cur + kLimbBase - sub);
      borrow = 1;
    }
  }
  normalize();
  return *this;
}

namespace {

/// Schoolbook product of limb spans (the O(n^2) kernel).
std::vector<Limb> schoolbook(std::span<const Limb> a, std::span<const Limb> b) {
  std::vector<Limb> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t acc = ai * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<Limb>(acc & 0xFFFFFFFFu);
      carry = acc >> kLimbBits;
    }
    out[i + b.size()] = static_cast<Limb>(carry);
  }
  return out;
}

/// Limb count below which the Karatsuba recursion bottoms out into the
/// schoolbook kernel (crossover measured with micro_substrates).
constexpr std::size_t kKaratsubaThreshold = 40;

}  // namespace

BigUint karatsuba_mul(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  const std::size_t n = std::max(a.limb_count(), b.limb_count());
  if (n < kKaratsubaThreshold) {
    return BigUint::from_limbs(schoolbook(a.limbs(), b.limbs()));
  }
  // Split at half the larger operand: x = x1 * W^m + x0.
  const unsigned m = static_cast<unsigned>(n / 2);
  const unsigned shift = m * BigUint::kLimbBits;
  const BigUint a0 = BigUint::from_limbs(
      a.limbs().subspan(0, std::min<std::size_t>(m, a.limb_count())));
  const BigUint a1 = a >> shift;
  const BigUint b0 = BigUint::from_limbs(
      b.limbs().subspan(0, std::min<std::size_t>(m, b.limb_count())));
  const BigUint b1 = b >> shift;

  // z2 = a1*b1, z0 = a0*b0, z1 = (a0+a1)(b0+b1) - z2 - z0.
  const BigUint z2 = karatsuba_mul(a1, b1);
  const BigUint z0 = karatsuba_mul(a0, b0);
  BigUint z1 = karatsuba_mul(a0 + a1, b0 + b1);
  z1 -= z2;
  z1 -= z0;

  BigUint result = z2 << (2 * shift);
  result += z1 << shift;
  result += z0;
  return result;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  if (std::max(a.limbs_.size(), b.limbs_.size()) >= kKaratsubaThreshold) {
    return karatsuba_mul(a, b);
  }
  BigUint out;
  out.limbs_ = schoolbook(a.limbs_, b.limbs_);
  out.normalize();
  return out;
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUint& BigUint::operator<<=(unsigned bits) {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  const unsigned bit_shift = bits % kLimbBits;
  limbs_.insert(limbs_.begin(), limb_shift, 0);
  if (bit_shift != 0) {
    Limb carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const Limb next_carry = limbs_[i] >> (kLimbBits - bit_shift);
      limbs_[i] = (limbs_[i] << bit_shift) | carry;
      carry = next_carry;
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  return *this;
}

BigUint& BigUint::operator>>=(unsigned bits) {
  if (is_zero() || bits == 0) return *this;
  const unsigned limb_shift = bits / kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(), limbs_.begin() + limb_shift);
  const unsigned bit_shift = bits % kLimbBits;
  if (bit_shift != 0) {
    for (std::size_t i = 0; i + 1 < limbs_.size(); ++i) {
      limbs_[i] = (limbs_[i] >> bit_shift) | (limbs_[i + 1] << (kLimbBits - bit_shift));
    }
    limbs_.back() >>= bit_shift;
  }
  normalize();
  return *this;
}

std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] <=> b.limbs_[i];
  }
  return std::strong_ordering::equal;
}

DivMod divmod(const BigUint& num, const BigUint& den) {
  if (den.is_zero()) throw ArithmeticError("division by zero");
  if (num < den) return {BigUint{}, num};

  // Single-limb divisor: simple short division.
  if (den.limbs_.size() == 1) {
    const std::uint64_t d = den.limbs_[0];
    BigUint q;
    q.limbs_.assign(num.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = num.limbs_.size(); i-- > 0;) {
      const std::uint64_t acc = (rem << kLimbBits) | num.limbs_[i];
      q.limbs_[i] = static_cast<Limb>(acc / d);
      rem = acc % d;
    }
    q.normalize();
    return {std::move(q), BigUint(rem)};
  }

  // Knuth TAOCP vol. 2, Algorithm D. Normalize so the top divisor limb has
  // its MSB set, estimate each quotient digit from the top three dividend
  // limbs, then correct (the estimate is off by at most 2).
  const unsigned shift = std::countl_zero(den.limbs_.back());
  const BigUint u = num << shift;
  const BigUint v = den << shift;
  const std::size_t n = v.limbs_.size();
  const std::size_t m = u.limbs_.size() - n;

  std::vector<Limb> un(u.limbs_);
  un.push_back(0);  // u has m+n+1 limbs during the loop
  const std::uint64_t v1 = v.limbs_[n - 1];
  const std::uint64_t v2 = v.limbs_[n - 2];

  BigUint q;
  q.limbs_.assign(m + 1, 0);

  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t top2 = (static_cast<std::uint64_t>(un[j + n]) << kLimbBits) | un[j + n - 1];
    std::uint64_t qhat = top2 / v1;
    std::uint64_t rhat = top2 % v1;
    while (qhat >= kLimbBase ||
           qhat * v2 > ((rhat << kLimbBits) | un[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >= kLimbBase) break;
    }
    // Multiply-subtract: un[j..j+n] -= qhat * v.
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v.limbs_[i] + carry;
      carry = p >> kLimbBits;
      const std::int64_t t =
          static_cast<std::int64_t>(un[i + j]) - borrow - static_cast<std::int64_t>(p & 0xFFFFFFFFu);
      un[i + j] = static_cast<Limb>(t & 0xFFFFFFFF);
      borrow = (t < 0) ? 1 : 0;
    }
    const std::int64_t t =
        static_cast<std::int64_t>(un[j + n]) - borrow - static_cast<std::int64_t>(carry);
    un[j + n] = static_cast<Limb>(t & 0xFFFFFFFF);

    if (t < 0) {
      // qhat was one too large: add v back.
      --qhat;
      std::uint64_t c = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t s = static_cast<std::uint64_t>(un[i + j]) + v.limbs_[i] + c;
        un[i + j] = static_cast<Limb>(s & 0xFFFFFFFFu);
        c = s >> kLimbBits;
      }
      un[j + n] = static_cast<Limb>(un[j + n] + c);
    }
    q.limbs_[j] = static_cast<Limb>(qhat);
  }

  q.normalize();
  BigUint r = BigUint::from_limbs(std::span<const Limb>(un.data(), n));
  r >>= shift;
  return {std::move(q), std::move(r)};
}

BigUint gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint mod_inverse(const BigUint& a, const BigUint& m) {
  DSLAYER_REQUIRE(!m.is_zero(), "modulus must be positive");
  // Extended Euclid over non-negative values: track coefficients of `a`
  // modulo m as (sign, magnitude) pairs to stay within unsigned arithmetic.
  BigUint r0 = m, r1 = a % m;
  BigUint t0{}, t1{1};
  bool neg0 = false, neg1 = false;
  while (!r1.is_zero()) {
    const auto [q, r2] = divmod(r0, r1);
    // t2 = t0 - q * t1, with explicit sign tracking.
    BigUint qt = q * t1;
    BigUint t2;
    bool neg2;
    if (neg0 == !neg1) {  // t0 and -q*t1 have the same sign
      t2 = t0 + qt;
      neg2 = neg0;
    } else if (t0 >= qt) {
      t2 = t0 - qt;
      neg2 = neg0;
    } else {
      t2 = qt - t0;
      neg2 = !neg0;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    neg0 = neg1;
    t1 = std::move(t2);
    neg1 = neg2;
  }
  if (!(r0 == BigUint{1})) throw ArithmeticError("mod_inverse: arguments are not coprime");
  if (neg0) return m - (t0 % m);
  return t0 % m;
}

BigUint pow_u64(const BigUint& a, std::uint64_t e) {
  BigUint result{1};
  BigUint base = a;
  while (e != 0) {
    if (e & 1) result *= base;
    base *= base;
    e >>= 1;
  }
  return result;
}

}  // namespace dslayer::bigint
