#include "bigint/montgomery_variants.hpp"

#include <vector>

#include "support/error.hpp"

namespace dslayer::bigint {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask = 0xFFFFFFFFULL;

u32 lo32(u64 x) { return static_cast<u32>(x & kMask); }
u32 hi32(u64 x) { return static_cast<u32>(x >> 32); }

/// True if the s-word value x >= the s-word value y.
bool geq(const u32* x, const u32* y, std::size_t s) {
  for (std::size_t i = s; i-- > 0;) {
    if (x[i] != y[i]) return x[i] > y[i];
  }
  return true;
}

/// x -= y over s words; returns the borrow out (0/1).
u32 sub_words(u32* x, const u32* y, std::size_t s) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < s; ++i) {
    const u64 d = static_cast<u64>(x[i]) - y[i] - borrow;
    x[i] = lo32(d);
    borrow = (d >> 63) & 1;  // negative iff bit 63 set after wrap
  }
  return static_cast<u32>(borrow);
}

/// Final Montgomery correction: value is t[0..s-1] plus the overflow word
/// `extra` (numerically extra * 2^(32 s)); reduces below m in place.
/// Returns the number of subtractions performed (for op accounting).
unsigned final_reduce(u32* t, u32 extra, const u32* m, std::size_t s) {
  unsigned subs = 0;
  while (extra != 0 || geq(t, m, s)) {
    extra -= sub_words(t, m, s);
    ++subs;
  }
  return subs;
}

void check_inputs(std::span<const u32> a, std::span<const u32> b, std::span<const u32> m,
                  std::span<u32> out) {
  const std::size_t s = m.size();
  DSLAYER_REQUIRE(s >= 1, "modulus must have at least one word");
  DSLAYER_REQUIRE(a.size() == s && b.size() == s && out.size() == s,
                  "operand/output word counts must match the modulus");
  DSLAYER_REQUIRE((m[0] & 1u) != 0, "Montgomery modulus must be odd");
  DSLAYER_REQUIRE(!geq(a.data(), m.data(), s) && !geq(b.data(), m.data(), s),
                  "operands must be reduced below the modulus");
}

/// Operation-count recorder; all methods are no-ops when `c` is null.
struct Meter {
  OpCounts* c;
  void mul(u64 n = 1) const { if (c) c->word_mults += n; }
  void add(u64 n = 1) const { if (c) c->word_adds += n; }
  void ld(u64 n = 1) const { if (c) c->loads += n; }
  void st(u64 n = 1) const { if (c) c->stores += n; }
  void final_subs(unsigned subs, std::size_t s) const {
    if (!c) return;
    // Each subtraction: s word-subtractions with borrow, reading t and m,
    // writing t; the preceding comparison reads both arrays once.
    c->word_adds += (subs + 1) * s;
    c->loads += (2 * subs + 2) * s;
    c->stores += subs * s;
  }
};

}  // namespace

std::string to_string(MontVariant v) {
  switch (v) {
    case MontVariant::kSOS: return "SOS";
    case MontVariant::kCIOS: return "CIOS";
    case MontVariant::kFIOS: return "FIOS";
    case MontVariant::kFIPS: return "FIPS";
    case MontVariant::kCIHS: return "CIHS";
  }
  return "?";
}

u32 mont_word_inverse(u32 m0) {
  DSLAYER_REQUIRE((m0 & 1u) != 0, "word inverse requires an odd word");
  // Newton-Hensel: x_{k+1} = x_k (2 - m0 x_k); doubles correct bits each step.
  u32 x = m0;  // 3 correct bits to start (m0 * m0 ≡ 1 mod 8 for odd m0)
  for (int i = 0; i < 5; ++i) x *= 2u - m0 * x;
  return ~x + 1u;  // -(m0^-1) mod 2^32
}

void mont_mul_sos(std::span<const u32> a, std::span<const u32> b, std::span<const u32> m,
                  u32 m_prime, std::span<u32> out, OpCounts* counts) {
  check_inputs(a, b, m, out);
  const std::size_t s = m.size();
  const Meter mt{counts};
  std::vector<u32> t(2 * s + 1, 0);

  // Phase 1: t = a * b, operand scanning.
  for (std::size_t i = 0; i < s; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const u64 acc = static_cast<u64>(a[j]) * b[i] + t[i + j] + carry;
      t[i + j] = lo32(acc);
      carry = hi32(acc);
      mt.mul(); mt.add(2); mt.ld(3); mt.st(1);
    }
    t[i + s] = static_cast<u32>(carry);
    mt.st(1);
  }

  // Phase 2: reduce — add (t[i] * m' mod W) * m at offset i, for each i.
  for (std::size_t i = 0; i < s; ++i) {
    const u32 mi = static_cast<u32>(t[i] * m_prime);
    mt.mul(); mt.ld(1);
    u64 carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const u64 acc = static_cast<u64>(mi) * m[j] + t[i + j] + carry;
      t[i + j] = lo32(acc);
      carry = hi32(acc);
      mt.mul(); mt.add(2); mt.ld(2); mt.st(1);
    }
    // Propagate the carry out of the reduced window.
    for (std::size_t k = i + s; carry != 0; ++k) {
      const u64 acc = static_cast<u64>(t[k]) + carry;
      t[k] = lo32(acc);
      carry = hi32(acc);
      mt.add(1); mt.ld(1); mt.st(1);
    }
  }

  // Result is t[s .. 2s] (one possible overflow word).
  for (std::size_t i = 0; i < s; ++i) out[i] = t[s + i];
  mt.ld(s); mt.st(s);
  const unsigned subs = final_reduce(out.data(), t[2 * s], m.data(), s);
  mt.final_subs(subs, s);
}

void mont_mul_cios(std::span<const u32> a, std::span<const u32> b, std::span<const u32> m,
                   u32 m_prime, std::span<u32> out, OpCounts* counts) {
  check_inputs(a, b, m, out);
  const std::size_t s = m.size();
  const Meter mt{counts};
  std::vector<u32> t(s + 2, 0);

  for (std::size_t i = 0; i < s; ++i) {
    // Multiply step: t += a * b[i].
    u64 carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const u64 acc = static_cast<u64>(a[j]) * b[i] + t[j] + carry;
      t[j] = lo32(acc);
      carry = hi32(acc);
      mt.mul(); mt.add(2); mt.ld(3); mt.st(1);
    }
    u64 acc = static_cast<u64>(t[s]) + carry;
    t[s] = lo32(acc);
    t[s + 1] = hi32(acc);
    mt.add(1); mt.ld(1); mt.st(2);

    // Reduce step: make t divisible by W and shift one word down.
    const u32 mi = static_cast<u32>(t[0] * m_prime);
    mt.mul(); mt.ld(1);
    acc = static_cast<u64>(mi) * m[0] + t[0];
    carry = hi32(acc);  // low word is zero by construction of mi
    mt.mul(); mt.add(1); mt.ld(2);
    for (std::size_t j = 1; j < s; ++j) {
      acc = static_cast<u64>(mi) * m[j] + t[j] + carry;
      t[j - 1] = lo32(acc);
      carry = hi32(acc);
      mt.mul(); mt.add(2); mt.ld(2); mt.st(1);
    }
    acc = static_cast<u64>(t[s]) + carry;
    t[s - 1] = lo32(acc);
    t[s] = t[s + 1] + hi32(acc);
    mt.add(2); mt.ld(2); mt.st(2);
  }

  for (std::size_t i = 0; i < s; ++i) out[i] = t[i];
  mt.ld(s); mt.st(s);
  const unsigned subs = final_reduce(out.data(), t[s], m.data(), s);
  mt.final_subs(subs, s);
}

void mont_mul_fios(std::span<const u32> a, std::span<const u32> b, std::span<const u32> m,
                   u32 m_prime, std::span<u32> out, OpCounts* counts) {
  check_inputs(a, b, m, out);
  const std::size_t s = m.size();
  const Meter mt{counts};
  std::vector<u32> t(s + 1, 0);

  for (std::size_t i = 0; i < s; ++i) {
    // Head: compute the quotient digit from the first fused column.
    u64 acc = static_cast<u64>(a[0]) * b[i] + t[0];
    u64 c1 = hi32(acc);
    const u32 s0 = lo32(acc);
    mt.mul(); mt.add(1); mt.ld(3);
    const u32 mi = s0 * m_prime;
    mt.mul();
    u64 acc2 = static_cast<u64>(mi) * m[0] + s0;
    u64 c2 = hi32(acc2);  // low word zero
    mt.mul(); mt.add(1); mt.ld(1);

    // Fused inner loop: one pass does both the multiply and the reduce.
    for (std::size_t j = 1; j < s; ++j) {
      acc = static_cast<u64>(a[j]) * b[i] + t[j] + c1;
      c1 = hi32(acc);
      mt.mul(); mt.add(2); mt.ld(3);
      acc2 = static_cast<u64>(mi) * m[j] + lo32(acc) + c2;
      t[j - 1] = lo32(acc2);
      c2 = hi32(acc2);
      mt.mul(); mt.add(2); mt.ld(1); mt.st(1);
    }
    const u64 tail = static_cast<u64>(t[s]) + c1 + c2;
    t[s - 1] = lo32(tail);
    t[s] = hi32(tail);
    mt.add(2); mt.ld(1); mt.st(2);
  }

  for (std::size_t i = 0; i < s; ++i) out[i] = t[i];
  mt.ld(s); mt.st(s);
  const unsigned subs = final_reduce(out.data(), t[s], m.data(), s);
  mt.final_subs(subs, s);
}

void mont_mul_fips(std::span<const u32> a, std::span<const u32> b, std::span<const u32> m,
                   u32 m_prime, std::span<u32> out, OpCounts* counts) {
  check_inputs(a, b, m, out);
  const std::size_t s = m.size();
  const Meter mt{counts};
  std::vector<u32> q(s, 0);
  u128 acc = 0;  // column accumulator; max 2s products of < 2^64 fits easily

  // Low columns 0 .. s-1: accumulate a*b and q*m contributions, then fix the
  // column with a fresh quotient digit.
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      acc += static_cast<u64>(a[j]) * b[i - j];
      mt.mul(); mt.add(2); mt.ld(2);
    }
    for (std::size_t j = 0; j < i; ++j) {
      acc += static_cast<u64>(q[j]) * m[i - j];
      mt.mul(); mt.add(2); mt.ld(2);
    }
    q[i] = static_cast<u32>(static_cast<u64>(acc)) * m_prime;
    mt.mul(); mt.st(1);
    acc += static_cast<u64>(q[i]) * m[0];
    mt.mul(); mt.add(2); mt.ld(1);
    acc >>= 32;  // low word is zero by construction
  }

  // High columns s .. 2s-1 emit the result words.
  for (std::size_t i = s; i < 2 * s; ++i) {
    for (std::size_t j = i - s + 1; j < s; ++j) {
      acc += static_cast<u64>(a[j]) * b[i - j];
      acc += static_cast<u64>(q[j]) * m[i - j];
      mt.mul(2); mt.add(4); mt.ld(4);
    }
    out[i - s] = static_cast<u32>(static_cast<u64>(acc));
    mt.st(1);
    acc >>= 32;
  }

  const unsigned subs = final_reduce(out.data(), static_cast<u32>(static_cast<u64>(acc)),
                                     m.data(), s);
  mt.final_subs(subs, s);
}

void mont_mul_cihs(std::span<const u32> a, std::span<const u32> b, std::span<const u32> m,
                   u32 m_prime, std::span<u32> out, OpCounts* counts) {
  check_inputs(a, b, m, out);
  const std::size_t s = m.size();
  const Meter mt{counts};

  // Phase 1 (coarse): full product by operand scanning.
  std::vector<u32> t(2 * s, 0);
  for (std::size_t i = 0; i < s; ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < s; ++j) {
      const u64 acc = static_cast<u64>(a[j]) * b[i] + t[i + j] + carry;
      t[i + j] = lo32(acc);
      carry = hi32(acc);
      mt.mul(); mt.add(2); mt.ld(3); mt.st(1);
    }
    t[i + s] = static_cast<u32>(carry);
    mt.st(1);
  }

  // Phase 2 (hybrid): reduction by product scanning over the stored product.
  std::vector<u32> q(s, 0);
  u128 acc = 0;
  for (std::size_t i = 0; i < s; ++i) {
    acc += t[i];
    mt.add(1); mt.ld(1);
    for (std::size_t j = 0; j < i; ++j) {
      acc += static_cast<u64>(q[j]) * m[i - j];
      mt.mul(); mt.add(2); mt.ld(2);
    }
    q[i] = static_cast<u32>(static_cast<u64>(acc)) * m_prime;
    mt.mul(); mt.st(1);
    acc += static_cast<u64>(q[i]) * m[0];
    mt.mul(); mt.add(2); mt.ld(1);
    acc >>= 32;
  }
  for (std::size_t i = s; i < 2 * s; ++i) {
    acc += t[i];
    mt.add(1); mt.ld(1);
    for (std::size_t j = i - s + 1; j < s; ++j) {
      acc += static_cast<u64>(q[j]) * m[i - j];
      mt.mul(); mt.add(2); mt.ld(2);
    }
    out[i - s] = static_cast<u32>(static_cast<u64>(acc));
    mt.st(1);
    acc >>= 32;
  }

  const unsigned subs = final_reduce(out.data(), static_cast<u32>(static_cast<u64>(acc)),
                                     m.data(), s);
  mt.final_subs(subs, s);
}

void mont_mul(MontVariant variant, std::span<const u32> a, std::span<const u32> b,
              std::span<const u32> m, u32 m_prime, std::span<u32> out, OpCounts* counts) {
  switch (variant) {
    case MontVariant::kSOS: return mont_mul_sos(a, b, m, m_prime, out, counts);
    case MontVariant::kCIOS: return mont_mul_cios(a, b, m, m_prime, out, counts);
    case MontVariant::kFIOS: return mont_mul_fios(a, b, m, m_prime, out, counts);
    case MontVariant::kFIPS: return mont_mul_fips(a, b, m, m_prime, out, counts);
    case MontVariant::kCIHS: return mont_mul_cihs(a, b, m, m_prime, out, counts);
  }
  throw PreconditionError("unknown Montgomery variant");
}

}  // namespace dslayer::bigint
