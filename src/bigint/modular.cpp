#include "bigint/modular.hpp"
#include <bit>
#include <cmath>
#include <vector>

#include "bigint/montgomery_variants.hpp"
#include "support/error.hpp"

namespace dslayer::bigint {

BigUint mod_add(const BigUint& a, const BigUint& b, const BigUint& m) {
  DSLAYER_REQUIRE(a < m && b < m, "mod_add inputs must be reduced");
  BigUint r = a + b;
  if (r >= m) r -= m;
  return r;
}

BigUint mod_sub(const BigUint& a, const BigUint& b, const BigUint& m) {
  DSLAYER_REQUIRE(a < m && b < m, "mod_sub inputs must be reduced");
  if (a >= b) return a - b;
  return (a + m) - b;
}

BigUint mod_mul_paper_pencil(const BigUint& a, const BigUint& b, const BigUint& m) {
  DSLAYER_REQUIRE(!m.is_zero(), "modulus must be positive");
  return (a * b) % m;
}

BigUint mod_mul_brickell(const BigUint& a, const BigUint& b, const BigUint& m) {
  return mod_mul_brickell_radix(a, b, m, 2);
}

BigUint mod_mul_brickell_radix(const BigUint& a, const BigUint& b, const BigUint& m,
                               unsigned radix) {
  DSLAYER_REQUIRE(!m.is_zero(), "modulus must be positive");
  DSLAYER_REQUIRE(radix >= 2 && (radix & (radix - 1)) == 0, "radix must be a power of two >= 2");
  DSLAYER_REQUIRE(a < m && b < m, "operands must be reduced");
  const unsigned digit_bits = static_cast<unsigned>(std::countr_zero(radix));

  // MSB-first digit scan of `a`: R <- R*r + a_i*b, reduced below m after
  // every step (at most `radix` conditional subtractions, matching the
  // hardware's reduce-per-partial-product structure).
  const unsigned bits = a.bit_length();
  const unsigned digits = bits == 0 ? 0 : (bits + digit_bits - 1) / digit_bits;
  BigUint acc;
  for (unsigned d = digits; d-- > 0;) {
    acc <<= digit_bits;
    std::uint64_t digit = 0;
    for (unsigned k = digit_bits; k-- > 0;) {
      digit = (digit << 1) | (a.bit(d * digit_bits + k) ? 1u : 0u);
    }
    if (digit != 0) acc += b * BigUint(digit);
    // acc < m*r + digit*m <= m * 2r, so < 2r subtractions suffice; in
    // practice the quotient estimate loop below runs `radix` times worst
    // case. Use divmod only if the simple loop would be long.
    while (acc >= m) {
      // For small radices a subtract loop is exactly what the hardware does.
      if (radix <= 16) {
        acc -= m;
      } else {
        acc = acc % m;
      }
    }
  }
  return acc;
}

BigUint mod_exp(const BigUint& base, const BigUint& exp, const BigUint& m, const ModMulFn& mul) {
  DSLAYER_REQUIRE(!m.is_zero(), "modulus must be positive");
  if (m == BigUint{1}) return BigUint{};
  BigUint result{1};
  const unsigned bits = exp.bit_length();
  for (unsigned i = bits; i-- > 0;) {
    result = mul(result, result);
    if (exp.bit(i)) result = mul(result, base);
  }
  return result;
}

BigUint mod_exp_brickell(const BigUint& base, const BigUint& exp, const BigUint& m) {
  const BigUint reduced = base % m;
  return mod_exp(reduced, exp, m,
                 [&m](const BigUint& x, const BigUint& y) { return mod_mul_brickell(x, y, m); });
}

MontgomeryContext::MontgomeryContext(BigUint m) : m_(std::move(m)) {
  if (m_.is_zero()) throw ArithmeticError("Montgomery modulus must be positive");
  if (!m_.is_odd()) {
    throw ArithmeticError("Montgomery modulus must be odd (consistency constraint CC1)");
  }
  s_ = m_.limb_count();
  m_prime_ = mont_word_inverse(m_.limb(0));
  BigUint r{1};
  r <<= static_cast<unsigned>(s_ * BigUint::kLimbBits);
  r_mod_m_ = r % m_;
  r2_mod_m_ = (r_mod_m_ * r_mod_m_) % m_;
}

BigUint MontgomeryContext::to_mont(const BigUint& x) const {
  return mont_mul(x % m_, r2_mod_m_);
}

BigUint MontgomeryContext::from_mont(const BigUint& x) const {
  return mont_mul(x, BigUint{1});
}

BigUint MontgomeryContext::mont_mul(const BigUint& a, const BigUint& b) const {
  std::vector<std::uint32_t> av(s_), bv(s_), mv(s_), out(s_);
  for (std::size_t i = 0; i < s_; ++i) {
    av[i] = a.limb(i);
    bv[i] = b.limb(i);
    mv[i] = m_.limb(i);
  }
  mont_mul_cios(av, bv, mv, m_prime_, out, nullptr);
  return BigUint::from_limbs(out);
}

BigUint MontgomeryContext::mod_exp(const BigUint& base, const BigUint& exp) const {
  BigUint acc = r_mod_m_;  // 1 in the Montgomery domain
  const BigUint base_m = to_mont(base);
  const unsigned bits = exp.bit_length();
  for (unsigned i = bits; i-- > 0;) {
    acc = mont_mul(acc, acc);
    if (exp.bit(i)) acc = mont_mul(acc, base_m);
  }
  return from_mont(acc);
}

BigUint MontgomeryContext::mod_exp_mary(const BigUint& base, const BigUint& exp,
                                        unsigned window_bits) const {
  DSLAYER_REQUIRE(window_bits >= 1 && window_bits <= 8, "window must be 1..8 bits");
  const unsigned table_size = 1u << window_bits;

  // Precompute base^0 .. base^(2^w - 1) in the Montgomery domain.
  std::vector<BigUint> table(table_size);
  table[0] = r_mod_m_;  // 1~
  if (table_size > 1) table[1] = to_mont(base);
  for (unsigned i = 2; i < table_size; ++i) table[i] = mont_mul(table[i - 1], table[1]);

  // MSB-first fixed windows: w squarings then one table multiplication.
  const unsigned bits = exp.bit_length();
  const unsigned windows = (bits + window_bits - 1) / window_bits;
  BigUint acc = r_mod_m_;
  for (unsigned w = windows; w-- > 0;) {
    for (unsigned s = 0; s < window_bits; ++s) acc = mont_mul(acc, acc);
    unsigned digit = 0;
    for (unsigned k = window_bits; k-- > 0;) {
      digit = (digit << 1) | (exp.bit(w * window_bits + k) ? 1u : 0u);
    }
    if (digit != 0) acc = mont_mul(acc, table[digit]);
  }
  return from_mont(acc);
}

double MontgomeryContext::mary_multiplications(unsigned exp_bits, unsigned window_bits) {
  DSLAYER_REQUIRE(window_bits >= 1 && window_bits <= 8, "window must be 1..8 bits");
  const double table = static_cast<double>((1u << window_bits)) - 2.0;  // precompute
  const double squarings = static_cast<double>(exp_bits);
  const double windows = std::ceil(static_cast<double>(exp_bits) / window_bits);
  const double nonzero = windows * (1.0 - 1.0 / static_cast<double>(1u << window_bits));
  return std::max(table, 0.0) + squarings + nonzero + 2.0;  // +2 domain conversions
}

BigUint mod_mul_montgomery(const BigUint& a, const BigUint& b, const BigUint& m) {
  MontgomeryContext ctx(m);
  return ctx.from_mont(ctx.mont_mul(ctx.to_mont(a), ctx.to_mont(b)));
}

}  // namespace dslayer::bigint
