// Modular arithmetic algorithms of the paper's cryptography case study
// (Section 5.1.1):
//
//  * "Paper and Pencil": full multiply followed by a mod-M reduction. The
//    paper notes it is usually not used (large partial products / carry
//    ripple) and eliminates it as an inferior solution.
//  * Brickell: MSB-first interleaved multiplication with a reduction at
//    every partial product. Works for any modulus.
//  * Montgomery (Fig. 10): LSB-first interleaved with quotient digits
//    computed from the precomputed -M^-1 mod r; requires an ODD modulus
//    (consistency constraint CC1 in Fig. 13).
//
// Modular exponentiation (M^E mod N, the basic operation of RSA-style
// digital signatures) is provided on top of a pluggable modular multiplier
// so all algorithm variants can drive it.
#pragma once

#include <cstdint>
#include <functional>

#include "bigint/biguint.hpp"

namespace dslayer::bigint {

/// (a + b) mod m; inputs must already be reduced.
BigUint mod_add(const BigUint& a, const BigUint& b, const BigUint& m);

/// (a - b) mod m; inputs must already be reduced.
BigUint mod_sub(const BigUint& a, const BigUint& b, const BigUint& m);

/// "Paper and pencil": (a * b) mod m via full product and division.
BigUint mod_mul_paper_pencil(const BigUint& a, const BigUint& b, const BigUint& m);

/// Brickell-style MSB-first interleaved modular multiplication.
/// Processes multiplier bits most-significant first, reducing after every
/// shift-and-add step so intermediate values stay below 2m. Requires
/// a, b < m and m > 0; works for even moduli (unlike Montgomery).
BigUint mod_mul_brickell(const BigUint& a, const BigUint& b, const BigUint& m);

/// Radix-r generalization of the Brickell scheme: consumes log2(radix) bits
/// per iteration (radix must be a power of two, >= 2).
BigUint mod_mul_brickell_radix(const BigUint& a, const BigUint& b, const BigUint& m,
                               unsigned radix);

/// A modular multiplier: f(a, b) = a * b mod m for a fixed m.
using ModMulFn = std::function<BigUint(const BigUint&, const BigUint&)>;

/// Left-to-right binary modular exponentiation using `mul`.
/// Computes base^exp mod m where `mul` multiplies modulo m.
BigUint mod_exp(const BigUint& base, const BigUint& exp, const BigUint& m, const ModMulFn& mul);

/// Convenience: mod_exp with Brickell multiplication (any modulus).
BigUint mod_exp_brickell(const BigUint& base, const BigUint& exp, const BigUint& m);

/// Montgomery arithmetic context for an odd modulus m, R = 2^(32*s) where s
/// is the limb count of m. Implements Fig. 10 of the paper (word-level,
/// radix 2^32) with the pre-computation (line 1: r2) and the conditional
/// final subtraction (lines 5-6).
class MontgomeryContext {
 public:
  /// Throws ArithmeticError if m is zero or even (CC1: modulo must be odd).
  explicit MontgomeryContext(BigUint m);

  const BigUint& modulus() const { return m_; }

  /// Number of 32-bit words s (R = 2^(32 s)).
  std::size_t word_count() const { return s_; }

  /// -m^-1 mod 2^32, the word-level quotient-digit constant (Fig. 10 line 4).
  std::uint32_t m_prime() const { return m_prime_; }

  /// R mod m and R^2 mod m (used for domain conversion).
  const BigUint& r_mod_m() const { return r_mod_m_; }
  const BigUint& r2_mod_m() const { return r2_mod_m_; }

  /// Maps x -> x * R mod m.
  BigUint to_mont(const BigUint& x) const;

  /// Maps x~ -> x~ * R^-1 mod m.
  BigUint from_mont(const BigUint& x) const;

  /// Montgomery product: a~ * b~ * R^-1 mod m (CIOS method). Inputs < m.
  BigUint mont_mul(const BigUint& a, const BigUint& b) const;

  /// base^exp mod m entirely in the Montgomery domain (left-to-right
  /// binary square-and-multiply).
  BigUint mod_exp(const BigUint& base, const BigUint& exp) const;

  /// m-ary (fixed-window) exponentiation: precomputes base^0..base^(2^w-1)
  /// and consumes `window_bits` exponent bits per table multiplication.
  /// Trades 2^w - 2 precomputation multiplications (and table storage in a
  /// hardware realization) for fewer per-bit multiplications — the
  /// "ExponentiationMethod" design issue of the Exponentiator CDO.
  /// Requires 1 <= window_bits <= 8.
  BigUint mod_exp_mary(const BigUint& base, const BigUint& exp, unsigned window_bits) const;

  /// Expected Montgomery-multiplication count of the m-ary method for a
  /// random exp_bits-bit exponent (window_bits = 1 gives the binary
  /// method's 1.5 * bits + O(1)). Used by the exponentiator design models.
  static double mary_multiplications(unsigned exp_bits, unsigned window_bits);

 private:
  BigUint m_;
  std::size_t s_;
  std::uint32_t m_prime_;
  BigUint r_mod_m_;
  BigUint r2_mod_m_;
};

/// Convenience: (a * b) mod m through the Montgomery domain (handles the
/// to/from conversions; mainly for tests and estimator calibration).
BigUint mod_mul_montgomery(const BigUint& a, const BigUint& b, const BigUint& m);

}  // namespace dslayer::bigint
