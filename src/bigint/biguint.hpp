// Arbitrary-precision unsigned integers.
//
// The cryptography case study of the paper (Section 5) operates on integers
// "with values up to 2^1000"; this class is the functional substrate for all
// modular-arithmetic algorithms (paper-and-pencil, Brickell, Montgomery) and
// the reference against which the RTL multiplier simulator is validated.
//
// Representation: little-endian vector of 32-bit limbs, normalized (no
// trailing zero limbs; the value zero is the empty vector). 32-bit limbs are
// chosen deliberately: they match the word size of the Pentium-60 software
// cost model (swmodel), so word-operation counts taken from these routines
// transfer directly.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.hpp"

namespace dslayer::bigint {

class BigUint;
struct DivMod;
DivMod divmod(const BigUint& num, const BigUint& den);

class BigUint {
 public:
  using Limb = std::uint32_t;
  static constexpr unsigned kLimbBits = 32;

  /// Zero.
  BigUint() = default;

  /// Value of a machine word.
  explicit BigUint(std::uint64_t v);

  /// Parses a decimal string; throws ArithmeticError on malformed input.
  static BigUint from_dec(std::string_view s);

  /// Parses a hexadecimal string (no 0x prefix); throws on malformed input.
  static BigUint from_hex(std::string_view s);

  /// Builds from little-endian limbs (trailing zeros allowed; normalized).
  static BigUint from_limbs(std::span<const Limb> limbs);

  /// Uniformly random value with exactly `bits` bits (MSB set); bits >= 1.
  static BigUint random_bits(Rng& rng, unsigned bits);

  /// Uniformly random value in [0, bound); bound > 0.
  static BigUint random_below(Rng& rng, const BigUint& bound);

  // -- observers ------------------------------------------------------------

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }

  /// Number of significant limbs.
  std::size_t limb_count() const { return limbs_.size(); }

  /// i-th limb, zero beyond limb_count().
  Limb limb(std::size_t i) const { return i < limbs_.size() ? limbs_[i] : 0; }

  /// All significant limbs, little-endian.
  std::span<const Limb> limbs() const { return limbs_; }

  /// Position of the highest set bit plus one; 0 for the value zero.
  unsigned bit_length() const;

  /// Bit i (0 = LSB).
  bool bit(unsigned i) const;

  /// Value as uint64 (throws if it does not fit).
  std::uint64_t to_u64() const;

  std::string to_dec() const;
  std::string to_hex() const;

  // -- arithmetic -----------------------------------------------------------

  BigUint& operator+=(const BigUint& rhs);
  /// Throws ArithmeticError on underflow (unsigned type).
  BigUint& operator-=(const BigUint& rhs);
  BigUint& operator*=(const BigUint& rhs);
  BigUint& operator<<=(unsigned bits);
  BigUint& operator>>=(unsigned bits);

  friend BigUint operator+(BigUint a, const BigUint& b) { return a += b; }
  friend BigUint operator-(BigUint a, const BigUint& b) { return a -= b; }
  friend BigUint operator*(const BigUint& a, const BigUint& b);
  friend BigUint operator<<(BigUint a, unsigned bits) { return a <<= bits; }
  friend BigUint operator>>(BigUint a, unsigned bits) { return a >>= bits; }

  friend BigUint operator/(const BigUint& a, const BigUint& b);
  friend BigUint operator%(const BigUint& a, const BigUint& b);

  // -- comparison -----------------------------------------------------------

  friend std::strong_ordering operator<=>(const BigUint& a, const BigUint& b);
  friend bool operator==(const BigUint& a, const BigUint& b) = default;

 private:
  void normalize();

  friend DivMod divmod(const BigUint& num, const BigUint& den);

  std::vector<Limb> limbs_;
};

/// Quotient and remainder of a division (divmod throws ArithmeticError on
/// division by zero).
struct DivMod {
  BigUint quotient;
  BigUint remainder;
};

inline BigUint operator/(const BigUint& a, const BigUint& b) { return divmod(a, b).quotient; }
inline BigUint operator%(const BigUint& a, const BigUint& b) { return divmod(a, b).remainder; }

/// Karatsuba multiplication: O(n^1.585) splits for large operands, falling
/// back to the schoolbook kernel below a threshold. operator* dispatches
/// here automatically above ~40 limbs; exposed for tests and benchmarks.
BigUint karatsuba_mul(const BigUint& a, const BigUint& b);

/// Greatest common divisor (binary algorithm).
BigUint gcd(BigUint a, BigUint b);

/// Modular inverse of a mod m; throws ArithmeticError if gcd(a, m) != 1.
BigUint mod_inverse(const BigUint& a, const BigUint& m);

/// a^e for small machine-word exponents (used by tests and value domains).
BigUint pow_u64(const BigUint& a, std::uint64_t e);

}  // namespace dslayer::bigint
