// Word-level Montgomery multiplication variants.
//
// The software cores in the paper's Fig. 6 are C and assembly routines from
// Koc, Acar and Kaliski, "Analyzing and Comparing Montgomery Multiplication
// Algorithms" (IEEE Micro 16(3), 1996): five ways of scheduling the same
// arithmetic — multiplication and reduction either Separated, Coarsely or
// Finely Integrated, scanning by Operand or by Product:
//
//   SOS  - Separated Operand Scanning        (multiply fully, then reduce)
//   CIOS - Coarsely Integrated Operand Scanning (alternate per outer word)
//   FIOS - Finely Integrated Operand Scanning   (fused inner loop)
//   FIPS - Finely Integrated Product Scanning   (column-wise accumulation)
//   CIHS - Coarsely Integrated Hybrid Scanning  (operand-scan multiply,
//          product-scan reduction; reconstruction faithful in spirit — the
//          original listing's exact loop fusion is not reproduced, which
//          only shifts its memory-traffic constant; see DESIGN.md)
//
// All compute MontMul(a, b) = a * b * R^-1 mod m for s-word odd m,
// R = 2^(32 s), inputs a, b < m, result < m.
//
// Each routine optionally records word-operation counts (single-precision
// multiplies, additions, memory reads/writes) — the quantities the paper's
// software cost model (swmodel) consumes to predict Pentium-60 runtimes.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace dslayer::bigint {

/// Word-operation counts accumulated by an instrumented run.
struct OpCounts {
  std::uint64_t word_mults = 0;  ///< 32x32 -> 64 multiplications
  std::uint64_t word_adds = 0;   ///< word additions (incl. carry adds)
  std::uint64_t loads = 0;       ///< array-element reads
  std::uint64_t stores = 0;      ///< array-element writes

  OpCounts& operator+=(const OpCounts& o) {
    word_mults += o.word_mults;
    word_adds += o.word_adds;
    loads += o.loads;
    stores += o.stores;
    return *this;
  }
};

/// The five scheduling variants.
enum class MontVariant { kSOS, kCIOS, kFIOS, kFIPS, kCIHS };

/// Short name, e.g. "CIOS".
std::string to_string(MontVariant v);

/// All variants, for sweeps.
inline constexpr MontVariant kAllMontVariants[] = {
    MontVariant::kSOS, MontVariant::kCIOS, MontVariant::kFIOS, MontVariant::kFIPS,
    MontVariant::kCIHS};

/// -m0^-1 mod 2^32 for odd m0 (Newton-Hensel iteration).
std::uint32_t mont_word_inverse(std::uint32_t m0);

/// Individual variants. Preconditions (checked): a, b, m, out all have size
/// s >= 1; m is odd; numeric values of a and b are < m. `counts` may be null.
void mont_mul_sos(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
                  std::span<const std::uint32_t> m, std::uint32_t m_prime,
                  std::span<std::uint32_t> out, OpCounts* counts);
void mont_mul_cios(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
                   std::span<const std::uint32_t> m, std::uint32_t m_prime,
                   std::span<std::uint32_t> out, OpCounts* counts);
void mont_mul_fios(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
                   std::span<const std::uint32_t> m, std::uint32_t m_prime,
                   std::span<std::uint32_t> out, OpCounts* counts);
void mont_mul_fips(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
                   std::span<const std::uint32_t> m, std::uint32_t m_prime,
                   std::span<std::uint32_t> out, OpCounts* counts);
void mont_mul_cihs(std::span<const std::uint32_t> a, std::span<const std::uint32_t> b,
                   std::span<const std::uint32_t> m, std::uint32_t m_prime,
                   std::span<std::uint32_t> out, OpCounts* counts);

/// Dispatch by variant tag.
void mont_mul(MontVariant variant, std::span<const std::uint32_t> a,
              std::span<const std::uint32_t> b, std::span<const std::uint32_t> m,
              std::uint32_t m_prime, std::span<std::uint32_t> out, OpCounts* counts);

}  // namespace dslayer::bigint
