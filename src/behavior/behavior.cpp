#include "behavior/behavior.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::behavior {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kAdd: return "+";
    case OpKind::kSub: return "-";
    case OpKind::kMul: return "*";
    case OpKind::kDivRadix: return "div r";
    case OpKind::kModRadix: return "mod r";
    case OpKind::kCompare: return "cmp";
    case OpKind::kSelect: return "sel";
    case OpKind::kAssign: return ":=";
  }
  return "?";
}

double TripCount::evaluate(unsigned eol_bits, unsigned radix) const {
  DSLAYER_REQUIRE(radix >= 2 && (radix & (radix - 1)) == 0, "radix must be a power of two >= 2");
  const unsigned digit_bits = static_cast<unsigned>(std::countr_zero(radix));
  const double digits = std::ceil(static_cast<double>(eol_bits) / digit_bits);
  return per_digit * digits + constant;
}

BehavioralDescription::BehavioralDescription(std::string name) : name_(std::move(name)) {}

int BehavioralDescription::add_op(OpKind kind, int line, std::vector<std::string> inputs,
                                  std::string output, unsigned width_bits) {
  DSLAYER_REQUIRE(line >= 1, "line numbers are 1-based");
  DSLAYER_REQUIRE(!output.empty(), "every operation defines an output symbol");
  Op op;
  op.id = static_cast<int>(ops_.size());
  op.kind = kind;
  op.line = line;
  op.inputs = std::move(inputs);
  op.output = std::move(output);
  op.width_bits = width_bits;
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void BehavioralDescription::set_loop(int first_line, int last_line, TripCount trips) {
  DSLAYER_REQUIRE(first_line >= 1 && last_line >= first_line, "malformed loop bounds");
  DSLAYER_REQUIRE(!loop_.has_value(), "only one loop per behavioral description");
  loop_ = Loop{first_line, last_line, trips};
}

int BehavioralDescription::loop_first_line() const {
  DSLAYER_REQUIRE(loop_.has_value(), "behavioral description has no loop");
  return loop_->first_line;
}

int BehavioralDescription::loop_last_line() const {
  DSLAYER_REQUIRE(loop_.has_value(), "behavioral description has no loop");
  return loop_->last_line;
}

double BehavioralDescription::iteration_count(unsigned eol_bits, unsigned radix) const {
  if (!loop_.has_value()) return 1.0;
  return loop_->trips.evaluate(eol_bits, radix);
}

const BehavioralDescription::Op& BehavioralDescription::op(int id) const {
  DSLAYER_REQUIRE(id >= 0 && static_cast<std::size_t>(id) < ops_.size(), "op id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

std::vector<int> BehavioralDescription::ops_on_line(int line) const {
  std::vector<int> out;
  for (const Op& o : ops_) {
    if (o.line == line) out.push_back(o.id);
  }
  return out;
}

std::vector<int> BehavioralDescription::ops_of_kind(OpKind kind) const {
  std::vector<int> out;
  for (const Op& o : ops_) {
    if (o.kind == kind) out.push_back(o.id);
  }
  return out;
}

std::vector<int> BehavioralDescription::extract(OpKind kind, int line) const {
  std::vector<int> out;
  for (const Op& o : ops_) {
    if (o.kind == kind && o.line == line) out.push_back(o.id);
  }
  return out;
}

std::vector<int> BehavioralDescription::loop_body() const {
  std::vector<int> out;
  if (!loop_.has_value()) return out;
  for (const Op& o : ops_) {
    if (o.line >= loop_->first_line && o.line <= loop_->last_line) out.push_back(o.id);
  }
  return out;
}

std::vector<int> BehavioralDescription::predecessors(int id) const {
  const Op& o = op(id);
  std::vector<int> preds;
  for (const std::string& input : o.inputs) {
    // Last definition of `input` before this op, if any.
    for (int j = id - 1; j >= 0; --j) {
      if (ops_[static_cast<std::size_t>(j)].output == input) {
        preds.push_back(j);
        break;
      }
    }
  }
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  return preds;
}

double BehavioralDescription::critical_path_over(
    const std::vector<int>& ids, const std::function<double(const Op&)>& delay) const {
  // Ids are in program order, which is a topological order of the DAG.
  std::map<int, double> arrival;  // op id -> path delay ending at that op
  double best = 0.0;
  for (int id : ids) {
    const Op& o = op(id);
    double start = 0.0;
    for (int p : predecessors(id)) {
      const auto it = arrival.find(p);
      if (it != arrival.end()) start = std::max(start, it->second);
    }
    const double finish = start + delay(o);
    arrival[id] = finish;
    best = std::max(best, finish);
  }
  return best;
}

double BehavioralDescription::critical_path(
    const std::function<double(const Op&)>& delay) const {
  std::vector<int> all(ops_.size());
  for (std::size_t i = 0; i < ops_.size(); ++i) all[i] = static_cast<int>(i);
  return critical_path_over(all, delay);
}

double BehavioralDescription::loop_critical_path(
    const std::function<double(const Op&)>& delay) const {
  const std::vector<int> body = loop_body();
  DSLAYER_REQUIRE(!body.empty(), "behavioral description has no loop body");
  return critical_path_over(body, delay);
}

std::string BehavioralDescription::to_text() const {
  std::ostringstream os;
  os << "BD " << name_ << ":\n";
  int last_line = -1;
  for (const Op& o : ops_) {
    if (o.line != last_line) {
      if (loop_.has_value() && o.line == loop_->first_line) {
        os << "  -- loop (" << loop_->trips.per_digit << " x digits + " << loop_->trips.constant
           << " iterations) --\n";
      }
      os << "  " << o.line << ":";
      last_line = o.line;
    } else {
      os << "    ";
    }
    os << " " << o.output << " <- " << to_string(o.kind) << "(" << join(o.inputs, ", ") << ")"
       << " [" << o.width_bits << "b]\n";
  }
  return os.str();
}

BehavioralDescription montgomery_bd(unsigned radix, unsigned width_bits) {
  DSLAYER_REQUIRE(radix >= 2 && (radix & (radix - 1)) == 0, "radix must be a power of two >= 2");
  BehavioralDescription bd(cat("Montgomery_r", radix));
  const unsigned digit_bits = static_cast<unsigned>(std::countr_zero(radix));
  // 1: R := 0; Q := 0; B := r2 * B   (pre-computation / domain entry)
  bd.add_op(OpKind::kAssign, 1, {"zero"}, "R", width_bits);
  bd.add_op(OpKind::kAssign, 1, {"zero"}, "Q", digit_bits);
  bd.add_op(OpKind::kMul, 1, {"r2", "B_in"}, "B", width_bits);
  // Loop body (paper lines 3-4; the FOR header is line 2):
  // 3: R := (Ai*B + R + Qi*M) div r
  // Radix 2 digits are single bits: the partial products Ai*B and Qi*M are
  // gatings (selects), not multiplications. Wider digits need real digit
  // multipliers — the estimator then separates the radices.
  const OpKind pp = radix == 2 ? OpKind::kSelect : OpKind::kMul;
  bd.add_op(pp, 3, {"Ai", "B"}, "t_ab", width_bits);
  bd.add_op(pp, 3, {"Q", "M"}, "t_qm", width_bits);
  bd.add_op(OpKind::kAdd, 3, {"t_ab", "R"}, "t_sum1", width_bits);
  bd.add_op(OpKind::kAdd, 3, {"t_sum1", "t_qm"}, "t_sum2", width_bits);
  bd.add_op(OpKind::kDivRadix, 3, {"t_sum2"}, "R", width_bits);
  // 4: Qi := (R0 * (r - M0)^-1) mod r   (quotient digit for the NEXT iter)
  bd.add_op(OpKind::kMul, 4, {"R", "minv"}, "t_q", digit_bits);
  bd.add_op(OpKind::kModRadix, 4, {"t_q"}, "Q", digit_bits);
  // 5: IF (R > M) THEN 6: R := R - M
  bd.add_op(OpKind::kCompare, 5, {"R", "M"}, "gt", 1);
  bd.add_op(OpKind::kSub, 6, {"R", "M"}, "t_red", width_bits);
  bd.add_op(OpKind::kSelect, 6, {"gt", "t_red", "R"}, "R", width_bits);
  // FOR i = 1 TO n+1 where n = number of radix-r digits of the EOL.
  bd.set_loop(3, 4, TripCount{1.0, 1.0});
  return bd;
}

BehavioralDescription brickell_bd(unsigned radix, unsigned width_bits) {
  DSLAYER_REQUIRE(radix >= 2 && (radix & (radix - 1)) == 0, "radix must be a power of two >= 2");
  BehavioralDescription bd(cat("Brickell_r", radix));
  // 1: R := 0
  bd.add_op(OpKind::kAssign, 1, {"zero"}, "R", width_bits);
  // Loop body, MSB-first:
  // 2: R := R*r + Ai*B  (shift-and-accumulate partial product)
  bd.add_op(OpKind::kMul, 2, {"Ai", "B"}, "t_ab", width_bits);
  bd.add_op(OpKind::kAdd, 2, {"R_shifted", "t_ab"}, "R", width_bits);
  // 3: WHILE R >= M: R := R - M  (mod reduction at every partial product;
  // bounded by the radix, modeled as compare + subtract + select).
  bd.add_op(OpKind::kCompare, 3, {"R", "M"}, "ge", 1);
  bd.add_op(OpKind::kSub, 3, {"R", "M"}, "t_red", width_bits);
  bd.add_op(OpKind::kSelect, 3, {"ge", "t_red", "R"}, "R", width_bits);
  bd.set_loop(2, 3, TripCount{1.0, 0.0});
  return bd;
}

BehavioralDescription paper_pencil_bd(unsigned width_bits) {
  BehavioralDescription bd("PaperAndPencil");
  // 1: P := A * B  (full double-width product)
  bd.add_op(OpKind::kMul, 1, {"A", "B"}, "P", 2 * width_bits);
  // 2: R := P mod M  (one large division)
  bd.add_op(OpKind::kDivRadix, 2, {"P", "M"}, "R", 2 * width_bits);
  return bd;
}

BehavioralDescription idct_row_col_bd(unsigned width_bits) {
  BehavioralDescription bd("IDCT_row_col");
  // One butterfly stage of a 1-D 8-point IDCT applied row-wise then
  // column-wise; modeled at the granularity the estimators need: the
  // multiply-accumulate chain of one output sample.
  bd.add_op(OpKind::kMul, 1, {"x0", "c0"}, "p0", width_bits);
  bd.add_op(OpKind::kMul, 1, {"x1", "c1"}, "p1", width_bits);
  bd.add_op(OpKind::kAdd, 2, {"p0", "p1"}, "s0", width_bits);
  bd.add_op(OpKind::kMul, 2, {"x2", "c2"}, "p2", width_bits);
  bd.add_op(OpKind::kAdd, 3, {"s0", "p2"}, "s1", width_bits);
  bd.add_op(OpKind::kMul, 3, {"x3", "c3"}, "p3", width_bits);
  bd.add_op(OpKind::kAdd, 4, {"s1", "p3"}, "y", width_bits);
  // 8 rows + 8 columns of an 8x8 block.
  bd.set_loop(1, 4, TripCount{0.0, 16.0});
  return bd;
}

BehavioralDescription idct_fused_bd(unsigned width_bits) {
  BehavioralDescription bd("IDCT_fused");
  // Loeffler-style factorization: ~25% fewer multiplications (rotations
  // shared across butterflies) at the cost of a deeper additive chain and
  // a less regular schedule (12 passes over the 8x8 block instead of 16).
  bd.add_op(OpKind::kAdd, 1, {"x0", "x4"}, "a0", width_bits);
  bd.add_op(OpKind::kSub, 1, {"x0", "x4"}, "a1", width_bits);
  bd.add_op(OpKind::kMul, 2, {"x2", "k1"}, "m0", width_bits);
  bd.add_op(OpKind::kAdd, 2, {"m0", "x6"}, "a2", width_bits);
  bd.add_op(OpKind::kMul, 3, {"x5", "k3"}, "m2", width_bits);
  bd.add_op(OpKind::kAdd, 3, {"a0", "a2"}, "b0", width_bits);
  bd.add_op(OpKind::kAdd, 3, {"a1", "m2"}, "b1", width_bits);
  bd.add_op(OpKind::kMul, 4, {"b1", "k2"}, "m1", width_bits);
  bd.add_op(OpKind::kAdd, 4, {"b0", "m1"}, "y", width_bits);
  bd.set_loop(1, 4, TripCount{0.0, 12.0});
  return bd;
}

}  // namespace dslayer::behavior
