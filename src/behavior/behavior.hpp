// Behavioral descriptions.
//
// In the paper's modeling framework, a behavioral description (BD) is one of
// the property kinds attached to a class of design objects: it defines the
// intended behavior of the design object at the algorithmic level (Fig. 10
// shows the BD of the Montgomery modular multiplier). Three mechanisms
// consume BDs:
//
//  * behavioral decomposition (Section 5.1.6, DI7): the operators appearing
//    in a BD are themselves design objects — the expression
//    "FOR ALL Oper := OPERATORS(BD@*.Hardware)" iterates over them so their
//    conceptual design recurses into the Adder/Multiplier CDOs;
//  * consistency constraints (Fig. 13): CC4 names specific operator
//    instances via "oper(+,line:2)@BD";
//  * early estimation (CC3): BehaviorDelayEstimator ranks alternative BDs by
//    critical path when no cores exist in the selected design-space region.
//
// The IR is a flat list of operations in program order with symbolic operand
// names; def-use chains over those names induce the dataflow DAG used for
// critical-path analysis. A single loop annotation carries the iteration
// count as a function of the effective operand length (EOL) and radix, which
// is what CC2's latency relation needs.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace dslayer::behavior {

/// Operator kinds that can appear in a behavioral description.
enum class OpKind {
  kAdd,      // addition (the '+' of CC4's oper(+,line:2))
  kSub,      // subtraction
  kMul,      // multiplication
  kDivRadix, // division by the radix (a shift for power-of-two radices)
  kModRadix, // reduction modulo the radix (bit-select)
  kCompare,  // magnitude comparison
  kSelect,   // 2:1 selection / conditional assignment
  kAssign,   // plain move / initialization
};

/// Symbol for reports, e.g. "+", "*", "cmp".
std::string to_string(OpKind kind);

/// Iteration count of the single loop of a BD, as a function of the
/// effective operand length and the radix. `per_digit` scales with the
/// number of radix-R digits of an EOL-bit operand; `constant` adds the
/// paper's "+1" style epilogue iterations.
struct TripCount {
  double per_digit = 0.0;
  double constant = 0.0;

  /// Evaluated count for an EOL-bit operand processed in radix-`radix` digits.
  double evaluate(unsigned eol_bits, unsigned radix) const;
};

/// One algorithmic-level behavioral description (paper Fig. 10).
class BehavioralDescription {
 public:
  /// One operation instance. Inputs/output are symbolic names; an input
  /// that is never defined by an earlier operation is a primary input.
  struct Op {
    int id = 0;
    OpKind kind = OpKind::kAssign;
    int line = 0;               ///< source line, as referenced by CCs
    std::vector<std::string> inputs;
    std::string output;
    unsigned width_bits = 0;    ///< datapath width of this operator instance
  };

  explicit BehavioralDescription(std::string name);

  const std::string& name() const { return name_; }

  /// Appends an operation; returns its id. Operations must be added in
  /// program order (an op may only read outputs of earlier ops or primary
  /// inputs).
  int add_op(OpKind kind, int line, std::vector<std::string> inputs, std::string output,
             unsigned width_bits);

  /// Declares the loop spanning [first_line, last_line] with the given trip
  /// count. At most one loop per BD (sufficient for the case studies).
  void set_loop(int first_line, int last_line, TripCount trips);

  bool has_loop() const { return loop_.has_value(); }
  int loop_first_line() const;
  int loop_last_line() const;

  /// Iterations of the loop for the given operand length and radix; 1 if
  /// the BD has no loop (straight-line code executes "once").
  double iteration_count(unsigned eol_bits, unsigned radix) const;

  const std::vector<Op>& ops() const { return ops_; }
  const Op& op(int id) const;

  /// All op ids on a given source line.
  std::vector<int> ops_on_line(int line) const;

  /// All op ids of a given kind.
  std::vector<int> ops_of_kind(OpKind kind) const;

  /// The paper's oper(kind, line)@BD extraction: ids matching both.
  std::vector<int> extract(OpKind kind, int line) const;

  /// Ids of ops inside the loop body (empty if no loop).
  std::vector<int> loop_body() const;

  /// Dataflow predecessors of an op: ids of earlier ops whose output this op
  /// reads (last definition wins).
  std::vector<int> predecessors(int id) const;

  /// Longest weighted path through the dataflow DAG, where `delay` gives the
  /// per-operation delay. This is the combinational critical path of one
  /// loop iteration if all operations were chained in a single cycle.
  double critical_path(const std::function<double(const Op&)>& delay) const;

  /// Critical path restricted to the loop body (the per-iteration path that
  /// bounds the clock of a one-iteration-per-cycle hardware implementation).
  double loop_critical_path(const std::function<double(const Op&)>& delay) const;

  /// Pretty-prints in the style of the paper's Fig. 10.
  std::string to_text() const;

 private:
  struct Loop {
    int first_line;
    int last_line;
    TripCount trips;
  };

  double critical_path_over(const std::vector<int>& ids,
                            const std::function<double(const Op&)>& delay) const;

  std::string name_;
  std::vector<Op> ops_;
  std::optional<Loop> loop_;
};

/// Factory: the Montgomery modular-multiplication BD of Fig. 10 for the
/// given radix and datapath width (the width of R/B/M registers).
///
///   1: R := 0; Q0 := 0; B := r2*B
///   2: FOR i = 1 TO n+1
///   3:   R := (Ai*B + R + Qi*M) div r
///   4:   Qi := (R0*(r-M0)^-1) mod r
///   5: IF (R > M) THEN
///   6:   R := R - M
BehavioralDescription montgomery_bd(unsigned radix, unsigned width_bits);

/// Factory: Brickell-style MSB-first interleaved modular multiplication.
/// Per iteration: R := R*r + Ai*B, followed by conditional subtractions of M.
BehavioralDescription brickell_bd(unsigned radix, unsigned width_bits);

/// Factory: "paper and pencil" — full multiply then one big mod-M reduction.
BehavioralDescription paper_pencil_bd(unsigned width_bits);

/// Factory: row-column IDCT (two 1-D passes with a transpose) — used by the
/// media/IDCT domain layer of Figs. 2-4.
BehavioralDescription idct_row_col_bd(unsigned width_bits);

/// Factory: fused/flowgraph IDCT (Loeffler-style, fewer multiplications but
/// a longer dependence chain).
BehavioralDescription idct_fused_bd(unsigned width_bits);

}  // namespace dslayer::behavior
