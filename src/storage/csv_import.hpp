// Bulk CSV importer for IP-provider catalogs (DB4HLS-style corpora).
//
// Header row names the columns:
//   name                core name (required)
//   class               CDO class path (required)
//   library             target reuse library (optional; else the default)
//   bind:<Property>     a binding column, value auto-typed
//   metric:<Metric>     a metric column (must parse as a number)
//   view:<Level>        a design-data view artifact
//   <Property>          bare names are binding columns too
//
// Auto-typing: numeric literals become number values, "true"/"false"
// become flags, anything else is text. Empty cells bind nothing.
//
// Quoting is standard CSV: fields may be double-quoted, with "" escaping
// a quote; quoted fields may contain commas and newlines.
//
// The importer never touches a layer directly — it emits CatalogRecords
// in batches through a callback, so `dslshell --import` pushes every row
// through the same WAL path as any other mutation and crash recovery
// replays a partial import to exactly the acknowledged batches.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/catalog_journal.hpp"

namespace dslayer::storage {

struct CsvImportResult {
  std::size_t rows = 0;     ///< cores parsed
  std::size_t batches = 0;  ///< emit callbacks issued
  std::vector<std::string> warnings;
};

/// Parses `csv` and emits one kAddCores record per (library, batch) via
/// `emit`. `batch_rows` bounds the rows per record (a journal frame);
/// rows for different libraries never share a record. Throws
/// StorageError on malformed input (missing required columns, unbalanced
/// quotes, non-numeric metric cells).
CsvImportResult import_csv(std::string_view csv, const std::string& default_library,
                           std::size_t batch_rows,
                           const std::function<void(CatalogRecord)>& emit);

}  // namespace dslayer::storage
