#include "storage/csv_import.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "storage/counters.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

/// One CSV row. Handles quoted fields ("" escapes a quote; embedded
/// commas/newlines allowed). Advances `pos` past the row's terminator.
std::vector<std::string> parse_row(std::string_view csv, std::size_t& pos, std::size_t& line_no) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  bool any = false;
  while (pos < csv.size()) {
    const char c = csv[pos];
    if (quoted) {
      if (c == '"') {
        if (pos + 1 < csv.size() && csv[pos + 1] == '"') {
          field.push_back('"');
          pos += 2;
        } else {
          quoted = false;
          ++pos;
        }
      } else {
        if (c == '\n') ++line_no;
        field.push_back(c);
        ++pos;
      }
      continue;
    }
    if (c == '"' && field.empty()) {
      quoted = true;
      any = true;
      ++pos;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
      any = true;
      ++pos;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && pos + 1 < csv.size() && csv[pos + 1] == '\n') ++pos;
      ++pos;
      ++line_no;
      break;
    } else {
      field.push_back(c);
      any = true;
      ++pos;
    }
  }
  if (quoted) throw StorageError(cat("csv line ", line_no, ": unterminated quoted field"));
  if (any || !field.empty() || !fields.empty()) fields.push_back(std::move(field));
  return fields;
}

bool parse_number(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

dsl::Value auto_value(const std::string& text) {
  double number;
  if (parse_number(text, number)) return dsl::Value::number(number);
  if (text == "true") return dsl::Value::flag(true);
  if (text == "false") return dsl::Value::flag(false);
  return dsl::Value::text(text);
}

enum class ColumnRole { kName, kClass, kLibrary, kBind, kMetric, kView };

struct ColumnSpec {
  ColumnRole role;
  std::string target;  ///< property / metric / view-level name
};

}  // namespace

CsvImportResult import_csv(std::string_view csv, const std::string& default_library,
                           std::size_t batch_rows,
                           const std::function<void(CatalogRecord)>& emit) {
  DSLAYER_REQUIRE(batch_rows > 0, "import batch size must be positive");
  CsvImportResult result;
  std::size_t pos = 0;
  std::size_t line_no = 1;

  const std::vector<std::string> header = parse_row(csv, pos, line_no);
  if (header.empty()) throw StorageError("csv: empty input (no header row)");

  std::vector<ColumnSpec> columns;
  columns.reserve(header.size());
  bool saw_name = false;
  bool saw_class = false;
  std::map<std::string, std::size_t> seen;  // duplicate-column rejection
  for (const std::string& raw : header) {
    const std::string title(trim(raw));
    if (seen.count(title) != 0) {
      throw StorageError(cat("csv header: duplicate column '", title, "'"));
    }
    seen.emplace(title, columns.size());
    if (title == "name") {
      columns.push_back({ColumnRole::kName, {}});
      saw_name = true;
    } else if (title == "class") {
      columns.push_back({ColumnRole::kClass, {}});
      saw_class = true;
    } else if (title == "library") {
      columns.push_back({ColumnRole::kLibrary, {}});
    } else if (starts_with(title, "bind:")) {
      columns.push_back({ColumnRole::kBind, title.substr(5)});
    } else if (starts_with(title, "metric:")) {
      columns.push_back({ColumnRole::kMetric, title.substr(7)});
    } else if (starts_with(title, "view:")) {
      columns.push_back({ColumnRole::kView, title.substr(5)});
    } else {
      columns.push_back({ColumnRole::kBind, title});  // bare name = binding
    }
  }
  if (!saw_name || !saw_class) {
    throw StorageError("csv header: 'name' and 'class' columns are required");
  }

  // Rows for one library accumulate until batch_rows, then flush as one
  // journal record. Different libraries keep separate pending batches so
  // interleaved rows still group correctly.
  std::map<std::string, std::vector<CoreRecord>> pending;
  const auto flush = [&](const std::string& library) {
    auto it = pending.find(library);
    if (it == pending.end() || it->second.empty()) return;
    emit(CatalogRecord::add_cores(library, std::move(it->second)));
    it->second.clear();
    ++result.batches;
  };

  while (pos < csv.size()) {
    const std::size_t row_line = line_no;
    const std::vector<std::string> fields = parse_row(csv, pos, line_no);
    if (fields.empty()) continue;  // blank line
    DSLAYER_FAILPOINT("storage.import.row");
    if (fields.size() > columns.size()) {
      throw StorageError(cat("csv line ", row_line, ": ", fields.size(), " fields but ",
                             columns.size(), " header columns"));
    }
    CoreRecord core;
    std::string library = default_library;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      const std::string& cell = fields[i];
      if (cell.empty()) continue;
      switch (columns[i].role) {
        case ColumnRole::kName:
          core.name = cell;
          break;
        case ColumnRole::kClass:
          core.class_path = cell;
          break;
        case ColumnRole::kLibrary:
          library = cell;
          break;
        case ColumnRole::kBind:
          core.bindings.emplace_back(columns[i].target, auto_value(cell));
          break;
        case ColumnRole::kMetric: {
          double number;
          if (!parse_number(cell, number)) {
            throw StorageError(cat("csv line ", row_line, ": metric '", columns[i].target,
                                   "' value '", cell, "' is not a number"));
          }
          core.metrics.emplace_back(columns[i].target, number);
          break;
        }
        case ColumnRole::kView:
          core.views.push_back({columns[i].target, cell});
          break;
      }
    }
    if (core.name.empty() || core.class_path.empty()) {
      result.warnings.push_back(
          cat("line ", row_line, ": skipped (missing name or class)"));
      continue;
    }
    if (library.empty()) {
      throw StorageError(cat("csv line ", row_line,
                             ": no library column value and no default library"));
    }
    // Journal replay bulk-adopts, which requires name-sorted properties.
    const auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
    std::sort(core.bindings.begin(), core.bindings.end(), by_name);
    std::sort(core.metrics.begin(), core.metrics.end(), by_name);
    std::vector<CoreRecord>& batch = pending[library];
    batch.push_back(std::move(core));
    ++result.rows;
    counters().import_rows.add();
    if (batch.size() >= batch_rows) flush(library);
  }
  for (auto& [library, batch] : pending) {
    if (!batch.empty()) flush(library);
  }
  return result;
}

}  // namespace dslayer::storage
