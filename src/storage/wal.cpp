#include "storage/wal.hpp"

#include <cstring>

#include "storage/counters.hpp"
#include "storage/crc32.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

constexpr char kMagic[8] = {'D', 'S', 'L', 'W', 'A', 'L', '1', '\n'};
constexpr std::uint64_t kHeaderBytes = sizeof(kMagic);
constexpr std::uint32_t kMaxFrameBytes = 1u << 30;  // sanity bound on the length field

}  // namespace

SyncMode parse_sync_mode(std::string_view text) {
  if (text == "always") return SyncMode::kAlways;
  if (text == "interval") return SyncMode::kInterval;
  if (text == "off") return SyncMode::kOff;
  throw StorageError(cat("bad sync mode '", std::string(text), "' (always|interval|off)"));
}

const char* to_string(SyncMode mode) {
  switch (mode) {
    case SyncMode::kAlways: return "always";
    case SyncMode::kInterval: return "interval";
    case SyncMode::kOff: return "off";
  }
  return "?";
}

WalRecovery recover_wal(const std::string& path) {
  WalRecovery out;
  if (!path_exists(path)) return out;
  out.existed = true;

  File file = File::open_readwrite(path);
  const std::string bytes = file.read_all();
  if (bytes.size() < kHeaderBytes || std::memcmp(bytes.data(), kMagic, kHeaderBytes) != 0) {
    // The header is written and fsynced before the file is ever appended
    // to, so it cannot be torn by a crash — a bad header means the file is
    // not ours (or was corrupted at rest), which replay must not guess at.
    throw StorageError(cat("journal '", path, "': bad magic header"));
  }

  std::uint64_t pos = kHeaderBytes;
  while (pos + 8 <= bytes.size()) {
    std::uint32_t length;
    std::uint32_t crc;
    std::memcpy(&length, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (length > kMaxFrameBytes) break;               // garbage length: torn tail
    if (pos + 8 + length > bytes.size()) break;       // frame runs past EOF: torn tail
    const std::string_view payload(bytes.data() + pos + 8, length);
    if (crc32(payload) != crc) break;                 // bit rot / torn payload
    out.records.emplace_back(payload);
    pos += 8 + length;
  }

  out.valid_bytes = pos;
  out.truncated_bytes = bytes.size() - pos;
  if (out.truncated_bytes > 0) {
    DSLAYER_FAILPOINT("storage.wal.truncate");
    file.truncate(pos);
    file.sync();
    counters().recovery_truncated_bytes.add(out.truncated_bytes);
  }
  return out;
}

WalWriter::WalWriter(std::string path, WalOptions options)
    : path_(std::move(path)), options_(options) {
  DSLAYER_FAILPOINT("storage.wal.open");
  const bool fresh = !path_exists(path_);
  file_ = File::open_readwrite(path_);
  if (fresh || file_.size() < kHeaderBytes) {
    file_.truncate(0);
    file_.write_all(kMagic, sizeof(kMagic));
    file_.sync();
    sync_parent_directory(path_);
    file_bytes_ = kHeaderBytes;
  } else {
    file_bytes_ = file_.size();
    file_.seek_end();
  }
}

void WalWriter::append(std::string_view payload) {
  DSLAYER_FAILPOINT("storage.wal.append");
  char frame_header[8];
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = crc32(payload);
  std::memcpy(frame_header, &length, 4);
  std::memcpy(frame_header + 4, &crc, 4);
  // One writev-shaped write would be marginally better; two writes are
  // fine — a crash between them tears the frame, which recovery drops.
  std::string frame;
  frame.reserve(8 + payload.size());
  frame.append(frame_header, 8);
  frame.append(payload.data(), payload.size());
  file_.write_all(frame);

  file_bytes_ += frame.size();
  unsynced_bytes_ += frame.size();
  ++appended_records_;
  counters().wal_appends.add();

  switch (options_.sync) {
    case SyncMode::kAlways:
      sync();
      break;
    case SyncMode::kInterval:
      if (unsynced_bytes_ >= options_.sync_interval_bytes) sync();
      break;
    case SyncMode::kOff:
      break;
  }
}

void WalWriter::sync() {
  if (unsynced_bytes_ == 0) return;
  DSLAYER_FAILPOINT("storage.wal.sync");
  file_.sync();
  counters().wal_synced_bytes.add(unsynced_bytes_);
  unsynced_bytes_ = 0;
}

void WalWriter::reset() {
  file_.truncate(kHeaderBytes);
  file_.sync();
  file_.seek_end();
  file_bytes_ = kHeaderBytes;
  unsynced_bytes_ = 0;
}

}  // namespace dslayer::storage
