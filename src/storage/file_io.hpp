// POSIX file primitives for the durable catalog, wrapped so every failure
// carries errno context in a StorageError and every handle is RAII-owned.
//
// The durability idioms live here, used by both the WAL and the snapshot
// writer:
//   * append + fsync          — the journal discipline;
//   * write tmp, fsync, rename into place, fsync the directory
//                             — atomic publication (a reader sees either
//                               the old file or the complete new one,
//                               never a torn middle);
//   * read-only mmap          — snapshot column payloads alias the
//                               mapping instead of being copied, which is
//                               what makes a million-core cold start a
//                               page-cache exercise rather than a parse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dslayer::storage {

/// RAII file descriptor. Move-only.
class File {
 public:
  File() = default;
  File(File&& other) noexcept : fd_(other.fd_), path_(std::move(other.path_)) { other.fd_ = -1; }
  File& operator=(File&& other) noexcept;
  ~File();

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens for reading; throws StorageError if missing/unreadable.
  static File open_read(const std::string& path);

  /// Opens read-write, creating if missing (0644); never truncates.
  static File open_readwrite(const std::string& path);

  /// Creates (or truncates) for writing (0644).
  static File create_truncate(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Full-buffer write at the current offset; loops over short writes.
  void write_all(const void* data, std::size_t size);
  void write_all(std::string_view data) { write_all(data.data(), data.size()); }

  /// Reads the whole file from offset 0 (restores no file position).
  std::string read_all() const;

  std::uint64_t size() const;
  void seek_end();
  void truncate(std::uint64_t length);
  void sync();  ///< fsync
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

bool path_exists(const std::string& path);
void ensure_directory(const std::string& path);  ///< mkdir -p, final component only made once
void remove_file(const std::string& path);       ///< missing file is not an error

/// Contents of `path`; throws StorageError if unreadable.
std::string read_file(const std::string& path);

/// fsync on the containing directory, making a rename/creation durable.
void sync_parent_directory(const std::string& path);

/// rename(tmp_path, final_path) + parent-directory fsync. The caller must
/// have fsynced tmp_path's contents first.
void rename_into_place(const std::string& tmp_path, const std::string& final_path);

/// Regular files directly inside `dir` (names only, sorted). Missing
/// directory yields an empty list.
std::vector<std::string> list_directory(const std::string& dir);

/// Read-only mmap of a whole file. Move-only; unmaps on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  static MappedFile map(const std::string& path);

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace dslayer::storage
