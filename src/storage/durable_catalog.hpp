// The durable catalog: snapshot + write-ahead journal + checkpointing,
// composed over one data directory (DESIGN.md §15).
//
//   <dir>/catalog.snap   last published snapshot (atomic rename target)
//   <dir>/catalog.wal    journal of mutations since that snapshot
//   <dir>/sessions/      per-session command journals (SessionStore)
//
// Boot order: the factory builds the CODE parts of the layer (hierarchy,
// lambda constraints, estimators, hooks); the DurableCatalog then loads
// the snapshot (if any) onto it, replays the journal tail, and opens the
// journal for appending. Every journal frame carries a monotonically
// increasing sequence number; the snapshot records the highest sequence
// it absorbed, so replay after an interrupted checkpoint (snapshot
// published, WAL reset not yet reached) skips exactly the absorbed
// records — mutations apply exactly once no matter where a crash lands.
//
// Mutation protocol (apply_and_log): apply to the in-memory layer first —
// a semantic rejection (duplicate core, duplicate constraint id) then
// journals nothing and replay can never trip over it — and append the
// frame (synced per WalOptions) before the caller acknowledges. The
// acknowledged prefix is therefore always on disk; a crash between apply
// and append loses only an un-acknowledged mutation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/catalog_journal.hpp"
#include "storage/snapshot.hpp"
#include "storage/wal.hpp"

namespace dslayer::storage {

struct DurableOptions {
  std::string dir;
  WalOptions wal;
  /// Re-hash snapshot section payloads at load (boot stays fast without).
  bool verify_snapshot_payloads = false;
};

struct BootReport {
  bool loaded_snapshot = false;
  SnapshotLoadReport snapshot;
  std::uint64_t replayed_records = 0;   ///< journal records applied after the snapshot
  std::uint64_t skipped_records = 0;    ///< records the snapshot had already absorbed
  std::uint64_t truncated_bytes = 0;    ///< torn journal tail dropped at recovery
};

class DurableCatalog {
 public:
  /// Boots the catalog into `layer` (which must outlive this object) and
  /// opens the journal for appending. Throws StorageError if the existing
  /// state is unreadable or belongs to a different layer build.
  DurableCatalog(dsl::DesignSpaceLayer& layer, DurableOptions options);

  const BootReport& boot_report() const { return boot_; }

  /// Re-runs the boot sequence against the live layer: reloads the last
  /// published snapshot (or clears the catalog when none exists), replays
  /// the journal tail, and reopens the journal. The `!restore` directive
  /// runs this inside a SharedLayer writer epoch so every session
  /// migrates off the discarded state.
  const BootReport& reload();

  /// Applies the mutation to the layer, then journals it. Returns after
  /// the frame is on disk per the configured sync mode.
  void apply_and_log(const CatalogRecord& record);

  /// Forces an fsync of any unsynced journal bytes (interval mode).
  void sync() { wal_->sync(); }

  /// Checkpoint: publishes a snapshot of the current layer state, then
  /// resets the journal. Crash-safe at every point in between.
  SnapshotWriteReport checkpoint();

  std::uint64_t sequence() const { return sequence_; }
  const std::string& dir() const { return options_.dir; }
  std::string snapshot_path() const;
  std::string wal_path() const;
  std::string sessions_dir() const;

 private:
  /// Snapshot load (or catalog clear) + journal replay + writer open.
  BootReport boot(bool clear_layer);

  dsl::DesignSpaceLayer& layer_;
  DurableOptions options_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t sequence_ = 0;  ///< last sequence written (or absorbed)
  BootReport boot_;
  /// Every journaled kAddConstraint record in history order (from the
  /// snapshot that absorbed it, the replayed journal, or apply_and_log).
  /// checkpoint() persists these into the next snapshot: a snapshot
  /// stores cores as columns but constraints as their records, so a WAL
  /// reset never loses constraint history.
  std::vector<CatalogRecord> constraint_records_;
};

}  // namespace dslayer::storage
