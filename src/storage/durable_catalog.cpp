#include "storage/durable_catalog.hpp"

#include <cstring>
#include <memory>
#include <utility>

#include "storage/codec.hpp"
#include "storage/counters.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

/// Journal frame payload: [u64 sequence][encoded CatalogRecord].
std::string frame_payload(std::uint64_t sequence, const CatalogRecord& record) {
  Encoder e;
  e.u64(sequence);
  const std::string body = encode_record(record);
  e.bytes(body.data(), body.size());
  return e.take();
}

}  // namespace

DurableCatalog::DurableCatalog(dsl::DesignSpaceLayer& layer, DurableOptions options)
    : layer_(layer), options_(std::move(options)) {
  DSLAYER_REQUIRE(!options_.dir.empty(), "durable catalog needs a data directory");
  ensure_directory(options_.dir);
  boot_ = boot(/*clear_layer=*/false);
}

const BootReport& DurableCatalog::reload() {
  wal_.reset();  // release the append fd before recovery re-scans the file
  boot_ = boot(/*clear_layer=*/true);
  return boot_;
}

BootReport DurableCatalog::boot(bool clear_layer) {
  BootReport report;
  sequence_ = 0;

  if (path_exists(snapshot_path())) {
    report.snapshot = load_snapshot(layer_, snapshot_path(),
                                    {.verify_payloads = options_.verify_snapshot_payloads});
    report.loaded_snapshot = true;
    sequence_ = report.snapshot.journal_seq;
  } else if (clear_layer) {
    // `!restore` without a snapshot: the journal is the whole history, so
    // replay must start from an empty catalog, not the live one.
    layer_.clear_catalog();
  }

  // The snapshot carries the constraint records it absorbed; they seed
  // the running list the next checkpoint will persist.
  constraint_records_ = report.snapshot.constraint_records;

  WalRecovery recovery = recover_wal(wal_path());
  report.truncated_bytes = recovery.truncated_bytes;
  bool needs_index = false;
  for (const std::string& payload : recovery.records) {
    Decoder d(payload);
    const std::uint64_t seq = d.u64();
    sequence_ = std::max(sequence_, seq);
    if (report.loaded_snapshot && seq <= report.snapshot.journal_seq) {
      // Absorbed by the snapshot before an interrupted checkpoint got to
      // reset the journal — applying again would double-add cores (and
      // constraints travel inside the snapshot, so they are covered too).
      ++report.skipped_records;
      continue;
    }
    CatalogRecord record = decode_record(payload.substr(d.position()));
    if (record.kind == CatalogRecord::Kind::kAddConstraint) {
      // Idempotent on reload(): clear_catalog() leaves constraints in
      // place, so the live layer may already carry this id.
      if (!layer_has_constraint(layer_, record.id)) apply_record(layer_, record);
      constraint_records_.push_back(std::move(record));
    } else {
      apply_record(layer_, record);
      needs_index = record.kind == CatalogRecord::Kind::kAddCores ||
                    (needs_index && record.kind != CatalogRecord::Kind::kIndexCores);
    }
    ++report.replayed_records;
    counters().recovery_replayed_records.add();
  }
  // A journal tail that added cores without reaching its index record
  // (the mutator indexed through SharedLayer::write, which does not
  // journal) must still leave the replayed cores queryable.
  if (needs_index) layer_.index_cores();

  wal_ = std::make_unique<WalWriter>(wal_path(), options_.wal);
  return report;
}

void DurableCatalog::apply_and_log(const CatalogRecord& record) {
  apply_record(layer_, record);  // may throw: nothing journaled, state clean
  wal_->append(frame_payload(++sequence_, record));
  if (record.kind == CatalogRecord::Kind::kAddConstraint) {
    constraint_records_.push_back(record);
  }
}

SnapshotWriteReport DurableCatalog::checkpoint() {
  wal_->sync();  // the snapshot must not get ahead of unsynced frames
  const SnapshotWriteReport report =
      write_snapshot(layer_, snapshot_path(), sequence_, &constraint_records_);
  wal_->reset();
  return report;
}

std::string DurableCatalog::snapshot_path() const { return cat(options_.dir, "/catalog.snap"); }
std::string DurableCatalog::wal_path() const { return cat(options_.dir, "/catalog.wal"); }
std::string DurableCatalog::sessions_dir() const { return cat(options_.dir, "/sessions"); }

}  // namespace dslayer::storage
