#include "storage/counters.hpp"

namespace dslayer::storage {

StorageCounters& counters() {
  static StorageCounters instance;
  return instance;
}

}  // namespace dslayer::storage
