#include "storage/session_store.hpp"

#include <cctype>
#include <utility>

#include "storage/counters.hpp"
#include "storage/file_io.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

constexpr std::string_view kSuffix = ".jsonl";

bool plain(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
         c == '_' || c == '-';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

SessionStore::SessionStore(std::string dir) : dir_(std::move(dir)) {
  DSLAYER_REQUIRE(!dir_.empty(), "session store needs a directory");
  ensure_directory(dir_);
}

std::string SessionStore::encode_name(const std::string& session) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  out.reserve(session.size());
  for (const char c : session) {
    if (plain(c)) {
      out.push_back(c);
    } else {
      const auto byte = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(hex[byte >> 4]);
      out.push_back(hex[byte & 0xF]);
    }
  }
  return out;
}

std::string SessionStore::decode_name(const std::string& file_stem) {
  std::string out;
  out.reserve(file_stem.size());
  for (std::size_t i = 0; i < file_stem.size(); ++i) {
    if (file_stem[i] == '%' && i + 2 < file_stem.size()) {
      const int hi = hex_value(file_stem[i + 1]);
      const int lo = hex_value(file_stem[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(file_stem[i]);
  }
  return out;
}

std::string SessionStore::file_path(const std::string& session) const {
  return cat(dir_, "/", encode_name(session), kSuffix);
}

void SessionStore::save(const std::string& session, std::string_view jsonl) {
  DSLAYER_FAILPOINT("storage.session.flush");
  const std::string final_path = file_path(session);
  const std::string tmp = cat(final_path, ".tmp");
  File file = File::create_truncate(tmp);
  file.write_all(jsonl);
  file.sync();
  file.close();
  DSLAYER_FAILPOINT("storage.session.rename");
  rename_into_place(tmp, final_path);
  counters().session_flushes.add();
}

void SessionStore::append(const std::string& session, std::string_view jsonl_suffix) {
  DSLAYER_FAILPOINT("storage.session.flush");
  File file = File::open_readwrite(file_path(session));
  file.seek_end();
  file.write_all(jsonl_suffix);
  file.sync();
  counters().session_flushes.add();
}

std::optional<std::string> SessionStore::load(const std::string& session) const {
  const std::string path = file_path(session);
  if (!path_exists(path)) return std::nullopt;
  std::string text = read_file(path);
  // Drop a torn final line: a crash mid-append leaves a prefix without
  // its newline, and a half-written JSON object must not be replayed.
  if (!text.empty() && text.back() != '\n') {
    const std::size_t last_newline = text.find_last_of('\n');
    text.resize(last_newline == std::string::npos ? 0 : last_newline + 1);
  }
  return text;
}

void SessionStore::remove(const std::string& session) {
  remove_file(file_path(session));
  remove_file(cat(file_path(session), ".tmp"));
}

std::vector<std::string> SessionStore::list() const {
  std::vector<std::string> out;
  for (const std::string& name : list_directory(dir_)) {
    if (name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
      continue;
    }
    out.push_back(decode_name(name.substr(0, name.size() - kSuffix.size())));
  }
  return out;
}

}  // namespace dslayer::storage
