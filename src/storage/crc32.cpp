#include "storage/crc32.hpp"

#include <array>

namespace dslayer::storage {

namespace {

// Slice-by-4: four 256-entry tables. The WAL checksums every appended
// record and the snapshot writer checksums multi-megabyte column payloads,
// so the plain 1-byte-per-iteration loop shows up in cold-start profiles.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t;

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c >> 1) ^ ((c & 1u) ? 0xEDB88320u : 0u);
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& tables() {
  static const Tables instance;
  return instance;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& t = tables().t;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFFu] ^ t[2][(crc >> 8) & 0xFFu] ^ t[1][(crc >> 16) & 0xFFu] ^
          t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace dslayer::storage
