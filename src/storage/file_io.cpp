#include "storage/file_io.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

[[noreturn]] void throw_errno(const std::string& op, const std::string& path) {
  throw StorageError(cat(op, " '", path, "': ", std::strerror(errno)));
}

std::string parent_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

int open_checked(const std::string& path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

File File::open_read(const std::string& path) {
  File f;
  f.fd_ = open_checked(path, O_RDONLY | O_CLOEXEC);
  if (f.fd_ < 0) throw_errno("open", path);
  f.path_ = path;
  return f;
}

File File::open_readwrite(const std::string& path) {
  File f;
  f.fd_ = open_checked(path, O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (f.fd_ < 0) throw_errno("open", path);
  f.path_ = path;
  return f;
}

File File::create_truncate(const std::string& path) {
  File f;
  f.fd_ = open_checked(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (f.fd_ < 0) throw_errno("create", path);
  f.path_ = path;
  return f;
}

void File::write_all(const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd_, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write", path_);
    }
    p += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::string File::read_all() const {
  std::string out;
  out.resize(size());
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + off, out.size() - off, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read", path_);
    }
    if (n == 0) {  // shrank underneath us; return what exists
      out.resize(off);
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  return out;
}

std::uint64_t File::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("stat", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void File::seek_end() {
  if (::lseek(fd_, 0, SEEK_END) < 0) throw_errno("seek", path_);
}

void File::truncate(std::uint64_t length) {
  int rc;
  do {
    rc = ::ftruncate(fd_, static_cast<off_t>(length));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("truncate", path_);
}

void File::sync() {
  int rc;
  do {
    rc = ::fsync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) throw_errno("fsync", path_);
}

void File::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void ensure_directory(const std::string& path) {
  if (path.empty()) return;
  // mkdir -p: create each '/'-separated prefix; EEXIST is success.
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (prefix.empty() || prefix == "/") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) throw_errno("mkdir", prefix);
  }
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) throw_errno("unlink", path);
}

std::string read_file(const std::string& path) { return File::open_read(path).read_all(); }

void sync_parent_directory(const std::string& path) {
  const std::string dir = parent_of(path);
  const int fd = open_checked(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno("open dir", dir);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved;
    throw_errno("fsync dir", dir);
  }
}

void rename_into_place(const std::string& tmp_path, const std::string& final_path) {
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) throw_errno("rename", tmp_path);
  sync_parent_directory(final_path);
}

std::vector<std::string> list_directory(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return out;
    throw_errno("opendir", dir);
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st{};
    if (::stat(cat(dir, "/", name).c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      out.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

MappedFile::MappedFile(MappedFile&& other) noexcept : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
}

MappedFile MappedFile::map(const std::string& path) {
  MappedFile m;
  const int fd = open_checked(path, O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("open", path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("stat", path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {  // mmap of length 0 is EINVAL; empty view is fine
    ::close(fd);
    return m;
  }
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);
  if (p == MAP_FAILED) {
    errno = saved;
    throw_errno("mmap", path);
  }
  m.data_ = static_cast<const char*>(p);
  m.size_ = size;
  return m;
}

}  // namespace dslayer::storage
