// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the durable
// catalog's on-disk framing: every write-ahead journal record and every
// snapshot section carries a checksum so a torn or bit-rotted tail is
// detected at recovery time instead of silently replayed (DESIGN.md §15).
//
// Chainable: pass the previous result as `seed` to checksum a logical
// buffer that lives in multiple pieces. The empty-buffer CRC with seed 0
// is 0, matching zlib's crc32().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dslayer::storage {

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view text, std::uint32_t seed = 0) {
  return crc32(text.data(), text.size(), seed);
}

}  // namespace dslayer::storage
