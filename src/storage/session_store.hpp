// Durable session journals: named exploration sessions survive a restart.
//
// The shell engine already records every state-changing command as a
// JSONL journal (dsl/shell.hpp journal_jsonl / restore_from_journal) —
// the same mechanism session migration replays across catalog epochs.
// This store persists that journal per session, one file per session
// under <data-dir>/sessions/, so a rebooted service can rebuild each
// named session by replay against the recovered catalog.
//
// File names: the session name with every byte outside [A-Za-z0-9_-]
// percent-encoded ("%2F" for '/'), plus ".jsonl" — collision-free,
// reversible, and safe on any filesystem.
//
// Write discipline: save() rewrites atomically (tmp + fsync + rename)
// because a journal shrinks on migration compaction; append() extends the
// existing file for the common one-command delta. Either way the record
// boundary is the newline: load() drops an unterminated last line, so a
// crash mid-write costs at most the final un-acknowledged command.
//
// Failpoint sites: storage.session.flush (before any write),
// storage.session.rename (before the atomic rename).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dslayer::storage {

class SessionStore {
 public:
  /// Creates `dir` (mkdir -p) on construction.
  explicit SessionStore(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Atomically replaces the session's journal with `jsonl`.
  void save(const std::string& session, std::string_view jsonl);

  /// Appends `jsonl_suffix` (which must be newline-terminated complete
  /// lines) to the session's journal, creating it if missing, and fsyncs.
  void append(const std::string& session, std::string_view jsonl_suffix);

  /// The persisted journal, or nullopt if the session has none. A torn
  /// (newline-less) final line is dropped, not returned.
  std::optional<std::string> load(const std::string& session) const;

  /// Deletes the session's journal (missing is fine: `!close` after a
  /// crash that lost the file must still succeed).
  void remove(const std::string& session);

  /// Names of every persisted session, sorted.
  std::vector<std::string> list() const;

  static std::string encode_name(const std::string& session);
  static std::string decode_name(const std::string& file_stem);

 private:
  std::string file_path(const std::string& session) const;

  std::string dir_;
};

}  // namespace dslayer::storage
