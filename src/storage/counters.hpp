// Process-wide durability counters, exported as dslayer_storage_* gauges
// by the `!metrics` directive (src/service/metrics.cpp) and gated by the
// cold-start bench (bench/storage_coldstart.cpp).
//
// Relaxed atomics: the WAL appends under the catalog's write path while
// the metrics scrape reads from a service thread; exact cross-counter
// consistency is not needed, monotonicity per counter is.
#pragma once

#include "support/relaxed_counter.hpp"

namespace dslayer::storage {

struct StorageCounters {
  RelaxedCounter wal_appends;          ///< records appended to the catalog WAL
  RelaxedCounter wal_synced_bytes;     ///< bytes covered by completed fsyncs
  RelaxedCounter snapshot_writes;      ///< snapshots successfully published
  RelaxedCounter snapshot_bytes;       ///< bytes in the last published snapshot
  RelaxedCounter snapshot_loads;       ///< snapshots loaded at boot / !restore
  RelaxedCounter recovery_replayed_records;  ///< WAL records replayed
  RelaxedCounter recovery_truncated_bytes;   ///< torn-tail bytes dropped
  RelaxedCounter session_flushes;            ///< session journals persisted
  RelaxedCounter session_flush_failures;     ///< persist attempts that failed
  RelaxedCounter import_rows;                ///< CSV rows imported

  void reset() { *this = StorageCounters{}; }
};

StorageCounters& counters();

}  // namespace dslayer::storage
