// Little-endian binary codec for the durable catalog's record payloads.
//
// Fixed-width scalars (u8/u32/u64/f64) and u32-length-prefixed strings,
// appended to a growable byte buffer. The decoder is a bounds-checked
// cursor over a read-only view: every read validates the remaining length
// and throws StorageError on truncation, so a corrupt journal record
// surfaces as a recovery error instead of undefined behavior. Byte order
// is fixed little-endian — snapshots and journals are movable between
// hosts of the same endianness class (every target we build for).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "dsl/value.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {

class Encoder {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    char raw[4];
    std::memcpy(raw, &v, 4);
    buffer_.append(raw, 4);
  }

  void u64(std::uint64_t v) {
    char raw[8];
    std::memcpy(raw, &v, 8);
    buffer_.append(raw, 8);
  }

  void f64(double v) {
    char raw[8];
    std::memcpy(raw, &v, 8);
    buffer_.append(raw, 8);
  }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buffer_.append(s.data(), s.size());
  }

  void bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  /// Tagged Value: kind byte, then the payload for that kind.
  void value(const dsl::Value& v) {
    u8(static_cast<std::uint8_t>(v.kind()));
    switch (v.kind()) {
      case dsl::Value::Kind::kEmpty: break;
      case dsl::Value::Kind::kNumber: f64(v.as_number()); break;
      case dsl::Value::Kind::kText: str(v.as_text()); break;
      case dsl::Value::Kind::kFlag: u8(v.as_flag() ? 1 : 0); break;
    }
  }

  const std::string& buffer() const { return buffer_; }
  std::string take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  std::uint8_t u8() {
    require(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint32_t u32() {
    require(4);
    std::uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    require(8);
    std::uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  double f64() {
    require(8);
    double v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  std::string_view str() {
    const std::uint32_t n = u32();
    require(n);
    const std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  dsl::Value value() {
    switch (static_cast<dsl::Value::Kind>(u8())) {
      case dsl::Value::Kind::kEmpty: return dsl::Value{};
      case dsl::Value::Kind::kNumber: return dsl::Value::number(f64());
      case dsl::Value::Kind::kText: return dsl::Value::text(std::string(str()));
      case dsl::Value::Kind::kFlag: return dsl::Value::flag(u8() != 0);
    }
    throw StorageError("codec: bad value kind tag");
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (data_.size() - pos_ < n) {
      throw StorageError(cat("codec: truncated record (need ", n, " bytes at offset ",
                                      pos_, ", have ", data_.size() - pos_, ")"));
    }
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace dslayer::storage
