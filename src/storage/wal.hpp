// Write-ahead journal for catalog mutations (DESIGN.md §15).
//
// File layout: an 8-byte magic header ("DSLWAL1\n"), then a stream of
// frames
//
//   [u32 payload length][u32 crc32(payload)][payload bytes]
//
// appended strictly in order. A mutation is acknowledged only after its
// frame is written (and, under the `always` sync mode, fsynced) — so the
// acknowledged prefix of the catalog always survives a crash, and a crash
// mid-append leaves at most one torn frame at the tail.
//
// Recovery scans frames from the start, stops at the first frame whose
// length field runs past EOF or whose CRC mismatches, and truncates the
// file back to the last whole frame: torn tails are dropped exactly once,
// never replayed, and the writer then appends after the valid prefix.
//
// Sync modes (--wal-sync):
//   always    fsync after every append — a crash loses nothing acked;
//   interval  fsync when `sync_interval_bytes` have accumulated (and on
//             checkpoint) — bounded loss window, amortized cost;
//   off       rely on the OS cache — bench/bulk-import mode.
//
// Failpoint sites: storage.wal.open, storage.wal.append (before the frame
// write), storage.wal.sync (before fsync), storage.wal.truncate (before
// the recovery truncate). The crash-recovery chaos test kills the process
// at each of them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/file_io.hpp"

namespace dslayer::storage {

enum class SyncMode : std::uint8_t { kAlways, kInterval, kOff };

/// Parses "always" / "interval" / "off"; throws StorageError otherwise.
SyncMode parse_sync_mode(std::string_view text);
const char* to_string(SyncMode mode);

struct WalOptions {
  SyncMode sync = SyncMode::kAlways;
  std::uint64_t sync_interval_bytes = 1u << 20;  ///< kInterval threshold
};

/// Result of scanning (and repairing) a journal file.
struct WalRecovery {
  std::vector<std::string> records;   ///< every whole, checksummed payload
  std::uint64_t valid_bytes = 0;      ///< file length after repair
  std::uint64_t truncated_bytes = 0;  ///< torn-tail bytes dropped
  bool existed = false;               ///< false: no journal file yet
};

/// Scans `path`, drops any torn tail (ftruncate back to the last whole
/// frame), and returns the valid payloads in append order. A missing file
/// is an empty journal; a file with a corrupt header is an error (the
/// header is written atomically at creation, so it can never be torn).
WalRecovery recover_wal(const std::string& path);

class WalWriter {
 public:
  /// Opens for appending. The caller must have run recover_wal() first —
  /// the writer seeks to EOF and assumes everything before it is whole.
  /// Creates the file (header included, fsynced) if missing.
  WalWriter(std::string path, WalOptions options);

  /// Appends one frame; returns after the bytes are written and — mode
  /// permitting — fsynced. Throws StorageError on any I/O failure.
  void append(std::string_view payload);

  /// Forces an fsync of everything appended so far (no-op if clean).
  void sync();

  /// Checkpoint: truncates the journal back to just the header (the
  /// snapshot now owns the state) and fsyncs.
  void reset();

  std::uint64_t appended_records() const { return appended_records_; }
  std::uint64_t file_bytes() const { return file_bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  WalOptions options_;
  File file_;
  std::uint64_t file_bytes_ = 0;
  std::uint64_t unsynced_bytes_ = 0;
  std::uint64_t appended_records_ = 0;
};

}  // namespace dslayer::storage
