#include "storage/snapshot.hpp"

#include <chrono>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dsl/core_table.hpp"
#include "dsl/serialize.hpp"
#include "storage/codec.hpp"
#include "storage/counters.hpp"
#include "storage/crc32.hpp"
#include "storage/file_io.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"
#include "support/symbol.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

constexpr char kMagic[8] = {'D', 'S', 'L', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr std::size_t kDirEntryBytes = 32;
constexpr std::size_t kAlign = 64;
constexpr std::uint32_t kNoCdo = 0xFFFFFFFFu;

enum SectionTag : std::uint32_t {
  kLayerInfo = 1,
  kSymbols = 2,
  kCdoPaths = 3,
  kCores = 4,
  kTables = 5,
  kTablePayload = 6,
  kConstraints = 7,
};

std::size_t align_up(std::size_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }

/// Compatibility fingerprint: the hierarchy text WITHOUT constraint
/// comment lines. Journaled declarative constraints appear as "#
/// constraint ..." comments in export_hierarchy(), so hashing them would
/// make a snapshot taken after a journaled constraint unloadable against
/// the fresh factory layer it must boot onto.
std::uint32_t hierarchy_fingerprint(const dsl::DesignSpaceLayer& layer) {
  const std::string text = dsl::export_hierarchy(layer);
  std::uint32_t crc = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size(); else ++end;
    const std::string_view line(text.data() + begin, end - begin);
    if (!line.starts_with("# constraint ")) crc = crc32(line, crc);
    begin = end;
  }
  return crc;
}

struct Section {
  std::uint32_t tag = 0;
  std::string payload;
};

struct DirEntry {
  std::uint32_t tag = 0;
  std::uint32_t flags = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
};

// -- writer -----------------------------------------------------------------

/// Appends one column's payloads to the blob (64-byte aligned chunks) and
/// encodes its directory entry. Only kNumber / kText columns reach here.
void encode_column(Encoder& dir, std::string& blob, const dsl::CoreTable::Column& column) {
  const auto append_chunk = [&blob](const void* data, std::size_t bytes) {
    const std::size_t at = align_up(blob.size());
    blob.resize(at, '\0');
    blob.append(static_cast<const char*>(data), bytes);
    return static_cast<std::uint64_t>(at);
  };
  dir.u32(column.symbol);
  dir.u8(static_cast<std::uint8_t>(column.kind));
  const std::size_t present_bytes = column.present.size() * sizeof(std::uint64_t);
  dir.u64(append_chunk(column.present.data(), present_bytes));
  dir.u64(present_bytes);
  if (column.kind == dsl::CoreTable::ColumnKind::kNumber) {
    const std::size_t bytes = column.numbers.size() * sizeof(double);
    dir.u64(append_chunk(column.numbers.data(), bytes));
    dir.u64(bytes);
  } else {
    const std::size_t bytes = column.texts.size() * sizeof(support::Symbol);
    dir.u64(append_chunk(column.texts.data(), bytes));
    dir.u64(bytes);
  }
}

bool table_is_persistable(const dsl::CoreTable& table) {
  const auto pure = [](const std::vector<dsl::CoreTable::Column>& columns) {
    for (const dsl::CoreTable::Column& c : columns) {
      if (c.kind == dsl::CoreTable::ColumnKind::kMixed) return false;
    }
    return true;
  };
  return pure(table.binding_columns()) && pure(table.metric_columns());
}

// -- loader -----------------------------------------------------------------

struct ParsedFile {
  std::shared_ptr<MappedFile> mapping;
  std::vector<DirEntry> directory;

  std::string_view section(std::uint32_t tag, bool required = true) const {
    for (const DirEntry& entry : directory) {
      if (entry.tag == tag) {
        return mapping->view().substr(entry.offset, entry.length);
      }
    }
    if (required) throw StorageError(cat("snapshot: missing section ", tag));
    return {};
  }

  const DirEntry* entry(std::uint32_t tag) const {
    for (const DirEntry& e : directory) {
      if (e.tag == tag) return &e;
    }
    return nullptr;
  }
};

ParsedFile parse_file(const std::string& path, bool verify_payloads) {
  ParsedFile out;
  out.mapping = std::make_shared<MappedFile>(MappedFile::map(path));
  const std::string_view file = out.mapping->view();
  if (file.size() < kHeaderBytes || std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    throw StorageError(cat("snapshot '", path, "': bad magic header"));
  }
  std::uint32_t version;
  std::uint32_t section_count;
  std::uint64_t file_bytes;
  std::uint32_t header_crc;
  std::memcpy(&version, file.data() + 8, 4);
  std::memcpy(&section_count, file.data() + 12, 4);
  std::memcpy(&file_bytes, file.data() + 16, 8);
  std::memcpy(&header_crc, file.data() + 24, 4);
  if (version != kVersion) {
    throw StorageError(cat("snapshot '", path, "': unsupported version ", version));
  }
  if (file_bytes != file.size()) {
    throw StorageError(cat("snapshot '", path, "': size mismatch (header says ", file_bytes,
                           ", file is ", file.size(), ")"));
  }
  const std::size_t dir_end = kHeaderBytes + std::size_t{section_count} * kDirEntryBytes;
  if (dir_end > file.size()) {
    throw StorageError(cat("snapshot '", path, "': directory runs past EOF"));
  }
  // Header+directory CRC, computed with the CRC field itself zeroed.
  std::string head(file.substr(0, dir_end));
  std::memset(head.data() + 24, 0, 4);
  if (crc32(head) != header_crc) {
    throw StorageError(cat("snapshot '", path, "': header checksum mismatch"));
  }
  out.directory.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const char* p = file.data() + kHeaderBytes + std::size_t{i} * kDirEntryBytes;
    DirEntry entry;
    std::memcpy(&entry.tag, p, 4);
    std::memcpy(&entry.flags, p + 4, 4);
    std::memcpy(&entry.offset, p + 8, 8);
    std::memcpy(&entry.length, p + 16, 8);
    std::memcpy(&entry.crc, p + 24, 4);
    if (entry.offset + entry.length > file.size()) {
      throw StorageError(cat("snapshot '", path, "': section ", entry.tag, " runs past EOF"));
    }
    if (verify_payloads &&
        crc32(file.substr(entry.offset, entry.length)) != entry.crc) {
      throw StorageError(cat("snapshot '", path, "': section ", entry.tag,
                             " payload checksum mismatch"));
    }
    out.directory.push_back(entry);
  }
  return out;
}

/// Symbol remap: snapshot id -> live id, with the identity fast path.
struct SymbolRemap {
  std::vector<support::Symbol> map;
  /// Interned spelling per SNAPSHOT id, resolved once here: the per-core
  /// decode loop must not take the symbol table's shared lock millions of
  /// times (symbol_name() locks; at 1M cores that lock dominated boot).
  std::vector<const std::string*> spelling;
  bool identity = true;

  support::Symbol operator()(support::Symbol snap) const {
    if (snap == support::kNoSymbol) return support::kNoSymbol;
    if (snap >= map.size()) throw StorageError("snapshot: symbol id out of range");
    return map[snap];
  }

  /// (live symbol, interned spelling) without any lock or hash.
  std::pair<support::Symbol, const std::string*> resolve(support::Symbol snap) const {
    if (snap >= map.size()) throw StorageError("snapshot: symbol id out of range");
    return {map[snap], spelling[snap]};
  }
};

SymbolRemap build_remap(std::string_view symbols_section) {
  Decoder d(symbols_section);
  const std::uint64_t count = d.u64();
  SymbolRemap remap;
  remap.map.reserve(count);
  remap.spelling.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const support::Symbol live = support::intern_symbol(d.str());
    remap.identity = remap.identity && live == static_cast<support::Symbol>(i);
    remap.map.push_back(live);
    remap.spelling.push_back(&support::symbol_name(live));
  }
  return remap;
}

}  // namespace

SnapshotWriteReport write_snapshot(const dsl::DesignSpaceLayer& layer, const std::string& path,
                                   std::uint64_t journal_seq,
                                   const std::vector<CatalogRecord>* constraints) {
  SnapshotWriteReport report;
  std::vector<Section> sections;

  // kConstraints: journaled declarative constraints, as their records.
  if (constraints != nullptr && !constraints->empty()) {
    Encoder e;
    e.u32(static_cast<std::uint32_t>(constraints->size()));
    for (const CatalogRecord& record : *constraints) e.str(encode_record(record));
    report.constraints = constraints->size();
    sections.push_back({kConstraints, e.take()});
  }

  // kSymbols: the whole global table, id order.
  {
    Encoder e;
    const std::vector<std::string_view> names = support::SymbolTable::global().snapshot();
    e.u64(names.size());
    for (const std::string_view name : names) e.str(name);
    sections.push_back({kSymbols, e.take()});
  }

  // kCdoPaths: dense cdo ids in space().all() order.
  std::unordered_map<const dsl::Cdo*, std::uint32_t> cdo_ids;
  const std::vector<const dsl::Cdo*> all_cdos = layer.space().all();
  {
    Encoder e;
    e.u64(all_cdos.size());
    for (std::size_t i = 0; i < all_cdos.size(); ++i) {
      cdo_ids.emplace(all_cdos[i], static_cast<std::uint32_t>(i));
      e.str(all_cdos[i]->path());
    }
    sections.push_back({kCdoPaths, e.take()});
  }

  // kCores: libraries in attach order, cores in add order — exactly the
  // index_cores() visit order restore_index() needs.
  {
    Encoder e;
    const std::vector<const dsl::ReuseLibrary*> libraries = layer.libraries();
    e.u32(static_cast<std::uint32_t>(libraries.size()));
    for (const dsl::ReuseLibrary* library : libraries) {
      e.str(library->name());
      const std::vector<const dsl::Core*> cores = library->cores();
      e.u64(cores.size());
      for (const dsl::Core* core : cores) {
        ++report.cores;
        e.str(core->name());
        e.u32(core->class_symbol());
        const dsl::Cdo* cdo = layer.indexed_cdo(*core);
        const auto it = cdo == nullptr ? cdo_ids.end() : cdo_ids.find(cdo);
        e.u32(it == cdo_ids.end() ? kNoCdo : it->second);
        e.u32(static_cast<std::uint32_t>(core->bindings().size()));
        for (const dsl::CoreBinding& b : core->bindings()) {
          e.u32(b.symbol);
          e.value(b.value);
        }
        e.u32(static_cast<std::uint32_t>(core->metrics().size()));
        for (const dsl::CoreMetric& m : core->metrics()) {
          e.u32(m.symbol);
          e.f64(m.value);
        }
        e.u32(static_cast<std::uint32_t>(core->views().size()));
        for (const dsl::CoreView& view : core->views()) {
          e.str(view.level);
          e.str(view.artifact);
        }
      }
    }
    sections.push_back({kCores, e.take()});
  }

  // kTables + kTablePayload: every primed, fully-typed filter plan.
  {
    Encoder dir;
    std::string blob;
    std::uint32_t persisted = 0;
    Encoder tables_body;
    for (const dsl::Cdo* cdo : all_cdos) {
      const dsl::CoreFilterPlan* plan = layer.peek_filter_plan(*cdo);
      if (plan == nullptr || !table_is_persistable(plan->table)) continue;
      ++persisted;
      tables_body.u32(cdo_ids.at(cdo));
      tables_body.u64(plan->table.rows());
      tables_body.u32(static_cast<std::uint32_t>(plan->table.binding_column_count()));
      tables_body.u32(static_cast<std::uint32_t>(plan->table.metric_column_count()));
      for (const dsl::CoreTable::Column& c : plan->table.binding_columns()) {
        encode_column(tables_body, blob, c);
      }
      for (const dsl::CoreTable::Column& c : plan->table.metric_columns()) {
        encode_column(tables_body, blob, c);
      }
    }
    report.tables = persisted;
    dir.u32(persisted);
    dir.bytes(tables_body.buffer().data(), tables_body.size());
    sections.push_back({kTables, dir.take()});
    sections.push_back({kTablePayload, std::move(blob)});
  }

  // kLayerInfo (prepended): name, hierarchy fingerprint, core count,
  // absorbed journal sequence.
  {
    Encoder e;
    e.str(layer.name());
    e.u32(hierarchy_fingerprint(layer));
    e.u64(report.cores);
    e.u64(journal_seq);
    sections.insert(sections.begin(), {kLayerInfo, e.take()});
  }

  // Layout & assembly.
  const std::size_t dir_bytes = kHeaderBytes + sections.size() * kDirEntryBytes;
  std::vector<DirEntry> directory(sections.size());
  std::size_t offset = align_up(dir_bytes);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    directory[i].tag = sections[i].tag;
    directory[i].offset = offset;
    directory[i].length = sections[i].payload.size();
    directory[i].crc = crc32(sections[i].payload);
    offset = align_up(offset + sections[i].payload.size());
  }
  // The file ends exactly after the last payload (no trailing pad).
  const std::size_t file_bytes =
      directory.empty() ? dir_bytes
                        : static_cast<std::size_t>(directory.back().offset +
                                                   directory.back().length);

  std::string file;
  file.reserve(file_bytes);
  file.append(kMagic, sizeof(kMagic));
  const auto put32 = [&file](std::uint32_t v) {
    char raw[4];
    std::memcpy(raw, &v, 4);
    file.append(raw, 4);
  };
  const auto put64 = [&file](std::uint64_t v) {
    char raw[8];
    std::memcpy(raw, &v, 8);
    file.append(raw, 8);
  };
  put32(kVersion);
  put32(static_cast<std::uint32_t>(sections.size()));
  put64(file_bytes);
  put32(0);  // header CRC, patched below
  put32(0);  // pad to 32
  for (const DirEntry& entry : directory) {
    put32(entry.tag);
    put32(entry.flags);
    put64(entry.offset);
    put64(entry.length);
    put32(entry.crc);
    put32(0);
  }
  const std::uint32_t header_crc = crc32(file);
  std::memcpy(file.data() + 24, &header_crc, 4);
  for (std::size_t i = 0; i < sections.size(); ++i) {
    file.resize(directory[i].offset, '\0');
    file.append(sections[i].payload);
    sections[i].payload.clear();
    sections[i].payload.shrink_to_fit();
  }

  // Atomic publication.
  const std::string tmp = cat(path, ".tmp");
  DSLAYER_FAILPOINT("storage.snapshot.write");
  File out = File::create_truncate(tmp);
  out.write_all(file);
  DSLAYER_FAILPOINT("storage.snapshot.sync");
  out.sync();
  out.close();
  DSLAYER_FAILPOINT("storage.snapshot.rename");
  rename_into_place(tmp, path);

  report.bytes = file.size();
  counters().snapshot_writes.add();
  counters().snapshot_bytes.set(file.size());
  return report;
}

SnapshotLoadReport load_snapshot(dsl::DesignSpaceLayer& layer, const std::string& path,
                                 const SnapshotLoadOptions& options) {
  SnapshotLoadReport report;
  auto mark = std::chrono::steady_clock::now();
  const auto lap = [&mark] {
    const auto now = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(now - mark).count();
    mark = now;
    return ms;
  };
  ParsedFile file = parse_file(path, options.verify_payloads);
  report.phases.open_ms = lap();

  // kLayerInfo: refuse to load against a different layer build.
  std::uint64_t expected_cores = 0;
  {
    Decoder d(file.section(kLayerInfo));
    const std::string_view name = d.str();
    if (name != layer.name()) {
      throw StorageError(cat("snapshot '", path, "': layer name '", std::string(name),
                             "' does not match '", layer.name(), "'"));
    }
    const std::uint32_t fingerprint = d.u32();
    const std::uint32_t live = hierarchy_fingerprint(layer);
    if (fingerprint != live) {
      throw StorageError(cat("snapshot '", path,
                             "': hierarchy fingerprint mismatch — the snapshot was taken "
                             "against a different layer build (snapshot ",
                             fingerprint, ", live ", live, ")"));
    }
    expected_cores = d.u64();
    report.journal_seq = d.u64();
  }

  const SymbolRemap remap = build_remap(file.section(kSymbols));
  report.symbol_identity = remap.identity;

  // kCdoPaths -> live Cdo pointers.
  std::vector<const dsl::Cdo*> cdos;
  {
    Decoder d(file.section(kCdoPaths));
    const std::uint64_t count = d.u64();
    cdos.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::string path_text(d.str());
      const dsl::Cdo* cdo = layer.space().find(path_text);
      if (cdo == nullptr) {
        throw StorageError(cat("snapshot '", path, "': unknown CDO path '", path_text, "'"));
      }
      cdos.push_back(cdo);
    }
  }

  report.phases.symbols_ms = lap();

  // kCores: rebuild libraries and the index assignment list.
  layer.clear_catalog();
  std::vector<std::pair<const dsl::Core*, const dsl::Cdo*>> assignments;
  assignments.reserve(expected_cores);
  {
    Decoder d(file.section(kCores));
    const std::uint32_t libraries = d.u32();
    for (std::uint32_t l = 0; l < libraries; ++l) {
      dsl::ReuseLibrary& library = layer.add_library(std::string(d.str()));
      const std::uint64_t cores = d.u64();
      library.reserve(cores);
      for (std::uint64_t c = 0; c < cores; ++c) {
        std::string core_name(d.str());
        const auto [class_symbol, class_path] = remap.resolve(d.u32());
        const std::uint32_t cdo_id = d.u32();
        dsl::Core core = dsl::Core::restored(std::move(core_name), class_symbol, class_path);
        const std::uint32_t bindings = d.u32();
        std::vector<dsl::CoreBinding> adopted_bindings;
        adopted_bindings.reserve(bindings);
        for (std::uint32_t i = 0; i < bindings; ++i) {
          const auto [symbol, name] = remap.resolve(d.u32());
          adopted_bindings.push_back({symbol, name, d.value()});
        }
        const std::uint32_t metrics = d.u32();
        std::vector<dsl::CoreMetric> adopted_metrics;
        adopted_metrics.reserve(metrics);
        for (std::uint32_t i = 0; i < metrics; ++i) {
          const auto [symbol, name] = remap.resolve(d.u32());
          adopted_metrics.push_back({symbol, name, d.f64()});
        }
        core.adopt(std::move(adopted_bindings), std::move(adopted_metrics));
        const std::uint32_t views = d.u32();
        for (std::uint32_t i = 0; i < views; ++i) {
          std::string level(d.str());
          std::string artifact(d.str());
          core.add_view(std::move(level), std::move(artifact));
        }
        const dsl::Core& stored = library.add(std::move(core));
        ++report.cores;
        if (cdo_id != kNoCdo) {
          if (cdo_id >= cdos.size()) {
            throw StorageError(cat("snapshot '", path, "': cdo id out of range"));
          }
          assignments.emplace_back(&stored, cdos[cdo_id]);
        }
      }
    }
  }
  if (report.cores != expected_cores) {
    throw StorageError(cat("snapshot '", path, "': core count mismatch (directory says ",
                           expected_cores, ", decoded ", report.cores, ")"));
  }
  report.phases.cores_ms = lap();
  layer.restore_index(assignments);
  report.phases.index_ms = lap();

  // kConstraints: re-apply the journaled declarative constraints. Applied
  // idempotently (a reload's layer still carries them — clear_catalog()
  // leaves constraints alone) and BEFORE the tables are installed, since
  // add_constraint() invalidates every filter plan.
  {
    const std::string_view section = file.section(kConstraints, /*required=*/false);
    if (!section.empty()) {
      Decoder d(section);
      const std::uint32_t count = d.u32();
      report.constraint_records.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        CatalogRecord record = decode_record(d.str());
        if (record.kind != CatalogRecord::Kind::kAddConstraint) {
          throw StorageError(cat("snapshot '", path, "': non-constraint record in kConstraints"));
        }
        if (!layer_has_constraint(layer, record.id)) apply_record(layer, record);
        report.constraint_records.push_back(std::move(record));
      }
    }
  }

  // kTables: rebuild the primed filter plans, aliasing payloads in place.
  {
    const std::string_view payload = file.section(kTablePayload);
    Decoder d(file.section(kTables));
    const std::uint32_t tables = d.u32();
    const auto take_chunk = [&](std::uint64_t off, std::uint64_t bytes) {
      if (off + bytes > payload.size()) {
        throw StorageError(cat("snapshot '", path, "': table payload out of range"));
      }
      return payload.data() + off;
    };
    for (std::uint32_t t = 0; t < tables; ++t) {
      const std::uint32_t cdo_id = d.u32();
      if (cdo_id >= cdos.size()) {
        throw StorageError(cat("snapshot '", path, "': table cdo id out of range"));
      }
      const dsl::Cdo& cdo = *cdos[cdo_id];
      const std::uint64_t rows = d.u64();
      const std::uint64_t words = (rows + 63) / 64;
      const std::uint64_t padded = words * 64;
      const std::uint32_t binding_count = d.u32();
      const std::uint32_t metric_count = d.u32();

      const auto decode_columns = [&](std::uint32_t count) {
        std::vector<dsl::CoreTable::Column> columns;
        columns.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
          dsl::CoreTable::Column column;
          column.symbol = remap(d.u32());
          column.kind = static_cast<dsl::CoreTable::ColumnKind>(d.u8());
          const std::uint64_t present_off = d.u64();
          const std::uint64_t present_bytes = d.u64();
          const std::uint64_t data_off = d.u64();
          const std::uint64_t data_bytes = d.u64();
          if (present_bytes != words * sizeof(std::uint64_t)) {
            throw StorageError(cat("snapshot '", path, "': presence bitmap size mismatch"));
          }
          column.present.alias(
              reinterpret_cast<const std::uint64_t*>(take_chunk(present_off, present_bytes)),
              words);
          if (column.kind == dsl::CoreTable::ColumnKind::kNumber) {
            if (data_bytes != padded * sizeof(double)) {
              throw StorageError(cat("snapshot '", path, "': number column size mismatch"));
            }
            column.numbers.alias(
                reinterpret_cast<const double*>(take_chunk(data_off, data_bytes)), padded);
          } else if (column.kind == dsl::CoreTable::ColumnKind::kText) {
            if (data_bytes != padded * sizeof(support::Symbol)) {
              throw StorageError(cat("snapshot '", path, "': text column size mismatch"));
            }
            const auto* raw =
                reinterpret_cast<const support::Symbol*>(take_chunk(data_off, data_bytes));
            if (remap.identity) {
              column.texts.alias(raw, padded);
            } else {
              // A different intern order: rewrite through the remap into
              // an owned buffer (correctness path; the identity alias is
              // the common case).
              std::vector<support::Symbol> rewritten(padded);
              for (std::uint64_t r = 0; r < padded; ++r) rewritten[r] = remap(raw[r]);
              column.texts = std::move(rewritten);
            }
          } else {
            throw StorageError(cat("snapshot '", path, "': unexpected mixed column"));
          }
          report.aliased_bytes += present_bytes;
          if (column.kind != dsl::CoreTable::ColumnKind::kText || remap.identity) {
            report.aliased_bytes += data_bytes;
          }
          columns.push_back(std::move(column));
        }
        return columns;
      };

      std::vector<dsl::CoreTable::Column> binding_columns = decode_columns(binding_count);
      std::vector<dsl::CoreTable::Column> metric_columns = decode_columns(metric_count);

      // Row identity: the table was built over cores_under(cdo) at write
      // time, and restore_index() reproduced that exact order.
      const std::vector<const dsl::Core*>& under = layer.cores_under(cdo);
      if (under.size() != rows) {
        throw StorageError(cat("snapshot '", path, "': table row count mismatch for '",
                               cdo.path(), "' (table ", rows, ", index ", under.size(), ")"));
      }
      layer.install_filter_plan(
          cdo, dsl::CoreTable(under, std::move(binding_columns), std::move(metric_columns),
                              file.mapping));
      ++report.tables;
    }
  }

  report.phases.tables_ms = lap();
  counters().snapshot_loads.add();
  return report;
}

}  // namespace dslayer::storage
