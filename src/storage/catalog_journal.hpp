// Logical journal records for catalog mutations.
//
// Everything that changes the DATA of a design space layer at run time —
// cores arriving from IP providers (singly or as import batches),
// declarative consistency constraints, and re-index requests — is
// expressible as a CatalogRecord: a small struct that encodes to one WAL
// frame and applies deterministically to a layer. Replaying the journal
// against the same code-defined hierarchy reproduces the catalog exactly
// (byte-identical under dsl::export_layer — the chaos test's oracle).
//
// Out of scope, deliberately: lambda-based constraints, behavioral
// descriptions, custom core filters. They are code, not data — the same
// boundary dsl/serialize.hpp draws — and are rebuilt by the layer factory
// before replay begins. Declarative constraints (inconsistent_when /
// dominance_when) are pure data and journal fine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dsl/constraint.hpp"
#include "dsl/core_library.hpp"
#include "dsl/layer.hpp"

namespace dslayer::storage {

/// One core, as data (no interned pointers — safe to decode before the
/// symbols exist). Bindings/metrics are kept in the core's name-sorted
/// order so replay can use the Core::adopt() bulk path.
struct CoreRecord {
  std::string name;
  std::string class_path;
  std::vector<std::pair<std::string, dsl::Value>> bindings;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<dsl::CoreView> views;
};

/// Snapshot of a live core into record form.
CoreRecord to_record(const dsl::Core& core);

struct CatalogRecord {
  enum class Kind : std::uint8_t {
    kAddCores = 1,       ///< library + one or more cores
    kAddConstraint = 2,  ///< declarative predicate constraint
    kIndexCores = 3,     ///< re-index request (an epoch boundary)
  };

  Kind kind = Kind::kAddCores;

  // kAddCores
  std::string library;
  std::vector<CoreRecord> cores;

  // kAddConstraint
  std::string id;
  std::string doc;
  bool dominance = false;  ///< dominance_when vs inconsistent_when
  std::vector<std::string> independent;  ///< PropertyPath::to_string() forms
  std::vector<std::string> dependent;
  std::vector<dsl::PredicateAtom> atoms;

  static CatalogRecord add_cores(std::string library, std::vector<CoreRecord> cores);
  static CatalogRecord add_constraint(const dsl::ConsistencyConstraint& cc);
  static CatalogRecord index_cores();
};

/// Binary frame payload for a record (storage/codec.hpp framing).
std::string encode_record(const CatalogRecord& record);

/// Inverse of encode_record; throws StorageError on a malformed payload.
CatalogRecord decode_record(std::string_view payload);

/// Applies one record to a layer: kAddCores creates the library on first
/// use and bulk-adopts the cores; kAddConstraint rebuilds the declarative
/// constraint; kIndexCores runs layer.index_cores(). Throws (dsl errors
/// pass through) on semantic conflicts, e.g. a duplicate core name.
void apply_record(dsl::DesignSpaceLayer& layer, const CatalogRecord& record);

/// True if the layer already carries a constraint with this id. Replay
/// paths use it to apply kAddConstraint records idempotently: a journaled
/// constraint id was accepted by add_constraint() once, so an id match on
/// re-replay (reload, snapshot + tail) is the same constraint, and
/// clear_catalog() deliberately leaves constraints in place.
bool layer_has_constraint(const dsl::DesignSpaceLayer& layer, std::string_view id);

}  // namespace dslayer::storage
