#include "storage/catalog_journal.hpp"

#include <algorithm>

#include "storage/codec.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/symbol.hpp"

namespace dslayer::storage {

namespace {

using dslayer::cat;

constexpr std::uint8_t kFormatVersion = 1;

void encode_atom(Encoder& e, const dsl::PredicateAtom& atom) {
  e.str(atom.lhs);
  e.str(atom.lhs_factor);
  e.u8(static_cast<std::uint8_t>(atom.cmp));
  e.str(atom.rhs_property);
  e.value(atom.rhs_const);
}

dsl::PredicateAtom decode_atom(Decoder& d) {
  dsl::PredicateAtom atom;
  atom.lhs = std::string(d.str());
  atom.lhs_factor = std::string(d.str());
  const std::uint8_t cmp = d.u8();
  if (cmp > static_cast<std::uint8_t>(dsl::PredicateAtom::Cmp::kGe)) {
    throw StorageError("journal record: bad predicate comparator");
  }
  atom.cmp = static_cast<dsl::PredicateAtom::Cmp>(cmp);
  atom.rhs_property = std::string(d.str());
  atom.rhs_const = d.value();
  return atom;
}

void encode_core(Encoder& e, const CoreRecord& core) {
  e.str(core.name);
  e.str(core.class_path);
  e.u32(static_cast<std::uint32_t>(core.bindings.size()));
  for (const auto& [name, value] : core.bindings) {
    e.str(name);
    e.value(value);
  }
  e.u32(static_cast<std::uint32_t>(core.metrics.size()));
  for (const auto& [name, value] : core.metrics) {
    e.str(name);
    e.f64(value);
  }
  e.u32(static_cast<std::uint32_t>(core.views.size()));
  for (const dsl::CoreView& view : core.views) {
    e.str(view.level);
    e.str(view.artifact);
  }
}

CoreRecord decode_core(Decoder& d) {
  CoreRecord core;
  core.name = std::string(d.str());
  core.class_path = std::string(d.str());
  const std::uint32_t bindings = d.u32();
  core.bindings.reserve(bindings);
  for (std::uint32_t i = 0; i < bindings; ++i) {
    std::string name(d.str());
    core.bindings.emplace_back(std::move(name), d.value());
  }
  const std::uint32_t metrics = d.u32();
  core.metrics.reserve(metrics);
  for (std::uint32_t i = 0; i < metrics; ++i) {
    std::string name(d.str());
    core.metrics.emplace_back(std::move(name), d.f64());
  }
  const std::uint32_t views = d.u32();
  core.views.reserve(views);
  for (std::uint32_t i = 0; i < views; ++i) {
    std::string level(d.str());
    std::string artifact(d.str());
    core.views.push_back({std::move(level), std::move(artifact)});
  }
  return core;
}

}  // namespace

CoreRecord to_record(const dsl::Core& core) {
  CoreRecord out;
  out.name = core.name();
  out.class_path = core.class_path();
  out.bindings.reserve(core.bindings().size());
  for (const dsl::CoreBinding& b : core.bindings()) out.bindings.emplace_back(*b.name, b.value);
  out.metrics.reserve(core.metrics().size());
  for (const dsl::CoreMetric& m : core.metrics()) out.metrics.emplace_back(*m.name, m.value);
  out.views = core.views();
  return out;
}

CatalogRecord CatalogRecord::add_cores(std::string library, std::vector<CoreRecord> cores) {
  CatalogRecord r;
  r.kind = Kind::kAddCores;
  r.library = std::move(library);
  r.cores = std::move(cores);
  return r;
}

CatalogRecord CatalogRecord::add_constraint(const dsl::ConsistencyConstraint& cc) {
  DSLAYER_REQUIRE(cc.compilable(), "only declarative (atom-based) constraints are journalable");
  CatalogRecord r;
  r.kind = Kind::kAddConstraint;
  r.id = cc.id();
  r.doc = cc.doc();
  r.dominance = cc.kind() == dsl::RelationKind::kDominanceElimination;
  for (const dsl::PropertyPath& p : cc.independent()) r.independent.push_back(p.to_string());
  for (const dsl::PropertyPath& p : cc.dependent()) r.dependent.push_back(p.to_string());
  r.atoms = cc.atoms();
  return r;
}

CatalogRecord CatalogRecord::index_cores() {
  CatalogRecord r;
  r.kind = Kind::kIndexCores;
  return r;
}

std::string encode_record(const CatalogRecord& record) {
  Encoder e;
  e.u8(kFormatVersion);
  e.u8(static_cast<std::uint8_t>(record.kind));
  switch (record.kind) {
    case CatalogRecord::Kind::kAddCores:
      e.str(record.library);
      e.u32(static_cast<std::uint32_t>(record.cores.size()));
      for (const CoreRecord& core : record.cores) encode_core(e, core);
      break;
    case CatalogRecord::Kind::kAddConstraint:
      e.str(record.id);
      e.str(record.doc);
      e.u8(record.dominance ? 1 : 0);
      e.u32(static_cast<std::uint32_t>(record.independent.size()));
      for (const std::string& p : record.independent) e.str(p);
      e.u32(static_cast<std::uint32_t>(record.dependent.size()));
      for (const std::string& p : record.dependent) e.str(p);
      e.u32(static_cast<std::uint32_t>(record.atoms.size()));
      for (const dsl::PredicateAtom& atom : record.atoms) encode_atom(e, atom);
      break;
    case CatalogRecord::Kind::kIndexCores:
      break;
  }
  return e.take();
}

CatalogRecord decode_record(std::string_view payload) {
  Decoder d(payload);
  const std::uint8_t version = d.u8();
  if (version != kFormatVersion) {
    throw StorageError(cat("journal record: unsupported version ", version));
  }
  CatalogRecord record;
  const std::uint8_t kind = d.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(CatalogRecord::Kind::kAddCores): {
      record.kind = CatalogRecord::Kind::kAddCores;
      record.library = std::string(d.str());
      const std::uint32_t cores = d.u32();
      record.cores.reserve(cores);
      for (std::uint32_t i = 0; i < cores; ++i) record.cores.push_back(decode_core(d));
      break;
    }
    case static_cast<std::uint8_t>(CatalogRecord::Kind::kAddConstraint): {
      record.kind = CatalogRecord::Kind::kAddConstraint;
      record.id = std::string(d.str());
      record.doc = std::string(d.str());
      record.dominance = d.u8() != 0;
      const std::uint32_t independent = d.u32();
      record.independent.reserve(independent);
      for (std::uint32_t i = 0; i < independent; ++i) record.independent.emplace_back(d.str());
      const std::uint32_t dependent = d.u32();
      record.dependent.reserve(dependent);
      for (std::uint32_t i = 0; i < dependent; ++i) record.dependent.emplace_back(d.str());
      const std::uint32_t atoms = d.u32();
      record.atoms.reserve(atoms);
      for (std::uint32_t i = 0; i < atoms; ++i) record.atoms.push_back(decode_atom(d));
      break;
    }
    case static_cast<std::uint8_t>(CatalogRecord::Kind::kIndexCores):
      record.kind = CatalogRecord::Kind::kIndexCores;
      break;
    default:
      throw StorageError(cat("journal record: unknown kind ", kind));
  }
  if (!d.done()) {
    throw StorageError(cat("journal record: ", d.remaining(), " trailing bytes"));
  }
  return record;
}

void apply_record(dsl::DesignSpaceLayer& layer, const CatalogRecord& record) {
  switch (record.kind) {
    case CatalogRecord::Kind::kAddCores: {
      dsl::ReuseLibrary* library = layer.library(record.library);
      if (library == nullptr) library = &layer.add_library(record.library);
      library->reserve(library->size() + record.cores.size());
      for (const CoreRecord& entry : record.cores) {
        dsl::Core core(entry.name, entry.class_path);
        std::vector<dsl::CoreBinding> bindings;
        bindings.reserve(entry.bindings.size());
        for (const auto& [name, value] : entry.bindings) {
          const support::Symbol symbol = support::intern_symbol(name);
          bindings.push_back({symbol, &support::symbol_name(symbol), value});
        }
        std::vector<dsl::CoreMetric> metrics;
        metrics.reserve(entry.metrics.size());
        for (const auto& [name, value] : entry.metrics) {
          const support::Symbol symbol = support::intern_symbol(name);
          metrics.push_back({symbol, &support::symbol_name(symbol), value});
        }
        // Records written from a live Core are already name-sorted; hand-
        // built ones (the CSV importer) may not be — adopt() requires it.
        const auto by_name = [](const auto& a, const auto& b) { return *a.name < *b.name; };
        if (!std::is_sorted(bindings.begin(), bindings.end(), by_name)) {
          std::sort(bindings.begin(), bindings.end(), by_name);
        }
        if (!std::is_sorted(metrics.begin(), metrics.end(), by_name)) {
          std::sort(metrics.begin(), metrics.end(), by_name);
        }
        core.adopt(std::move(bindings), std::move(metrics));
        for (const dsl::CoreView& view : entry.views) core.add_view(view.level, view.artifact);
        library->add(std::move(core));
      }
      break;
    }
    case CatalogRecord::Kind::kAddConstraint: {
      std::vector<dsl::PropertyPath> independent;
      independent.reserve(record.independent.size());
      for (const std::string& p : record.independent) {
        independent.push_back(dsl::PropertyPath::parse(p));
      }
      std::vector<dsl::PropertyPath> dependent;
      dependent.reserve(record.dependent.size());
      for (const std::string& p : record.dependent) {
        dependent.push_back(dsl::PropertyPath::parse(p));
      }
      layer.add_constraint(
          record.dominance
              ? dsl::ConsistencyConstraint::dominance_when(record.id, record.doc,
                                                           std::move(independent),
                                                           std::move(dependent), record.atoms)
              : dsl::ConsistencyConstraint::inconsistent_when(record.id, record.doc,
                                                              std::move(independent),
                                                              std::move(dependent),
                                                              record.atoms));
      break;
    }
    case CatalogRecord::Kind::kIndexCores:
      layer.index_cores();
      break;
  }
}

bool layer_has_constraint(const dsl::DesignSpaceLayer& layer, std::string_view id) {
  for (const dsl::ConsistencyConstraint& cc : layer.constraints()) {
    if (cc.id() == id) return true;
  }
  return false;
}

}  // namespace dslayer::storage
