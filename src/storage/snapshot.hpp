// Catalog snapshots: the mmap-friendly cold-start format (DESIGN.md §15).
//
// A snapshot freezes the DATA of a layer — libraries, cores, the
// core->CDO index, and the primed columnar filter tables — into one file
// that a fresh process loads in milliseconds instead of re-importing and
// re-indexing a million-core catalog for tens of seconds. The hierarchy
// and code-authored constraints are NOT stored (they are code); a
// fingerprint of the CDO tree (dsl::export_hierarchy() minus constraint
// comments — journaled constraints must not shift it) is, so loading
// against a different layer build fails loudly instead of mis-resolving
// symbols. Journaled declarative constraints ARE stored, as their
// CatalogRecords (section kConstraints), and re-applied idempotently.
//
// File layout
//   header   : magic "DSLSNAP1", u32 version, u32 section count,
//              u64 total file bytes, u32 crc32(header+directory with this
//              field zeroed)
//   directory: per section {u32 tag, u32 flags, u64 offset, u64 length,
//              u32 crc32(payload), u32 pad}
//   sections : payloads, each 64-byte aligned
//
// Sections
//   kLayerInfo  layer name, hierarchy fingerprint, core count
//   kSymbols    every interned spelling, id order — the remap basis
//   kCdoPaths   every CDO path, space().all() order — dense cdo ids
//   kCores      per library, per core: name, class symbol, indexed cdo
//               id, bindings (symbol, value), metrics (symbol, f64), views
//   kTables     per primed CDO: column directory (symbols, kinds) with
//               offsets into kTablePayload
//   kTablePayload raw column words (presence bitmaps, doubles, symbols),
//               64-byte aligned — the loader ALIASES these through a
//               shared mmap instead of copying (CoreTable keepalive)
//
// Integrity: the header/directory CRC is always verified (it is small).
// Section payload CRCs are verified when `verify_payloads` is set — the
// publish protocol (write tmp, fsync, rename) means a file under the
// final name is never torn, so the default boot path skips re-hashing
// hundreds of megabytes and stays in the page-cache-speed regime.
//
// Symbol remap: the loader interns every snapshot symbol and builds an
// old->new id map. When the map is the identity (same layer binary, same
// boot order — the common case) text columns alias the file directly;
// otherwise they are rewritten through the map into owned buffers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsl/layer.hpp"
#include "storage/catalog_journal.hpp"

namespace dslayer::storage {

struct SnapshotWriteReport {
  std::uint64_t bytes = 0;
  std::uint64_t cores = 0;
  std::uint64_t tables = 0;       ///< primed filter plans persisted
  std::uint64_t constraints = 0;  ///< journaled constraint records persisted
};

/// Serializes `layer` into `path` atomically: writes "<path>.tmp", fsyncs,
/// renames into place, fsyncs the directory. `journal_seq` is the highest
/// journal sequence number absorbed into this snapshot — boot skips WAL
/// records at or below it, which makes the checkpoint protocol (publish
/// snapshot, then reset WAL) crash-safe in between. `constraints` (may be
/// null) are the journaled kAddConstraint records absorbed so far: the
/// snapshot stores cores and tables as columns but constraints as their
/// journal records, because a ConsistencyConstraint is rebuilt cheaply
/// and absorbing them any other way would lose them at WAL reset.
/// Failpoints:
/// storage.snapshot.write / storage.snapshot.sync / storage.snapshot.rename.
/// The layer must be quiescent (the service calls this under its read
/// lock after a drain).
SnapshotWriteReport write_snapshot(const dsl::DesignSpaceLayer& layer, const std::string& path,
                                   std::uint64_t journal_seq = 0,
                                   const std::vector<CatalogRecord>* constraints = nullptr);

/// Where boot time went, for the cold-start bench and `!stats`. The sum
/// is load_snapshot()'s wall time.
struct SnapshotLoadPhases {
  double open_ms = 0.0;         ///< mmap + header/directory verify (+ payload CRCs)
  double symbols_ms = 0.0;      ///< symbol intern + remap + CDO path resolve
  double cores_ms = 0.0;        ///< kCores decode into libraries
  double index_ms = 0.0;        ///< restore_index (core->CDO + subtree rollup)
  double tables_ms = 0.0;       ///< constraints + filter plan install (mmap alias)
};

struct SnapshotLoadReport {
  std::uint64_t cores = 0;
  std::uint64_t tables = 0;          ///< filter plans restored
  std::uint64_t aliased_bytes = 0;   ///< column payload bytes served from the mmap
  std::uint64_t journal_seq = 0;     ///< highest journal sequence absorbed
  bool symbol_identity = false;      ///< remap was the identity (alias fast path)
  /// The snapshot's persisted constraint records, decoded. Each was
  /// applied to the layer unless it already carried the id (idempotent
  /// re-load); the caller (DurableCatalog) keeps them for the next
  /// checkpoint's snapshot.
  std::vector<CatalogRecord> constraint_records;
  SnapshotLoadPhases phases;
};

struct SnapshotLoadOptions {
  /// Re-hash every section payload against its directory CRC before use.
  bool verify_payloads = false;
};

/// Loads `path` into `layer`, which must carry the same code-defined
/// hierarchy/constraints the snapshot was taken against (checked by
/// fingerprint). Replaces the layer's libraries and index wholesale
/// (clear_catalog + restore_index) and installs the persisted filter
/// plans. The snapshot file stays mmapped for the life of the restored
/// tables (CoreTable keepalive). Throws StorageError on any mismatch.
SnapshotLoadReport load_snapshot(dsl::DesignSpaceLayer& layer, const std::string& path,
                                 const SnapshotLoadOptions& options = {});

}  // namespace dslayer::storage
