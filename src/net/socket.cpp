#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/strings.hpp"

namespace dslayer::net {

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

int Socket::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

namespace {

void set_error(std::string* error, const char* what) {
  if (error != nullptr) *error = cat(what, ": ", std::strerror(errno));
}

}  // namespace

Socket listen_tcp(std::uint16_t port, std::string* error, int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    set_error(error, "socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind");
    return Socket();
  }
  if (::listen(sock.fd(), backlog) != 0) {
    set_error(error, "listen");
    return Socket();
  }
  return sock;
}

Socket connect_local(std::uint16_t port, std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!sock.valid()) {
    set_error(error, "socket");
    return Socket();
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect");
    return Socket();
  }
  return sock;
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return 0;
  return ntohs(addr.sin_port);
}

}  // namespace dslayer::net
