// Incremental newline framing for non-blocking sockets.
//
// A TCP stream hands the server arbitrary byte chunks; the protocol is
// one request per '\n'-terminated line. LineBuffer accumulates chunks
// and yields complete lines one at a time, with two properties the
// server depends on:
//
//   * Bounded memory per connection. A line longer than max_line_bytes
//     is reported as kOversized exactly once and the rest of it is
//     discarded up to the next '\n' — the connection survives (it gets
//     an invalid-request response), and a client streaming an unbounded
//     "line" cannot balloon the buffer.
//   * '\r' tolerance. A trailing "\r\n" is treated as "\n" so netcat-
//     and telnet-style clients work unmodified.
//
// Single-threaded: owned by one connection, driven by the event loop.
#pragma once

#include <cstddef>
#include <string>

namespace dslayer::net {

class LineBuffer {
 public:
  enum class Status {
    kLine,       ///< `line` holds the next complete line (no terminator)
    kOversized,  ///< a line exceeded max_line_bytes; it was discarded
    kNeedMore,   ///< no complete line buffered; feed more bytes
  };

  explicit LineBuffer(std::size_t max_line_bytes);

  /// Appends raw bytes read from the socket.
  void append(const char* data, std::size_t size);

  /// Extracts the next complete line into `line` (terminator stripped).
  /// Call in a loop until it stops returning kLine/kOversized; each
  /// kOversized corresponds to one discarded over-limit line.
  Status next(std::string& line);

  /// Bytes currently buffered and not yet consumed.
  std::size_t buffered() const { return buffer_.size() - offset_; }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
  /// True while discarding the tail of an over-limit line (everything up
  /// to and including the next '\n').
  bool discarding_ = false;
};

}  // namespace dslayer::net
