// Non-blocking TCP front end for the exploration service.
//
// One epoll event-loop thread owns the listener and every connection;
// request execution stays on the RequestExecutor's worker pool. The
// seam between the two is a completion queue: workers render the
// response off-loop, push {connection, bytes}, and poke an eventfd; the
// loop applies completions to connection outboxes between socket
// events. Connections are therefore single-threaded state machines
// (net/connection.hpp) and the loop never blocks on a socket.
//
// Wire protocol: exactly the batch/serve newline protocol
// (service/protocol.hpp) — `<session>[@ms] <command>` lines in,
// `== <id> <session> <status> ...` responses out, `!` directives as
// synchronization points. Responses stream in completion order, whole-
// response-atomic, with per-connection 1-based ids for matching.
//
// Overload behavior composes three layers:
//   * executor queue capacity / queue-wait shedding → per-request
//     kRejected/kOverloaded responses with retry-after hints;
//   * per-connection in-flight cap and output-buffer soft cap → the
//     loop stops READING that connection (TCP backpressure reaches the
//     client) while others proceed;
//   * max_connections → accepts past the cap are answered with one
//     rejection line and closed.
//
// Failpoints (support/failpoint.hpp): "net.conn.accept",
// "net.conn.read", "net.conn.write" — error mode aborts the connection
// at that boundary (mid-line disconnects, write-path failures), delay
// mode stalls the loop (slow-network chaos). Armable at runtime over
// the wire via the `!failpoint` directive.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "net/socket.hpp"
#include "service/batch_runner.hpp"
#include "service/protocol.hpp"
#include "service/request_executor.hpp"
#include "service/session_manager.hpp"

namespace dslayer::net {

class NetServer {
 public:
  struct Options {
    std::uint16_t port = 0;  ///< 0 = kernel-assigned (see port())
    std::size_t max_connections = 1024;
    /// Pipelining depth: requests in flight per connection before the
    /// loop stops reading it (backpressure via TCP, not rejection).
    std::size_t conn_inflight_cap = 32;
    /// Connections with no read/write/completion activity for this long
    /// are closed — the slowloris/half-open defense. 0 = never.
    double idle_timeout_ms = 0.0;
    /// Slow-reader cutoff: a connection whose unflushed output exceeds
    /// this is closed (it stopped being read long before this point).
    std::size_t max_output_buffer_bytes = 4 * 1024 * 1024;
    std::size_t max_line_bytes = service::kMaxRequestLineBytes;
  };

  struct Stats {
    std::uint64_t accepted = 0;         ///< connections accepted
    std::uint64_t closed = 0;           ///< connections fully closed
    std::uint64_t rejected_connects = 0;  ///< accepts refused at max_connections
    std::uint64_t requests = 0;         ///< well-formed requests submitted
    std::uint64_t responses = 0;        ///< responses written to outboxes
    std::uint64_t invalid_lines = 0;    ///< parse failures answered inline
    std::uint64_t oversized_lines = 0;  ///< lines over max_line_bytes
    std::uint64_t directives = 0;       ///< '!' sync points executed
    std::uint64_t idle_closed = 0;      ///< idle-timeout victims
    std::uint64_t slow_reader_closed = 0;
    std::uint64_t faulted = 0;          ///< connections killed by failpoints/io errors
    std::size_t open_connections = 0;
  };

  NetServer(service::SessionManager& manager, service::RequestExecutor& executor,
            Options options);
  ~NetServer();  ///< stop() if still running

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and starts the loop thread. False + *error on bind
  /// failure. The executor must outlive stop().
  bool start(std::string* error);

  /// The bound port (resolves Options::port == 0). Valid after start().
  std::uint16_t port() const { return port_; }

  /// Stops accepting, closes every connection, joins the loop thread,
  /// and drains the executor of callbacks that target this server.
  /// Idempotent; called by the destructor.
  void stop();

  Stats stats() const;

 private:
  struct Completion {
    std::uint64_t conn_id;
    std::string rendered;
  };

  /// Directive context carrying this server's connection counters into
  /// `!stats`/`!metrics` (service cannot depend on net, so the counters
  /// travel as a snapshot provider).
  service::DirectiveContext directive_context();

  void loop();
  void handle_accept();
  void handle_readable(Connection& conn);
  void handle_writable(Connection& conn);
  void pump(Connection& conn);
  bool parse_buffered(Connection& conn);
  void submit_request(Connection& conn, service::Request request);
  void run_pending_directive(Connection& conn);
  void apply_completions();
  void sweep_idle();
  void update_interest(Connection& conn);
  void close_connection(Connection& conn);
  void enqueue_completion(std::uint64_t conn_id, std::string rendered);
  void wake();

  service::SessionManager* manager_;
  service::RequestExecutor* executor_;
  Options options_;

  Socket listener_;
  Socket epoll_;
  Socket wakeup_;  ///< eventfd: workers poke the loop after a completion
  std::uint16_t port_ = 0;

  // Loop-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::unordered_map<std::uint64_t, std::uint32_t> interest_;  ///< registered epoll events
  std::uint64_t next_conn_id_ = 2;  ///< 0 = listener, 1 = wakeup

  // Worker → loop handoff.
  std::mutex completions_lock_;
  std::vector<Completion> completions_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};

  // Stats counters (relaxed: monotonic telemetry, read from any thread).
  std::atomic<std::uint64_t> accepted_{0}, closed_{0}, rejected_connects_{0}, requests_{0},
      responses_{0}, invalid_lines_{0}, oversized_lines_{0}, directives_{0}, idle_closed_{0},
      slow_reader_closed_{0}, faulted_{0};
  std::atomic<std::size_t> open_connections_{0};

  std::thread loop_thread_;
};

}  // namespace dslayer::net
