#include "net/line_buffer.hpp"

#include "support/error.hpp"

namespace dslayer::net {

LineBuffer::LineBuffer(std::size_t max_line_bytes) : max_line_bytes_(max_line_bytes) {
  DSLAYER_REQUIRE(max_line_bytes > 0, "line buffer needs a positive line limit");
}

void LineBuffer::append(const char* data, std::size_t size) {
  // Compact before growing: `offset_` only advances, so without this the
  // buffer would retain every byte the connection ever sent.
  if (offset_ > 0 && (offset_ >= buffer_.size() || offset_ > max_line_bytes_)) {
    buffer_.erase(0, offset_);
    offset_ = 0;
  }
  buffer_.append(data, size);
}

LineBuffer::Status LineBuffer::next(std::string& line) {
  if (discarding_) {
    const std::size_t nl = buffer_.find('\n', offset_);
    if (nl == std::string::npos) {
      // Still inside the over-limit line: drop what we have.
      buffer_.clear();
      offset_ = 0;
      return Status::kNeedMore;
    }
    offset_ = nl + 1;
    discarding_ = false;
  }
  const std::size_t nl = buffer_.find('\n', offset_);
  if (nl == std::string::npos) {
    if (buffer_.size() - offset_ > max_line_bytes_) {
      // The partial line already blew the limit; report it now (so the
      // server can answer invalid-request) and discard through to the
      // eventual '\n'.
      buffer_.clear();
      offset_ = 0;
      discarding_ = true;
      return Status::kOversized;
    }
    return Status::kNeedMore;
  }
  std::size_t length = nl - offset_;
  if (length > max_line_bytes_) {
    offset_ = nl + 1;
    return Status::kOversized;
  }
  line.assign(buffer_, offset_, length);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  offset_ = nl + 1;
  return Status::kLine;
}

}  // namespace dslayer::net
