#include "net/server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "service/batch_runner.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dslayer::net {

using service::Request;
using service::Response;

namespace {

constexpr std::uint64_t kListenerToken = 0;
constexpr std::uint64_t kWakeupToken = 1;
/// Per-pass read bound: level-triggered epoll re-arms, so capping one
/// connection's turn keeps a firehose sender from starving the rest.
constexpr std::size_t kMaxReadPerPass = 256 * 1024;

}  // namespace

NetServer::NetServer(service::SessionManager& manager, service::RequestExecutor& executor,
                     Options options)
    : manager_(&manager), executor_(&executor), options_(options) {
  DSLAYER_REQUIRE(options_.conn_inflight_cap > 0, "per-connection in-flight cap must be positive");
  DSLAYER_REQUIRE(options_.max_connections > 0, "connection cap must be positive");
}

NetServer::~NetServer() { stop(); }

bool NetServer::start(std::string* error) {
  DSLAYER_REQUIRE(!started_.load(), "server already started");
  listener_ = listen_tcp(options_.port, error);
  if (!listener_.valid()) return false;
  port_ = local_port(listener_.fd());
  epoll_ = Socket(::epoll_create1(EPOLL_CLOEXEC));
  wakeup_ = Socket(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!epoll_.valid() || !wakeup_.valid()) {
    if (error != nullptr) *error = cat("epoll/eventfd setup: ", std::strerror(errno));
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerToken;
  ::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, listener_.fd(), &ev);
  ev.data.u64 = kWakeupToken;
  ::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, wakeup_.fd(), &ev);
  started_ = true;
  loop_thread_ = std::thread([this] { loop(); });
  return true;
}

void NetServer::stop() {
  if (!started_.load()) return;
  stopping_ = true;
  wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Worker callbacks submitted by this server touch completions_lock_
  // and the wakeup fd; drain the executor so none outlive these
  // members. (A no-op if the caller already shut the executor down.)
  executor_->drain();
  connections_.clear();
  interest_.clear();
  {
    std::lock_guard<std::mutex> lock(completions_lock_);
    completions_.clear();
  }
  started_ = false;
  stopping_ = false;
}

NetServer::Stats NetServer::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.closed = closed_.load(std::memory_order_relaxed);
  stats.rejected_connects = rejected_connects_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.invalid_lines = invalid_lines_.load(std::memory_order_relaxed);
  stats.oversized_lines = oversized_lines_.load(std::memory_order_relaxed);
  stats.directives = directives_.load(std::memory_order_relaxed);
  stats.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  stats.slow_reader_closed = slow_reader_closed_.load(std::memory_order_relaxed);
  stats.faulted = faulted_.load(std::memory_order_relaxed);
  stats.open_connections = open_connections_.load(std::memory_order_relaxed);
  return stats;
}

void NetServer::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wakeup_.fd(), &one, sizeof(one));
}

void NetServer::enqueue_completion(std::uint64_t conn_id, std::string rendered) {
  {
    std::lock_guard<std::mutex> lock(completions_lock_);
    completions_.push_back(Completion{conn_id, std::move(rendered)});
  }
  wake();
}

void NetServer::loop() {
  // Sweep often enough that idle closes land within ~a quarter of the
  // configured timeout; with no timeout the loop only wakes for events.
  int timeout_ms = 200;
  if (options_.idle_timeout_ms > 0) {
    timeout_ms = std::clamp(static_cast<int>(options_.idle_timeout_ms / 4), 5, 100);
  }
  epoll_event events[64];
  while (!stopping_.load()) {
    const int n = ::epoll_wait(epoll_.fd(), events, 64, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n && !stopping_.load(); ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == kListenerToken) {
        handle_accept();
        continue;
      }
      if (token == kWakeupToken) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const auto r = ::read(wakeup_.fd(), &drained, sizeof(drained));
        continue;
      }
      const auto it = connections_.find(token);
      if (it == connections_.end()) continue;  // closed earlier this pass
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        ++faulted_;
        close_connection(conn);
      } else {
        if ((events[i].events & EPOLLIN) != 0) handle_readable(conn);
        if (conn.state != ConnState::kClosed && (events[i].events & EPOLLOUT) != 0) {
          handle_writable(conn);
        }
        if (conn.state != ConnState::kClosed) pump(conn);
      }
      if (conn.state == ConnState::kClosed) connections_.erase(token);
    }
    apply_completions();
    sweep_idle();
  }
  // Teardown on the loop thread: every fd dies here, so no other thread
  // ever races a close.
  for (auto& [id, conn] : connections_) {
    if (conn->state != ConnState::kClosed) {
      ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, conn->socket.fd(), nullptr);
      conn->socket.reset();
      conn->state = ConnState::kClosed;
      ++closed_;
      open_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void NetServer::handle_accept() {
  for (;;) {
    Socket client(::accept4(listener_.fd(), nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC));
    if (!client.valid()) return;  // EAGAIN / transient accept error: wait for the next event
    try {
      DSLAYER_FAILPOINT("net.conn.accept");
    } catch (const FailpointError&) {
      ++faulted_;
      continue;  // the just-accepted socket closes: an accept-time fault
    }
    if (connections_.size() >= options_.max_connections) {
      // Best-effort one-line refusal so the client sees policy, not a
      // silent RST; the socket closes either way.
      Response refusal;
      refusal.session = "-";
      refusal.status = service::ResponseStatus::kRejected;
      refusal.code = service::ErrorCode::kOverloaded;
      refusal.retry_after_ms = executor_->retry_after_hint_ms();
      refusal.output = "error: server at connection capacity — retry later\n";
      const std::string rendered = service::render_response(refusal);
      [[maybe_unused]] const auto n =
          ::send(client.fd(), rendered.data(), rendered.size(), MSG_NOSIGNAL);
      ++rejected_connects_;
      continue;
    }
    set_tcp_nodelay(client.fd());
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(id, std::move(client), options_.max_line_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_ADD, conn->socket.fd(), &ev) != 0) continue;
    interest_[id] = EPOLLIN;
    connections_.emplace(id, std::move(conn));
    ++accepted_;
    open_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void NetServer::handle_readable(Connection& conn) {
  try {
    DSLAYER_FAILPOINT("net.conn.read");
  } catch (const FailpointError&) {
    // Injected mid-line disconnect: whatever was buffered is lost, the
    // connection dies abruptly — workers still in flight must complete
    // harmlessly against the tombstone.
    ++faulted_;
    close_connection(conn);
    return;
  }
  std::size_t taken = 0;
  char buf[16384];
  while (taken < kMaxReadPerPass) {
    const ssize_t n = ::read(conn.socket.fd(), buf, sizeof(buf));
    if (n > 0) {
      conn.lines.append(buf, static_cast<std::size_t>(n));
      conn.last_activity = std::chrono::steady_clock::now();
      taken += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      // EOF / half-close: no more input, but buffered lines still parse
      // and in-flight responses still deliver before the socket closes.
      if (conn.state == ConnState::kReading) conn.state = ConnState::kDraining;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    ++faulted_;
    close_connection(conn);
    return;
  }
}

service::DirectiveContext NetServer::directive_context() {
  service::DirectiveContext context;
  context.manager = manager_;
  context.executor = executor_;
  context.front_end = [this] {
    const Stats s = stats();
    service::FrontEndCounters counters;
    counters.accepted = s.accepted;
    counters.closed = s.closed;
    counters.rejected_connects = s.rejected_connects;
    counters.requests = s.requests;
    counters.responses = s.responses;
    counters.invalid_lines = s.invalid_lines;
    counters.oversized_lines = s.oversized_lines;
    counters.directives = s.directives;
    counters.idle_closed = s.idle_closed;
    counters.slow_reader_closed = s.slow_reader_closed;
    counters.faulted = s.faulted;
    counters.open_connections = s.open_connections;
    return counters;
  };
  return context;
}

bool NetServer::parse_buffered(Connection& conn) {
  std::string line;
  for (;;) {
    if (conn.has_pending_directive) return false;  // sync point: stop until it runs
    if (conn.in_flight >= options_.conn_inflight_cap) return false;
    const auto received = std::chrono::steady_clock::now();
    const LineBuffer::Status status = conn.lines.next(line);
    if (status == LineBuffer::Status::kNeedMore) return true;
    if (status == LineBuffer::Status::kOversized) {
      ++oversized_lines_;
      const Response bad = service::invalid_request_response(
          ++conn.next_request_id,
          cat("request line over ", std::to_string(options_.max_line_bytes), " bytes"));
      conn.outbox += service::render_response(bad);
      ++responses_;
      continue;
    }
    if (service::is_directive(line)) {
      if (trim(line) == "!metrics") {
        // Scrapes must not block behind a busy queue: the payload is
        // built purely from thread-safe snapshots, so serve it inline
        // instead of parking as a barrier like the other directives.
        conn.outbox += service::render_metrics(*manager_, *executor_,
                                               directive_context().front_end);
        ++directives_;
        conn.last_activity = std::chrono::steady_clock::now();
        continue;
      }
      conn.pending_directive = line;
      conn.has_pending_directive = true;
      continue;  // the loop head parks until in_flight reaches zero
    }
    std::string parse_error;
    std::optional<Request> request = service::parse_request(line, &parse_error);
    if (!request.has_value()) {
      if (parse_error.empty()) continue;  // blank / comment
      ++invalid_lines_;
      const Response bad =
          service::invalid_request_response(++conn.next_request_id, parse_error);
      conn.outbox += service::render_response(bad);
      ++responses_;
      continue;
    }
    request->id = ++conn.next_request_id;
    service::begin_request_trace(*request, received);
    submit_request(conn, std::move(*request));
  }
}

void NetServer::submit_request(Connection& conn, Request request) {
  ++requests_;
  const std::uint64_t conn_id = conn.id;
  const std::uint64_t request_id = request.id;
  const std::string session = request.session;
  const auto request_trace = request.trace;
  const bool accepted =
      executor_->try_submit(std::move(request), [this, conn_id, request_trace](Response response) {
        // Worker thread: render off-loop, hand the bytes over, poke the
        // loop. Never touches the Connection itself. The respond span
        // covers render + handoff; the trace finishes here because this
        // is the last per-request work whose end is observable off-loop
        // (the socket write happens on the loop thread a wakeup later).
        std::uint32_t respond_span = trace::kNoParent;
        if (request_trace != nullptr) {
          respond_span = request_trace->open_span(trace::SpanKind::kRespond);
        }
        enqueue_completion(conn_id, service::render_response(response));
        if (request_trace != nullptr) {
          request_trace->close_span(respond_span);
          trace::Tracer::instance().finish(request_trace);
        }
      });
  if (accepted) {
    ++conn.in_flight;
    return;
  }
  trace::Tracer::instance().finish(request_trace);  // null-safe; rejected at the door
  // Executor backpressure (queue at capacity / shutting down): answer
  // rejected-with-hint immediately — the per-connection cap keeps any
  // one client from monopolizing the queue, so this is a global-overload
  // signal, and the retry policy belongs to the client.
  Response rejection;
  rejection.id = request_id;
  rejection.session = session;
  rejection.status = service::ResponseStatus::kRejected;
  rejection.code = service::ErrorCode::kOverloaded;
  rejection.retry_after_ms = executor_->retry_after_hint_ms();
  rejection.output = "error: queue full — resubmit\n";
  conn.outbox += service::render_response(rejection);
  ++responses_;
}

void NetServer::run_pending_directive(Connection& conn) {
  // A directive observes exactly the state after every request above it:
  // this connection's requests have all answered (in_flight == 0 gates
  // the call), and the global drain below extends that to the whole
  // executor, matching batch/serve semantics for !stats and !sessions.
  executor_->drain();
  std::ostringstream out;
  service::run_directive(directive_context(), conn.pending_directive, out);
  conn.outbox += out.str();
  conn.pending_directive.clear();
  conn.has_pending_directive = false;
  ++directives_;
  conn.last_activity = std::chrono::steady_clock::now();
}

void NetServer::pump(Connection& conn) {
  for (;;) {
    parse_buffered(conn);
    if (conn.has_pending_directive && conn.in_flight == 0) {
      run_pending_directive(conn);
      continue;  // the directive may unblock further buffered lines
    }
    break;
  }
  if (conn.unflushed() > 0) handle_writable(conn);
  if (conn.state == ConnState::kClosed) return;
  if (conn.unflushed() > options_.max_output_buffer_bytes) {
    // Slow reader: it stopped draining responses long ago; holding its
    // bytes any longer just converts one bad client into memory growth.
    ++slow_reader_closed_;
    close_connection(conn);
    return;
  }
  if (conn.state == ConnState::kDraining && conn.in_flight == 0 && !conn.has_pending_directive &&
      conn.unflushed() == 0) {
    conn.state = ConnState::kClosing;
    close_connection(conn);
    return;
  }
  update_interest(conn);
}

void NetServer::handle_writable(Connection& conn) {
  try {
    DSLAYER_FAILPOINT("net.conn.write");
  } catch (const FailpointError&) {
    ++faulted_;
    close_connection(conn);
    return;
  }
  while (conn.unflushed() > 0) {
    const ssize_t n = ::send(conn.socket.fd(), conn.outbox.data() + conn.out_offset,
                             conn.unflushed(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_offset += static_cast<std::size_t>(n);
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    ++faulted_;
    close_connection(conn);
    return;
  }
  conn.compact_outbox();
}

void NetServer::apply_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_lock_);
    batch.swap(completions_);
  }
  for (auto& completion : batch) {
    const auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection died first; drop
    Connection& conn = *it->second;
    if (conn.state == ConnState::kClosed) continue;
    conn.outbox += completion.rendered;
    ++responses_;
    DSLAYER_REQUIRE(conn.in_flight > 0, "completion without an in-flight request");
    --conn.in_flight;
    conn.last_activity = std::chrono::steady_clock::now();
    pump(conn);  // may resume parsing, run a parked directive, or close
    if (conn.state == ConnState::kClosed) connections_.erase(completion.conn_id);
  }
}

void NetServer::sweep_idle() {
  if (options_.idle_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> victims;
  for (const auto& [id, conn] : connections_) {
    const double idle_ms =
        std::chrono::duration<double, std::milli>(now - conn->last_activity).count();
    if (idle_ms > options_.idle_timeout_ms) victims.push_back(id);
  }
  for (const std::uint64_t id : victims) {
    const auto it = connections_.find(id);
    if (it == connections_.end()) continue;
    // Covers silent clients, slowloris drip-feeders stuck mid-line, and
    // half-open sockets whose peer vanished without a FIN.
    ++idle_closed_;
    close_connection(*it->second);
    connections_.erase(it);
  }
}

void NetServer::update_interest(Connection& conn) {
  std::uint32_t events = 0;
  if (conn.wants_read(options_.conn_inflight_cap, options_.max_output_buffer_bytes)) {
    events |= EPOLLIN;
  }
  if (conn.wants_write()) events |= EPOLLOUT;
  const auto it = interest_.find(conn.id);
  if (it != interest_.end() && it->second == events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_.fd(), EPOLL_CTL_MOD, conn.socket.fd(), &ev) == 0) {
    interest_[conn.id] = events;
  }
}

void NetServer::close_connection(Connection& conn) {
  if (conn.state == ConnState::kClosed) return;
  ::epoll_ctl(epoll_.fd(), EPOLL_CTL_DEL, conn.socket.fd(), nullptr);
  conn.state = ConnState::kClosed;
  interest_.erase(conn.id);
  ++closed_;
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
  // Close the fd last: the peer observes EOF only after the counters have
  // settled, so "wait for close, then read stats" never sees a stale count.
  conn.socket.reset();
}

}  // namespace dslayer::net
