// Thin RAII layer over POSIX sockets for the TCP front end.
//
// Socket owns one file descriptor; everything else here is the handful
// of setup calls the server and its tests need (listen, connect to
// loopback, non-blocking mode, bound-port lookup). No I/O wrappers: the
// event loop calls read()/send() directly so its EAGAIN handling stays
// explicit.
#pragma once

#include <cstdint>
#include <string>

namespace dslayer::net {

/// Move-only owner of a socket file descriptor (-1 = empty).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes the descriptor (if any).
  void reset();

  /// Releases ownership without closing.
  int release();

 private:
  int fd_ = -1;
};

/// Opens a non-blocking listener on the port (0 = kernel-assigned) with
/// SO_REUSEADDR. Returns an empty Socket and sets *error on failure.
Socket listen_tcp(std::uint16_t port, std::string* error, int backlog = 128);

/// Blocking loopback connect — the client side for tests and benches.
Socket connect_local(std::uint16_t port, std::string* error);

/// Puts the descriptor in non-blocking mode. Returns false on error.
bool set_nonblocking(int fd);

/// Disables Nagle batching; response latency beats byte-packing here.
void set_tcp_nodelay(int fd);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(int fd);

}  // namespace dslayer::net
