// Per-connection state for the TCP front end.
//
// Lifecycle (§12 of DESIGN.md):
//
//     kReading ──EOF/half-close──▶ kDraining ──flushed──▶ kClosing ─▶ kClosed
//         │                                                  ▲
//         └──error / idle timeout / slow reader / failpoint──┘
//
//   kReading   normal service: parse lines, submit, write responses.
//   kDraining  the client half-closed (or sent its last byte): no more
//              input, but in-flight requests still owe responses — the
//              connection lingers until every response is flushed.
//   kClosing   nothing left to say; the fd is closed this loop pass.
//   kClosed    tombstone (the map entry is erased right after).
//
// Pipelining contract: a client may write any number of request lines
// without waiting; responses come back in COMPLETION order, each one
// written whole (header + output lines contiguous on the wire), matched
// to its request by the `== <id> ...` tag. Ids are per-connection and
// assigned in arrival order, so `== 3` always answers the third line.
//
// Backpressure is two-layered. The executor sheds globally (queue
// capacity, queue-wait age); the connection additionally stops READING
// when its own in-flight count reaches the per-connection cap or its
// output buffer backs up past the soft cap — `wants_read()` is the
// single predicate the event loop consults when computing epoll
// interest. A reader that never drains responses eventually trips
// max_output_buffer_bytes and is closed as a slow reader.
//
// All fields are owned by the event-loop thread; worker threads never
// touch a Connection (completions cross over through the server's
// completion queue).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "net/line_buffer.hpp"
#include "net/socket.hpp"

namespace dslayer::net {

enum class ConnState : std::uint8_t { kReading, kDraining, kClosing, kClosed };

const char* to_string(ConnState state);

struct Connection {
  Connection(std::uint64_t id_in, Socket socket_in, std::size_t max_line_bytes)
      : id(id_in),
        socket(std::move(socket_in)),
        lines(max_line_bytes),
        last_activity(std::chrono::steady_clock::now()) {}

  std::uint64_t id;  ///< epoll token and map key
  Socket socket;
  ConnState state = ConnState::kReading;

  LineBuffer lines;               ///< inbound framing
  std::string outbox;             ///< rendered responses awaiting write
  std::size_t out_offset = 0;     ///< flushed prefix of outbox
  std::size_t in_flight = 0;      ///< submitted, response not yet in outbox
  std::uint64_t next_request_id = 0;  ///< per-connection wire ids, 1-based

  /// A directive line ('!...') is a sync point: it parks here until
  /// every earlier request on this connection has answered, and no
  /// further input is parsed (or read) until it has run.
  std::string pending_directive;
  bool has_pending_directive = false;

  /// Bumped on read/write progress and on every completion, so a
  /// connection waiting on a slow request is never idle-closed.
  std::chrono::steady_clock::time_point last_activity;

  std::size_t unflushed() const { return outbox.size() - out_offset; }

  bool wants_read(std::size_t inflight_cap, std::size_t max_output_buffer_bytes) const {
    return state == ConnState::kReading && !has_pending_directive && in_flight < inflight_cap &&
           unflushed() < max_output_buffer_bytes;
  }

  bool wants_write() const { return unflushed() > 0 && state != ConnState::kClosed; }

  /// Drops the flushed prefix once it dominates the buffer.
  void compact_outbox() {
    if (out_offset > 0 && out_offset >= outbox.size()) {
      outbox.clear();
      out_offset = 0;
    } else if (out_offset > 64 * 1024) {
      outbox.erase(0, out_offset);
      out_offset = 0;
    }
  }
};

}  // namespace dslayer::net
