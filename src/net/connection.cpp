#include "net/connection.hpp"

namespace dslayer::net {

const char* to_string(ConnState state) {
  switch (state) {
    case ConnState::kReading: return "reading";
    case ConnState::kDraining: return "draining";
    case ConnState::kClosing: return "closing";
    case ConnState::kClosed: return "closed";
  }
  return "?";
}

}  // namespace dslayer::net
