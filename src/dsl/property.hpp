// Properties: the meta-data that discretizes the design space.
//
// Section 4 of the paper: "At its finest level of granularity, the design
// space is actually abstractly characterized (i.e., discretized) by a set
// of behavioral and structural properties", classified into behavioral/
// structural descriptions, design requirements, and design decisions on
// design issues. Behavioral descriptions live on the CDO directly (they
// carry structure, see behavior/); this type models the requirement /
// design-issue / figure-of-merit kinds.
//
// A design issue may be *generalized* (Section 4): it then partitions the
// design space — each of its options spawns a child CDO — and a CDO may
// own at most one such issue (enforced by Cdo::add_property).
#pragma once

#include <optional>
#include <string>

#include "dsl/value.hpp"
#include "support/units.hpp"

namespace dslayer::dsl {

/// The paper's property classification (descriptions are handled apart).
enum class PropertyKind {
  kRequirement,    ///< problem givens / targets the designer enters (Fig. 8)
  kDesignIssue,    ///< areas of design decision (Fig. 11)
  kFigureOfMerit,  ///< evaluation-space metrics cores report (area, delay, ...)
};

std::string to_string(PropertyKind k);

/// How a requirement value filters cores, when a simple declarative rule
/// suffices (complex rules use DesignSpaceLayer::set_requirement_filter).
enum class Compliance {
  kNone,         ///< requirement does not filter cores by itself
  kCoreAtMost,   ///< core's metric must be <= the required value (e.g. latency)
  kCoreAtLeast,  ///< core's metric/capability must be >= the required value
  kCoreEquals,   ///< core's binding must equal the required value (e.g. coding)
};

/// One property of a class of design objects.
struct Property {
  std::string name;
  PropertyKind kind = PropertyKind::kDesignIssue;
  ValueDomain domain = ValueDomain::any();
  Unit unit = Unit::kNone;
  std::string doc;  ///< self-documentation rendered by Cdo::document()

  /// Generalized design issue (partitions the space). Valid only for
  /// kDesignIssue.
  bool generalized = false;

  /// Pre-selected option/value (Fig. 11 shows defaults for Radix etc.).
  std::optional<Value> default_value;

  /// True (default) if deciding this issue filters the candidate core set;
  /// false for composition parameters cores do not declare (e.g. Number of
  /// Slices — cores are slices, the count is chosen at integration time).
  bool filters_cores = true;

  /// Declarative core-compliance rule for requirements.
  Compliance compliance = Compliance::kNone;
  /// Core metric or binding name the compliance rule reads (defaults to
  /// this property's own name when empty).
  std::string compliance_key;

  /// Builder helpers -------------------------------------------------------

  static Property requirement(std::string name, ValueDomain domain, std::string doc,
                              Unit unit = Unit::kNone);
  static Property design_issue(std::string name, ValueDomain domain, std::string doc);
  static Property generalized_issue(std::string name, std::vector<std::string> options,
                                    std::string doc);
  static Property figure_of_merit(std::string name, Unit unit, std::string doc);

  Property&& with_default(Value v) &&;
  Property&& with_compliance(Compliance c, std::string key = "") &&;
  Property&& without_core_filtering() &&;
};

}  // namespace dslayer::dsl
