// A scriptable command shell over a design space layer.
//
// Conceptual design is an interactive activity — the paper's designer
// enters requirements, inspects ranges, makes and revises decisions. This
// shell exposes the full ExplorationSession surface as line commands so a
// layer can be driven interactively (tools/dslshell) or from scripts and
// tests. One command per line; `help` lists them; errors are reported and
// never terminate the shell.
//
// The command grammar is factored into ShellEngine so the same commands
// serve two front ends: the interactive loop below (run_shell) and the
// concurrent exploration service (src/service), whose request protocol is
// exactly one shell command per request.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "dsl/exploration.hpp"
#include "dsl/layer.hpp"

namespace dslayer::dsl {

/// One shell instance: a layer to explore plus the (at most one) session
/// the commands operate on. Executes one command line at a time; not
/// thread-safe by itself (the service serializes per engine).
class ShellEngine {
 public:
  enum class Status {
    kEmpty,  ///< blank line or comment — nothing happened
    kOk,     ///< command executed
    kError,  ///< command failed; an "error: ..." line was written to out
    kQuit,   ///< the command asked to leave the shell / close the session
  };

  explicit ShellEngine(const DesignSpaceLayer& layer) : layer_(&layer) {}

  /// Executes one command line, writing its output (or "error: ...") to
  /// `out`. Never throws for command-level failures.
  Status execute(const std::string& line, std::ostream& out);

  const DesignSpaceLayer& layer() const { return *layer_; }

  /// The open exploration session; nullptr before `open` (or `trace
  /// replay`) succeeds.
  ExplorationSession* session() { return session_.get(); }
  const ExplorationSession* session() const { return session_.get(); }

  /// The open session's replay journal as JSONL; empty string when no
  /// session is open. This is the service's migration substrate: a
  /// session crossing a layer epoch is rebuilt from exactly this text.
  std::string journal_jsonl() const;

  /// Replaces the session with one replayed from a JSONL journal. Throws
  /// ExplorationError on malformed journals or if the journaled actions
  /// are no longer valid against the (possibly updated) layer.
  void restore_from_journal(const std::string& jsonl);

  void close_session() { session_.reset(); }

 private:
  Status dispatch(const std::vector<std::string>& words, std::ostream& out);
  ExplorationSession& need_session();

  const DesignSpaceLayer* layer_;
  std::unique_ptr<ExplorationSession> session_;
};

/// Runs the command loop: reads commands from `in` until EOF or `quit`,
/// writing results to `out`. Returns the number of commands that failed
/// (so scripted runs can assert clean execution).
int run_shell(const DesignSpaceLayer& layer, std::istream& in, std::ostream& out);

}  // namespace dslayer::dsl
