// A scriptable command shell over a design space layer.
//
// Conceptual design is an interactive activity — the paper's designer
// enters requirements, inspects ranges, makes and revises decisions. This
// shell exposes the full ExplorationSession surface as line commands so a
// layer can be driven interactively (tools/dslshell) or from scripts and
// tests. One command per line; `help` lists them; errors are reported and
// never terminate the shell.
#pragma once

#include <iosfwd>

#include "dsl/layer.hpp"

namespace dslayer::dsl {

/// Runs the command loop: reads commands from `in` until EOF or `quit`,
/// writing results to `out`. Returns the number of commands that failed
/// (so scripted runs can assert clean execution).
int run_shell(const DesignSpaceLayer& layer, std::istream& in, std::ostream& out);

}  // namespace dslayer::dsl
