// Layer interchange format.
//
// The paper's deployment story (Section 1, Fig. 1): "each design
// environment should develop its own design space layer, tailored to the
// application domains of interest, and then use such a layer to reference
// available cores, stored in reuse libraries maintained by the
// IP-providers themselves". That requires layers and core catalogs to
// travel as DATA between environments (the VSI alliance context of
// Section 3). This module provides a line-based, diff-friendly text format
// for the data parts of a layer:
//
//   * the CDO hierarchy with all properties (kinds, domains, units,
//     defaults, compliance rules, generalized flags),
//   * every reuse library with its cores (class paths, bindings, metrics,
//     design-data views).
//
// NOT serialized (they are code, not data — documented on export):
//   * consistency-constraint relations (predicates/formulas/estimator
//     bindings are C++ callables; the export embeds their descriptions as
//     comments so a receiving environment can re-author them),
//   * behavioral descriptions (structural IR; re-attach programmatically),
//   * custom core filters and context builders.
//
// Custom integer-set domains round-trip by well-known name ("positive",
// "pow2"); other predicates degrade to "positive" with an import warning.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsl/layer.hpp"

namespace dslayer::dsl {

/// Serializes the data parts of `layer` into the interchange text.
/// Throws DefinitionError if an option string contains the reserved '|'.
std::string export_layer(const DesignSpaceLayer& layer);

/// The hierarchy-only prefix of export_layer: format header, layer name,
/// constraint comments, and the full CDO tree — no libraries. Snapshots
/// (src/storage/snapshot.cpp) fingerprint this text to detect that a
/// snapshot was taken against a different code-defined hierarchy.
std::string export_hierarchy(const DesignSpaceLayer& layer);

/// Result of parsing an interchange text.
struct ImportResult {
  std::unique_ptr<DesignSpaceLayer> layer;
  /// Non-fatal degradations (e.g. custom integer domains widened).
  std::vector<std::string> warnings;
};

/// Parses interchange text produced by export_layer (or authored by hand).
/// Indexes the imported cores before returning. Throws DefinitionError on
/// malformed input.
ImportResult import_layer(const std::string& text);

}  // namespace dslayer::dsl
