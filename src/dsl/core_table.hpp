// Columnar core store + compiled constraint kernels (DESIGN.md §10).
//
// The legacy candidate filter re-interprets every core on every cold
// query: string-keyed map lookups per decided issue, a freshly allocated
// merged-bindings map per core, and an opaque violated() call per
// (core, predicate). This file is the data-oriented replacement:
//
//  * CoreTable — a structure-of-arrays snapshot of one CDO subtree's
//    cores. One contiguous column per bound property / metric (keyed by
//    interned Symbol), each with a presence bitmap (64 rows per word).
//    Columns are typed: all-number and all-text columns store raw
//    doubles / interned symbols; mixed-kind columns degrade to Values.
//  * CompiledPredicate — a declarative ConsistencyConstraint (see
//    PredicateAtom) lowered once per index generation to column indexes
//    and comparison opcodes. Opaque lambda predicates stay uncompiled
//    and are evaluated row-wise through a BindingsOverlay.
//  * CoreFilterPlan — CoreTable + one CompiledPredicate per predicate
//    constraint of the CDO's ConstraintIndex, built lazily by
//    DesignSpaceLayer::filter_plan() and primed by SharedLayer before
//    an epoch publishes.
//  * run_core_filter — evaluates a FilterQuery (the session's decided
//    issues, requirements, and bindings snapshot) over a plan with a
//    survivor bitmask, predicate by predicate. Tables larger than
//    columnar_parallel_threshold() split into 64-row-aligned chunks on
//    support::ChunkPool::shared(); chunks never share a mask word, so
//    workers write disjoint memory and results are deterministic.
//
// The engine mirrors the legacy semantics exactly — same survivors, same
// ConstraintEvaluated / ComplianceCheck counter totals — which the
// tier-1 columnar oracle test enforces on randomized libraries.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dsl/constraint.hpp"
#include "dsl/core_library.hpp"
#include "support/symbol.hpp"

namespace dslayer::telemetry {
class Telemetry;
}

namespace dslayer::dsl {

/// Compliance predicate for one requirement (the DesignSpaceLayer
/// registry type; re-exported there as DesignSpaceLayer::CoreFilter).
using CoreFilter = std::function<bool(const Core&, const Bindings&)>;

class CoreTable {
 public:
  enum class ColumnKind : std::uint8_t {
    kNumber,  ///< every present value is a number -> raw doubles
    kText,    ///< every present value is text -> interned symbols
    kMixed,   ///< heterogeneous (or flag) -> boxed Values
  };

  struct Column {
    support::Symbol symbol = support::kNoSymbol;
    ColumnKind kind = ColumnKind::kNumber;
    std::vector<std::uint64_t> present;  ///< presence bitmap, 64 rows/word
    std::vector<double> numbers;         ///< kNumber payload
    std::vector<support::Symbol> texts;  ///< kText payload
    std::vector<Value> values;           ///< kMixed payload

    bool has(std::size_t row) const {
      return (present[row >> 6] >> (row & 63)) & 1u;
    }
  };

  /// Snapshots `cores` (row order preserved — it is the candidates()
  /// output order). Text values are interned as they are stored.
  explicit CoreTable(const std::vector<const Core*>& cores);

  std::size_t rows() const { return cores_.size(); }
  std::size_t words() const { return words_; }
  const std::vector<const Core*>& cores() const { return cores_; }

  /// Binding / metric column for a symbol; nullptr if no indexed core
  /// binds it. References are stable for the table's lifetime.
  const Column* binding_column(support::Symbol symbol) const;
  const Column* metric_column(support::Symbol symbol) const;

  std::size_t binding_column_count() const { return binding_columns_.size(); }
  std::size_t metric_column_count() const { return metric_columns_.size(); }

 private:
  Column& column_for(std::map<support::Symbol, std::size_t>& index,
                     std::vector<Column>& columns, support::Symbol symbol, ColumnKind kind);
  static void store(Column& column, std::size_t row, const Value& value);
  static void degrade_to_mixed(Column& column);

  std::vector<const Core*> cores_;
  std::size_t words_ = 0;
  std::vector<Column> binding_columns_;
  std::vector<Column> metric_columns_;
  std::map<support::Symbol, std::size_t> binding_index_;
  std::map<support::Symbol, std::size_t> metric_index_;
};

/// One predicate constraint lowered against a CoreTable. `compiled` is
/// false for opaque lambda predicates (evaluated row-wise instead).
struct CompiledPredicate {
  /// A property reference or constant inside an atom, resolved against
  /// the table: `column` >= 0 means a binding column exists for the
  /// symbol; the constant payload covers literals (session fallbacks are
  /// resolved per query, not here).
  struct Term {
    support::Symbol symbol = support::kNoSymbol;  ///< kNoSymbol => pure constant
    std::int32_t column = -1;                     ///< >= 0: table has a binding column
    Value::Kind const_kind = Value::Kind::kEmpty;
    double number = 0.0;
    support::Symbol text = support::kNoSymbol;
    bool flag = false;
  };

  /// One atom: lhs [* factor] <cmp> rhs.
  struct Op {
    PredicateAtom::Cmp cmp = PredicateAtom::Cmp::kEq;
    Term lhs;
    Term factor;  ///< engaged iff has_factor
    Term rhs;
    bool has_factor = false;
  };

  const ConsistencyConstraint* constraint = nullptr;
  bool compiled = false;
  std::vector<Term> references;  ///< every referenced property (dedup'd)
  std::vector<Op> ops;
};

/// Everything candidates() needs for one CDO, built once per index
/// generation: the columnar table over cores_under(cdo) plus one
/// CompiledPredicate per ConstraintIndex predicate (same order).
struct CoreFilterPlan {
  CoreTable table;
  std::vector<CompiledPredicate> predicates;

  CoreFilterPlan(const std::vector<const Core*>& cores,
                 const std::vector<const ConsistencyConstraint*>& predicate_constraints);
};

/// The session side of a columnar filter run: the decided design issues,
/// the declarative / custom requirements, and the bindings snapshot that
/// backfills properties no core column answers.
struct FilterQuery {
  struct Equality {
    support::Symbol symbol = support::kNoSymbol;  ///< kNoSymbol: name never interned
    Value value;
  };
  struct MetricBound {
    support::Symbol symbol = support::kNoSymbol;
    bool at_most = false;  ///< kCoreAtMost; else kCoreAtLeast
    double bound = 0.0;
  };

  const Bindings* bound = nullptr;       ///< session bindings snapshot
  std::vector<Equality> decided;         ///< step 1: core-filtering decisions
  std::vector<Equality> require_equal;   ///< step 2: kCoreEquals requirements
  std::vector<MetricBound> require_metric;  ///< step 2: kCoreAtMost/AtLeast
  std::vector<const CoreFilter*> custom;    ///< step 2: registered filters
};

/// Runs the filter; returns surviving cores in table row order (the
/// legacy scan order). Counts kComplianceCheck once per row and
/// kConstraintEvaluated per (row, predicate) actually reached, exactly
/// like the legacy loop.
std::vector<const Core*> run_core_filter(const CoreFilterPlan& plan, const FilterQuery& query,
                                         telemetry::Telemetry& telemetry);

/// Row count at and above which run_core_filter fans predicate sweeps
/// out over support::ChunkPool::shared(). Settable for tests/benches.
std::size_t columnar_parallel_threshold();
void set_columnar_parallel_threshold(std::size_t rows);

/// Applies one core's bindings on top of a session snapshot and undoes
/// them on revert() — the allocation-free replacement for the legacy
/// per-core `Bindings merged = bound` rebuild. apply() returns the
/// number of map writes performed (the kOverlayWrite telemetry count).
class BindingsOverlay {
 public:
  explicit BindingsOverlay(Bindings& base) : base_(&base) {}

  std::size_t apply(const Core& core);
  void revert();

 private:
  struct Undo {
    const std::string* key = nullptr;
    Value previous;  ///< empty => key was absent, revert erases it
  };
  Bindings* base_;
  std::vector<Undo> undo_;
};

}  // namespace dslayer::dsl
