// Columnar core store + compiled constraint kernels (DESIGN.md §10, §14).
//
// The legacy candidate filter re-interprets every core on every cold
// query: string-keyed map lookups per decided issue, a freshly allocated
// merged-bindings map per core, and an opaque violated() call per
// (core, predicate). This file is the data-oriented replacement:
//
//  * CoreTable — a structure-of-arrays snapshot of one CDO subtree's
//    cores. One contiguous column per bound property / metric (keyed by
//    interned Symbol), each with a presence bitmap (64 rows per word).
//    Columns are typed: all-number and all-text columns store raw
//    doubles / interned symbols; mixed-kind columns degrade to Values.
//    Payloads are padded to a whole number of 64-row words so the SIMD
//    kernels (support/simd.hpp) read full blocks branch-free; symbol
//    lookups go through sorted flat vectors, not std::map nodes.
//  * CompiledPredicate — a declarative ConsistencyConstraint (see
//    PredicateAtom) lowered once per index generation to column indexes
//    and comparison opcodes. Opaque lambda predicates stay uncompiled
//    and are evaluated row-wise through a BindingsOverlay.
//  * CoreFilterPlan — CoreTable + one CompiledPredicate per predicate
//    constraint of the CDO's ConstraintIndex, built lazily by
//    DesignSpaceLayer::filter_plan() and primed by SharedLayer before
//    an epoch publishes.
//  * run_core_filter — evaluates a FilterQuery (the session's decided
//    issues, requirements, and bindings snapshot) over a plan with a
//    survivor bitmask, predicate by predicate. Hot predicate shapes
//    (numeric compare vs constant / column with optional factor, text
//    symbol equality) run through the runtime-selected SIMD kernel one
//    64-row word at a time; rows a word kernel cannot decide (absent
//    column value falling back to a session binding, mixed-kind cells)
//    are patched through the scalar interpreter, so survivors are
//    bit-identical to a scalar sweep. Per-sweep scratch (the survivor
//    mask, resolved terms, prefilter masks) comes from the calling
//    thread's bump arena (support/arena.hpp) — a steady-state sweep
//    performs no heap allocation. Tables larger than
//    columnar_parallel_threshold() split into 64-row-aligned chunks on
//    support::ChunkPool::shared(); chunks never share a mask word, so
//    workers write disjoint memory and results are deterministic.
//    Custom (opaque lambda) filters may carry a PredicateAtom
//    conjunction prefilter: rows the atoms prove compliant skip the
//    lambda entirely (counted as kPrefilterSkip); only the residual
//    runs interpreted.
//
// The engine mirrors the legacy semantics exactly — same survivors, same
// ConstraintEvaluated / ComplianceCheck counter totals — which the
// tier-1 columnar oracle test enforces on randomized libraries, with
// kernels forced to scalar and to the widest supported ISA.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dsl/constraint.hpp"
#include "dsl/core_library.hpp"
#include "support/symbol.hpp"

namespace dslayer::telemetry {
class Telemetry;
}

namespace dslayer::dsl {

/// Compliance predicate for one requirement (the DesignSpaceLayer
/// registry type; re-exported there as DesignSpaceLayer::CoreFilter).
using CoreFilter = std::function<bool(const Core&, const Bindings&)>;

/// One column payload: either owned (a vector, the build path) or aliasing
/// an external read-only buffer (an mmapped snapshot — the table's
/// keepalive pins the mapping). The subset of the vector interface the
/// engine uses; mutation is only valid on owned payloads, which is all the
/// build/degrade paths ever touch.
template <typename T>
class ColumnData {
 public:
  ColumnData() = default;
  ColumnData(const ColumnData& other) { *this = other; }
  ColumnData(ColumnData&& other) noexcept { *this = std::move(other); }
  ColumnData& operator=(const ColumnData& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    size_ = other.size_;
    aliased_ = other.aliased_;
    data_ = aliased_ ? other.data_ : owned_.data();
    return *this;
  }
  ColumnData& operator=(ColumnData&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    size_ = other.size_;
    aliased_ = other.aliased_;
    data_ = aliased_ ? other.data_ : owned_.data();
    other.data_ = nullptr;
    other.size_ = 0;
    other.aliased_ = false;
    return *this;
  }
  /// Adopts an owned vector (degrade path).
  ColumnData& operator=(std::vector<T>&& v) {
    owned_ = std::move(v);
    data_ = owned_.data();
    size_ = owned_.size();
    aliased_ = false;
    return *this;
  }

  void assign(std::size_t n, const T& value) {
    owned_.assign(n, value);
    data_ = owned_.data();
    size_ = n;
    aliased_ = false;
  }
  /// Points at `n` external elements; the owner must outlive this table
  /// (CoreTable's keepalive).
  void alias(const T* external, std::size_t n) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = const_cast<T*>(external);
    size_ = n;
    aliased_ = true;
  }
  void clear() {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = nullptr;
    size_ = 0;
    aliased_ = false;
  }

  T* data() { return data_; }  ///< writes valid only while owned
  const T* data() const { return data_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool aliased() const { return aliased_; }
  /// Heap bytes held (0 when aliasing a file-backed buffer) — what
  /// memory_bytes() sums.
  std::size_t resident_bytes() const {
    return aliased_ ? 0 : owned_.capacity() * sizeof(T);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  bool aliased_ = false;
  std::vector<T> owned_;
};

class CoreTable {
 public:
  enum class ColumnKind : std::uint8_t {
    kNumber,  ///< every present value is a number -> raw doubles
    kText,    ///< every present value is text -> interned symbols
    kMixed,   ///< heterogeneous (or flag) -> boxed Values
  };

  struct Column {
    support::Symbol symbol = support::kNoSymbol;
    ColumnKind kind = ColumnKind::kNumber;
    ColumnData<std::uint64_t> present;       ///< presence bitmap, 64 rows/word
    ColumnData<double> numbers;              ///< kNumber payload (padded to words*64)
    ColumnData<support::Symbol> texts;       ///< kText payload (padded to words*64)
    std::vector<Value> values;               ///< kMixed payload (always owned)

    bool has(std::size_t row) const {
      return (present[row >> 6] >> (row & 63)) & 1u;
    }
  };

  /// Snapshots `cores` (row order preserved — it is the candidates()
  /// output order). Text values are interned as they are stored. Column
  /// payloads are fully sized up front from the core count (padded to
  /// whole 64-row words for the SIMD kernels).
  explicit CoreTable(const std::vector<const Core*>& cores);

  /// Bulk-restore for snapshot load (src/storage/snapshot.cpp): adopts
  /// pre-built columns whose payloads may alias an external buffer pinned
  /// by `keepalive` (the mmapped snapshot). Rebuilds the symbol indexes;
  /// row/column semantics are the caller's responsibility — the snapshot
  /// format stores columns exactly as the building constructor lays them
  /// out.
  CoreTable(std::vector<const Core*> cores, std::vector<Column> binding_columns,
            std::vector<Column> metric_columns, std::shared_ptr<const void> keepalive);

  std::size_t rows() const { return cores_.size(); }
  std::size_t words() const { return words_; }
  const std::vector<const Core*>& cores() const { return cores_; }

  /// Binding / metric column for a symbol; nullptr if no indexed core
  /// binds it. References are stable for the table's lifetime. Lookup is
  /// a binary search over a sorted flat vector (symbols are dense u32).
  const Column* binding_column(support::Symbol symbol) const;
  const Column* metric_column(support::Symbol symbol) const;

  std::size_t binding_column_count() const { return binding_columns_.size(); }
  std::size_t metric_column_count() const { return metric_columns_.size(); }

  /// Column directories in slot order — the snapshot writer walks these.
  const std::vector<Column>& binding_columns() const { return binding_columns_; }
  const std::vector<Column>& metric_columns() const { return metric_columns_; }

  /// Approximate resident bytes of the snapshot (payloads + bitmaps +
  /// row pointers + indexes). Deterministic for a given library, which
  /// is what lets the bench gate bytes_per_core like a counter.
  std::size_t memory_bytes() const;

 private:
  /// Sorted (symbol, column slot) pairs — the flat replacement for the
  /// former std::map indexes.
  using SymbolIndex = std::vector<std::pair<support::Symbol, std::uint32_t>>;

  Column& column_for(SymbolIndex& index, std::vector<Column>& columns, support::Symbol symbol,
                     ColumnKind kind);
  static const Column* lookup(const SymbolIndex& index, const std::vector<Column>& columns,
                              support::Symbol symbol);
  void store(Column& column, std::size_t row, const Value& value);
  void degrade_to_mixed(Column& column);

  std::vector<const Core*> cores_;
  std::size_t words_ = 0;
  std::size_t padded_rows_ = 0;  ///< words_ * 64
  std::vector<Column> binding_columns_;
  std::vector<Column> metric_columns_;
  SymbolIndex binding_index_;
  SymbolIndex metric_index_;
  std::shared_ptr<const void> keepalive_;  ///< pins aliased payload backing
};

/// One predicate constraint lowered against a CoreTable. `compiled` is
/// false for opaque lambda predicates (evaluated row-wise instead).
struct CompiledPredicate {
  /// A property reference or constant inside an atom, resolved against
  /// the table: `column` >= 0 means a binding column exists for the
  /// symbol; the constant payload covers literals (session fallbacks are
  /// resolved per query, not here).
  struct Term {
    support::Symbol symbol = support::kNoSymbol;  ///< kNoSymbol => pure constant
    std::int32_t column = -1;                     ///< >= 0: table has a binding column
    Value::Kind const_kind = Value::Kind::kEmpty;
    double number = 0.0;
    support::Symbol text = support::kNoSymbol;
    bool flag = false;
  };

  /// One atom: lhs [* factor] <cmp> rhs.
  struct Op {
    PredicateAtom::Cmp cmp = PredicateAtom::Cmp::kEq;
    Term lhs;
    Term factor;  ///< engaged iff has_factor
    Term rhs;
    bool has_factor = false;
  };

  const ConsistencyConstraint* constraint = nullptr;
  bool compiled = false;
  std::vector<Term> references;  ///< every referenced property (dedup'd)
  std::vector<Op> ops;
};

/// Everything candidates() needs for one CDO, built once per index
/// generation: the columnar table over cores_under(cdo) plus one
/// CompiledPredicate per ConstraintIndex predicate (same order).
struct CoreFilterPlan {
  CoreTable table;
  std::vector<CompiledPredicate> predicates;

  CoreFilterPlan(const std::vector<const Core*>& cores,
                 const std::vector<const ConsistencyConstraint*>& predicate_constraints);

  /// Adopts an already-built (snapshot-restored) table and compiles the
  /// predicate programs against it — plan restore never re-scans cores.
  CoreFilterPlan(CoreTable restored,
                 const std::vector<const ConsistencyConstraint*>& predicate_constraints);

 private:
  void compile(const std::vector<const ConsistencyConstraint*>& predicate_constraints);
};

/// The session side of a columnar filter run: the decided design issues,
/// the declarative / custom requirements, and the bindings snapshot that
/// backfills properties no core column answers.
struct FilterQuery {
  struct Equality {
    support::Symbol symbol = support::kNoSymbol;  ///< kNoSymbol: name never interned
    Value value;
  };
  struct MetricBound {
    support::Symbol symbol = support::kNoSymbol;
    bool at_most = false;  ///< kCoreAtMost; else kCoreAtLeast
    double bound = 0.0;
  };
  /// One registered custom filter, optionally with a declared ACCEPT
  /// prefilter: a PredicateAtom conjunction such that any row where
  /// every referenced property resolves (binding column, metric column,
  /// or session binding) and every atom holds is guaranteed compliant.
  /// Such rows skip the lambda (kPrefilterSkip); all other rows —
  /// including every row when pass_when is null or unresolvable — run
  /// the lambda exactly as before, so a conservative (or wrong-shaped)
  /// prefilter can only cost speed, never candidates.
  struct Custom {
    const CoreFilter* filter = nullptr;
    const std::vector<PredicateAtom>* pass_when = nullptr;
  };

  const Bindings* bound = nullptr;       ///< session bindings snapshot
  std::vector<Equality> decided;         ///< step 1: core-filtering decisions
  std::vector<Equality> require_equal;   ///< step 2: kCoreEquals requirements
  std::vector<MetricBound> require_metric;  ///< step 2: kCoreAtMost/AtLeast
  std::vector<Custom> custom;               ///< step 2: registered filters
};

/// Runs the filter; returns surviving cores in table row order (the
/// legacy scan order). Counts kComplianceCheck once per row and
/// kConstraintEvaluated per (row, predicate) actually reached, exactly
/// like the legacy loop.
std::vector<const Core*> run_core_filter(const CoreFilterPlan& plan, const FilterQuery& query,
                                         telemetry::Telemetry& telemetry);

/// Row count at and above which run_core_filter fans predicate sweeps
/// out over support::ChunkPool::shared(). Settable for tests/benches.
std::size_t columnar_parallel_threshold();
void set_columnar_parallel_threshold(std::size_t rows);

/// Applies one core's bindings on top of a session snapshot and undoes
/// them on revert() — the allocation-free replacement for the legacy
/// per-core `Bindings merged = bound` rebuild. apply() returns the
/// number of map writes performed (the kOverlayWrite telemetry count).
class BindingsOverlay {
 public:
  explicit BindingsOverlay(Bindings& base) : base_(&base) {}

  std::size_t apply(const Core& core);
  void revert();

 private:
  struct Undo {
    const std::string* key = nullptr;
    Value previous;  ///< empty => key was absent, revert erases it
  };
  Bindings* base_;
  std::vector<Undo> undo_;
};

}  // namespace dslayer::dsl
