// Classes of design objects (CDOs) and the design space hierarchy.
//
// A class of design objects abstracts the design space of one behavior
// (Section 2: "Adders", "IDCT", "MPEG II encoders"). CDOs form a
// generalization/specialization hierarchy (Section 2.2, Fig. 3/5/7):
//
//  * each CDO owns properties (requirements, design issues, figures of
//    merit) and behavioral descriptions; descendants inherit them (the
//    bold inheritance path of Fig. 5);
//  * a CDO may own AT MOST ONE generalized design issue (Section 4); each
//    of its options defines a child CDO — a specialization. CDOs with no
//    generalized issue are the leaves of the hierarchy;
//  * cores from the reuse libraries are indexed onto the deepest CDO whose
//    option chain they satisfy (Section 4: "this hierarchy of CDOs
//    provides also a basic schema for classifying and indexing families of
//    cores").
//
// The hierarchy is runtime data, not a C++ type hierarchy: layers are
// authored and extended per design environment (Section 6: "easily
// scalable ... tailored to the needs and resources of each design
// environment").
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "behavior/behavior.hpp"
#include "dsl/property.hpp"

namespace dslayer::dsl {

class Core;  // core_library.hpp

class Cdo {
 public:
  /// Created through DesignSpace::add_root / Cdo::specialize.
  Cdo(std::string name, Cdo* parent, std::string doc);

  Cdo(const Cdo&) = delete;
  Cdo& operator=(const Cdo&) = delete;

  const std::string& name() const { return name_; }
  const std::string& doc() const { return doc_; }

  /// '.'-joined path from the root, e.g. "Operator.Modular.Multiplier".
  std::string path() const;

  const Cdo* parent() const { return parent_; }
  Cdo* parent() { return parent_; }

  /// Depth from the root (root = 0).
  unsigned depth() const;

  // -- properties -------------------------------------------------------------

  /// Adds a property. Throws DefinitionError if the name collides with a
  /// local or inherited property, or if a second generalized design issue
  /// is added to this CDO.
  void add_property(Property property);

  /// Locally declared properties, in declaration order.
  const std::vector<Property>& local_properties() const { return properties_; }

  /// Finds a property here or in any ancestor (inheritance); nullptr if
  /// absent.
  const Property* find_property(const std::string& name) const;

  /// The CDO (this or an ancestor) declaring `name`; nullptr if absent.
  const Cdo* property_owner(const std::string& name) const;

  /// All visible properties: inherited first (root downwards), then local.
  std::vector<const Property*> visible_properties() const;

  /// This CDO's own generalized design issue; nullptr if none (leaf).
  const Property* generalized_issue() const;

  bool is_leaf() const { return generalized_issue() == nullptr; }

  // -- specialization -----------------------------------------------------------

  /// Creates the child CDO for `option` of this CDO's generalized issue.
  /// `name` defaults to the option string. Throws DefinitionError if there
  /// is no generalized issue, the option is not in its domain, or the
  /// option already has a child.
  Cdo& specialize(const std::string& option, std::string name = "", std::string doc = "");

  /// Child for an option of the generalized issue; nullptr if absent.
  Cdo* child_for_option(const std::string& option);
  const Cdo* child_for_option(const std::string& option) const;

  /// The option of the parent's generalized issue this CDO specializes
  /// (empty for roots).
  const std::string& specializing_option() const { return option_; }

  /// All children in creation order.
  std::vector<Cdo*> children();
  std::vector<const Cdo*> children() const;

  /// This CDO and every descendant, pre-order.
  std::vector<const Cdo*> subtree() const;

  /// Applies `fn` to this CDO and every descendant, pre-order, without
  /// materializing a vector — the hot-path traversal behind subtree(),
  /// DesignSpace::all(), and the layer's subtree core index.
  template <typename Fn>
  void visit(Fn&& fn) const {
    fn(*this);
    for (const auto& c : children_) c->visit(fn);
  }

  // -- behavioral descriptions ----------------------------------------------------

  /// Attaches an algorithmic-level behavioral description (Fig. 10).
  void add_behavior(behavior::BehavioralDescription bd);

  /// Local BDs only.
  const std::vector<behavior::BehavioralDescription>& local_behaviors() const {
    return behaviors_;
  }

  /// Visible BDs: local plus inherited, most specific first.
  std::vector<const behavior::BehavioralDescription*> visible_behaviors() const;

  // -- self-documentation -----------------------------------------------------

  /// Renders this CDO (and optionally the subtree) in the style of the
  /// paper's Figs. 8/11: kind, name, SetOfValues, default, doc line.
  std::string document(bool recursive = false) const;

 private:
  std::string name_;
  std::string doc_;
  Cdo* parent_ = nullptr;
  std::string option_;  // parent's generalized-issue option this specializes

  std::vector<Property> properties_;
  std::vector<behavior::BehavioralDescription> behaviors_;

  std::vector<std::unique_ptr<Cdo>> children_;
  std::map<std::string, Cdo*> child_by_option_;
};

/// Owns the CDO roots of one design space layer.
class DesignSpace {
 public:
  /// Adds a root CDO; throws DefinitionError on duplicate names.
  Cdo& add_root(std::string name, std::string doc = "");

  std::vector<Cdo*> roots();
  std::vector<const Cdo*> roots() const;

  /// Exact path lookup ("Operator.Modular.Multiplier"); nullptr if absent.
  Cdo* find(const std::string& path);
  const Cdo* find(const std::string& path) const;

  /// All CDOs, pre-order across roots.
  std::vector<const Cdo*> all() const;

 private:
  std::vector<std::unique_ptr<Cdo>> roots_;
};

}  // namespace dslayer::dsl
