#include "dsl/core_library.hpp"

#include <memory>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

Core::Core(std::string name, std::string class_path)
    : name_(std::move(name)), class_path_(std::move(class_path)) {
  if (name_.empty()) throw DefinitionError("core name must not be empty");
  if (class_path_.empty()) throw DefinitionError(cat("core '", name_, "' needs a class path"));
}

Core& Core::bind(const std::string& property, Value value) {
  DSLAYER_REQUIRE(!property.empty(), "binding needs a property name");
  DSLAYER_REQUIRE(!value.empty(), "binding needs a value");
  symbol_bindings_[support::intern_symbol(property)] = value;
  bindings_[property] = std::move(value);
  return *this;
}

std::optional<Value> Core::binding(const std::string& property) const {
  const auto it = bindings_.find(property);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

Core& Core::set_metric(const std::string& name, double value) {
  DSLAYER_REQUIRE(!name.empty(), "metric needs a name");
  symbol_metrics_[support::intern_symbol(name)] = value;
  metrics_[name] = value;
  return *this;
}

std::optional<double> Core::metric(const std::string& name) const {
  const auto it = metrics_.find(name);
  if (it == metrics_.end()) return std::nullopt;
  return it->second;
}

Core& Core::add_view(std::string level, std::string artifact) {
  views_.push_back(CoreView{std::move(level), std::move(artifact)});
  return *this;
}

std::string Core::describe() const {
  std::ostringstream os;
  os << name_ << " [" << library_ << "] class=" << class_path_;
  for (const auto& [k, v] : bindings_) os << " " << k << "=" << v.to_string();
  for (const auto& [k, v] : metrics_) os << " " << k << "=" << format_double(v);
  return os.str();
}

ReuseLibrary::ReuseLibrary(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw DefinitionError("reuse library name must not be empty");
}

Core& ReuseLibrary::add(Core core) {
  if (!names_.insert(core.name()).second) {
    throw DefinitionError(
        cat("core '", core.name(), "' already exists in library '", name_, "'"));
  }
  core.set_library(name_);
  cores_.push_back(std::make_unique<Core>(std::move(core)));
  return *cores_.back();
}

std::vector<const Core*> ReuseLibrary::cores() const {
  std::vector<const Core*> out;
  out.reserve(cores_.size());
  for (const auto& c : cores_) out.push_back(c.get());
  return out;
}

}  // namespace dslayer::dsl
