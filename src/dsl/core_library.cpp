#include "dsl/core_library.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

namespace {

/// Interns `text` and returns both the id and the stable spelling.
std::pair<support::Symbol, const std::string*> interned(std::string_view text) {
  const support::Symbol symbol = support::intern_symbol(text);
  return {symbol, &support::symbol_name(symbol)};
}

}  // namespace

Core::Core(std::string name, std::string class_path) : name_(std::move(name)) {
  if (name_.empty()) throw DefinitionError("core name must not be empty");
  if (class_path.empty()) throw DefinitionError(cat("core '", name_, "' needs a class path"));
  std::tie(class_symbol_, class_path_) = interned(class_path);
  library_ = interned("").second;
}

Core Core::restored(std::string name, support::Symbol class_symbol,
                    const std::string* class_path) {
  if (name.empty()) throw DefinitionError("core name must not be empty");
  static const std::string* unowned = interned("").second;
  Core core;
  core.name_ = std::move(name);
  core.class_symbol_ = class_symbol;
  core.class_path_ = class_path;
  core.library_ = unowned;
  return core;
}

void Core::set_library(const std::string& library) { library_ = interned(library).second; }

Core& Core::bind(const std::string& property, Value value) {
  DSLAYER_REQUIRE(!property.empty(), "binding needs a property name");
  DSLAYER_REQUIRE(!value.empty(), "binding needs a value");
  const auto [symbol, name] = interned(property);
  const auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), property,
      [](const CoreBinding& b, const std::string& p) { return *b.name < p; });
  if (it != bindings_.end() && it->symbol == symbol) {
    it->value = std::move(value);
  } else {
    bindings_.insert(it, CoreBinding{symbol, name, std::move(value)});
  }
  return *this;
}

std::optional<Value> Core::binding(const std::string& property) const {
  const auto it = std::lower_bound(
      bindings_.begin(), bindings_.end(), property,
      [](const CoreBinding& b, const std::string& p) { return *b.name < p; });
  if (it == bindings_.end() || *it->name != property) return std::nullopt;
  return it->value;
}

const Value* Core::binding(support::Symbol property) const {
  for (const CoreBinding& b : bindings_) {
    if (b.symbol == property) return &b.value;
  }
  return nullptr;
}

Core& Core::set_metric(const std::string& name, double value) {
  DSLAYER_REQUIRE(!name.empty(), "metric needs a name");
  const auto [symbol, spelling] = interned(name);
  const auto it =
      std::lower_bound(metrics_.begin(), metrics_.end(), name,
                       [](const CoreMetric& m, const std::string& n) { return *m.name < n; });
  if (it != metrics_.end() && it->symbol == symbol) {
    it->value = value;
  } else {
    metrics_.insert(it, CoreMetric{symbol, spelling, value});
  }
  return *this;
}

std::optional<double> Core::metric(const std::string& name) const {
  const auto it =
      std::lower_bound(metrics_.begin(), metrics_.end(), name,
                       [](const CoreMetric& m, const std::string& n) { return *m.name < n; });
  if (it == metrics_.end() || *it->name != name) return std::nullopt;
  return it->value;
}

Core& Core::add_view(std::string level, std::string artifact) {
  views_.push_back(CoreView{std::move(level), std::move(artifact)});
  return *this;
}

void Core::adopt(std::vector<CoreBinding> bindings, std::vector<CoreMetric> metrics) {
#ifndef NDEBUG
  for (std::size_t i = 0; i + 1 < bindings.size(); ++i) {
    assert(*bindings[i].name < *bindings[i + 1].name && "adopted bindings must be name-sorted");
  }
  for (std::size_t i = 0; i + 1 < metrics.size(); ++i) {
    assert(*metrics[i].name < *metrics[i + 1].name && "adopted metrics must be name-sorted");
  }
#endif
  bindings_ = std::move(bindings);
  metrics_ = std::move(metrics);
}

std::string Core::describe() const {
  std::ostringstream os;
  os << name_ << " [" << *library_ << "] class=" << *class_path_;
  for (const CoreBinding& b : bindings_) os << " " << *b.name << "=" << b.value.to_string();
  for (const CoreMetric& m : metrics_) os << " " << *m.name << "=" << format_double(m.value);
  return os.str();
}

ReuseLibrary::ReuseLibrary(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw DefinitionError("reuse library name must not be empty");
  interned_name_ = interned(name_).second;
}

Core& ReuseLibrary::add(Core core) {
  core.library_ = interned_name_;  // interned once at construction, not per core
  cores_.push_back(std::move(core));
  // Single hash op on the stored name (the deque slot is stable); a
  // duplicate is rolled back before the throw.
  const auto [it, inserted] = names_.insert(std::string_view(cores_.back().name()));
  if (!inserted) {
    const std::string dup = cores_.back().name();
    cores_.pop_back();
    throw DefinitionError(cat("core '", dup, "' already exists in library '", name_, "'"));
  }
  return cores_.back();
}

void ReuseLibrary::reserve(std::size_t count) { names_.reserve(cores_.size() + count); }

std::vector<const Core*> ReuseLibrary::cores() const {
  std::vector<const Core*> out;
  out.reserve(cores_.size());
  for (const Core& c : cores_) out.push_back(&c);
  return out;
}

}  // namespace dslayer::dsl
