#include "dsl/exploration.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>
#include <sstream>

#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dslayer::dsl {

namespace {

using telemetry::EventKind;

/// Journal encoding of a Value: a kind tag plus a payload that replays to
/// the exact same Value ("num:" uses 17 significant digits so doubles
/// round-trip bit-exactly through strtod).
std::string encode_value(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kNumber: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_number());
      return cat("num:", buf);
    }
    case Value::Kind::kText:
      return cat("txt:", v.as_text());
    case Value::Kind::kFlag:
      return v.as_flag() ? "flag:true" : "flag:false";
    case Value::Kind::kEmpty:
      break;
  }
  return "empty";
}

Value decode_value(const std::string& encoded) {
  if (starts_with(encoded, "num:")) {
    const std::string payload = encoded.substr(4);
    char* end = nullptr;
    const double number = std::strtod(payload.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == payload.c_str()) {
      throw ExplorationError(cat("journal value '", encoded, "' is not a number"));
    }
    return Value::number(number);
  }
  if (starts_with(encoded, "txt:")) return Value::text(encoded.substr(4));
  if (encoded == "flag:true") return Value::flag(true);
  if (encoded == "flag:false") return Value::flag(false);
  throw ExplorationError(cat("journal value '", encoded, "' has no known kind tag"));
}

}  // namespace

ExplorationSession::ExplorationSession(const DesignSpaceLayer& layer,
                                       const std::string& class_path)
    : layer_(&layer) {
  const Cdo* cdo = layer.space().find(class_path);
  if (cdo == nullptr) {
    throw DefinitionError(cat("no CDO at path '", class_path, "'"));
  }
  root_ = cdo;
  current_ = cdo;
  journal_ = std::make_shared<telemetry::JournalSink>(std::initializer_list<EventKind>{
      EventKind::kSessionOpened, EventKind::kRequirementSet, EventKind::kDecision,
      EventKind::kRetract, EventKind::kReaffirm});
  telemetry_.add_sink(journal_);
  // Record the generalized options already implied by the class path as
  // structural decisions (they were "made" by choosing this class).
  for (const Cdo* c = cdo; c->parent() != nullptr; c = c->parent()) {
    const Property* issue = c->parent()->generalized_issue();
    if (issue != nullptr && !c->specializing_option().empty()) {
      Entry e;
      e.value = Value::text(c->specializing_option());
      e.state = State::kSet;
      e.is_structural = true;
      entries_[issue->name] = std::move(e);
    }
  }
  log(cat("session opened at '", class_path, "'"));
  telemetry_.emit(EventKind::kSessionOpened, root_->path());
}

const Property& ExplorationSession::require_property(const std::string& name,
                                                     PropertyKind kind) const {
  const Property* p = current_->find_property(name);
  if (p == nullptr) {
    throw ExplorationError(
        cat("no property '", name, "' visible at CDO '", current_->path(), "'"));
  }
  if (p->kind != kind) {
    throw ExplorationError(cat("property '", name, "' is a ", to_string(p->kind), ", not a ",
                               to_string(kind)));
  }
  return *p;
}

const Bindings& ExplorationSession::bindings() const {
  if (cache_enabled_ && bindings_generation_ == generation_) {
    telemetry_.emit(EventKind::kCacheHit, "bindings");
    return bindings_cache_;
  }
  telemetry_.emit(EventKind::kCacheMiss, "bindings");
  telemetry::ScopedTimer timer(&telemetry_, "bindings");
  bindings_cache_ = compute_bindings();
  bindings_generation_ = generation_;
  return bindings_cache_;
}

Bindings ExplorationSession::compute_bindings() const {
  Bindings out;
  for (const auto& [name, entry] : entries_) {
    if (!entry.value.empty()) out[name] = entry.value;
  }
  // Defaults for visible properties the designer has not addressed (the
  // paper shows defaults for Radix, Number of Slices, Algorithm).
  for (const Property* p : current_->visible_properties()) {
    if (p->default_value.has_value() && !out.contains(p->name)) {
      out[p->name] = *p->default_value;
    }
  }
  return out;
}

void ExplorationSession::check_ordering(const std::string& name) const {
  const Bindings& bound = bindings();
  for (const ConsistencyConstraint* cc : layer_->constraint_index(*current_).constraining(name)) {
    for (const PropertyPath& indep : cc->independent()) {
      // Ordering is enforced between DESIGN ISSUES: a dependent issue may
      // only be decided after its independent issues. Requirement
      // independents are problem givens — when absent they simply leave
      // the relation unevaluable (unconstrained) rather than blocking the
      // decision. References that are not properties in this scope
      // (behavioral descriptions etc.) are structural context.
      const Property* ip = current_->find_property(indep.property());
      if (ip == nullptr || ip->kind != PropertyKind::kDesignIssue) continue;
      if (get_or_empty(bound, indep.property()).empty()) {
        throw ExplorationError(cat("constraint ", cc->id(), " orders '", name, "' after '",
                                   indep.property(), "' — address the independent set first (",
                                   cc->doc(), ")"));
      }
    }
  }
}

void ExplorationSession::check_consistency(const std::string& name, const Value& value) const {
  // Veto only applies when the property being set is a DEPENDENT of the
  // constraint. Changing an independent that invalidates already-made
  // decisions is allowed — the paper's model flags those decisions for
  // re-assessment instead (handled by invalidate_dependents / the conflict
  // scan in the callers).
  Bindings tentative = bindings();
  tentative[name] = value;
  for (const ConsistencyConstraint* cc : layer_->constraint_index(*current_).constraining(name)) {
    if (cc->kind() != RelationKind::kInconsistentOptions &&
        cc->kind() != RelationKind::kDominanceElimination) {
      continue;
    }
    telemetry_.count(EventKind::kConstraintEvaluated);
    if (cc->violated(tentative)) {
      const char* why = cc->kind() == RelationKind::kDominanceElimination
                            ? "eliminated as inferior"
                            : "inconsistent";
      telemetry_.emit(EventKind::kOptionEliminated, name,
                      cat(value.to_string(), " vetoed by ", cc->id()));
      throw ExplorationError(
          cat("constraint ", cc->id(), ": '", name, "' = ", value.to_string(), " is ", why,
              " with the current values (", cc->doc(), ")"));
    }
  }
}

void ExplorationSession::scan_conflicts(const std::string& name) {
  // After an independent changed, record which constraints are now violated
  // (their dependents have just been flagged for re-assessment).
  const Bindings& bound = bindings();
  for (const ConsistencyConstraint* cc : layer_->constraint_index(*current_).depending_on(name)) {
    if (cc->kind() != RelationKind::kInconsistentOptions &&
        cc->kind() != RelationKind::kDominanceElimination) {
      continue;
    }
    telemetry_.count(EventKind::kConstraintEvaluated);
    if (cc->violated(bound)) {
      log(cat("CONFLICT ", cc->id(), ": current values violate '", cc->doc(),
              "' — re-assess the flagged properties"));
    }
  }
}

void ExplorationSession::invalidate_dependents(const std::string& name) {
  // Transitive closure over the constraint graph: any set property whose
  // constraint depends on `name` needs re-assessment.
  std::vector<std::string> frontier{name};
  while (!frontier.empty()) {
    const std::string changed = std::move(frontier.back());
    frontier.pop_back();
    for (const ConsistencyConstraint* cc :
         layer_->constraint_index(*current_).depending_on(changed)) {
      for (const PropertyPath& dep : cc->dependent()) {
        const auto it = entries_.find(dep.property());
        if (it == entries_.end() || it->second.state != State::kSet ||
            it->second.is_structural || dep.property() == name) {
          continue;
        }
        it->second.state = State::kNeedsReassessment;
        log(cat("'", dep.property(), "' flagged for re-assessment (", cc->id(),
                ": independent '", changed, "' changed)"));
        telemetry_.emit(EventKind::kReassessmentFlagged, dep.property(),
                        cat(cc->id(), ": independent '", changed, "' changed"));
        frontier.push_back(dep.property());
      }
    }
  }
}

void ExplorationSession::set_requirement(const std::string& name, Value value) {
  const Property& p = require_property(name, PropertyKind::kRequirement);
  if (!p.domain.contains(value)) {
    throw ExplorationError(cat("value ", value.to_string(), " is outside the SetOfValues ",
                               p.domain.describe(), " of requirement '", name, "'"));
  }
  check_ordering(name);
  check_consistency(name, value);
  Entry& e = entries_[name];
  const bool revision = !e.value.empty();
  e.value = std::move(value);
  e.state = State::kSet;
  e.is_requirement = true;
  touch();
  log(cat(revision ? "requirement revised: " : "requirement set: ", name, " = ",
          e.value.to_string()));
  telemetry_.emit(EventKind::kRequirementSet, name, encode_value(e.value));
  invalidate_dependents(name);
  scan_conflicts(name);
}

void ExplorationSession::decide(const std::string& name, Value value) {
  const Property& p = require_property(name, PropertyKind::kDesignIssue);
  if (!p.domain.contains(value)) {
    throw ExplorationError(cat("value ", value.to_string(), " is outside the SetOfValues ",
                               p.domain.describe(), " of design issue '", name, "'"));
  }

  if (p.generalized) {
    const Cdo* owner = current_->property_owner(name);
    if (owner != current_) {
      throw ExplorationError(cat("generalized issue '", name,
                                 "' belongs to '", owner->path(),
                                 "' and is already fixed by the session scope"));
    }
  }

  check_ordering(name);
  check_consistency(name, value);

  Entry& e = entries_[name];
  const bool revision = !e.value.empty();
  e.value = value;
  e.state = State::kSet;
  e.is_requirement = false;
  touch();
  log(cat(revision ? "decision revised: " : "decision: ", name, " = ", value.to_string()));
  telemetry_.emit(EventKind::kDecision, name, encode_value(value));
  invalidate_dependents(name);
  scan_conflicts(name);

  if (p.generalized) {
    const Cdo* child = current_->child_for_option(value.as_text());
    if (child == nullptr) {
      throw DefinitionError(cat("option '", value.as_text(), "' of '", current_->path(),
                                "' has no specialized CDO — layer is incomplete"));
    }
    current_ = child;
    touch();
    log(cat("descended to '", current_->path(), "' (design space pruned)"));
  }
}

void ExplorationSession::retract(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.value.empty()) {
    throw ExplorationError(cat("'", name, "' has no value to retract"));
  }
  if (it->second.is_structural) {
    throw ExplorationError(cat("'", name, "' is fixed by the session's class path"));
  }

  // If this was a generalized decision below the session root, ascend.
  const Property* p = current_->find_property(name);
  if (p != nullptr && p->generalized) {
    const Cdo* owner = current_->property_owner(name);
    if (owner != nullptr && owner->depth() < current_->depth()) {
      current_ = owner;
      log(cat("ascended to '", current_->path(), "'"));
    }
  }

  entries_.erase(it);
  log(cat("retracted: ", name));

  // Drop values for properties no longer visible from the new scope.
  for (auto iter = entries_.begin(); iter != entries_.end();) {
    if (!iter->second.is_structural && current_->find_property(iter->first) == nullptr) {
      log(cat("dropped out-of-scope value: ", iter->first));
      iter = entries_.erase(iter);
    } else {
      ++iter;
    }
  }
  touch();
  telemetry_.emit(EventKind::kRetract, name);
  invalidate_dependents(name);
}

void ExplorationSession::reaffirm(const std::string& name) {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.state != State::kNeedsReassessment) {
    throw ExplorationError(cat("'", name, "' is not awaiting re-assessment"));
  }
  // Re-check the kept value against the current context.
  check_consistency(name, it->second.value);
  it->second.state = State::kSet;
  touch();
  log(cat("re-affirmed: ", name, " = ", it->second.value.to_string()));
  telemetry_.emit(EventKind::kReaffirm, name);
}

ExplorationSession::State ExplorationSession::state_of(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? State::kUnset : it->second.state;
}

std::optional<Value> ExplorationSession::value_of(const std::string& name) const {
  const auto it = entries_.find(name);
  if (it == entries_.end() || it->second.value.empty()) return std::nullopt;
  return it->second.value;
}

std::vector<std::string> ExplorationSession::pending_reassessment() const {
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    if (entry.state == State::kNeedsReassessment) out.push_back(name);
  }
  return out;
}

std::vector<std::string> ExplorationSession::available_options(const std::string& issue) const {
  const Property& p = require_property(issue, PropertyKind::kDesignIssue);
  DSLAYER_REQUIRE(p.domain.kind() == ValueDomain::Kind::kOptions,
                  "available_options needs an enumerated design issue");
  std::vector<std::string> out;
  const auto eliminated = eliminated_options(issue);
  for (const std::string& option : p.domain.option_list()) {
    const bool gone = std::any_of(eliminated.begin(), eliminated.end(),
                                  [&option](const auto& pr) { return pr.first == option; });
    if (!gone) out.push_back(option);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ExplorationSession::eliminated_options(
    const std::string& issue) const {
  const Property& p = require_property(issue, PropertyKind::kDesignIssue);
  DSLAYER_REQUIRE(p.domain.kind() == ValueDomain::Kind::kOptions,
                  "eliminated_options needs an enumerated design issue");
  std::vector<std::pair<std::string, std::string>> out;
  // Mirror decide()'s veto exactly: a constraint eliminates an option only
  // when `issue` is in its DEPENDENT set. Constraints that merely depend on
  // `issue` (independent side) do not veto — decide() accepts the option and
  // flags the constraint's dependents for re-assessment instead (see
  // reassessment_flags()). Matching the independent side here used to report
  // options as eliminated that decide() would happily accept.
  telemetry::ScopedTimer timer(&telemetry_, "eliminated_options");
  Bindings tentative = bindings();
  for (const std::string& option : p.domain.option_list()) {
    tentative[issue] = Value::text(option);
    for (const ConsistencyConstraint* cc :
         layer_->constraint_index(*current_).constraining(issue)) {
      if (cc->kind() != RelationKind::kInconsistentOptions &&
          cc->kind() != RelationKind::kDominanceElimination) {
        continue;
      }
      telemetry_.count(EventKind::kConstraintEvaluated);
      if (cc->violated(tentative)) {
        telemetry_.emit(EventKind::kOptionEliminated, issue, cat(option, " by ", cc->id()));
        out.emplace_back(option, cc->id());
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> ExplorationSession::reassessment_flags(
    const std::string& issue) const {
  const Property& p = require_property(issue, PropertyKind::kDesignIssue);
  DSLAYER_REQUIRE(p.domain.kind() == ValueDomain::Kind::kOptions,
                  "reassessment_flags needs an enumerated design issue");
  std::vector<std::pair<std::string, std::string>> out;
  Bindings tentative = bindings();
  for (const std::string& option : p.domain.option_list()) {
    tentative[issue] = Value::text(option);
    for (const ConsistencyConstraint* cc :
         layer_->constraint_index(*current_).depending_on(issue)) {
      if (cc->kind() != RelationKind::kInconsistentOptions &&
          cc->kind() != RelationKind::kDominanceElimination) {
        continue;
      }
      // The dependent side already vetoes through eliminated_options();
      // only a pure independent role flags re-assessment.
      if (cc->constrains(issue)) continue;
      telemetry_.count(EventKind::kConstraintEvaluated);
      if (cc->violated(tentative)) {
        out.emplace_back(option, cc->id());
        break;
      }
    }
  }
  return out;
}

void ExplorationSession::declare_prefilter(const std::string& name,
                                           std::vector<PredicateAtom> pass_when) {
  if (pass_when.empty()) {
    prefilters_.erase(name);
  } else {
    prefilters_[name] = std::move(pass_when);
  }
  touch();  // engine path changed; memoized candidates must recompute
}

const std::vector<const Core*>& ExplorationSession::candidates() const {
  if (cache_enabled_ && candidates_generation_ == generation_) {
    telemetry_.emit(EventKind::kCacheHit, "candidates");
    return candidates_cache_;
  }
  telemetry_.emit(EventKind::kCacheMiss, "candidates");
  telemetry::ScopedTimer timer(&telemetry_, "candidates");
  candidates_cache_ = compute_candidates();
  candidates_generation_ = generation_;
  return candidates_cache_;
}

std::vector<const Core*> ExplorationSession::compute_candidates() const {
  return columnar_enabled_ ? compute_candidates_columnar() : compute_candidates_legacy();
}

std::vector<const Core*> ExplorationSession::compute_candidates_legacy() const {
  // Chaos/deadline hook: a delay armed here stalls the scan so a request
  // deadline can expire mid-sweep and hit the per-core checkpoint below.
  DSLAYER_FAILPOINT("dsl.candidates.sweep");
  const std::vector<const Core*>& cores = layer_->cores_under(*current_);
  const Bindings& bound = bindings();
  const ConstraintIndex& idx = layer_->constraint_index(*current_);

  // One merged-bindings map for the whole scan: each core's bindings are
  // overlaid before its predicate checks and undone after, instead of
  // rebuilding the map per core.
  Bindings merged = bound;
  BindingsOverlay overlay(merged);

  const auto complies = [&](const Core& core) {
    // 1. Every explicitly decided, core-filtering design issue must match
    //    the core's binding.
    for (const auto& [name, entry] : entries_) {
      if (entry.is_requirement || entry.is_structural || entry.value.empty()) continue;
      const Property* p = current_->find_property(name);
      if (p == nullptr || p->kind != PropertyKind::kDesignIssue || !p->filters_cores) continue;
      const auto binding = core.binding(name);
      if (!binding.has_value() || !(*binding == entry.value)) return false;
    }
    // 2. Requirements: custom filter first, declarative compliance second.
    for (const auto& [name, entry] : entries_) {
      if (!entry.is_requirement || entry.value.empty()) continue;
      if (const auto* filter = layer_->core_filter(name)) {
        if (!(*filter)(core, bound)) return false;
        continue;
      }
      const Property* p = current_->find_property(name);
      if (p == nullptr || p->compliance == Compliance::kNone) continue;
      const std::string key = p->compliance_key.empty() ? name : p->compliance_key;
      if (p->compliance == Compliance::kCoreEquals) {
        const auto binding = core.binding(key);
        if (!binding.has_value() || !(*binding == entry.value)) return false;
      } else {
        const auto metric = core.metric(key);
        if (!metric.has_value()) return false;
        const double required = entry.value.as_number();
        if (p->compliance == Compliance::kCoreAtMost && *metric > required) return false;
        if (p->compliance == Compliance::kCoreAtLeast && *metric < required) return false;
      }
    }
    // 3. Constraint compliance: overlay the core's own bindings and check
    //    every predicate constraint (this is how CC4 removes dominated
    //    cores even before the designer touches the corresponding issue).
    telemetry_.count(EventKind::kOverlayWrite, overlay.apply(core));
    bool ok = true;
    for (const ConsistencyConstraint* cc : idx.predicates) {
      telemetry_.count(EventKind::kConstraintEvaluated);
      if (cc->violated(merged)) {
        ok = false;
        break;
      }
    }
    overlay.revert();
    return ok;
  };

  std::vector<const Core*> out;
  // Sweep span for sampled request traces (null scope = one thread-local
  // load and no span).
  trace::SpanTimer sweep_span(trace::TraceScope::current(), trace::SpanKind::kSweep,
                              trace::TraceScope::current() != nullptr
                                  ? cat("legacy cores=", cores.size())
                                  : std::string{});
  for (const Core* core : cores) {
    // Cooperative cancellation: derived-query work only, so an expired
    // request deadline unwinds here without touching session entries.
    support::cancellation_checkpoint();
    telemetry_.count(EventKind::kComplianceCheck);
    if (complies(*core)) out.push_back(core);
  }
  return out;
}

std::vector<const Core*> ExplorationSession::compute_candidates_columnar() const {
  const CoreFilterPlan& plan = layer_->filter_plan(*current_);
  const Bindings& bound = bindings();

  // Translate the session state into a FilterQuery, mirroring the legacy
  // complies() steps entry by entry (entries_ iterates in name order, so
  // value-conversion errors surface in the same order too).
  FilterQuery query;
  query.bound = &bound;
  for (const auto& [name, entry] : entries_) {
    if (entry.value.empty()) continue;
    if (!entry.is_requirement && !entry.is_structural) {
      const Property* p = current_->find_property(name);
      if (p == nullptr || p->kind != PropertyKind::kDesignIssue || !p->filters_cores) continue;
      FilterQuery::Equality eq;
      eq.symbol = support::lookup_symbol(name).value_or(support::kNoSymbol);
      eq.value = entry.value;
      query.decided.push_back(std::move(eq));
    } else if (entry.is_requirement) {
      if (const auto* filter = layer_->core_filter(name)) {
        FilterQuery::Custom custom;
        custom.filter = filter;
        if (const auto pf = prefilters_.find(name); pf != prefilters_.end() && !pf->second.empty()) {
          custom.pass_when = &pf->second;
        }
        query.custom.push_back(custom);
        continue;
      }
      const Property* p = current_->find_property(name);
      if (p == nullptr || p->compliance == Compliance::kNone) continue;
      const std::string& key = p->compliance_key.empty() ? name : p->compliance_key;
      if (p->compliance == Compliance::kCoreEquals) {
        FilterQuery::Equality eq;
        eq.symbol = support::lookup_symbol(key).value_or(support::kNoSymbol);
        eq.value = entry.value;
        query.require_equal.push_back(std::move(eq));
      } else {
        FilterQuery::MetricBound mb;
        mb.symbol = support::lookup_symbol(key).value_or(support::kNoSymbol);
        mb.at_most = p->compliance == Compliance::kCoreAtMost;
        mb.bound = entry.value.as_number();
        query.require_metric.push_back(mb);
      }
    }
  }
  return run_core_filter(plan, query, telemetry_);
}

std::optional<ExplorationSession::MetricRange> ExplorationSession::metric_range(
    const std::string& metric) const {
  telemetry::ScopedTimer timer(&telemetry_, "metric_range");
  MetricRange range;
  bool first = true;
  for (const Core* core : candidates()) {
    const auto v = core->metric(metric);
    if (!v.has_value()) continue;
    if (first) {
      range.min = range.max = *v;
      first = false;
    } else {
      range.min = std::min(range.min, *v);
      range.max = std::max(range.max, *v);
    }
    ++range.count;
  }
  if (first) return std::nullopt;
  return range;
}

std::map<std::string, ExplorationSession::MetricRange> ExplorationSession::option_ranges(
    const std::string& issue, const std::string& metric) const {
  const Property& p = require_property(issue, PropertyKind::kDesignIssue);
  DSLAYER_REQUIRE(p.domain.kind() == ValueDomain::Kind::kOptions,
                  "option_ranges needs an enumerated design issue");
  telemetry::ScopedTimer timer(&telemetry_, "option_ranges");

  const std::vector<const Core*>& base = candidates();
  const auto options = available_options(issue);
  const std::set<std::string> open(options.begin(), options.end());

  const auto fold = [](MetricRange& range, double v) {
    if (range.count == 0) {
      range.min = range.max = v;
    } else {
      range.min = std::min(range.min, v);
      range.max = std::max(range.max, v);
    }
    ++range.count;
  };

  std::map<std::string, MetricRange> result;
  if (!p.generalized && !p.filters_cores) {
    // Integration parameters do not filter: every option keeps the full
    // candidate set, so one shared range serves all of them.
    MetricRange shared;
    for (const Core* core : base) {
      if (const auto v = core->metric(metric)) fold(shared, *v);
    }
    if (shared.count > 0) {
      for (const std::string& option : options) result[option] = shared;
    }
    return result;
  }

  // One partitioning pass over the cached candidates (no per-option
  // rescans). Options no metric-reporting core lands in are simply absent —
  // every returned range has count > 0.
  const Cdo* owner = p.generalized ? current_->property_owner(issue) : nullptr;
  for (const Core* core : base) {
    const auto v = core->metric(metric);
    if (!v.has_value()) continue;
    std::string option;
    if (p.generalized) {
      // Deciding a generalized option descends: the core's option is the
      // specializing child (of the issue's owner) its indexed CDO sits
      // under.
      for (const Cdo* c = layer_->indexed_cdo(*core); c != nullptr; c = c->parent()) {
        if (c->parent() == owner) {
          option = c->specializing_option();
          break;
        }
      }
    } else if (const auto binding = core->binding(issue);
               binding.has_value() && binding->kind() == Value::Kind::kText) {
      option = binding->as_text();
    }
    if (option.empty() || !open.contains(option)) continue;
    fold(result[option], *v);
  }
  return result;
}

std::optional<Value> ExplorationSession::derived(const std::string& property) const {
  const Bindings bound = bindings();
  for (const ConsistencyConstraint* cc : layer_->constraints_at(*current_)) {
    if (cc->kind() != RelationKind::kFormula || !cc->constrains(property)) continue;
    if (!cc->independents_bound(bound)) continue;
    return cc->evaluate(bound);
  }
  return std::nullopt;
}

std::vector<ExplorationSession::BehaviorRank> ExplorationSession::rank_behaviors(
    const std::string& dependent_property) const {
  const ConsistencyConstraint* binding_cc = nullptr;
  for (const ConsistencyConstraint* cc : layer_->constraints_at(*current_)) {
    if (cc->kind() == RelationKind::kEstimatorBinding && cc->constrains(dependent_property)) {
      binding_cc = cc;
      break;
    }
  }
  if (binding_cc == nullptr) {
    throw ExplorationError(
        cat("no estimator constraint binds '", dependent_property, "' at '", current_->path(),
            "'"));
  }
  const estimation::Estimator* tool = layer_->estimators().find(binding_cc->estimator_name());
  if (tool == nullptr) {
    throw ExplorationError(cat("estimator '", binding_cc->estimator_name(),
                               "' referenced by ", binding_cc->id(), " is not registered"));
  }
  const Bindings bound = bindings();
  std::vector<BehaviorRank> ranks;
  for (const behavior::BehavioralDescription* bd : current_->visible_behaviors()) {
    const estimation::EstimateInput input = layer_->build_context(bound, *bd);
    ranks.push_back(BehaviorRank{bd->name(), tool->estimate(input)});
  }
  std::sort(ranks.begin(), ranks.end(),
            [](const BehaviorRank& a, const BehaviorRank& b) { return a.value < b.value; });
  return ranks;
}

std::vector<ExplorationSession::OperatorSite> ExplorationSession::behavioral_decomposition()
    const {
  const auto bds = current_->visible_behaviors();
  if (bds.empty()) {
    throw ExplorationError(
        cat("no behavioral description visible at '", current_->path(), "'"));
  }
  const behavior::BehavioralDescription& bd = *bds.front();
  std::vector<OperatorSite> sites;
  for (const auto& op : bd.ops()) {
    OperatorSite site;
    site.bd_name = bd.name();
    site.op_id = op.id;
    site.kind = op.kind;
    site.line = op.line;
    site.width_bits = op.width_bits;
    if (const std::string* path = layer_->operator_class(op.kind)) site.cdo_path = *path;
    sites.push_back(std::move(site));
  }
  return sites;
}

ExplorationSession ExplorationSession::open_operator_session(const OperatorSite& site) const {
  if (site.cdo_path.empty()) {
    throw ExplorationError(cat("operator '", behavior::to_string(site.kind), "' at line ",
                               site.line, " has no registered operator class"));
  }
  ExplorationSession sub(*layer_, site.cdo_path);
  // "The expression forces the consideration of Hardware realizations for
  // those operators" — here: carry the operator's datapath width into the
  // sub-problem when the class asks for one.
  const Property* word_size = sub.current().find_property("WordSize");
  if (word_size != nullptr && word_size->kind == PropertyKind::kRequirement &&
      site.width_bits > 0) {
    sub.set_requirement("WordSize", static_cast<double>(site.width_bits));
  }
  sub.log(cat("opened by behavioral decomposition of '", site.bd_name, "' (",
              behavior::to_string(site.kind), " at line ", site.line, ")"));
  return sub;
}

void ExplorationSession::log(std::string message) { trace_.push_back(std::move(message)); }

void ExplorationSession::export_journal(std::ostream& out) const {
  for (const telemetry::Event& event : journal()) {
    out << telemetry::to_jsonl(event) << '\n';
  }
}

std::string ExplorationSession::export_journal() const {
  std::ostringstream os;
  export_journal(os);
  return os.str();
}

ExplorationSession ExplorationSession::replay(const DesignSpaceLayer& layer,
                                              const std::string& jsonl) {
  std::optional<ExplorationSession> session;
  std::istringstream in(jsonl);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    const auto event = telemetry::parse_event_jsonl(line);
    if (!event.has_value()) {
      throw ExplorationError(cat("journal line ", line_no, " is not a telemetry event: ", line));
    }
    if (event->kind == EventKind::kSessionOpened) {
      if (session.has_value()) {
        throw ExplorationError(cat("journal line ", line_no,
                                   ": second SessionOpened — one journal holds one session"));
      }
      session.emplace(layer, event->subject);
      continue;
    }
    const bool mutating =
        event->kind == EventKind::kRequirementSet || event->kind == EventKind::kDecision ||
        event->kind == EventKind::kRetract || event->kind == EventKind::kReaffirm;
    if (!mutating) continue;  // observational events carry no state
    if (!session.has_value()) {
      throw ExplorationError(
          cat("journal line ", line_no, ": ", telemetry::to_string(event->kind),
              " precedes SessionOpened (journal truncated?)"));
    }
    switch (event->kind) {
      case EventKind::kRequirementSet:
        session->set_requirement(event->subject, decode_value(event->detail));
        break;
      case EventKind::kDecision:
        session->decide(event->subject, decode_value(event->detail));
        break;
      case EventKind::kRetract:
        session->retract(event->subject);
        break;
      case EventKind::kReaffirm:
        session->reaffirm(event->subject);
        break;
      default:
        break;
    }
  }
  if (!session.has_value()) {
    throw ExplorationError("journal contains no SessionOpened event");
  }
  return std::move(*session);
}

std::string ExplorationSession::report() const {
  std::ostringstream os;
  os << "Exploration of '" << root_->path() << "' (currently at '" << current_->path() << "')\n";
  os << "Values:\n";
  for (const auto& [name, entry] : entries_) {
    os << "  " << name << " = " << entry.value.to_string();
    if (entry.is_structural) os << "  [structural]";
    if (entry.is_requirement) os << "  [requirement]";
    if (entry.state == State::kNeedsReassessment) os << "  [NEEDS RE-ASSESSMENT]";
    os << "\n";
  }
  const auto& cores = candidates();
  os << "Candidate cores: " << cores.size() << "\n";
  for (const Core* core : cores) os << "  " << core->describe() << "\n";
  return os.str();
}

}  // namespace dslayer::dsl
