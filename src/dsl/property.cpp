#include "dsl/property.hpp"

#include "support/error.hpp"

namespace dslayer::dsl {

std::string to_string(PropertyKind k) {
  switch (k) {
    case PropertyKind::kRequirement: return "requirement";
    case PropertyKind::kDesignIssue: return "design issue";
    case PropertyKind::kFigureOfMerit: return "figure of merit";
  }
  return "?";
}

Property Property::requirement(std::string name, ValueDomain domain, std::string doc, Unit unit) {
  Property p;
  p.name = std::move(name);
  p.kind = PropertyKind::kRequirement;
  p.domain = std::move(domain);
  p.unit = unit;
  p.doc = std::move(doc);
  return p;
}

Property Property::design_issue(std::string name, ValueDomain domain, std::string doc) {
  Property p;
  p.name = std::move(name);
  p.kind = PropertyKind::kDesignIssue;
  p.domain = std::move(domain);
  p.doc = std::move(doc);
  return p;
}

Property Property::generalized_issue(std::string name, std::vector<std::string> options,
                                     std::string doc) {
  Property p;
  p.name = std::move(name);
  p.kind = PropertyKind::kDesignIssue;
  p.domain = ValueDomain::options(std::move(options));
  p.doc = std::move(doc);
  p.generalized = true;
  return p;
}

Property Property::figure_of_merit(std::string name, Unit unit, std::string doc) {
  Property p;
  p.name = std::move(name);
  p.kind = PropertyKind::kFigureOfMerit;
  p.domain = ValueDomain::real_range(-1.0e300, 1.0e300);
  p.unit = unit;
  p.doc = std::move(doc);
  return p;
}

Property&& Property::with_default(Value v) && {
  DSLAYER_REQUIRE(domain.contains(v), "default value outside the property domain");
  default_value = std::move(v);
  return std::move(*this);
}

Property&& Property::with_compliance(Compliance c, std::string key) && {
  DSLAYER_REQUIRE(kind == PropertyKind::kRequirement, "compliance rules are for requirements");
  compliance = c;
  compliance_key = std::move(key);
  return std::move(*this);
}

Property&& Property::without_core_filtering() && {
  filters_cores = false;
  return std::move(*this);
}

}  // namespace dslayer::dsl
