// Property paths.
//
// Consistency constraints reference properties with the paper's
// "Property@CdoPattern" notation (Fig. 13):
//
//   "O=ModuloIsOdd@OMM"                      — named CDO
//   "R=Radix@*.Hardware.Montgomery"          — wildcard pattern: any CDO
//                                              whose path ends in
//                                              Hardware.Montgomery
//   "EOL@Operator"                           — a property of an ancestor
//
// A PropertyPath is the parsed form: the property name plus a '.'-separated
// CDO pattern where '*' matches any run of path segments. An empty pattern
// means "the CDO in scope".
#pragma once

#include <string>
#include <vector>

#include "support/symbol.hpp"

namespace dslayer::dsl {

class PropertyPath {
 public:
  /// Parses "Property@Pattern"; a bare "Property" gets an empty pattern.
  /// Throws DefinitionError on malformed input (empty property, '@' twice).
  static PropertyPath parse(const std::string& text);

  /// Builds from parts directly.
  PropertyPath(std::string property, std::string pattern);

  const std::string& property() const { return property_; }
  const std::string& pattern() const { return pattern_; }

  /// Interned id of property() in the global SymbolTable — the key the
  /// columnar filter path and ConstraintIndex adjacency use instead of the
  /// string. Interned at construction, so query paths never write the
  /// table.
  support::Symbol property_symbol() const { return property_symbol_; }

  /// True if the CDO pattern matches the given '.'-separated CDO path.
  /// '*' matches any (possibly empty) run of segments; other segments match
  /// literally. A pattern without a leading '*' must match the whole path;
  /// the paper's "OMM"-style single names are matched against the final
  /// segment as a convenience (pattern "X" matches path "A.B.X").
  bool matches(const std::string& cdo_path) const;

  /// "Property@Pattern" (or just "Property" for the empty pattern).
  std::string to_string() const;

  friend bool operator==(const PropertyPath&, const PropertyPath&) = default;

 private:
  std::string property_;
  std::string pattern_;
  support::Symbol property_symbol_ = support::kNoSymbol;
};

/// Segment-level glob: '*' matches any run of segments.
bool match_segments(const std::vector<std::string>& pattern,
                    const std::vector<std::string>& path);

}  // namespace dslayer::dsl
