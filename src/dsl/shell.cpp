#include "dsl/shell.hpp"

#include <fstream>
#include <istream>
#include <memory>
#include <ostream>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"

namespace dslayer::dsl {

namespace {

constexpr const char* kHelp = R"(commands:
  tree                     hierarchy with core census
  doc [path]               layer / CDO documentation
  open <path>              open an exploration session at a CDO class
  req <name> <value>       enter a requirement (number or option text)
  decide <name> <value>    decide a design issue
  retract <name>           withdraw a value (ascends for generalized issues)
  reaffirm <name>          confirm a value flagged for re-assessment
  options <issue>          available / eliminated / re-assessment-flagging options
  ranges <issue> <metric>  what-if metric ranges per option (Sec. 5.1.5)
  candidates               compliant cores in the selected region
  range <metric>           metric range over the candidates
  derived <property>       formula-derived value (CC2-style)
  rank <property>          estimator ranking of behavioral descriptions (CC3)
  decompose                behavioral decomposition sites (DI7)
  pending                  properties awaiting re-assessment
  report                   session summary
  trace [filter]           structured session events; filters: decisions, cache,
                           legacy, or an event kind name (e.g. QueryTimed)
  trace export <file>      write the session's replay journal as JSONL
  trace replay <file>      rebuild a session deterministically from a journal
  timings                  per-query-kind latency histograms (count/p50/p95/max)
  stats [reset]            query-cache / index counters (layer + session)
  cache on|off             enable/disable the session's query memoization
  help                     this text
  quit                     leave the shell)";

/// One line per structured event: sequence number, kind, payload.
void print_event(std::ostream& out, const telemetry::Event& e) {
  out << "  #" << e.seq << " " << telemetry::to_string(e.kind);
  if (!e.subject.empty()) out << " " << e.subject;
  if (!e.detail.empty()) out << " " << e.detail;
  if (e.kind == telemetry::EventKind::kQueryTimed) {
    out << " " << format_double(e.duration_us, 4) << "us";
  }
  out << "\n";
}

void print_timings(std::ostream& out, const std::string& scope,
                   const std::map<std::string, telemetry::TimingSummary>& timings) {
  if (timings.empty()) {
    out << scope << ": no timed queries yet\n";
    return;
  }
  out << scope << ":\n";
  for (const auto& [name, t] : timings) {
    out << "  " << name << "  n=" << t.count << "  p50=" << format_double(t.p50_us, 4)
        << "us  p95=" << format_double(t.p95_us, 4) << "us  max="
        << format_double(t.max_us, 4) << "us  total=" << format_double(t.total_us, 4)
        << "us\n";
  }
}


/// Parses "768" as a number, anything else as option text.
Value parse_value(const std::string& token) {
  char* end = nullptr;
  const double number = std::strtod(token.c_str(), &end);
  if (end != nullptr && *end == '\0' && end != token.c_str()) return Value::number(number);
  return Value::text(token);
}

void print_tree(std::ostream& out, const DesignSpaceLayer& layer, const Cdo& cdo, int depth) {
  out << std::string(static_cast<std::size_t>(depth) * 2, ' ') << cdo.name();
  if (const Property* issue = cdo.generalized_issue()) {
    out << "  [" << issue->name << " " << issue->domain.describe() << "]";
  }
  if (const std::size_t n = layer.cores_at(cdo).size(); n > 0) out << "  (" << n << " cores)";
  out << "\n";
  for (const Cdo* child : cdo.children()) print_tree(out, layer, *child, depth + 1);
}

}  // namespace

ExplorationSession& ShellEngine::need_session() {
  if (session_ == nullptr) throw ExplorationError("no session — use: open <cdo-path>");
  return *session_;
}

std::string ShellEngine::journal_jsonl() const {
  return session_ == nullptr ? std::string{} : session_->export_journal();
}

void ShellEngine::restore_from_journal(const std::string& jsonl) {
  session_ = std::make_unique<ExplorationSession>(ExplorationSession::replay(*layer_, jsonl));
}

ShellEngine::Status ShellEngine::execute(const std::string& line, std::ostream& out) {
  const auto words = split(std::string(trim(line)), ' ');
  if (words.empty() || words[0].empty() || words[0][0] == '#') return Status::kEmpty;
  try {
    return dispatch(words, out);
  } catch (const DeadlineExceeded&) {
    throw;  // request cancellation — the service answers, not the command
  } catch (const FailpointError&) {
    throw;  // injected infrastructure fault, not a command error
  } catch (const Error& e) {
    out << "error: " << e.what() << "\n";
    return Status::kError;
  }
}

ShellEngine::Status ShellEngine::dispatch(const std::vector<std::string>& words,
                                          std::ostream& out) {
  const std::string& cmd = words[0];
  const DesignSpaceLayer& layer = *layer_;
  // Everything after the first two words joins back together so option
  // texts with spaces ("2's complement") survive.
  const auto rest_from = [&words](std::size_t i) {
    std::vector<std::string> tail(words.begin() + static_cast<std::ptrdiff_t>(i), words.end());
    return join(tail, " ");
  };

  if (cmd == "quit" || cmd == "exit") {
    return Status::kQuit;
  } else if (cmd == "help") {
    out << kHelp << "\n";
  } else if (cmd == "tree") {
    for (const Cdo* root : layer.space().roots()) print_tree(out, layer, *root, 0);
  } else if (cmd == "doc") {
    if (words.size() > 1) {
      const Cdo* cdo = layer.space().find(words[1]);
      if (cdo == nullptr) throw ExplorationError(cat("no CDO '", words[1], "'"));
      out << cdo->document(false);
    } else {
      out << layer.document();
    }
  } else if (cmd == "open") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: open <path>");
    session_ = std::make_unique<ExplorationSession>(layer, words[1]);
    out << "session at " << session_->current().path() << ", "
        << session_->candidates().size() << " candidates\n";
  } else if (cmd == "req" || cmd == "decide") {
    DSLAYER_REQUIRE(words.size() >= 3, "usage: req|decide <name> <value>");
    const Value value = parse_value(rest_from(2));
    if (cmd == "req") {
      need_session().set_requirement(words[1], value);
    } else {
      need_session().decide(words[1], value);
    }
    out << "ok; scope " << need_session().current().path() << ", "
        << need_session().candidates().size() << " candidates\n";
  } else if (cmd == "retract") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: retract <name>");
    need_session().retract(words[1]);
    out << "ok; scope " << need_session().current().path() << "\n";
  } else if (cmd == "reaffirm") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: reaffirm <name>");
    need_session().reaffirm(words[1]);
    out << "ok\n";
  } else if (cmd == "options") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: options <issue>");
    for (const auto& option : need_session().available_options(words[1])) {
      out << "  " << option << "\n";
    }
    for (const auto& [option, cc] : need_session().eliminated_options(words[1])) {
      out << "  " << option << "  [eliminated by " << cc << "]\n";
    }
    for (const auto& [option, cc] : need_session().reassessment_flags(words[1])) {
      out << "  " << option << "  [flags re-assessment via " << cc << "]\n";
    }
  } else if (cmd == "ranges") {
    DSLAYER_REQUIRE(words.size() >= 3, "usage: ranges <issue> <metric>");
    for (const auto& [option, range] : need_session().option_ranges(words[1], words[2])) {
      out << "  " << option << ": [" << format_double(range.min) << ", "
          << format_double(range.max) << "] over " << range.count << " cores\n";
    }
  } else if (cmd == "candidates") {
    for (const Core* core : need_session().candidates()) {
      out << "  " << core->describe() << "\n";
    }
  } else if (cmd == "range") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: range <metric>");
    const auto range = need_session().metric_range(words[1]);
    if (range.has_value()) {
      out << "[" << format_double(range->min) << ", " << format_double(range->max)
          << "] over " << range->count << " cores\n";
    } else {
      out << "no candidate reports '" << words[1] << "'\n";
    }
  } else if (cmd == "derived") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: derived <property>");
    const auto value = need_session().derived(words[1]);
    out << (value.has_value() ? value->to_string() : "<not derivable yet>") << "\n";
  } else if (cmd == "rank") {
    DSLAYER_REQUIRE(words.size() >= 2, "usage: rank <property>");
    for (const auto& rank : need_session().rank_behaviors(words[1])) {
      out << "  " << rank.bd_name << "  " << format_double(rank.value) << "\n";
    }
  } else if (cmd == "decompose") {
    for (const auto& site : need_session().behavioral_decomposition()) {
      out << "  " << behavior::to_string(site.kind) << " line " << site.line << " ["
          << site.width_bits << "b] -> "
          << (site.cdo_path.empty() ? "<no operator class>" : site.cdo_path) << "\n";
    }
  } else if (cmd == "pending") {
    for (const auto& name : need_session().pending_reassessment()) out << "  " << name << "\n";
  } else if (cmd == "report") {
    out << need_session().report();
  } else if (cmd == "trace" && words.size() >= 2 && words[1] == "export") {
    DSLAYER_REQUIRE(words.size() >= 3, "usage: trace export <file>");
    const std::string path = rest_from(2);
    ExplorationSession& s = need_session();
    // The journal travels through the pluggable JSONL sink, so a file
    // written here is exactly what a live-attached sink would produce.
    telemetry::JsonlFileSink sink(path);
    for (const auto& event : s.journal()) sink.on_event(event);
    out << "exported " << s.journal().size() << " events to " << path << "\n";
  } else if (cmd == "trace" && words.size() >= 2 && words[1] == "replay") {
    DSLAYER_REQUIRE(words.size() >= 3, "usage: trace replay <file>");
    const std::string path = rest_from(2);
    std::ifstream file(path);
    if (!file.is_open()) throw ExplorationError(cat("cannot read journal '", path, "'"));
    std::ostringstream text;
    text << file.rdbuf();
    restore_from_journal(text.str());
    out << "replayed " << session_->journal().size() << " events; scope "
        << session_->current().path() << ", " << session_->candidates().size()
        << " candidates\n";
  } else if (cmd == "trace") {
    ExplorationSession& s = need_session();
    if (words.size() >= 2 && words[1] == "legacy") {
      for (const auto& entry : s.trace()) out << "  - " << entry << "\n";
    } else {
      using telemetry::EventKind;
      const auto matches = [&words](EventKind kind) {
        if (words.size() < 2 || words[1] == "all") return true;
        if (words[1] == "decisions") {
          return kind == EventKind::kSessionOpened || kind == EventKind::kRequirementSet ||
                 kind == EventKind::kDecision || kind == EventKind::kRetract ||
                 kind == EventKind::kReaffirm || kind == EventKind::kReassessmentFlagged ||
                 kind == EventKind::kOptionEliminated;
        }
        if (words[1] == "cache") {
          return kind == EventKind::kCacheHit || kind == EventKind::kCacheMiss ||
                 kind == EventKind::kIndexRebuild;
        }
        const auto exact = telemetry::parse_event_kind(words[1]);
        if (!exact.has_value()) {
          throw ExplorationError(
              cat("unknown trace filter '", words[1],
                  "' (try: decisions, cache, legacy, all, or an event kind)"));
        }
        return kind == *exact;
      };
      const auto& ring = s.telemetry().ring();
      if (ring.dropped() > 0) {
        out << "  (" << ring.dropped() << " earlier events dropped by the ring buffer)\n";
      }
      for (const auto& event : ring.snapshot()) {
        if (matches(event.kind)) print_event(out, event);
      }
    }
  } else if (cmd == "timings") {
    print_timings(out, "layer", layer.telemetry().timings());
    if (session_ != nullptr) {
      print_timings(out, "session", session_->telemetry().timings());
    }
  } else if (cmd == "stats") {
    if (words.size() > 1 && words[1] == "reset") {
      layer.reset_query_stats();
      if (session_ != nullptr) session_->reset_query_stats();
      out << "counters reset\n";
    } else {
      out << "layer:   " << layer.query_stats().summary() << "\n";
      if (session_ != nullptr) {
        out << "session: " << session_->query_stats().summary() << " (cache "
            << (session_->query_cache_enabled() ? "on" : "off") << ")\n";
      }
    }
  } else if (cmd == "cache") {
    DSLAYER_REQUIRE(words.size() >= 2 && (words[1] == "on" || words[1] == "off"),
                    "usage: cache on|off");
    need_session().set_query_cache(words[1] == "on");
    out << "query cache " << words[1] << "\n";
  } else {
    throw ExplorationError(cat("unknown command '", cmd, "' (try: help)"));
  }
  return Status::kOk;
}

int run_shell(const DesignSpaceLayer& layer, std::istream& in, std::ostream& out) {
  ShellEngine engine(layer);
  int failures = 0;
  std::string line;
  while (std::getline(in, line)) {
    const ShellEngine::Status status = engine.execute(line, out);
    if (status == ShellEngine::Status::kQuit) break;
    if (status == ShellEngine::Status::kError) ++failures;
  }
  return failures;
}

}  // namespace dslayer::dsl
