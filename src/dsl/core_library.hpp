// Reusable cores and reuse libraries.
//
// Cores (macro-cells from IP providers, software routines, in-house blocks)
// live in reuse libraries UNDERNEATH the design space layer (Fig. 1). The
// layer never stores design data itself; it indexes cores through the CDO
// hierarchy ("the cores available in the reuse library correspond to
// 'points' in the design space ... logically indexed via these same areas
// of design decision").
//
// A core therefore carries:
//  * the CDO class it implements ("Operator.Modular.Multiplier");
//  * bindings: the design-issue options its implementation embodies
//    ("Algorithm" -> "Montgomery", "SliceWidth" -> 64, ...) — the layer
//    descends generalized issues and filters regular decisions on these;
//  * metrics: figures of merit (area, clock, latency, power) that populate
//    the evaluation space and answer range queries;
//  * views: references to the detailed design data at the traditional
//    abstraction levels (Fig. 2(b)) — opaque artifact URIs here, since the
//    actual HDL/layout lives with the IP provider.
//
// Storage layout: bindings and metrics are flat vectors sorted by property
// name, with the name itself held as a pointer to the interned spelling
// (support/symbol.hpp — stable for the process lifetime). A million-core
// catalog therefore costs a handful of allocations per core instead of one
// map node per property, which is what makes snapshot cold-starts and bulk
// imports (src/storage/) feasible; name order is preserved so describe()
// and the serialize/ export remain byte-identical with the historical
// std::map iteration.
#pragma once

#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "dsl/value.hpp"
#include "support/symbol.hpp"

namespace dslayer::dsl {

/// Reference to detailed design data at one abstraction level.
struct CoreView {
  std::string level;     ///< "algorithm", "rt", "logic", "physical"
  std::string artifact;  ///< provider URI / file reference
};

/// One stored binding: the property (as interned symbol + the interned
/// spelling, so iteration needs neither a symbol-table lock nor a string
/// compare) and its value. Equality ignores the name pointer — the symbol
/// IS the name.
struct CoreBinding {
  support::Symbol symbol = support::kNoSymbol;
  const std::string* name = nullptr;  ///< interned spelling (stable forever)
  Value value;

  friend bool operator==(const CoreBinding& a, const CoreBinding& b) {
    return a.symbol == b.symbol && a.value == b.value;
  }
};

/// One stored metric (see CoreBinding).
struct CoreMetric {
  support::Symbol symbol = support::kNoSymbol;
  const std::string* name = nullptr;
  double value = 0.0;

  friend bool operator==(const CoreMetric& a, const CoreMetric& b) {
    return a.symbol == b.symbol && a.value == b.value;
  }
};

/// One reusable design.
class Core {
 public:
  Core(std::string name, std::string class_path);

  /// Bulk-restore factory (snapshot / journal recovery): adopts an
  /// already-interned class symbol and its spelling without re-hashing.
  /// `class_path` MUST be the interned spelling of `class_symbol` — the
  /// snapshot loader resolves both once per symbol, not once per core,
  /// because at a million cores the per-core intern lookups (and the
  /// symbol table's lock) dominate cold start.
  static Core restored(std::string name, support::Symbol class_symbol,
                       const std::string* class_path);

  const std::string& name() const { return name_; }

  /// Path of the CDO class this core implements (indexing entry point).
  const std::string& class_path() const { return *class_path_; }
  support::Symbol class_symbol() const { return class_symbol_; }

  /// Name of the owning library (set on registration).
  const std::string& library() const { return *library_; }
  void set_library(const std::string& library);

  // -- bindings ---------------------------------------------------------------

  Core& bind(const std::string& property, Value value);
  std::optional<Value> binding(const std::string& property) const;

  /// Symbol-keyed fast path (kNoSymbol or an unbound symbol -> nullptr).
  const Value* binding(support::Symbol property) const;

  /// All bindings, sorted by property name.
  const std::vector<CoreBinding>& bindings() const { return bindings_; }

  // -- metrics ----------------------------------------------------------------

  Core& set_metric(const std::string& name, double value);
  std::optional<double> metric(const std::string& name) const;

  /// All metrics, sorted by name.
  const std::vector<CoreMetric>& metrics() const { return metrics_; }

  // -- views ------------------------------------------------------------------

  Core& add_view(std::string level, std::string artifact);
  const std::vector<CoreView>& views() const { return views_; }

  /// Bulk-load path for snapshot / journal recovery: adopts pre-built,
  /// name-sorted binding and metric vectors in one move (no per-property
  /// sorted insertion). Entries must have symbol and name filled and be
  /// strictly name-ordered — the writer emits them in bindings() order, so
  /// ordering is validated only in debug builds.
  void adopt(std::vector<CoreBinding> bindings, std::vector<CoreMetric> metrics);

  /// One-line rendering for reports.
  std::string describe() const;

 private:
  friend class ReuseLibrary;  // stamps library_ with its cached interned name
  Core() = default;           // restored() fills every field itself

  std::string name_;
  support::Symbol class_symbol_ = support::kNoSymbol;
  const std::string* class_path_ = nullptr;  ///< interned spelling
  const std::string* library_ = nullptr;     ///< interned spelling
  std::vector<CoreBinding> bindings_;        ///< sorted by *name
  std::vector<CoreMetric> metrics_;          ///< sorted by *name
  std::vector<CoreView> views_;
};

/// A named collection of cores (one IP provider / one in-house library).
/// Multiple libraries connect to a single design space layer (Fig. 1).
class ReuseLibrary {
 public:
  explicit ReuseLibrary(std::string name);

  const std::string& name() const { return name_; }

  /// Adds a core (stamps the library name); returns a stable reference —
  /// cores are deque-stored and never erased, so addresses never move.
  /// Duplicate detection is a hash lookup over string views into the
  /// stored cores, so bulk catalog loads stay linear in the core count.
  Core& add(Core core);

  /// Pre-sizes the duplicate-name index for a bulk load of `count` cores.
  void reserve(std::size_t count);

  bool contains(const std::string& core_name) const {
    return names_.contains(std::string_view(core_name));
  }

  std::size_t size() const { return cores_.size(); }

  std::vector<const Core*> cores() const;

 private:
  std::string name_;
  const std::string* interned_name_ = nullptr;    // interned once, stamped per add()
  std::deque<Core> cores_;                        // stable addresses, no per-core alloc
  std::unordered_set<std::string_view> names_;    // views into cores_[i].name()
};

}  // namespace dslayer::dsl
