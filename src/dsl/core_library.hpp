// Reusable cores and reuse libraries.
//
// Cores (macro-cells from IP providers, software routines, in-house blocks)
// live in reuse libraries UNDERNEATH the design space layer (Fig. 1). The
// layer never stores design data itself; it indexes cores through the CDO
// hierarchy ("the cores available in the reuse library correspond to
// 'points' in the design space ... logically indexed via these same areas
// of design decision").
//
// A core therefore carries:
//  * the CDO class it implements ("Operator.Modular.Multiplier");
//  * bindings: the design-issue options its implementation embodies
//    ("Algorithm" -> "Montgomery", "SliceWidth" -> 64, ...) — the layer
//    descends generalized issues and filters regular decisions on these;
//  * metrics: figures of merit (area, clock, latency, power) that populate
//    the evaluation space and answer range queries;
//  * views: references to the detailed design data at the traditional
//    abstraction levels (Fig. 2(b)) — opaque artifact URIs here, since the
//    actual HDL/layout lives with the IP provider.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dsl/value.hpp"
#include "support/symbol.hpp"

namespace dslayer::dsl {

/// Reference to detailed design data at one abstraction level.
struct CoreView {
  std::string level;     ///< "algorithm", "rt", "logic", "physical"
  std::string artifact;  ///< provider URI / file reference
};

/// One reusable design.
class Core {
 public:
  Core(std::string name, std::string class_path);

  const std::string& name() const { return name_; }

  /// Path of the CDO class this core implements (indexing entry point).
  const std::string& class_path() const { return class_path_; }

  /// Name of the owning library (set on registration).
  const std::string& library() const { return library_; }
  void set_library(std::string library) { library_ = std::move(library); }

  // -- bindings ---------------------------------------------------------------

  Core& bind(const std::string& property, Value value);
  std::optional<Value> binding(const std::string& property) const;
  const std::map<std::string, Value>& bindings() const { return bindings_; }

  /// The same bindings keyed by interned symbol — what CoreTable reads so
  /// columnar (re)indexing never compares strings. Maintained by bind().
  const std::map<support::Symbol, Value>& symbol_bindings() const { return symbol_bindings_; }

  // -- metrics ----------------------------------------------------------------

  Core& set_metric(const std::string& name, double value);
  std::optional<double> metric(const std::string& name) const;
  const std::map<std::string, double>& metrics() const { return metrics_; }

  /// Metrics keyed by interned symbol (see symbol_bindings()).
  const std::map<support::Symbol, double>& symbol_metrics() const { return symbol_metrics_; }

  // -- views ------------------------------------------------------------------

  Core& add_view(std::string level, std::string artifact);
  const std::vector<CoreView>& views() const { return views_; }

  /// One-line rendering for reports.
  std::string describe() const;

 private:
  std::string name_;
  std::string class_path_;
  std::string library_;
  std::map<std::string, Value> bindings_;
  std::map<std::string, double> metrics_;
  std::map<support::Symbol, Value> symbol_bindings_;  // mirror of bindings_
  std::map<support::Symbol, double> symbol_metrics_;  // mirror of metrics_
  std::vector<CoreView> views_;
};

/// A named collection of cores (one IP provider / one in-house library).
/// Multiple libraries connect to a single design space layer (Fig. 1).
class ReuseLibrary {
 public:
  explicit ReuseLibrary(std::string name);

  const std::string& name() const { return name_; }

  /// Adds a core (stamps the library name); returns a stable reference —
  /// cores are never reallocated once added. Duplicate detection is a set
  /// lookup, so bulk catalog loads stay linear in the number of cores.
  Core& add(Core core);

  bool contains(const std::string& core_name) const { return names_.contains(core_name); }

  std::size_t size() const { return cores_.size(); }

  std::vector<const Core*> cores() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Core>> cores_;  // unique_ptr => stable addresses
  std::set<std::string> names_;               // duplicate-name index
};

}  // namespace dslayer::dsl
