// Consistency constraints (CCs).
//
// "A single modeling construct, called consistency constraint, is used to
// express ordering and consistency relationships among properties. CCs are
// defined by an independent set of properties, a dependent set of
// properties, and a relation. The dependent set can only be addressed by
// the designer after the independent set has been addressed. Moreover,
// when the independent set is modified, the dependent set needs to be
// re-assessed." (Section 4)
//
// The relation kinds cover the four roles of Fig. 13:
//   CC1  InconsistentOptions  — combinations of values that are invalid
//                               (Montgomery requires an odd modulus);
//   CC2  Formula              — quantitative/heuristic trade-off relations
//                               (latency cycles = 2 EOL / R + 1);
//   CC3  EstimatorBinding     — the utilization context of an early
//                               estimation tool (BehaviorDelayEstimator);
//   CC4  DominanceElimination — mechanically like InconsistentOptions, but
//                               records that the eliminated combinations
//                               are merely INFERIOR, not infeasible (for
//                               EOL >= 32, non-carry-save adders in the
//                               Montgomery loop are dominated).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dsl/path.hpp"
#include "dsl/value.hpp"
#include "support/relaxed_counter.hpp"

namespace dslayer::dsl {

class Cdo;

/// Property-name -> value snapshot the relation predicates evaluate over.
using Bindings = std::map<std::string, Value>;

enum class RelationKind {
  kInconsistentOptions,
  kFormula,
  kEstimatorBinding,
  kDominanceElimination,
};

std::string to_string(RelationKind k);

/// One declarative conjunct of a predicate relation: property <cmp>
/// constant, property <cmp> property, or product (lhs * lhs_factor) <cmp>
/// right side. A constraint stated as a conjunction of atoms is violated
/// when EVERY atom holds — and, unlike an opaque lambda, can be compiled
/// once per index generation into the columnar filter programs of
/// dsl/core_table (DESIGN.md §10). Semantics of holds(): numbers compare
/// numerically; texts compare with ==/!= only; a kind mismatch, a missing
/// value, or a non-number in a product never holds.
struct PredicateAtom {
  enum class Cmp { kEq, kNe, kLt, kLe, kGt, kGe };

  std::string lhs;         ///< left-side property name
  std::string lhs_factor;  ///< non-empty: left side is lhs * lhs_factor
  Cmp cmp = Cmp::kEq;
  std::string rhs_property;  ///< non-empty: right side is a property
  Value rhs_const;           ///< otherwise: this constant

  static PredicateAtom equals(std::string property, Value constant);
  static PredicateAtom not_equals(std::string property, Value constant);
  static PredicateAtom compares(std::string property, Cmp cmp, double constant);
  /// (a * b) <cmp> rhs_property — the CC7-style coverage shape.
  static PredicateAtom product(std::string a, std::string b, Cmp cmp, std::string rhs_property);

  bool holds(const Bindings& bindings) const;
};

bool compare_numbers(double lhs, PredicateAtom::Cmp cmp, double rhs);

class ConsistencyConstraint {
 public:
  /// Predicate relations: `violated` returns true for value combinations
  /// the CC rules out. It is only consulted when every referenced property
  /// has a value.
  static ConsistencyConstraint inconsistent_options(
      std::string id, std::string doc, std::vector<PropertyPath> independent,
      std::vector<PropertyPath> dependent, std::function<bool(const Bindings&)> violated);

  /// Same mechanics, dominance rationale (CC4).
  static ConsistencyConstraint dominance(
      std::string id, std::string doc, std::vector<PropertyPath> independent,
      std::vector<PropertyPath> dependent, std::function<bool(const Bindings&)> violated);

  /// Declarative predicate relations: violated when EVERY atom holds.
  /// Equivalent to the lambda forms above for row-wise evaluation, but
  /// additionally compilable() into the columnar filter programs — prefer
  /// these whenever the rule is expressible as a conjunction of atoms.
  static ConsistencyConstraint inconsistent_when(std::string id, std::string doc,
                                                 std::vector<PropertyPath> independent,
                                                 std::vector<PropertyPath> dependent,
                                                 std::vector<PredicateAtom> atoms);

  /// Declarative dominance (CC4) — see inconsistent_when().
  static ConsistencyConstraint dominance_when(std::string id, std::string doc,
                                              std::vector<PropertyPath> independent,
                                              std::vector<PropertyPath> dependent,
                                              std::vector<PredicateAtom> atoms);

  /// Formula relation: derives the (single) dependent property's value from
  /// the independent values (CC2).
  static ConsistencyConstraint formula(std::string id, std::string doc,
                                       std::vector<PropertyPath> independent,
                                       PropertyPath dependent,
                                       std::function<Value(const Bindings&)> compute);

  /// Estimator binding: the dependent property is produced by the named
  /// estimation tool applied to the behavioral descriptions in scope (CC3).
  static ConsistencyConstraint estimator(std::string id, std::string doc,
                                         std::vector<PropertyPath> independent,
                                         PropertyPath dependent, std::string estimator_name);

  const std::string& id() const { return id_; }
  const std::string& doc() const { return doc_; }
  RelationKind kind() const { return kind_; }
  const std::vector<PropertyPath>& independent() const { return independent_; }
  const std::vector<PropertyPath>& dependent() const { return dependent_; }
  const std::string& estimator_name() const { return estimator_name_; }

  /// True if this CC is in scope at a CDO: every dependent path matches the
  /// CDO's path or an ancestor's (properties are inherited, so a CC stated
  /// at "*.Hardware" governs every hardware descendant).
  bool applies_at(const Cdo& cdo) const;

  /// True if the property appears in the independent set.
  bool depends_on(const std::string& property) const;

  /// True if the property appears in the dependent set.
  bool constrains(const std::string& property) const;

  /// Predicate evaluation (kInconsistentOptions / kDominanceElimination).
  /// Returns false unless all referenced properties are bound.
  bool violated(const Bindings& bindings) const;

  /// Formula evaluation (kFormula); requires all independents bound.
  Value evaluate(const Bindings& bindings) const;

  /// True if every independent property has a (non-empty) binding.
  bool independents_bound(const Bindings& bindings) const;

  /// The declarative conjunction behind a predicate relation built with
  /// inconsistent_when()/dominance_when(); empty for opaque lambdas.
  const std::vector<PredicateAtom>& atoms() const { return atoms_; }

  /// True when the predicate can be compiled into a columnar program
  /// (i.e. it was stated declaratively). Opaque lambdas fall back to
  /// row-wise evaluation in the columnar path.
  bool compilable() const { return !atoms_.empty(); }

  /// How often this constraint's relation has been evaluated (violated()
  /// or evaluate()) since construction — the per-constraint view of
  /// QueryStats::constraint_evaluations, useful for spotting hot CCs.
  /// Atomic: the service evaluates shared-layer constraints from many
  /// reader threads at once.
  std::uint64_t evaluations() const { return evaluations_.get(); }

  /// Bulk-credits `n` columnar evaluations to evaluations() — the compiled
  /// programs never call violated(), so the engine reports the rows it
  /// examined here to keep the per-constraint counter meaningful.
  void note_bulk_evaluations(std::uint64_t n) const { evaluations_.add(n); }

  /// Renders "CC1: <doc>  Indep={...} Dep={...} Relation: <kind>".
  std::string describe() const;

 private:
  ConsistencyConstraint() = default;

  std::string id_;
  std::string doc_;
  RelationKind kind_ = RelationKind::kInconsistentOptions;
  std::vector<PropertyPath> independent_;
  std::vector<PropertyPath> dependent_;
  std::function<bool(const Bindings&)> violated_;
  std::function<Value(const Bindings&)> compute_;
  std::vector<PredicateAtom> atoms_;  // non-empty iff built declaratively
  std::string estimator_name_;
  mutable RelaxedCounter evaluations_;
};

/// Helper for relation predicates: value of `property`, or an empty Value.
Value get_or_empty(const Bindings& bindings, const std::string& property);

}  // namespace dslayer::dsl
