#include "dsl/core_table.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <new>
#include <type_traits>

#include "support/arena.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/parallel.hpp"
#include "support/simd.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace dslayer::dsl {

namespace simd = support::simd;

// The word kernels take the comparison opcode by value; keep the two
// enums numerically interchangeable so lowering is a static_cast.
static_assert(static_cast<int>(simd::Cmp::kEq) == static_cast<int>(PredicateAtom::Cmp::kEq) &&
              static_cast<int>(simd::Cmp::kNe) == static_cast<int>(PredicateAtom::Cmp::kNe) &&
              static_cast<int>(simd::Cmp::kLt) == static_cast<int>(PredicateAtom::Cmp::kLt) &&
              static_cast<int>(simd::Cmp::kLe) == static_cast<int>(PredicateAtom::Cmp::kLe) &&
              static_cast<int>(simd::Cmp::kGt) == static_cast<int>(PredicateAtom::Cmp::kGt) &&
              static_cast<int>(simd::Cmp::kGe) == static_cast<int>(PredicateAtom::Cmp::kGe));
static_assert(std::is_same_v<support::Symbol, std::uint32_t>,
              "eq_sym kernels read text columns as raw u32 streams");

namespace {

std::atomic<std::size_t> g_parallel_threshold{4096};

constexpr std::size_t kWordsPerChunk = 32;  // 2048 rows per parallel chunk

simd::Cmp to_simd(PredicateAtom::Cmp cmp) { return static_cast<simd::Cmp>(cmp); }

std::size_t popcount(const std::uint64_t* mask, std::size_t words) {
  std::size_t n = 0;
  for (std::size_t w = 0; w < words; ++w) n += static_cast<std::size_t>(std::popcount(mask[w]));
  return n;
}

void mark(ColumnData<std::uint64_t>& bits, std::size_t row) {
  bits[row >> 6] |= (std::uint64_t{1} << (row & 63));
}

}  // namespace

std::size_t columnar_parallel_threshold() {
  return g_parallel_threshold.load(std::memory_order_relaxed);
}

void set_columnar_parallel_threshold(std::size_t rows) {
  g_parallel_threshold.store(rows, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// CoreTable

CoreTable::CoreTable(const std::vector<const Core*>& cores) : cores_(cores) {
  words_ = (cores_.size() + 63) / 64;
  padded_rows_ = words_ * 64;
  if (!cores_.empty()) {
    // Reserve the column directories from the first core's shape (the
    // synthetic and real libraries are near-rectangular); growth past the
    // reservation is still correct, just a reallocation.
    const std::size_t binding_guess = cores_.front()->bindings().size() + 8;
    const std::size_t metric_guess = cores_.front()->metrics().size() + 8;
    binding_columns_.reserve(binding_guess);
    binding_index_.reserve(binding_guess);
    metric_columns_.reserve(metric_guess);
    metric_index_.reserve(metric_guess);
  }
  for (std::size_t row = 0; row < cores_.size(); ++row) {
    for (const CoreBinding& b : cores_[row]->bindings()) {
      const ColumnKind kind = b.value.kind() == Value::Kind::kNumber ? ColumnKind::kNumber
                              : b.value.kind() == Value::Kind::kText ? ColumnKind::kText
                                                                     : ColumnKind::kMixed;
      store(column_for(binding_index_, binding_columns_, b.symbol, kind), row, b.value);
    }
    for (const CoreMetric& m : cores_[row]->metrics()) {
      Column& column =
          column_for(metric_index_, metric_columns_, m.symbol, ColumnKind::kNumber);
      column.numbers[row] = m.value;
      mark(column.present, row);
    }
  }
}

CoreTable::CoreTable(std::vector<const Core*> cores, std::vector<Column> binding_columns,
                     std::vector<Column> metric_columns, std::shared_ptr<const void> keepalive)
    : cores_(std::move(cores)),
      binding_columns_(std::move(binding_columns)),
      metric_columns_(std::move(metric_columns)),
      keepalive_(std::move(keepalive)) {
  words_ = (cores_.size() + 63) / 64;
  padded_rows_ = words_ * 64;
  const auto rebuild_index = [](SymbolIndex& index, const std::vector<Column>& columns) {
    index.clear();
    index.reserve(columns.size());
    for (std::uint32_t slot = 0; slot < columns.size(); ++slot) {
      index.emplace_back(columns[slot].symbol, slot);
    }
    std::sort(index.begin(), index.end());
  };
  rebuild_index(binding_index_, binding_columns_);
  rebuild_index(metric_index_, metric_columns_);
}

CoreTable::Column& CoreTable::column_for(SymbolIndex& index, std::vector<Column>& columns,
                                         support::Symbol symbol, ColumnKind kind) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), symbol,
      [](const SymbolIndex::value_type& entry, support::Symbol s) { return entry.first < s; });
  if (it != index.end() && it->first == symbol) {
    Column& column = columns[it->second];
    if (column.kind != kind && column.kind != ColumnKind::kMixed) degrade_to_mixed(column);
    return column;
  }
  index.insert(it, {symbol, static_cast<std::uint32_t>(columns.size())});
  Column& column = columns.emplace_back();
  column.symbol = symbol;
  column.kind = kind;
  column.present.assign(words_, 0);
  // Payloads cover the padded row range so the word kernels can read a
  // whole 64-lane block without a tail branch.
  switch (kind) {
    case ColumnKind::kNumber: column.numbers.assign(padded_rows_, 0.0); break;
    case ColumnKind::kText: column.texts.assign(padded_rows_, support::kNoSymbol); break;
    case ColumnKind::kMixed:
      column.values.assign(padded_rows_, Value{});
      column.texts.assign(padded_rows_, support::kNoSymbol);
      break;
  }
  return column;
}

void CoreTable::degrade_to_mixed(Column& column) {
  std::vector<Value> values(padded_rows_);
  std::vector<support::Symbol> texts(padded_rows_, support::kNoSymbol);
  for (std::size_t row = 0; row < cores_.size(); ++row) {
    if (!column.has(row)) continue;
    if (column.kind == ColumnKind::kNumber) {
      values[row] = Value::number(column.numbers[row]);
    } else {
      values[row] = Value::text(support::symbol_name(column.texts[row]));
      texts[row] = column.texts[row];
    }
  }
  column.kind = ColumnKind::kMixed;
  column.numbers.clear();
  column.values = std::move(values);
  column.texts = std::move(texts);
}

void CoreTable::store(Column& column, std::size_t row, const Value& value) {
  switch (column.kind) {
    case ColumnKind::kNumber:
      column.numbers[row] = value.as_number();
      break;
    case ColumnKind::kText:
      column.texts[row] = support::intern_symbol(value.as_text());
      break;
    case ColumnKind::kMixed:
      column.values[row] = value;
      column.texts[row] = value.kind() == Value::Kind::kText
                              ? support::intern_symbol(value.as_text())
                              : support::kNoSymbol;
      break;
  }
  mark(column.present, row);
}

const CoreTable::Column* CoreTable::lookup(const SymbolIndex& index,
                                           const std::vector<Column>& columns,
                                           support::Symbol symbol) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), symbol,
      [](const SymbolIndex::value_type& entry, support::Symbol s) { return entry.first < s; });
  return it != index.end() && it->first == symbol ? &columns[it->second] : nullptr;
}

const CoreTable::Column* CoreTable::binding_column(support::Symbol symbol) const {
  return lookup(binding_index_, binding_columns_, symbol);
}

const CoreTable::Column* CoreTable::metric_column(support::Symbol symbol) const {
  return lookup(metric_index_, metric_columns_, symbol);
}

std::size_t CoreTable::memory_bytes() const {
  const auto column_bytes = [](const Column& column) {
    return sizeof(Column) + column.present.resident_bytes() + column.numbers.resident_bytes() +
           column.texts.resident_bytes() + column.values.capacity() * sizeof(Value);
  };
  std::size_t total = sizeof(CoreTable);
  total += cores_.capacity() * sizeof(const Core*);
  total += binding_index_.capacity() * sizeof(SymbolIndex::value_type);
  total += metric_index_.capacity() * sizeof(SymbolIndex::value_type);
  for (const Column& column : binding_columns_) total += column_bytes(column);
  for (const Column& column : metric_columns_) total += column_bytes(column);
  return total;
}

// ---------------------------------------------------------------------------
// CoreFilterPlan

CoreFilterPlan::CoreFilterPlan(
    const std::vector<const Core*>& cores,
    const std::vector<const ConsistencyConstraint*>& predicate_constraints)
    : table(cores) {
  compile(predicate_constraints);
}

CoreFilterPlan::CoreFilterPlan(
    CoreTable restored, const std::vector<const ConsistencyConstraint*>& predicate_constraints)
    : table(std::move(restored)) {
  compile(predicate_constraints);
}

void CoreFilterPlan::compile(
    const std::vector<const ConsistencyConstraint*>& predicate_constraints) {
  const auto property_term = [&](const std::string& name) {
    CompiledPredicate::Term term;
    term.symbol = support::intern_symbol(name);
    const CoreTable::Column* column = table.binding_column(term.symbol);
    term.column = column == nullptr ? -1 : 0;  // column pointer re-resolved per query
    return term;
  };

  predicates.reserve(predicate_constraints.size());
  for (const ConsistencyConstraint* cc : predicate_constraints) {
    CompiledPredicate predicate;
    predicate.constraint = cc;
    const auto add_reference = [&](support::Symbol symbol) {
      for (const CompiledPredicate::Term& term : predicate.references) {
        if (term.symbol == symbol) return;
      }
      CompiledPredicate::Term term;
      term.symbol = symbol;
      term.column = table.binding_column(symbol) == nullptr ? -1 : 0;
      predicate.references.push_back(term);
    };
    for (const PropertyPath& path : cc->independent()) add_reference(path.property_symbol());
    for (const PropertyPath& path : cc->dependent()) add_reference(path.property_symbol());

    if (cc->compilable()) {
      predicate.compiled = true;
      for (const PredicateAtom& atom : cc->atoms()) {
        CompiledPredicate::Op op;
        op.cmp = atom.cmp;
        op.lhs = property_term(atom.lhs);
        if (!atom.lhs_factor.empty()) {
          op.factor = property_term(atom.lhs_factor);
          op.has_factor = true;
        }
        if (!atom.rhs_property.empty()) {
          op.rhs = property_term(atom.rhs_property);
        } else {
          CompiledPredicate::Term term;  // pure constant
          term.const_kind = atom.rhs_const.kind();
          switch (atom.rhs_const.kind()) {
            case Value::Kind::kNumber: term.number = atom.rhs_const.as_number(); break;
            case Value::Kind::kText:
              term.text = support::intern_symbol(atom.rhs_const.as_text());
              break;
            case Value::Kind::kFlag: term.flag = atom.rhs_const.as_flag(); break;
            case Value::Kind::kEmpty: break;
          }
          op.rhs = term;
        }
        predicate.ops.push_back(std::move(op));
      }
    }
    predicates.push_back(std::move(predicate));
  }
}

// ---------------------------------------------------------------------------
// BindingsOverlay

std::size_t BindingsOverlay::apply(const Core& core) {
  std::size_t writes = 0;
  undo_.clear();
  for (const CoreBinding& b : core.bindings()) {
    const auto [it, inserted] = base_->try_emplace(*b.name, b.value);
    Undo undo;
    undo.key = b.name;
    if (!inserted) {
      if (it->second == b.value) continue;  // overlay is a no-op for this key
      undo.previous = it->second;
      it->second = b.value;
    }
    undo_.push_back(std::move(undo));
    ++writes;
  }
  return writes;
}

void BindingsOverlay::revert() {
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    if (it->previous.empty()) {
      base_->erase(*it->key);
    } else {
      (*base_)[*it->key] = std::move(it->previous);
    }
  }
  undo_.clear();
}

// ---------------------------------------------------------------------------
// run_core_filter

namespace {

using Column = CoreTable::Column;
using ColumnKind = CoreTable::ColumnKind;

/// A fetched scalar: what one term yields for one row.
struct Cell {
  Value::Kind kind = Value::Kind::kEmpty;
  double number = 0.0;
  support::Symbol text = support::kNoSymbol;  // always interned when kind==kText
  bool flag = false;
};

Cell cell_of_value(const Value& value) {
  Cell cell;
  cell.kind = value.kind();
  switch (value.kind()) {
    case Value::Kind::kNumber: cell.number = value.as_number(); break;
    case Value::Kind::kText: cell.text = support::intern_symbol(value.as_text()); break;
    case Value::Kind::kFlag: cell.flag = value.as_flag(); break;
    case Value::Kind::kEmpty: break;
  }
  return cell;
}

/// A term bound to this query: the table column (if any) plus the
/// constant the row falls back to (atom literal or session binding).
struct ResolvedTerm {
  const Column* column = nullptr;
  Cell fallback;
};

ResolvedTerm resolve_term(const CoreTable& table, const CompiledPredicate::Term& term,
                          const Bindings& bound) {
  ResolvedTerm resolved;
  if (term.symbol == support::kNoSymbol) {  // atom constant
    resolved.fallback.kind = term.const_kind;
    resolved.fallback.number = term.number;
    resolved.fallback.text = term.text;
    resolved.fallback.flag = term.flag;
    return resolved;
  }
  if (term.column >= 0) resolved.column = table.binding_column(term.symbol);
  const auto it = bound.find(support::symbol_name(term.symbol));
  if (it != bound.end()) resolved.fallback = cell_of_value(it->second);
  return resolved;
}

Cell fetch(const ResolvedTerm& term, std::size_t row) {
  if (term.column != nullptr && term.column->has(row)) {
    Cell cell;
    switch (term.column->kind) {
      case ColumnKind::kNumber:
        cell.kind = Value::Kind::kNumber;
        cell.number = term.column->numbers[row];
        break;
      case ColumnKind::kText:
        cell.kind = Value::Kind::kText;
        cell.text = term.column->texts[row];
        break;
      case ColumnKind::kMixed: {
        const Value& value = term.column->values[row];
        cell.kind = value.kind();
        if (value.kind() == Value::Kind::kNumber) cell.number = value.as_number();
        if (value.kind() == Value::Kind::kText) cell.text = term.column->texts[row];
        if (value.kind() == Value::Kind::kFlag) cell.flag = value.as_flag();
        break;
      }
    }
    return cell;
  }
  return term.fallback;
}

/// Mirrors PredicateAtom::holds() over fetched cells.
bool cells_hold(const Cell& lhs, PredicateAtom::Cmp cmp, const Cell& rhs) {
  if (lhs.kind == Value::Kind::kNumber && rhs.kind == Value::Kind::kNumber) {
    return compare_numbers(lhs.number, cmp, rhs.number);
  }
  if (lhs.kind == Value::Kind::kText && rhs.kind == Value::Kind::kText) {
    if (cmp == PredicateAtom::Cmp::kEq) return lhs.text == rhs.text;
    if (cmp == PredicateAtom::Cmp::kNe) return lhs.text != rhs.text;
    return false;
  }
  if (lhs.kind == Value::Kind::kFlag && rhs.kind == Value::Kind::kFlag) {
    if (cmp == PredicateAtom::Cmp::kEq) return lhs.flag == rhs.flag;
    if (cmp == PredicateAtom::Cmp::kNe) return lhs.flag != rhs.flag;
    return false;
  }
  return false;
}

/// How one resolved op is evaluated per 64-row word.
enum class OpMode : std::uint8_t {
  kNum,     ///< cmp_num word kernel + scalar patch of column-absent rows
  kSym,     ///< eq_sym word kernel + scalar patch of column-absent rows
  kScalar,  ///< row-wise fetch/cells_hold for every row
};

struct ResolvedOp {
  PredicateAtom::Cmp cmp = PredicateAtom::Cmp::kEq;
  ResolvedTerm lhs;
  ResolvedTerm factor;
  ResolvedTerm rhs;
  bool has_factor = false;

  OpMode mode = OpMode::kScalar;
  // kNum operand streams (col pointers are the full padded payload;
  // callers add the word offset).
  simd::Lane lhs_lane;
  simd::Lane factor_lane;
  simd::Lane rhs_lane;
  // kSym operand streams.
  const std::uint32_t* sym_lhs = nullptr;
  const std::uint32_t* sym_rhs = nullptr;
  std::uint32_t sym_const = support::kNoSymbol;
  bool sym_negate = false;
  // Presence bitmaps of every column-backed operand: rows with any bit
  // clear fall back to session/constant values and are re-evaluated
  // through the scalar interpreter.
  const std::uint64_t* patch_present[3] = {nullptr, nullptr, nullptr};
  int patch_count = 0;
};

simd::Lane lane_at(const simd::Lane& lane, std::size_t word) {
  return lane.col != nullptr ? simd::Lane{lane.col + (word << 6), lane.broadcast} : lane;
}

/// Scalar (legacy-exact) evaluation of one op for one row.
bool op_holds_row(const ResolvedOp& op, std::size_t row) {
  const Cell lhs = fetch(op.lhs, row);
  const Cell rhs = fetch(op.rhs, row);
  if (op.has_factor) {
    const Cell factor = fetch(op.factor, row);
    return lhs.kind == Value::Kind::kNumber && factor.kind == Value::Kind::kNumber &&
           rhs.kind == Value::Kind::kNumber &&
           compare_numbers(lhs.number * factor.number, op.cmp, rhs.number);
  }
  return cells_hold(lhs, op.cmp, rhs);
}

/// Picks the word-kernel mode for `op`. A numeric op vectorizes when
/// every operand is a kNumber column or a numeric constant; a text op
/// when it is an ==/!= over kText columns / text constants with at
/// least one column side. Everything else (mixed columns, flag or
/// cross-kind constants) stays scalar — correctness never depends on
/// the mode, only throughput does.
void classify_op(ResolvedOp& op) {
  const auto reset = [&] {
    op.patch_count = 0;
    op.lhs_lane = op.factor_lane = op.rhs_lane = simd::Lane{};
    op.sym_lhs = op.sym_rhs = nullptr;
  };

  const auto num_lane = [&](const ResolvedTerm& term, simd::Lane& lane) {
    if (term.column != nullptr) {
      if (term.column->kind != ColumnKind::kNumber) return false;
      lane.col = term.column->numbers.data();
      op.patch_present[op.patch_count++] = term.column->present.data();
      return true;
    }
    if (term.fallback.kind != Value::Kind::kNumber) return false;
    lane.broadcast = term.fallback.number;
    return true;
  };
  reset();
  if (num_lane(op.lhs, op.lhs_lane) && num_lane(op.rhs, op.rhs_lane) &&
      (!op.has_factor || num_lane(op.factor, op.factor_lane))) {
    op.mode = OpMode::kNum;
    return;
  }

  const auto sym_source = [&](const ResolvedTerm& term, const std::uint32_t*& col,
                              std::uint32_t& constant) {
    if (term.column != nullptr) {
      if (term.column->kind != ColumnKind::kText) return false;
      col = term.column->texts.data();
      op.patch_present[op.patch_count++] = term.column->present.data();
      return true;
    }
    if (term.fallback.kind != Value::Kind::kText) return false;
    constant = term.fallback.text;
    return true;
  };
  reset();
  if (!op.has_factor &&
      (op.cmp == PredicateAtom::Cmp::kEq || op.cmp == PredicateAtom::Cmp::kNe)) {
    const std::uint32_t* lhs_col = nullptr;
    const std::uint32_t* rhs_col = nullptr;
    std::uint32_t lhs_const = support::kNoSymbol;
    std::uint32_t rhs_const = support::kNoSymbol;
    if (sym_source(op.lhs, lhs_col, lhs_const) && sym_source(op.rhs, rhs_col, rhs_const) &&
        (lhs_col != nullptr || rhs_col != nullptr)) {
      if (lhs_col == nullptr) {  // constant vs column: ==/!= are symmetric
        lhs_col = rhs_col;
        rhs_col = nullptr;
        rhs_const = lhs_const;
      }
      op.mode = OpMode::kSym;
      op.sym_lhs = lhs_col;
      op.sym_rhs = rhs_col;
      op.sym_const = rhs_const;
      op.sym_negate = op.cmp == PredicateAtom::Cmp::kNe;
      return;
    }
  }
  reset();
  op.mode = OpMode::kScalar;
}

/// One prefilter atom lowered against the table and session bindings.
/// Terms resolve binding column -> metric column -> session binding ->
/// atom constant (metric columns are a prefilter-only power: predicate
/// atoms never see metrics, but a declared prefilter may bound one).
struct PrefilterAtom {
  simd::Cmp cmp = simd::Cmp::kEq;
  bool is_sym = false;
  bool has_factor = false;
  simd::Lane lhs;
  simd::Lane factor;
  simd::Lane rhs;
  const std::uint32_t* sym_lhs = nullptr;
  const std::uint32_t* sym_rhs = nullptr;
  std::uint32_t sym_const = support::kNoSymbol;
  bool sym_negate = false;
  const std::uint64_t* present[3] = {nullptr, nullptr, nullptr};
  int present_count = 0;
};

/// Lowers `atom`; returns false if any term fails to resolve to a
/// vectorizable source, which disables the whole prefilter (the lambda
/// then runs on every row — slower, never wrong).
bool resolve_prefilter_atom(const CoreTable& table, const Bindings& bound,
                            const PredicateAtom& atom, PrefilterAtom& out) {
  const auto num_source = [&](const std::string& name, simd::Lane& lane) {
    if (const auto sym = support::lookup_symbol(name); sym.has_value()) {
      if (const Column* column = table.binding_column(*sym);
          column != nullptr && column->kind == ColumnKind::kNumber) {
        lane.col = column->numbers.data();
        out.present[out.present_count++] = column->present.data();
        return true;
      }
      if (const Column* column = table.metric_column(*sym); column != nullptr) {
        lane.col = column->numbers.data();
        out.present[out.present_count++] = column->present.data();
        return true;
      }
    }
    const auto it = bound.find(name);
    if (it != bound.end() && it->second.kind() == Value::Kind::kNumber) {
      lane.broadcast = it->second.as_number();
      return true;
    }
    return false;
  };
  const auto sym_col_source = [&](const std::string& name, const std::uint32_t*& col) {
    const auto sym = support::lookup_symbol(name);
    if (!sym.has_value()) return false;
    const Column* column = table.binding_column(*sym);
    if (column == nullptr || column->kind != ColumnKind::kText) return false;
    col = column->texts.data();
    out.present[out.present_count++] = column->present.data();
    return true;
  };

  out.cmp = to_simd(atom.cmp);
  // Text shape: lhs must be a text column; rhs a text constant, session
  // text binding, or another text column. ==/!= only.
  const bool rhs_text = atom.rhs_property.empty()
                            ? atom.rhs_const.kind() == Value::Kind::kText
                            : false;  // rhs property kind decided by its column below
  if (atom.lhs_factor.empty() && rhs_text) {
    if (atom.cmp != PredicateAtom::Cmp::kEq && atom.cmp != PredicateAtom::Cmp::kNe) return false;
    if (!sym_col_source(atom.lhs, out.sym_lhs)) return false;
    out.is_sym = true;
    out.sym_const = support::intern_symbol(atom.rhs_const.as_text());
    out.sym_negate = atom.cmp == PredicateAtom::Cmp::kNe;
    return true;
  }

  // Numeric shape: (lhs [* factor]) cmp rhs.
  if (!num_source(atom.lhs, out.lhs)) {
    // Retry as column-vs-column text equality before giving up.
    if (atom.lhs_factor.empty() && !atom.rhs_property.empty() &&
        (atom.cmp == PredicateAtom::Cmp::kEq || atom.cmp == PredicateAtom::Cmp::kNe)) {
      out.present_count = 0;
      if (sym_col_source(atom.lhs, out.sym_lhs) && sym_col_source(atom.rhs_property, out.sym_rhs)) {
        out.is_sym = true;
        out.sym_negate = atom.cmp == PredicateAtom::Cmp::kNe;
        return true;
      }
    }
    return false;
  }
  if (!atom.lhs_factor.empty()) {
    if (!num_source(atom.lhs_factor, out.factor)) return false;
    out.has_factor = true;
  }
  if (!atom.rhs_property.empty()) return num_source(atom.rhs_property, out.rhs);
  if (atom.rhs_const.kind() != Value::Kind::kNumber) return false;
  out.rhs.broadcast = atom.rhs_const.as_number();
  return true;
}

/// Runs `fn(word)` over every mask word, chunk-parallel when asked.
/// Chunks never share a word, so workers write disjoint memory.
template <typename WordFn>
void for_each_word(std::size_t words, bool parallel, const WordFn& fn) {
  if (!parallel || words <= kWordsPerChunk) {
    for (std::size_t w = 0; w < words; ++w) fn(w);
    return;
  }
  const std::size_t chunks = (words + kWordsPerChunk - 1) / kWordsPerChunk;
  support::ChunkPool::shared().for_each_chunk(chunks, [&](std::size_t chunk) {
    const std::size_t end = std::min(words, (chunk + 1) * kWordsPerChunk);
    for (std::size_t w = chunk * kWordsPerChunk; w < end; ++w) fn(w);
  });
}

/// Sweeps the set bits of `mask`, clearing rows `keep` rejects.
template <typename Keep>
void sweep_rows(std::uint64_t* mask, std::size_t words, bool parallel, const Keep& keep) {
  for_each_word(words, parallel, [&](std::size_t w) {
    std::uint64_t bits = mask[w];
    std::uint64_t cleared = 0;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      if (!keep((w << 6) + static_cast<std::size_t>(bit))) {
        cleared |= (std::uint64_t{1} << bit);
      }
      bits &= bits - 1;
    }
    mask[w] &= ~cleared;
  });
}

}  // namespace

std::vector<const Core*> run_core_filter(const CoreFilterPlan& plan, const FilterQuery& query,
                                         telemetry::Telemetry& telemetry) {
  using telemetry::EventKind;
  // Chaos/deadline hook + the sweep's cancellation point (on the calling
  // thread — ChunkPool workers carry no request deadline).
  DSLAYER_FAILPOINT("dsl.candidates.sweep");
  support::cancellation_checkpoint();
  const CoreTable& table = plan.table;
  const std::size_t rows = table.rows();
  telemetry.count(EventKind::kComplianceCheck, rows);
  // Sweep span for sampled request traces (one thread-local load when
  // untraced); nests under the executor's execute span.
  trace::SpanTimer sweep_span(trace::TraceScope::current(), trace::SpanKind::kSweep,
                              trace::TraceScope::current() != nullptr
                                  ? cat("columnar rows=", rows)
                                  : std::string{});
  if (rows == 0) return {};

  const simd::KernelOps& kops = simd::kernels();
  const std::size_t words = table.words();

  // All per-sweep scratch (survivor mask, resolved terms, prefilter
  // programs) lives in this thread's bump arena and is released, not
  // freed, when the sweep returns — steady state touches no allocator.
  support::Arena& arena = support::Arena::scratch();
  support::ArenaScope scratch_scope(arena);

  std::uint64_t* mask = arena.alloc_array<std::uint64_t>(words);
  std::fill(mask, mask + words, ~std::uint64_t{0});
  if ((rows & 63) != 0) mask[words - 1] = (std::uint64_t{1} << (rows & 63)) - 1;  // clip tail

  const bool parallel = rows >= columnar_parallel_threshold();
  const auto clear_all = [&] { std::fill(mask, mask + words, 0); };

  // Steps 1 + 2a: decided design issues and kCoreEquals requirements are
  // the same kernel — the core must bind the property to exactly the
  // session's value. A missing column means no core can match.
  const auto apply_equality = [&](const FilterQuery::Equality& eq) {
    const Column* column =
        eq.symbol == support::kNoSymbol ? nullptr : table.binding_column(eq.symbol);
    if (column == nullptr) {
      clear_all();
      return;
    }
    switch (column->kind) {
      case ColumnKind::kNumber: {
        if (eq.value.kind() != Value::Kind::kNumber) {
          clear_all();
          return;
        }
        const simd::Lane wanted{nullptr, eq.value.as_number()};
        const double* numbers = column->numbers.data();
        const std::uint64_t* present = column->present.data();
        for_each_word(words, parallel, [&](std::size_t w) {
          mask[w] &= present[w] & kops.cmp_num(simd::Lane{numbers + (w << 6)}, simd::Lane{},
                                               false, simd::Cmp::kEq, wanted);
        });
        return;
      }
      case ColumnKind::kText: {
        if (eq.value.kind() != Value::Kind::kText) {
          clear_all();
          return;
        }
        const auto wanted = support::lookup_symbol(eq.value.as_text());
        if (!wanted.has_value()) {  // never interned => no column text can equal it
          clear_all();
          return;
        }
        const support::Symbol symbol = *wanted;
        const std::uint32_t* texts = column->texts.data();
        const std::uint64_t* present = column->present.data();
        for_each_word(words, parallel, [&](std::size_t w) {
          mask[w] &= present[w] & kops.eq_sym(texts + (w << 6), nullptr, symbol, false);
        });
        return;
      }
      case ColumnKind::kMixed:
        sweep_rows(mask, words, parallel, [&](std::size_t row) {
          return column->has(row) && column->values[row] == eq.value;
        });
        return;
    }
  };
  for (const FilterQuery::Equality& eq : query.decided) apply_equality(eq);
  for (const FilterQuery::Equality& eq : query.require_equal) apply_equality(eq);

  // Step 2b: metric bounds. Lowered as the NEGATED legacy rejection
  // compare (`metric > bound` for at-most), so NaN metrics are kept by
  // the word kernel exactly as the legacy operators kept them.
  for (const FilterQuery::MetricBound& bound : query.require_metric) {
    const Column* column =
        bound.symbol == support::kNoSymbol ? nullptr : table.metric_column(bound.symbol);
    if (column == nullptr) {
      clear_all();
      continue;
    }
    const simd::Cmp reject = bound.at_most ? simd::Cmp::kGt : simd::Cmp::kLt;
    const simd::Lane limit{nullptr, bound.bound};
    const double* numbers = column->numbers.data();
    const std::uint64_t* present = column->present.data();
    for_each_word(words, parallel, [&](std::size_t w) {
      mask[w] &= present[w] & ~kops.cmp_num(simd::Lane{numbers + (w << 6)}, simd::Lane{},
                                            false, reject, limit);
    });
  }

  // Step 2c: custom filters, row-wise and sequential (registered lambdas
  // make no thread-safety promise). A declared pass_when prefilter
  // proves rows compliant word-parallel first; only the residual runs
  // the lambda.
  for (const FilterQuery::Custom& custom : query.custom) {
    PrefilterAtom* atoms = nullptr;
    std::size_t atom_count = 0;
    if (custom.pass_when != nullptr && !custom.pass_when->empty()) {
      atoms = arena.alloc_array<PrefilterAtom>(custom.pass_when->size());
      for (const PredicateAtom& atom : *custom.pass_when) {
        PrefilterAtom* lowered = ::new (static_cast<void*>(atoms + atom_count)) PrefilterAtom();
        if (!resolve_prefilter_atom(table, *query.bound, atom, *lowered)) {
          atom_count = 0;  // unresolvable term: prefilter off, lambda runs everywhere
          break;
        }
        ++atom_count;
      }
    }
    std::uint64_t skipped = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const std::uint64_t alive = mask[w];
      if (alive == 0) continue;
      std::uint64_t pass = 0;
      if (atom_count != 0) {
        pass = alive;
        for (std::size_t a = 0; a < atom_count && pass != 0; ++a) {
          const PrefilterAtom& atom = atoms[a];
          std::uint64_t present = ~std::uint64_t{0};
          for (int p = 0; p < atom.present_count; ++p) present &= atom.present[p][w];
          const std::uint64_t holds =
              atom.is_sym
                  ? kops.eq_sym(atom.sym_lhs + (w << 6),
                                atom.sym_rhs != nullptr ? atom.sym_rhs + (w << 6) : nullptr,
                                atom.sym_const, atom.sym_negate)
                  : kops.cmp_num(lane_at(atom.lhs, w), lane_at(atom.factor, w),
                                 atom.has_factor, atom.cmp, lane_at(atom.rhs, w));
          pass &= present & holds;
        }
        skipped += static_cast<std::uint64_t>(std::popcount(pass));
      }
      std::uint64_t bits = alive & ~pass;
      std::uint64_t cleared = 0;
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        const std::size_t row = (w << 6) + static_cast<std::size_t>(bit);
        if (!(*custom.filter)(*table.cores()[row], *query.bound)) {
          cleared |= (std::uint64_t{1} << bit);
        }
        bits &= bits - 1;
      }
      mask[w] &= ~cleared;
    }
    if (skipped != 0) telemetry.count(EventKind::kPrefilterSkip, skipped);
  }

  // Step 3: predicate constraints in index order. Evaluating each over
  // the surviving mask reproduces the legacy per-core early exit — a row
  // killed by predicate i is never examined by predicate i+1 — so the
  // ConstraintEvaluated totals match the legacy loop exactly.
  Bindings merged;       // lazily initialized scratch for opaque predicates
  bool merged_ready = false;
  for (const CompiledPredicate& predicate : plan.predicates) {
    const std::size_t examined = popcount(mask, words);
    if (examined == 0) break;
    telemetry.count(EventKind::kConstraintEvaluated, examined);
    if (predicate.compiled) {
      predicate.constraint->note_bulk_evaluations(examined);
      // Resolve terms and pick word-kernel modes on the calling thread;
      // ChunkPool workers only read the resolved program.
      const std::size_t ref_count = predicate.references.size();
      ResolvedTerm* references = arena.alloc_array<ResolvedTerm>(ref_count);
      for (std::size_t i = 0; i < ref_count; ++i) {
        ::new (static_cast<void*>(references + i))
            ResolvedTerm(resolve_term(table, predicate.references[i], *query.bound));
      }
      const std::size_t op_count = predicate.ops.size();
      ResolvedOp* ops = arena.alloc_array<ResolvedOp>(op_count);
      for (std::size_t i = 0; i < op_count; ++i) {
        const CompiledPredicate::Op& op = predicate.ops[i];
        ResolvedOp* resolved = ::new (static_cast<void*>(ops + i)) ResolvedOp();
        resolved->cmp = op.cmp;
        resolved->lhs = resolve_term(table, op.lhs, *query.bound);
        if (op.has_factor) {
          resolved->factor = resolve_term(table, op.factor, *query.bound);
          resolved->has_factor = true;
        }
        resolved->rhs = resolve_term(table, op.rhs, *query.bound);
        classify_op(*resolved);
      }
      for_each_word(words, parallel, [&](std::size_t w) {
        const std::uint64_t alive = mask[w];
        if (alive == 0) return;
        // violated() evaluates nothing unless every referenced property
        // has a value (core column or session fallback); unevaluable
        // rows are kept.
        std::uint64_t evaluable = ~std::uint64_t{0};
        for (std::size_t i = 0; i < ref_count && evaluable != 0; ++i) {
          const ResolvedTerm& reference = references[i];
          std::uint64_t avail =
              reference.fallback.kind != Value::Kind::kEmpty ? ~std::uint64_t{0} : 0;
          if (reference.column != nullptr) avail |= reference.column->present[w];
          evaluable &= avail;
        }
        std::uint64_t viol = alive & evaluable;  // violated iff every atom holds
        for (std::size_t i = 0; i < op_count && viol != 0; ++i) {
          const ResolvedOp& op = ops[i];
          std::uint64_t holds = 0;
          std::uint64_t patch = 0;
          switch (op.mode) {
            case OpMode::kNum:
              holds = kops.cmp_num(lane_at(op.lhs_lane, w), lane_at(op.factor_lane, w),
                                   op.has_factor, to_simd(op.cmp), lane_at(op.rhs_lane, w));
              for (int p = 0; p < op.patch_count; ++p) patch |= ~op.patch_present[p][w];
              break;
            case OpMode::kSym:
              holds = kops.eq_sym(op.sym_lhs + (w << 6),
                                  op.sym_rhs != nullptr ? op.sym_rhs + (w << 6) : nullptr,
                                  op.sym_const, op.sym_negate);
              for (int p = 0; p < op.patch_count; ++p) patch |= ~op.patch_present[p][w];
              break;
            case OpMode::kScalar:
              patch = ~std::uint64_t{0};
              break;
          }
          // Rows the word kernel could not see faithfully (a column
          // value absent, falling back to a session binding; or a
          // scalar-only op) re-run the exact legacy evaluation.
          std::uint64_t bits = patch & viol;
          while (bits != 0) {
            const int bit = std::countr_zero(bits);
            const std::uint64_t one = std::uint64_t{1} << bit;
            if (op_holds_row(op, (w << 6) + static_cast<std::size_t>(bit))) {
              holds |= one;
            } else {
              holds &= ~one;
            }
            bits &= bits - 1;
          }
          viol &= holds;
        }
        mask[w] = alive & ~viol;
      });
    } else {
      // Opaque lambda: row-wise through the overlay (sequential — the
      // scratch map is shared across rows).
      if (!merged_ready) {
        merged = *query.bound;
        merged_ready = true;
      }
      BindingsOverlay overlay(merged);
      std::uint64_t overlay_writes = 0;
      sweep_rows(mask, words, false, [&](std::size_t row) {
        overlay_writes += overlay.apply(*table.cores()[row]);
        const bool keep = !predicate.constraint->violated(merged);
        overlay.revert();
        return keep;
      });
      telemetry.count(EventKind::kOverlayWrite, overlay_writes);
    }
  }

  std::vector<const Core*> survivors;
  survivors.reserve(popcount(mask, words));
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      survivors.push_back(table.cores()[(w << 6) + static_cast<std::size_t>(bit)]);
      bits &= bits - 1;
    }
  }
  return survivors;
}

}  // namespace dslayer::dsl
