#include "dsl/core_table.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace dslayer::dsl {

namespace {

std::atomic<std::size_t> g_parallel_threshold{4096};

constexpr std::size_t kWordsPerChunk = 32;  // 2048 rows per parallel chunk

std::size_t popcount(const std::vector<std::uint64_t>& mask) {
  std::size_t n = 0;
  for (const std::uint64_t word : mask) n += static_cast<std::size_t>(std::popcount(word));
  return n;
}

void mark(std::vector<std::uint64_t>& bits, std::size_t row) {
  bits[row >> 6] |= (std::uint64_t{1} << (row & 63));
}

}  // namespace

std::size_t columnar_parallel_threshold() {
  return g_parallel_threshold.load(std::memory_order_relaxed);
}

void set_columnar_parallel_threshold(std::size_t rows) {
  g_parallel_threshold.store(rows, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// CoreTable

CoreTable::CoreTable(const std::vector<const Core*>& cores) : cores_(cores) {
  words_ = (cores_.size() + 63) / 64;
  for (std::size_t row = 0; row < cores_.size(); ++row) {
    for (const auto& [symbol, value] : cores_[row]->symbol_bindings()) {
      const ColumnKind kind = value.kind() == Value::Kind::kNumber ? ColumnKind::kNumber
                              : value.kind() == Value::Kind::kText ? ColumnKind::kText
                                                                   : ColumnKind::kMixed;
      store(column_for(binding_index_, binding_columns_, symbol, kind), row, value);
    }
    for (const auto& [symbol, metric] : cores_[row]->symbol_metrics()) {
      Column& column =
          column_for(metric_index_, metric_columns_, symbol, ColumnKind::kNumber);
      column.numbers[row] = metric;
      mark(column.present, row);
    }
  }
}

CoreTable::Column& CoreTable::column_for(std::map<support::Symbol, std::size_t>& index,
                                         std::vector<Column>& columns, support::Symbol symbol,
                                         ColumnKind kind) {
  if (const auto it = index.find(symbol); it != index.end()) {
    Column& column = columns[it->second];
    if (column.kind != kind && column.kind != ColumnKind::kMixed) degrade_to_mixed(column);
    return column;
  }
  index.emplace(symbol, columns.size());
  Column& column = columns.emplace_back();
  column.symbol = symbol;
  column.kind = kind;
  column.present.assign(words_, 0);
  switch (kind) {
    case ColumnKind::kNumber: column.numbers.assign(cores_.size(), 0.0); break;
    case ColumnKind::kText: column.texts.assign(cores_.size(), support::kNoSymbol); break;
    case ColumnKind::kMixed:
      column.values.assign(cores_.size(), Value{});
      column.texts.assign(cores_.size(), support::kNoSymbol);
      break;
  }
  return column;
}

void CoreTable::degrade_to_mixed(Column& column) {
  const std::size_t rows = column.kind == ColumnKind::kNumber ? column.numbers.size()
                                                              : column.texts.size();
  std::vector<Value> values(rows);
  std::vector<support::Symbol> texts(rows, support::kNoSymbol);
  for (std::size_t row = 0; row < rows; ++row) {
    if (!column.has(row)) continue;
    if (column.kind == ColumnKind::kNumber) {
      values[row] = Value::number(column.numbers[row]);
    } else {
      values[row] = Value::text(support::symbol_name(column.texts[row]));
      texts[row] = column.texts[row];
    }
  }
  column.kind = ColumnKind::kMixed;
  column.numbers.clear();
  column.values = std::move(values);
  column.texts = std::move(texts);
}

void CoreTable::store(Column& column, std::size_t row, const Value& value) {
  switch (column.kind) {
    case ColumnKind::kNumber:
      column.numbers[row] = value.as_number();
      break;
    case ColumnKind::kText:
      column.texts[row] = support::intern_symbol(value.as_text());
      break;
    case ColumnKind::kMixed:
      column.values[row] = value;
      column.texts[row] = value.kind() == Value::Kind::kText
                              ? support::intern_symbol(value.as_text())
                              : support::kNoSymbol;
      break;
  }
  mark(column.present, row);
}

const CoreTable::Column* CoreTable::binding_column(support::Symbol symbol) const {
  const auto it = binding_index_.find(symbol);
  return it == binding_index_.end() ? nullptr : &binding_columns_[it->second];
}

const CoreTable::Column* CoreTable::metric_column(support::Symbol symbol) const {
  const auto it = metric_index_.find(symbol);
  return it == metric_index_.end() ? nullptr : &metric_columns_[it->second];
}

// ---------------------------------------------------------------------------
// CoreFilterPlan

CoreFilterPlan::CoreFilterPlan(
    const std::vector<const Core*>& cores,
    const std::vector<const ConsistencyConstraint*>& predicate_constraints)
    : table(cores) {
  const auto property_term = [&](const std::string& name) {
    CompiledPredicate::Term term;
    term.symbol = support::intern_symbol(name);
    const CoreTable::Column* column = table.binding_column(term.symbol);
    term.column = column == nullptr ? -1 : 0;  // column pointer re-resolved per query
    return term;
  };

  predicates.reserve(predicate_constraints.size());
  for (const ConsistencyConstraint* cc : predicate_constraints) {
    CompiledPredicate predicate;
    predicate.constraint = cc;
    const auto add_reference = [&](support::Symbol symbol) {
      for (const CompiledPredicate::Term& term : predicate.references) {
        if (term.symbol == symbol) return;
      }
      CompiledPredicate::Term term;
      term.symbol = symbol;
      term.column = table.binding_column(symbol) == nullptr ? -1 : 0;
      predicate.references.push_back(term);
    };
    for (const PropertyPath& path : cc->independent()) add_reference(path.property_symbol());
    for (const PropertyPath& path : cc->dependent()) add_reference(path.property_symbol());

    if (cc->compilable()) {
      predicate.compiled = true;
      for (const PredicateAtom& atom : cc->atoms()) {
        CompiledPredicate::Op op;
        op.cmp = atom.cmp;
        op.lhs = property_term(atom.lhs);
        if (!atom.lhs_factor.empty()) {
          op.factor = property_term(atom.lhs_factor);
          op.has_factor = true;
        }
        if (!atom.rhs_property.empty()) {
          op.rhs = property_term(atom.rhs_property);
        } else {
          CompiledPredicate::Term term;  // pure constant
          term.const_kind = atom.rhs_const.kind();
          switch (atom.rhs_const.kind()) {
            case Value::Kind::kNumber: term.number = atom.rhs_const.as_number(); break;
            case Value::Kind::kText:
              term.text = support::intern_symbol(atom.rhs_const.as_text());
              break;
            case Value::Kind::kFlag: term.flag = atom.rhs_const.as_flag(); break;
            case Value::Kind::kEmpty: break;
          }
          op.rhs = term;
        }
        predicate.ops.push_back(std::move(op));
      }
    }
    predicates.push_back(std::move(predicate));
  }
}

// ---------------------------------------------------------------------------
// BindingsOverlay

std::size_t BindingsOverlay::apply(const Core& core) {
  std::size_t writes = 0;
  undo_.clear();
  for (const auto& [key, value] : core.bindings()) {
    const auto [it, inserted] = base_->try_emplace(key, value);
    Undo undo;
    undo.key = &key;
    if (!inserted) {
      if (it->second == value) continue;  // overlay is a no-op for this key
      undo.previous = it->second;
      it->second = value;
    }
    undo_.push_back(std::move(undo));
    ++writes;
  }
  return writes;
}

void BindingsOverlay::revert() {
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    if (it->previous.empty()) {
      base_->erase(*it->key);
    } else {
      (*base_)[*it->key] = std::move(it->previous);
    }
  }
  undo_.clear();
}

// ---------------------------------------------------------------------------
// run_core_filter

namespace {

using Column = CoreTable::Column;
using ColumnKind = CoreTable::ColumnKind;

/// A fetched scalar: what one term yields for one row.
struct Cell {
  Value::Kind kind = Value::Kind::kEmpty;
  double number = 0.0;
  support::Symbol text = support::kNoSymbol;  // always interned when kind==kText
  bool flag = false;
};

Cell cell_of_value(const Value& value) {
  Cell cell;
  cell.kind = value.kind();
  switch (value.kind()) {
    case Value::Kind::kNumber: cell.number = value.as_number(); break;
    case Value::Kind::kText: cell.text = support::intern_symbol(value.as_text()); break;
    case Value::Kind::kFlag: cell.flag = value.as_flag(); break;
    case Value::Kind::kEmpty: break;
  }
  return cell;
}

/// A term bound to this query: the table column (if any) plus the
/// constant the row falls back to (atom literal or session binding).
struct ResolvedTerm {
  const Column* column = nullptr;
  Cell fallback;
};

ResolvedTerm resolve_term(const CoreTable& table, const CompiledPredicate::Term& term,
                          const Bindings& bound) {
  ResolvedTerm resolved;
  if (term.symbol == support::kNoSymbol) {  // atom constant
    resolved.fallback.kind = term.const_kind;
    resolved.fallback.number = term.number;
    resolved.fallback.text = term.text;
    resolved.fallback.flag = term.flag;
    return resolved;
  }
  if (term.column >= 0) resolved.column = table.binding_column(term.symbol);
  const auto it = bound.find(support::symbol_name(term.symbol));
  if (it != bound.end()) resolved.fallback = cell_of_value(it->second);
  return resolved;
}

Cell fetch(const ResolvedTerm& term, std::size_t row) {
  if (term.column != nullptr && term.column->has(row)) {
    Cell cell;
    switch (term.column->kind) {
      case ColumnKind::kNumber:
        cell.kind = Value::Kind::kNumber;
        cell.number = term.column->numbers[row];
        break;
      case ColumnKind::kText:
        cell.kind = Value::Kind::kText;
        cell.text = term.column->texts[row];
        break;
      case ColumnKind::kMixed: {
        const Value& value = term.column->values[row];
        cell.kind = value.kind();
        if (value.kind() == Value::Kind::kNumber) cell.number = value.as_number();
        if (value.kind() == Value::Kind::kText) cell.text = term.column->texts[row];
        if (value.kind() == Value::Kind::kFlag) cell.flag = value.as_flag();
        break;
      }
    }
    return cell;
  }
  return term.fallback;
}

/// Mirrors PredicateAtom::holds() over fetched cells.
bool cells_hold(const Cell& lhs, PredicateAtom::Cmp cmp, const Cell& rhs) {
  if (lhs.kind == Value::Kind::kNumber && rhs.kind == Value::Kind::kNumber) {
    return compare_numbers(lhs.number, cmp, rhs.number);
  }
  if (lhs.kind == Value::Kind::kText && rhs.kind == Value::Kind::kText) {
    if (cmp == PredicateAtom::Cmp::kEq) return lhs.text == rhs.text;
    if (cmp == PredicateAtom::Cmp::kNe) return lhs.text != rhs.text;
    return false;
  }
  if (lhs.kind == Value::Kind::kFlag && rhs.kind == Value::Kind::kFlag) {
    if (cmp == PredicateAtom::Cmp::kEq) return lhs.flag == rhs.flag;
    if (cmp == PredicateAtom::Cmp::kNe) return lhs.flag != rhs.flag;
    return false;
  }
  return false;
}

struct ResolvedOp {
  PredicateAtom::Cmp cmp = PredicateAtom::Cmp::kEq;
  ResolvedTerm lhs;
  ResolvedTerm factor;
  ResolvedTerm rhs;
  bool has_factor = false;
};

/// Sweeps the set bits of `mask`, clearing rows `keep` rejects. Parallel
/// sweeps split on 64-row-aligned chunk boundaries: no two chunks touch
/// the same mask word, so workers write disjoint memory.
template <typename Keep>
void sweep_mask(std::vector<std::uint64_t>& mask, bool parallel, const Keep& keep) {
  const auto process = [&](std::size_t first_word, std::size_t last_word) {
    for (std::size_t w = first_word; w < last_word; ++w) {
      std::uint64_t bits = mask[w];
      std::uint64_t cleared = 0;
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        if (!keep((w << 6) + static_cast<std::size_t>(bit))) {
          cleared |= (std::uint64_t{1} << bit);
        }
        bits &= bits - 1;
      }
      mask[w] &= ~cleared;
    }
  };
  if (!parallel || mask.size() <= kWordsPerChunk) {
    process(0, mask.size());
    return;
  }
  const std::size_t chunks = (mask.size() + kWordsPerChunk - 1) / kWordsPerChunk;
  support::ChunkPool::shared().for_each_chunk(chunks, [&](std::size_t chunk) {
    process(chunk * kWordsPerChunk, std::min(mask.size(), (chunk + 1) * kWordsPerChunk));
  });
}

}  // namespace

std::vector<const Core*> run_core_filter(const CoreFilterPlan& plan, const FilterQuery& query,
                                         telemetry::Telemetry& telemetry) {
  using telemetry::EventKind;
  // Chaos/deadline hook + first cancellation point; further checkpoints
  // run between sweeps (on the calling thread — ChunkPool workers carry
  // no request deadline), so cancellation latency is one sweep.
  DSLAYER_FAILPOINT("dsl.candidates.sweep");
  support::cancellation_checkpoint();
  const CoreTable& table = plan.table;
  const std::size_t rows = table.rows();
  telemetry.count(EventKind::kComplianceCheck, rows);
  // Sweep span for sampled request traces (one thread-local load when
  // untraced); nests under the executor's execute span.
  trace::SpanTimer sweep_span(trace::TraceScope::current(), trace::SpanKind::kSweep,
                              trace::TraceScope::current() != nullptr
                                  ? cat("columnar rows=", rows)
                                  : std::string{});
  if (rows == 0) return {};

  std::vector<std::uint64_t> mask(table.words(), ~std::uint64_t{0});
  if ((rows & 63) != 0) mask.back() = (std::uint64_t{1} << (rows & 63)) - 1;  // clip tail

  const bool parallel = rows >= columnar_parallel_threshold();
  const auto clear_all = [&] { std::fill(mask.begin(), mask.end(), 0); };

  // Steps 1 + 2a: decided design issues and kCoreEquals requirements are
  // the same kernel — the core must bind the property to exactly the
  // session's value. A missing column means no core can match.
  const auto apply_equality = [&](const FilterQuery::Equality& eq) {
    const Column* column =
        eq.symbol == support::kNoSymbol ? nullptr : table.binding_column(eq.symbol);
    if (column == nullptr) {
      clear_all();
      return;
    }
    switch (column->kind) {
      case ColumnKind::kNumber: {
        if (eq.value.kind() != Value::Kind::kNumber) {
          clear_all();
          return;
        }
        const double wanted = eq.value.as_number();
        sweep_mask(mask, parallel,
                   [&](std::size_t row) { return column->has(row) && column->numbers[row] == wanted; });
        return;
      }
      case ColumnKind::kText: {
        if (eq.value.kind() != Value::Kind::kText) {
          clear_all();
          return;
        }
        const auto wanted = support::lookup_symbol(eq.value.as_text());
        if (!wanted.has_value()) {  // never interned => no column text can equal it
          clear_all();
          return;
        }
        const support::Symbol symbol = *wanted;
        sweep_mask(mask, parallel,
                   [&](std::size_t row) { return column->has(row) && column->texts[row] == symbol; });
        return;
      }
      case ColumnKind::kMixed:
        sweep_mask(mask, parallel, [&](std::size_t row) {
          return column->has(row) && column->values[row] == eq.value;
        });
        return;
    }
  };
  for (const FilterQuery::Equality& eq : query.decided) apply_equality(eq);
  for (const FilterQuery::Equality& eq : query.require_equal) apply_equality(eq);

  // Step 2b: metric bounds. The comparison expressions are the legacy
  // ones verbatim, so NaN metrics behave identically.
  for (const FilterQuery::MetricBound& bound : query.require_metric) {
    const Column* column =
        bound.symbol == support::kNoSymbol ? nullptr : table.metric_column(bound.symbol);
    if (column == nullptr) {
      clear_all();
      continue;
    }
    sweep_mask(mask, parallel, [&](std::size_t row) {
      if (!column->has(row)) return false;
      const double metric = column->numbers[row];
      if (bound.at_most && metric > bound.bound) return false;
      if (!bound.at_most && metric < bound.bound) return false;
      return true;
    });
  }

  // Step 2c: custom filters, row-wise and sequential (registered lambdas
  // make no thread-safety promise).
  for (const CoreFilter* filter : query.custom) {
    sweep_mask(mask, false,
               [&](std::size_t row) { return (*filter)(*table.cores()[row], *query.bound); });
  }

  // Step 3: predicate constraints in index order. Evaluating each over
  // the surviving mask reproduces the legacy per-core early exit — a row
  // killed by predicate i is never examined by predicate i+1 — so the
  // ConstraintEvaluated totals match the legacy loop exactly.
  Bindings merged;       // lazily initialized scratch for opaque predicates
  bool merged_ready = false;
  for (const CompiledPredicate& predicate : plan.predicates) {
    const std::size_t examined = popcount(mask);
    if (examined == 0) break;
    telemetry.count(EventKind::kConstraintEvaluated, examined);
    if (predicate.compiled) {
      predicate.constraint->note_bulk_evaluations(examined);
      std::vector<ResolvedTerm> references;
      references.reserve(predicate.references.size());
      for (const CompiledPredicate::Term& term : predicate.references) {
        references.push_back(resolve_term(table, term, *query.bound));
      }
      std::vector<ResolvedOp> ops;
      ops.reserve(predicate.ops.size());
      for (const CompiledPredicate::Op& op : predicate.ops) {
        ResolvedOp resolved;
        resolved.cmp = op.cmp;
        resolved.lhs = resolve_term(table, op.lhs, *query.bound);
        if (op.has_factor) {
          resolved.factor = resolve_term(table, op.factor, *query.bound);
          resolved.has_factor = true;
        }
        resolved.rhs = resolve_term(table, op.rhs, *query.bound);
        ops.push_back(resolved);
      }
      sweep_mask(mask, parallel, [&](std::size_t row) {
        // violated() evaluates nothing unless every referenced property
        // has a value (core column or session fallback).
        for (const ResolvedTerm& reference : references) {
          const bool present = (reference.column != nullptr && reference.column->has(row)) ||
                               reference.fallback.kind != Value::Kind::kEmpty;
          if (!present) return true;  // unevaluable => not violated
        }
        for (const ResolvedOp& op : ops) {
          const Cell lhs = fetch(op.lhs, row);
          const Cell rhs = fetch(op.rhs, row);
          bool holds = false;
          if (op.has_factor) {
            const Cell factor = fetch(op.factor, row);
            holds = lhs.kind == Value::Kind::kNumber && factor.kind == Value::Kind::kNumber &&
                    rhs.kind == Value::Kind::kNumber &&
                    compare_numbers(lhs.number * factor.number, op.cmp, rhs.number);
          } else {
            holds = cells_hold(lhs, op.cmp, rhs);
          }
          if (!holds) return true;  // conjunction broken => not violated
        }
        return false;  // every atom holds => violated
      });
    } else {
      // Opaque lambda: row-wise through the overlay (sequential — the
      // scratch map is shared across rows).
      if (!merged_ready) {
        merged = *query.bound;
        merged_ready = true;
      }
      BindingsOverlay overlay(merged);
      std::uint64_t overlay_writes = 0;
      sweep_mask(mask, false, [&](std::size_t row) {
        overlay_writes += overlay.apply(*table.cores()[row]);
        const bool keep = !predicate.constraint->violated(merged);
        overlay.revert();
        return keep;
      });
      telemetry.count(EventKind::kOverlayWrite, overlay_writes);
    }
  }

  std::vector<const Core*> survivors;
  survivors.reserve(popcount(mask));
  for (std::size_t w = 0; w < mask.size(); ++w) {
    std::uint64_t bits = mask[w];
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      survivors.push_back(table.cores()[(w << 6) + static_cast<std::size_t>(bit)]);
      bits &= bits - 1;
    }
  }
  return survivors;
}

}  // namespace dslayer::dsl
