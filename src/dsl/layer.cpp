#include "dsl/layer.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "tech/technology.hpp"

namespace dslayer::dsl {

namespace {
const std::vector<const Core*> kNoCores;
const std::vector<const ConsistencyConstraint*> kNoConstraints;
}  // namespace

const std::vector<const ConsistencyConstraint*>& ConstraintIndex::constraining(
    const std::string& property) const {
  const auto symbol = support::lookup_symbol(property);
  return symbol.has_value() ? constraining(*symbol) : kNoConstraints;
}

const std::vector<const ConsistencyConstraint*>& ConstraintIndex::constraining(
    support::Symbol property) const {
  const auto it = by_dependent.find(property);
  return it == by_dependent.end() ? kNoConstraints : it->second;
}

const std::vector<const ConsistencyConstraint*>& ConstraintIndex::depending_on(
    const std::string& property) const {
  const auto symbol = support::lookup_symbol(property);
  return symbol.has_value() ? depending_on(*symbol) : kNoConstraints;
}

const std::vector<const ConsistencyConstraint*>& ConstraintIndex::depending_on(
    support::Symbol property) const {
  const auto it = by_independent.find(property);
  return it == by_independent.end() ? kNoConstraints : it->second;
}

DesignSpaceLayer::DesignSpaceLayer(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw DefinitionError("design space layer needs a name");
}

ReuseLibrary& DesignSpaceLayer::add_library(std::string name) {
  for (const auto& lib : libraries_) {
    if (lib->name() == name) throw DefinitionError(cat("library '", name, "' already attached"));
  }
  libraries_.push_back(std::make_unique<ReuseLibrary>(std::move(name)));
  return *libraries_.back();
}

std::vector<const ReuseLibrary*> DesignSpaceLayer::libraries() const {
  std::vector<const ReuseLibrary*> out;
  for (const auto& lib : libraries_) out.push_back(lib.get());
  return out;
}

ReuseLibrary* DesignSpaceLayer::library(const std::string& name) {
  for (const auto& lib : libraries_) {
    if (lib->name() == name) return lib.get();
  }
  return nullptr;
}

std::size_t DesignSpaceLayer::index_cores() {
  index_.clear();
  core_cdo_.clear();
  subtree_index_.clear();
  filter_plans_.clear();  // plans snapshot the subtree core lists
  index_warnings_.clear();
  std::size_t total = 0;
  for (const auto& lib : libraries_) total += lib->size();
  core_cdo_.reserve(total);
  std::size_t indexed = 0;
  for (const auto& lib : libraries_) {
    for (const Core* core : lib->cores()) {
      Cdo* cdo = space_.find(core->class_path());
      if (cdo == nullptr) {
        index_warnings_.push_back(cat("core '", core->name(), "' [", lib->name(),
                                      "]: class path '", core->class_path(),
                                      "' matches no CDO"));
        continue;
      }
      // Descend the generalization hierarchy as far as the core's bindings
      // answer the generalized issues.
      while (true) {
        const Property* issue = cdo->generalized_issue();
        if (issue == nullptr) break;
        const auto binding = core->binding(issue->name);
        if (!binding.has_value()) break;  // stays at this (more general) family
        if (binding->kind() != Value::Kind::kText ||
            !issue->domain.has_option(binding->as_text())) {
          index_warnings_.push_back(cat("core '", core->name(), "': binding ", issue->name, "=",
                                        binding->to_string(),
                                        " is not an option of the generalized issue"));
          break;
        }
        Cdo* child = cdo->child_for_option(binding->as_text());
        if (child == nullptr) {
          index_warnings_.push_back(cat("core '", core->name(), "': option '",
                                        binding->as_text(), "' of '", cdo->path(),
                                        "' has no specialized CDO"));
          break;
        }
        cdo = child;
      }
      index_[cdo].push_back(core);
      core_cdo_[core] = cdo;
      ++indexed;
    }
  }
  // Cumulative subtree index: one pre-order pass per root accumulates the
  // cores of every descendant, replacing the per-call subtree() walk that
  // cores_under() used to do.
  telemetry::ScopedTimer timer(&telemetry_, "index_cores");
  telemetry_.emit(telemetry::EventKind::kIndexRebuild, "subtree-core-index",
                  cat(indexed, " cores"));
  for (const Cdo* root : space_.roots()) build_subtree_index(*root);
  return indexed;
}

void DesignSpaceLayer::restore_index(
    const std::vector<std::pair<const Core*, const Cdo*>>& assignments) {
  index_.clear();
  core_cdo_.clear();
  subtree_index_.clear();
  filter_plans_.clear();
  index_warnings_.clear();
  core_cdo_.reserve(assignments.size());
  // Assignments arrive in library/core order, so runs of the same CDO are
  // long (a bulk-loaded library usually indexes under one class); caching
  // the bucket skips a map walk per core.
  const Cdo* last_cdo = nullptr;
  std::vector<const Core*>* bucket = nullptr;
  for (const auto& [core, cdo] : assignments) {
    if (cdo != last_cdo) {
      bucket = &index_[cdo];
      last_cdo = cdo;
    }
    bucket->push_back(core);
    core_cdo_.emplace(core, cdo);
  }
  for (const Cdo* root : space_.roots()) build_subtree_index(*root);
}

const CoreFilterPlan* DesignSpaceLayer::peek_filter_plan(const Cdo& cdo) const {
  const auto it = filter_plans_.find(&cdo);
  return it == filter_plans_.end() ? nullptr : it->second.get();
}

void DesignSpaceLayer::install_filter_plan(const Cdo& cdo, CoreTable table) const {
  filter_plans_[&cdo] =
      std::make_unique<CoreFilterPlan>(std::move(table), constraint_index(cdo).predicates);
}

void DesignSpaceLayer::clear_catalog() {
  libraries_.clear();
  index_.clear();
  core_cdo_.clear();
  subtree_index_.clear();
  filter_plans_.clear();
  index_warnings_.clear();
}

const std::vector<const Core*>& DesignSpaceLayer::build_subtree_index(const Cdo& cdo) const {
  std::vector<const Core*> out;
  if (const auto it = index_.find(&cdo); it != index_.end()) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  for (const Cdo* child : cdo.children()) {
    const auto& sub = build_subtree_index(*child);
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return subtree_index_[&cdo] = std::move(out);
}

const std::vector<const Core*>& DesignSpaceLayer::cores_at(const Cdo& cdo) const {
  const auto it = index_.find(&cdo);
  return it == index_.end() ? kNoCores : it->second;
}

const std::vector<const Core*>& DesignSpaceLayer::cores_under(const Cdo& cdo) const {
  const auto it = subtree_index_.find(&cdo);
  if (it != subtree_index_.end()) {
    telemetry_.count(telemetry::EventKind::kCacheHit);
    return it->second;
  }
  // CDO created (or queried) after the last index_cores() pass: index its
  // subtree on demand.
  telemetry_.count(telemetry::EventKind::kCacheMiss);
  telemetry_.count(telemetry::EventKind::kIndexRebuild);
  return build_subtree_index(cdo);
}

const Cdo* DesignSpaceLayer::indexed_cdo(const Core& core) const {
  const auto it = core_cdo_.find(&core);
  return it == core_cdo_.end() ? nullptr : it->second;
}

void DesignSpaceLayer::add_constraint(ConsistencyConstraint cc) {
  if (!constraint_ids_.insert(cc.id()).second) {
    throw DefinitionError(cat("constraint '", cc.id(), "' already defined"));
  }
  constraints_.push_back(std::move(cc));
  // The adjacency lists hold pointers into constraints_, so any growth
  // (reallocation) invalidates every cached index — and every filter
  // plan, whose compiled programs point at the same constraints.
  constraint_index_.clear();
  filter_plans_.clear();
}

const CoreFilterPlan& DesignSpaceLayer::filter_plan(const Cdo& cdo) const {
  if (const auto it = filter_plans_.find(&cdo); it != filter_plans_.end()) {
    telemetry_.count(telemetry::EventKind::kCacheHit);
    return *it->second;
  }
  telemetry_.count(telemetry::EventKind::kCacheMiss);
  telemetry_.count(telemetry::EventKind::kIndexRebuild);
  telemetry::ScopedTimer timer(&telemetry_, "filter_plan");
  auto plan = std::make_unique<CoreFilterPlan>(cores_under(cdo), constraint_index(cdo).predicates);
  return *(filter_plans_[&cdo] = std::move(plan));
}

const std::vector<const ConsistencyConstraint*>& DesignSpaceLayer::constraints_at(
    const Cdo& cdo) const {
  return constraint_index(cdo).all;
}

const ConstraintIndex& DesignSpaceLayer::constraint_index(const Cdo& cdo) const {
  if (const auto it = constraint_index_.find(&cdo); it != constraint_index_.end()) {
    telemetry_.count(telemetry::EventKind::kCacheHit);
    return it->second;
  }
  telemetry_.count(telemetry::EventKind::kCacheMiss);
  telemetry_.count(telemetry::EventKind::kIndexRebuild);
  telemetry::ScopedTimer timer(&telemetry_, "constraint_index");
  ConstraintIndex index;
  for (const auto& cc : constraints_) {
    if (!cc.applies_at(cdo)) continue;
    index.all.push_back(&cc);
    if (cc.kind() == RelationKind::kInconsistentOptions ||
        cc.kind() == RelationKind::kDominanceElimination) {
      index.predicates.push_back(&cc);
    }
    for (const PropertyPath& dep : cc.dependent()) {
      index.by_dependent[dep.property_symbol()].push_back(&cc);
    }
    for (const PropertyPath& indep : cc.independent()) {
      index.by_independent[indep.property_symbol()].push_back(&cc);
    }
  }
  return constraint_index_[&cdo] = std::move(index);
}

void DesignSpaceLayer::set_context_builder(ContextBuilder builder) {
  context_builder_ = std::move(builder);
}

estimation::EstimateInput DesignSpaceLayer::build_context(
    const Bindings& bindings, const behavior::BehavioralDescription& bd) const {
  if (context_builder_) return context_builder_(bindings, bd);

  // Generic default: read the conventional property names.
  estimation::EstimateInput input;
  input.bd = &bd;
  const auto number_of = [&bindings](const std::string& name, double fallback) {
    const Value v = get_or_empty(bindings, name);
    return v.kind() == Value::Kind::kNumber ? v.as_number() : fallback;
  };
  input.eol_bits = static_cast<unsigned>(number_of("EffectiveOperandLength", 32.0));
  input.radix = static_cast<unsigned>(number_of("Radix", 2.0));
  input.datapath_bits =
      static_cast<unsigned>(number_of("SliceWidth", std::min(input.eol_bits, 64u)));

  tech::Process process = tech::Process::k035um;
  tech::LayoutStyle layout = tech::LayoutStyle::kStandardCell;
  const Value fab = get_or_empty(bindings, "FabricationTechnology");
  if (fab.kind() == Value::Kind::kText && fab.as_text() == to_string(tech::Process::k070um)) {
    process = tech::Process::k070um;
  }
  const Value ls = get_or_empty(bindings, "LayoutStyle");
  if (ls.kind() == Value::Kind::kText && ls.as_text() == to_string(tech::LayoutStyle::kGateArray)) {
    layout = tech::LayoutStyle::kGateArray;
  }
  input.technology = tech::technology(process, layout);
  return input;
}

void DesignSpaceLayer::set_operator_class(behavior::OpKind kind, std::string cdo_path) {
  DSLAYER_REQUIRE(!cdo_path.empty(), "operator class needs a CDO path");
  if (space_.find(cdo_path) == nullptr) {
    throw DefinitionError(cat("operator class for '", behavior::to_string(kind),
                              "' references unknown CDO '", cdo_path, "'"));
  }
  operator_classes_[kind] = std::move(cdo_path);
}

const std::string* DesignSpaceLayer::operator_class(behavior::OpKind kind) const {
  const auto it = operator_classes_.find(kind);
  return it == operator_classes_.end() ? nullptr : &it->second;
}

void DesignSpaceLayer::set_core_filter(const std::string& requirement, CoreFilter filter) {
  DSLAYER_REQUIRE(filter != nullptr, "core filter must not be null");
  core_filters_[requirement] = std::move(filter);
}

const DesignSpaceLayer::CoreFilter* DesignSpaceLayer::core_filter(
    const std::string& requirement) const {
  const auto it = core_filters_.find(requirement);
  return it == core_filters_.end() ? nullptr : &it->second;
}

std::vector<std::string> DesignSpaceLayer::validate() const {
  std::vector<std::string> findings;

  for (const Cdo* cdo : space_.all()) {
    const Property* issue = cdo->generalized_issue();
    if (issue == nullptr) continue;
    for (const std::string& option : issue->domain.option_list()) {
      if (cdo->child_for_option(option) == nullptr) {
        findings.push_back(cat("CDO '", cdo->path(), "': option '", option,
                               "' of generalized issue '", issue->name,
                               "' has no specialized CDO"));
      }
    }
  }

  for (const auto& cc : constraints_) {
    bool applies_somewhere = false;
    for (const Cdo* cdo : space_.all()) {
      if (cc.applies_at(*cdo)) {
        applies_somewhere = true;
        break;
      }
    }
    if (!applies_somewhere) {
      findings.push_back(cat("constraint '", cc.id(), "': dependent set matches no CDO"));
    }
    if (cc.kind() == RelationKind::kEstimatorBinding &&
        estimators_.find(cc.estimator_name()) == nullptr) {
      findings.push_back(cat("constraint '", cc.id(), "': estimator '", cc.estimator_name(),
                             "' is not registered"));
    }
  }

  for (const std::string& warning : index_warnings_) findings.push_back(warning);
  return findings;
}

std::string DesignSpaceLayer::document() const {
  std::ostringstream os;
  os << "Design Space Layer: " << name_ << "\n";
  os << "=== CDO hierarchy ===\n";
  for (const Cdo* root : space_.roots()) os << root->document(true);
  os << "=== Consistency constraints ===\n";
  for (const auto& cc : constraints_) os << cc.describe();
  os << "=== Estimation tools ===\n";
  for (const std::string& name : estimators_.names()) os << "  " << name << "\n";
  os << "=== Reuse libraries ===\n";
  for (const auto& lib : libraries_) {
    os << "  " << lib->name() << " (" << lib->size() << " cores)\n";
  }
  return os.str();
}

}  // namespace dslayer::dsl
