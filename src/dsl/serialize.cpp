#include "dsl/serialize.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

namespace {

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

/// Quotes a string: wraps in '"', escaping '"' and '\'.
std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Full-precision double rendering for round-trips.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Splits one line into tokens: bare words and quoted strings.
std::vector<std::string> lex(const std::string& line, std::size_t line_no) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    if (line[i] == '"') {
      std::string token;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) ++i;
        token.push_back(line[i]);
        ++i;
      }
      if (i >= line.size()) {
        throw DefinitionError(cat("line ", line_no, ": unterminated string"));
      }
      ++i;  // closing quote
      tokens.push_back(std::move(token));
    } else {
      std::size_t start = i;
      while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

// ---------------------------------------------------------------------------
// Value / domain encoding
// ---------------------------------------------------------------------------

std::string encode_value(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kEmpty: return "empty";
    case Value::Kind::kNumber: return cat("number:", num(v.as_number()));
    case Value::Kind::kText: return cat("text:", v.as_text());
    case Value::Kind::kFlag: return cat("flag:", v.as_flag() ? "true" : "false");
  }
  return "empty";
}

Value decode_value(const std::string& s, std::size_t line_no) {
  if (s == "empty") return Value{};
  if (starts_with(s, "number:")) return Value::number(std::stod(s.substr(7)));
  if (starts_with(s, "text:")) return Value::text(s.substr(5));
  if (starts_with(s, "flag:")) return Value::flag(s.substr(5) == "true");
  throw DefinitionError(cat("line ", line_no, ": bad value encoding '", s, "'"));
}

// The well-known integer sets round-trip by describe() string.
const std::string kPositiveDesc = ValueDomain::positive_integers().describe();
const std::string kPow2Desc = ValueDomain::powers_of_two().describe();

std::string encode_domain(const ValueDomain& d) {
  switch (d.kind()) {
    case ValueDomain::Kind::kAny:
      return "any";
    case ValueDomain::Kind::kFlag:
      return "flag";
    case ValueDomain::Kind::kOptions: {
      for (const std::string& o : d.option_list()) {
        if (o.find('|') != std::string::npos) {
          throw DefinitionError(cat("option '", o, "' contains the reserved '|'"));
        }
      }
      return cat("options:", join(d.option_list(), "|"));
    }
    case ValueDomain::Kind::kRealRange: {
      const auto bound = [](double v) {
        if (v == std::numeric_limits<double>::infinity()) return std::string("inf");
        if (v == -std::numeric_limits<double>::infinity()) return std::string("-inf");
        return num(v);
      };
      return cat("real:", bound(d.real_lo()), ":", bound(d.real_hi()));
    }
    case ValueDomain::Kind::kIntegerSet: {
      if (d.describe() == kPositiveDesc) return "int:positive";
      if (d.describe() == kPow2Desc) return "int:pow2";
      return cat("int:custom:", d.describe());
    }
  }
  return "any";
}

ValueDomain decode_domain(const std::string& s, std::size_t line_no,
                          std::vector<std::string>& warnings) {
  if (s == "any") return ValueDomain::any();
  if (s == "flag") return ValueDomain::flags();
  if (starts_with(s, "options:")) return ValueDomain::options(split(s.substr(8), '|'));
  if (starts_with(s, "real:")) {
    const auto parts = split(s.substr(5), ':');
    if (parts.size() != 2) throw DefinitionError(cat("line ", line_no, ": bad real domain"));
    const auto bound = [](const std::string& t) {
      if (t == "inf") return std::numeric_limits<double>::infinity();
      if (t == "-inf") return -std::numeric_limits<double>::infinity();
      return std::stod(t);
    };
    return ValueDomain::real_range(bound(parts[0]), bound(parts[1]));
  }
  if (s == "int:positive") return ValueDomain::positive_integers();
  if (s == "int:pow2") return ValueDomain::powers_of_two();
  if (starts_with(s, "int:custom:")) {
    warnings.push_back(cat("line ", line_no, ": custom integer domain '", s.substr(11),
                           "' widened to positive integers (predicates are code)"));
    return ValueDomain::positive_integers();
  }
  throw DefinitionError(cat("line ", line_no, ": bad domain encoding '", s, "'"));
}

const char* kind_tag(const Property& p) {
  if (p.kind == PropertyKind::kRequirement) return "req";
  if (p.kind == PropertyKind::kFigureOfMerit) return "fom";
  return p.generalized ? "gissue" : "issue";
}

std::string unit_tag(Unit u) { return u == Unit::kNone ? "-" : unit_suffix(u); }

Unit parse_unit(const std::string& tag) {
  if (tag == "-") return Unit::kNone;
  for (const Unit u : {Unit::kNanoseconds, Unit::kMicroseconds, Unit::kGates, Unit::kBits,
                       Unit::kMegahertz, Unit::kMilliwatts}) {
    if (unit_suffix(u) == tag) return u;
  }
  return Unit::kNone;
}

void export_cdo(const Cdo& cdo, std::ostringstream& os) {
  const std::string parent = cdo.parent() == nullptr ? "" : cdo.parent()->path();
  os << "cdo " << quote(cdo.path()) << " parent " << quote(parent) << " option "
     << quote(cdo.specializing_option()) << " doc " << quote(cdo.doc()) << "\n";
  for (const Property& p : cdo.local_properties()) {
    os << "prop " << quote(cdo.path()) << " " << kind_tag(p) << " " << quote(p.name)
       << " domain " << quote(encode_domain(p.domain)) << " unit " << unit_tag(p.unit);
    if (p.default_value.has_value()) os << " default " << quote(encode_value(*p.default_value));
    if (!p.filters_cores) os << " nofilter";
    if (p.compliance != Compliance::kNone) {
      const char* tag = p.compliance == Compliance::kCoreAtMost
                            ? "atmost"
                            : (p.compliance == Compliance::kCoreAtLeast ? "atleast" : "equals");
      os << " comply " << tag << " " << quote(p.compliance_key);
    }
    os << " doc " << quote(p.doc) << "\n";
  }
  for (const behavior::BehavioralDescription& bd : cdo.local_behaviors()) {
    os << "# behavior " << quote(bd.name()) << " at " << quote(cdo.path())
       << " (structural; re-attach programmatically)\n";
  }
  for (const Cdo* child : cdo.children()) export_cdo(*child, os);
}

}  // namespace

namespace {

void export_prefix(const DesignSpaceLayer& layer, std::ostringstream& os) {
  os << "dslayer-format 1\n";
  os << "layer " << quote(layer.name()) << "\n";

  for (const ConsistencyConstraint& cc : layer.constraints()) {
    os << "# constraint " << quote(cc.id()) << " " << quote(cc.doc())
       << " (relation is code; re-author on import)\n";
  }

  for (const Cdo* root : layer.space().roots()) export_cdo(*root, os);
}

}  // namespace

std::string export_hierarchy(const DesignSpaceLayer& layer) {
  std::ostringstream os;
  export_prefix(layer, os);
  return os.str();
}

std::string export_layer(const DesignSpaceLayer& layer) {
  std::ostringstream os;
  export_prefix(layer, os);

  for (const ReuseLibrary* lib : layer.libraries()) {
    os << "library " << quote(lib->name()) << "\n";
    for (const Core* core : lib->cores()) {
      os << "core " << quote(core->name()) << " class " << quote(core->class_path()) << "\n";
      for (const CoreBinding& b : core->bindings()) {
        os << "bind " << quote(*b.name) << " " << quote(encode_value(b.value)) << "\n";
      }
      for (const CoreMetric& m : core->metrics()) {
        os << "metric " << quote(*m.name) << " " << num(m.value) << "\n";
      }
      for (const CoreView& view : core->views()) {
        os << "view " << quote(view.level) << " " << quote(view.artifact) << "\n";
      }
    }
  }
  return os.str();
}

ImportResult import_layer(const std::string& text) {
  ImportResult result;
  ReuseLibrary* library = nullptr;
  Core* core = nullptr;
  // Cores are mutated after add(); collect pending ops via direct pointer —
  // ReuseLibrary::add returns a stable reference.

  std::istringstream is(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;

  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto tokens = lex(line, line_no);
    const std::string& verb = tokens[0];
    const auto want = [&](std::size_t n) {
      if (tokens.size() < n) {
        throw DefinitionError(cat("line ", line_no, ": '", verb, "' needs ", n - 1, " operands"));
      }
    };

    if (verb == "dslayer-format") {
      want(2);
      if (tokens[1] != "1") {
        throw DefinitionError(cat("line ", line_no, ": unsupported format ", tokens[1]));
      }
      saw_header = true;
    } else if (verb == "layer") {
      want(2);
      if (!saw_header) throw DefinitionError("missing dslayer-format header");
      result.layer = std::make_unique<DesignSpaceLayer>(tokens[1]);
    } else if (result.layer == nullptr) {
      throw DefinitionError(cat("line ", line_no, ": '", verb, "' before 'layer'"));
    } else if (verb == "cdo") {
      // cdo <path> parent <path> option <opt> doc <doc>
      want(8);
      const std::string& path = tokens[1];
      const std::string& parent = tokens[3];
      const std::string& option = tokens[5];
      const std::string& doc = tokens[7];
      const std::string name = split(path, '.').back();
      if (parent.empty()) {
        result.layer->space().add_root(name, doc);
      } else {
        Cdo* parent_cdo = result.layer->space().find(parent);
        if (parent_cdo == nullptr) {
          throw DefinitionError(cat("line ", line_no, ": unknown parent '", parent, "'"));
        }
        parent_cdo->specialize(option, name, doc);
      }
    } else if (verb == "prop") {
      // prop <cdo> <kind> <name> domain <d> unit <u> [default <v>] [nofilter]
      //      [comply <tag> <key>] doc <doc>
      want(9);
      Cdo* cdo = result.layer->space().find(tokens[1]);
      if (cdo == nullptr) {
        throw DefinitionError(cat("line ", line_no, ": unknown CDO '", tokens[1], "'"));
      }
      Property p;
      p.name = tokens[3];
      const std::string& kind = tokens[2];
      p.kind = kind == "req"
                   ? PropertyKind::kRequirement
                   : (kind == "fom" ? PropertyKind::kFigureOfMerit : PropertyKind::kDesignIssue);
      p.generalized = kind == "gissue";
      p.domain = decode_domain(tokens[5], line_no, result.warnings);
      p.unit = parse_unit(tokens[7]);
      std::size_t i = 8;
      while (i < tokens.size()) {
        if (tokens[i] == "default") {
          want(i + 2);
          p.default_value = decode_value(tokens[i + 1], line_no);
          i += 2;
        } else if (tokens[i] == "nofilter") {
          p.filters_cores = false;
          i += 1;
        } else if (tokens[i] == "comply") {
          want(i + 3);
          p.compliance = tokens[i + 1] == "atmost"
                             ? Compliance::kCoreAtMost
                             : (tokens[i + 1] == "atleast" ? Compliance::kCoreAtLeast
                                                           : Compliance::kCoreEquals);
          p.compliance_key = tokens[i + 2];
          i += 3;
        } else if (tokens[i] == "doc") {
          want(i + 2);
          p.doc = tokens[i + 1];
          i += 2;
        } else {
          throw DefinitionError(cat("line ", line_no, ": unknown attribute '", tokens[i], "'"));
        }
      }
      cdo->add_property(std::move(p));
    } else if (verb == "library") {
      want(2);
      library = &result.layer->add_library(tokens[1]);
      core = nullptr;
    } else if (verb == "core") {
      want(4);
      if (library == nullptr) {
        throw DefinitionError(cat("line ", line_no, ": 'core' before 'library'"));
      }
      core = &library->add(Core(tokens[1], tokens[3]));
    } else if (verb == "bind" || verb == "metric" || verb == "view") {
      want(3);
      if (core == nullptr) {
        throw DefinitionError(cat("line ", line_no, ": '", verb, "' before 'core'"));
      }
      if (verb == "bind") {
        core->bind(tokens[1], decode_value(tokens[2], line_no));
      } else if (verb == "metric") {
        core->set_metric(tokens[1], std::stod(tokens[2]));
      } else {
        core->add_view(tokens[1], tokens[2]);
      }
    } else {
      throw DefinitionError(cat("line ", line_no, ": unknown directive '", verb, "'"));
    }
  }

  if (result.layer == nullptr) throw DefinitionError("input contains no 'layer' directive");
  result.layer->index_cores();
  return result;
}

}  // namespace dslayer::dsl
