// Observability counters for the indexed + cached query layer.
//
// Interactive exploration (Section 5) asks the same questions — what
// options remain, what cores comply, what metric ranges follow — after
// every decision. QueryStats makes the cost of answering them visible:
// how many constraint predicates were evaluated, how many cores went
// through compliance checks, and how often the memoized caches and the
// per-CDO indexes absorbed a query instead of a rescan. Both
// DesignSpaceLayer and ExplorationSession expose one; the shell's `stats`
// command prints them.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace dslayer::dsl {

struct QueryStats {
  std::uint64_t constraint_evaluations = 0;  ///< predicate violated() calls issued
  std::uint64_t compliance_checks = 0;       ///< cores run through the candidate filter
  std::uint64_t cache_hits = 0;              ///< queries answered from a memoized result
  std::uint64_t cache_misses = 0;            ///< queries that had to recompute
  std::uint64_t index_rebuilds = 0;          ///< per-CDO index (re)constructions

  void reset() { *this = QueryStats{}; }

  std::string summary() const {
    std::ostringstream os;
    os << "constraint evaluations: " << constraint_evaluations
       << "  compliance checks: " << compliance_checks << "  cache hits: " << cache_hits
       << "  cache misses: " << cache_misses << "  index rebuilds: " << index_rebuilds;
    return os.str();
  }
};

}  // namespace dslayer::dsl
