// Observability counters for the indexed + cached query layer.
//
// Interactive exploration (Section 5) asks the same questions — what
// options remain, what cores comply, what metric ranges follow — after
// every decision. QueryStats makes the cost of answering them visible:
// how many constraint predicates were evaluated, how many cores went
// through compliance checks, and how often the memoized caches and the
// per-CDO indexes absorbed a query instead of a rescan.
//
// Since the telemetry subsystem landed, QueryStats is a VIEW over a
// Telemetry hub's per-kind event counters (stats_view below), not a set
// of hand-bumped fields: DesignSpaceLayer and ExplorationSession count
// or emit typed events (support/telemetry.hpp) and derive these numbers
// on demand. The shell's `stats` command prints them.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "support/telemetry.hpp"

namespace dslayer::dsl {

struct QueryStats {
  std::uint64_t constraint_evaluations = 0;  ///< predicate violated() calls issued
  std::uint64_t compliance_checks = 0;       ///< cores run through the candidate filter
  std::uint64_t cache_hits = 0;              ///< queries answered from a memoized result
  std::uint64_t cache_misses = 0;            ///< queries that had to recompute
  std::uint64_t index_rebuilds = 0;          ///< per-CDO index (re)constructions

  std::string summary() const {
    std::ostringstream os;
    os << "constraint evaluations: " << constraint_evaluations
       << "  compliance checks: " << compliance_checks << "  cache hits: " << cache_hits
       << "  cache misses: " << cache_misses << "  index rebuilds: " << index_rebuilds;
    return os.str();
  }
};

/// Builds the QueryStats view from a hub's aggregate event counters.
inline QueryStats stats_view(const telemetry::Telemetry& t) {
  using telemetry::EventKind;
  QueryStats s;
  s.constraint_evaluations = t.count_of(EventKind::kConstraintEvaluated);
  s.compliance_checks = t.count_of(EventKind::kComplianceCheck);
  s.cache_hits = t.count_of(EventKind::kCacheHit);
  s.cache_misses = t.count_of(EventKind::kCacheMiss);
  s.index_rebuilds = t.count_of(EventKind::kIndexRebuild);
  return s;
}

}  // namespace dslayer::dsl
