// Exploration sessions: conceptual design over a design space layer.
//
// "Each design decision made with respect to a specific architectural
// component, during conceptual design, corresponds to a pruning of the
// component's design space. The reusable designs that fall outside the
// selected region ... are immediately eliminated from consideration.
// Critical information on the set of reusable designs that do comply with
// the decision, including ranges of performance and power consumption, can
// be then directly provided to the designer." (Section 1)
//
// A session walks one CDO class:
//  * requirements are entered from the system specification (Fig. 8);
//  * decisions on regular design issues filter the candidate core set;
//  * decisions on the CURRENT CDO's generalized issue descend the
//    generalization hierarchy (narrowing the design-space region);
//  * consistency constraints impose ordering (dependents only after
//    independents), veto inconsistent/dominated combinations, flag decided
//    properties for re-assessment when their independents change, derive
//    values (formulas), and bind estimation tools for empty regions;
//  * every action is appended to a trace — the layer's self-documentation
//    extends to the exploration itself.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dsl/layer.hpp"
#include "dsl/query_stats.hpp"
#include "support/telemetry.hpp"

namespace dslayer::dsl {

class ExplorationSession {
 public:
  /// Lifecycle state of a property value in this session.
  enum class State {
    kUnset,
    kSet,
    kNeedsReassessment,  ///< an independent changed; value kept but flagged
  };

  /// Opens a session exploring the CDO class at `class_path`. Generalized
  /// options on the path from the hierarchy root are recorded as implicit
  /// (structural) decisions. Throws DefinitionError if the path is unknown.
  ExplorationSession(const DesignSpaceLayer& layer, const std::string& class_path);

  const DesignSpaceLayer& layer() const { return *layer_; }

  /// The CDO currently in scope (moves down/up with generalized decisions).
  const Cdo& current() const { return *current_; }

  // -- entering values -------------------------------------------------------

  /// Enters a requirement value (Fig. 8's "the designer enters their
  /// corresponding values"). Throws ExplorationError on domain violations
  /// or consistency conflicts.
  void set_requirement(const std::string& name, Value value);

  /// Decides a design issue. For the current CDO's generalized issue this
  /// descends into the specialized child. Throws ExplorationError if the
  /// issue is unknown here, the value is outside the domain, an independent
  /// property has not been addressed (CC ordering), or the combination is
  /// vetoed by a consistency constraint.
  void decide(const std::string& name, Value value);

  /// Convenience for option-valued issues.
  void decide(const std::string& name, const std::string& option) {
    decide(name, Value::text(option));
  }
  void set_requirement(const std::string& name, const std::string& option) {
    set_requirement(name, Value::text(option));
  }
  void set_requirement(const std::string& name, double number) {
    set_requirement(name, Value::number(number));
  }
  void decide(const std::string& name, double number) { decide(name, Value::number(number)); }

  /// Withdraws a value. Retracting a generalized decision ascends the
  /// hierarchy and drops decisions that are no longer in scope.
  void retract(const std::string& name);

  /// Confirms a value flagged for re-assessment (back to kSet). Throws if
  /// the value is now inconsistent.
  void reaffirm(const std::string& name);

  // -- state -------------------------------------------------------------------

  State state_of(const std::string& name) const;
  std::optional<Value> value_of(const std::string& name) const;

  /// Properties currently flagged for re-assessment.
  std::vector<std::string> pending_reassessment() const;

  /// Full value snapshot: structural + explicit values, then property
  /// defaults for everything else visible. Memoized behind the session's
  /// generation counter; the reference is valid until the next
  /// set_requirement/decide/retract/reaffirm.
  const Bindings& bindings() const;

  /// Options of `issue` not eliminated by consistency constraints under the
  /// current bindings.
  std::vector<std::string> available_options(const std::string& issue) const;

  /// Options eliminated, with the vetoing constraint id. Mirrors decide()'s
  /// veto exactly: only constraints whose DEPENDENT set contains `issue`
  /// eliminate an option. Options that merely conflict through the
  /// independent side are decidable (decide() flags the dependents for
  /// re-assessment instead) and are reported by reassessment_flags().
  std::vector<std::pair<std::string, std::string>> eliminated_options(
      const std::string& issue) const;

  /// Options of `issue` that decide() would ACCEPT but that immediately
  /// violate a constraint through `issue`'s independent side — choosing
  /// them flags the constraint's decided dependents for re-assessment.
  /// Reported with the conflicting constraint id so the designer sees the
  /// consequence before committing.
  std::vector<std::pair<std::string, std::string>> reassessment_flags(
      const std::string& issue) const;

  // -- retrieval ----------------------------------------------------------------

  /// Cores in the selected design-space region complying with every
  /// decision, requirement, and constraint. Memoized behind the session's
  /// generation counter (one scan serves report(), metric_range() and
  /// option_ranges() until the next value change); the reference is valid
  /// until the next mutating call.
  const std::vector<const Core*>& candidates() const;

  /// Range of a figure of merit over the candidates that report it.
  struct MetricRange {
    double min = 0.0;
    double max = 0.0;
    std::size_t count = 0;
  };
  std::optional<MetricRange> metric_range(const std::string& metric) const;

  /// The paper's Section 5.1.5 what-if query: for each OPTION of an
  /// undecided design issue, the range of `metric` over the candidates the
  /// session would retain after tentatively deciding that option —
  /// "allowing the designer to consider the performance ranges and other
  /// figures of merit, for each such alternatives". The cached candidate
  /// set is partitioned once across all options (not rescanned per
  /// option). Options vetoed by constraints are omitted, as are options
  /// whose tentative candidates report no value for `metric` — every range
  /// returned has count > 0 and meaningful min/max.
  std::map<std::string, MetricRange> option_ranges(const std::string& issue,
                                                   const std::string& metric) const;

  // -- derivation & estimation -----------------------------------------------------

  /// Value derived by a formula constraint (CC2-style); nullopt if no
  /// formula applies or its independents are not all bound.
  std::optional<Value> derived(const std::string& property) const;

  /// Estimation fallback (CC3): ranks the behavioral descriptions visible
  /// at the current CDO by the estimator bound to `dependent_property`,
  /// ascending (best first). Throws ExplorationError if no estimator
  /// constraint applies or the tool is missing.
  struct BehaviorRank {
    std::string bd_name;
    double value = 0.0;
  };
  std::vector<BehaviorRank> rank_behaviors(const std::string& dependent_property) const;

  // -- behavioral decomposition (DI7) --------------------------------------------------

  /// One operator instance of the behavioral description in scope, mapped
  /// to the CDO class that implements it (Section 5.1.6): the paper's
  /// "FOR ALL Oper := OPERATORS(BD@...)" enumeration.
  struct OperatorSite {
    std::string bd_name;
    int op_id = 0;
    behavior::OpKind kind = behavior::OpKind::kAssign;
    int line = 0;
    unsigned width_bits = 0;
    std::string cdo_path;  ///< registered operator class (empty if none)
  };

  /// Enumerates the operator instances of the most specific behavioral
  /// description visible at the current CDO, resolved against the layer's
  /// operator-class registry. Throws ExplorationError if no BD is visible.
  std::vector<OperatorSite> behavioral_decomposition() const;

  /// Opens the conceptual design of one operator site: a fresh session on
  /// the operator's CDO class, with a WordSize requirement pre-entered from
  /// the site's datapath width when that CDO declares one. Throws
  /// ExplorationError if the site has no registered class.
  ExplorationSession open_operator_session(const OperatorSite& site) const;

  // -- self-documentation & telemetry ---------------------------------------------

  /// Legacy human-readable log lines (kept for scripts and examples; the
  /// structured record lives in telemetry()).
  const std::vector<std::string>& trace() const { return trace_; }

  /// Human-readable session summary: scope, values, candidates, ranges.
  std::string report() const;

  /// The session's telemetry hub: typed events (ring buffer), aggregate
  /// counters, and per-query-kind latency histograms. Mutable through a
  /// const session — observing a query is not a state change.
  telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// The replay journal: every state-mutating event (SessionOpened,
  /// RequirementSet, Decision, Retract, Reaffirm) since construction, in
  /// order, unbounded.
  const std::vector<telemetry::Event>& journal() const { return journal_->events(); }

  /// Writes the replay journal as JSONL (one event per line) — the
  /// record half of record/replay debugging.
  void export_journal(std::ostream& out) const;
  std::string export_journal() const;

  /// Rebuilds a session from a JSONL journal: the first event must be
  /// SessionOpened; RequirementSet/Decision/Retract/Reaffirm events are
  /// re-applied in sequence, everything else is ignored. Because the
  /// engine is deterministic, the result's report() and candidates() match
  /// the recording session's byte for byte. Throws ExplorationError on
  /// malformed journals and surfaces the same errors the original calls
  /// would have raised.
  static ExplorationSession replay(const DesignSpaceLayer& layer, const std::string& jsonl);

  // -- query cache & observability ---------------------------------------------------

  /// Enables/disables the memoization of bindings() and candidates().
  /// Disabled, every query recomputes from scratch (the pre-index
  /// behavior) — kept for benchmarking and distrust-the-cache debugging.
  void set_query_cache(bool enabled) { cache_enabled_ = enabled; }
  bool query_cache_enabled() const { return cache_enabled_; }

  /// Selects the candidates() engine: the columnar filter plan (default;
  /// DESIGN.md §10) or the legacy per-core scan. Both produce identical
  /// candidate sets and counter totals — the oracle test enforces it —
  /// so this exists for benchmarking and distrust-the-columns debugging.
  /// Toggling invalidates the memoized candidates.
  void set_columnar(bool enabled) {
    if (columnar_enabled_ != enabled) touch();
    columnar_enabled_ = enabled;
  }
  bool columnar_enabled() const { return columnar_enabled_; }

  /// Declares a PredicateAtom conjunction ACCEPT-prefilter for the
  /// custom core filter registered under requirement `name` (DESIGN.md
  /// §14): any candidate row where every property the atoms reference
  /// resolves (binding column, metric column, or session binding) and
  /// every atom holds is treated as compliant WITHOUT running the
  /// lambda — the columnar engine proves those rows word-parallel
  /// through the SIMD kernels and only the residual runs interpreted.
  /// The declaration is a performance promise by the caller ("rows
  /// satisfying these atoms always pass my filter"); rows the atoms do
  /// not prove still go through the lambda, so an overly conservative
  /// prefilter only costs speed. The legacy engine ignores prefilters
  /// entirely, which is what lets the oracle suite cross-check the
  /// declaration against the full lambda. Passing an empty vector
  /// clears the declaration. Invalidates memoized candidates.
  void declare_prefilter(const std::string& name, std::vector<PredicateAtom> pass_when);

  /// Counters for this session's queries: constraint evaluations, core
  /// compliance checks, cache hits/misses. A view over the telemetry
  /// counters (resetting them does not erase the event trace or journal).
  QueryStats query_stats() const { return stats_view(telemetry_); }
  void reset_query_stats() const { telemetry_.reset_counters(); }

 private:
  struct Entry {
    Value value;
    State state = State::kUnset;
    bool is_requirement = false;
    bool is_structural = false;  ///< implied by the session's class path
  };

  const Property& require_property(const std::string& name, PropertyKind kind) const;
  void check_ordering(const std::string& name) const;
  void check_consistency(const std::string& name, const Value& value) const;
  void scan_conflicts(const std::string& name);
  void invalidate_dependents(const std::string& name);
  void log(std::string message);

  /// Invalidates the memoized queries (bump after every value or scope
  /// mutation — the caches re-fill lazily).
  void touch() { ++generation_; }

  Bindings compute_bindings() const;
  std::vector<const Core*> compute_candidates() const;
  std::vector<const Core*> compute_candidates_legacy() const;
  std::vector<const Core*> compute_candidates_columnar() const;

  const DesignSpaceLayer* layer_;
  const Cdo* root_;
  const Cdo* current_;
  std::map<std::string, Entry> entries_;
  std::map<std::string, std::vector<PredicateAtom>> prefilters_;
  std::vector<std::string> trace_;

  // Memoized query layer: results tagged with the generation they were
  // computed at; any mutation bumps generation_ and implicitly invalidates.
  bool cache_enabled_ = true;
  bool columnar_enabled_ = true;
  std::uint64_t generation_ = 1;
  mutable std::uint64_t bindings_generation_ = 0;  // 0 = never computed
  mutable Bindings bindings_cache_;
  mutable std::uint64_t candidates_generation_ = 0;
  mutable std::vector<const Core*> candidates_cache_;

  // Telemetry hub plus the always-attached replay journal (an unbounded
  // JournalSink over the mutating kinds; shared_ptr because the hub owns
  // its sinks type-erased and the session needs typed access).
  mutable telemetry::Telemetry telemetry_;
  std::shared_ptr<telemetry::JournalSink> journal_;
};

}  // namespace dslayer::dsl
