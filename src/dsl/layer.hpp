// The design space layer.
//
// Ties together everything Fig. 1 shows: the CDO hierarchy (the implicit
// design-space representation), any number of reuse libraries indexed
// through it, the consistency constraints governing exploration, the early
// estimation tools CCs may bind, and the domain-specific hooks (core
// compliance filters, estimation context construction).
//
// Core indexing (Section 4): a core enters at the CDO named by its class
// path and descends the generalization hierarchy as far as its bindings
// answer the generalized issues — ending at the most specific family of
// design alternatives it belongs to. Cores whose class path or option
// bindings do not resolve are reported, not silently dropped.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dsl/cdo.hpp"
#include "dsl/constraint.hpp"
#include "dsl/core_library.hpp"
#include "dsl/core_table.hpp"
#include "dsl/query_stats.hpp"
#include "estimation/estimators.hpp"
#include "support/symbol.hpp"

namespace dslayer::dsl {

/// Per-CDO constraint adjacency, built once and reused by every query that
/// used to rescan the full constraint list: the constraints in scope, the
/// predicate subset (InconsistentOptions/DominanceElimination — the only
/// kinds candidates() evaluates), and property-name lookups for both sides
/// of the dependency relation.
struct ConstraintIndex {
  std::vector<const ConsistencyConstraint*> all;
  std::vector<const ConsistencyConstraint*> predicates;
  /// Adjacency keyed by interned property symbol (PropertyPath interns at
  /// construction, so building the index never touches the string table).
  std::map<support::Symbol, std::vector<const ConsistencyConstraint*>> by_dependent;
  std::map<support::Symbol, std::vector<const ConsistencyConstraint*>> by_independent;

  /// Constraints whose dependent set contains `property` (veto side).
  const std::vector<const ConsistencyConstraint*>& constraining(const std::string& property) const;
  const std::vector<const ConsistencyConstraint*>& constraining(support::Symbol property) const;

  /// Constraints whose independent set contains `property` (re-assessment
  /// side).
  const std::vector<const ConsistencyConstraint*>& depending_on(const std::string& property) const;
  const std::vector<const ConsistencyConstraint*>& depending_on(support::Symbol property) const;
};

class DesignSpaceLayer {
 public:
  /// Compliance predicate for one requirement: does `core` satisfy the
  /// requirement given the full session bindings? Registered by domain
  /// layers for rules too rich for the declarative Compliance enum (e.g.
  /// "latency of a composed multiplier at the required EOL").
  using CoreFilter = std::function<bool(const Core&, const Bindings&)>;

  /// Builds the estimation input for a behavioral description from the
  /// session bindings (maps option strings to technology models etc.).
  using ContextBuilder =
      std::function<estimation::EstimateInput(const Bindings&, const behavior::BehavioralDescription&)>;

  explicit DesignSpaceLayer(std::string name);

  const std::string& name() const { return name_; }

  DesignSpace& space() { return space_; }
  const DesignSpace& space() const { return space_; }

  // -- reuse libraries ------------------------------------------------------

  /// Creates and attaches a new (owned) reuse library.
  ReuseLibrary& add_library(std::string name);

  std::vector<const ReuseLibrary*> libraries() const;

  /// Mutable access to an attached library (IP-provider catalog updates:
  /// new cores are added and re-indexed without touching the hierarchy).
  /// nullptr if no library has that name.
  ReuseLibrary* library(const std::string& name);

  /// (Re)indexes every core of every library onto the CDO hierarchy and
  /// rebuilds the cumulative per-CDO subtree core index behind
  /// cores_under(). Returns the number of cores indexed; resolution
  /// problems are appended to index_warnings().
  std::size_t index_cores();

  /// Bulk-restores the core -> CDO assignment recorded by a snapshot
  /// (src/storage/snapshot.cpp) without re-deriving it: fills the forward
  /// and reverse indexes in the given order (which must be the
  /// index_cores() visit order — libraries in attach order, cores in add
  /// order), rebuilds the cumulative subtree index, and drops every cached
  /// filter plan so install_filter_plan() can repopulate them.
  void restore_index(const std::vector<std::pair<const Core*, const Cdo*>>& assignments);

  /// The cached filter plan for a CDO, or nullptr if none is built. Never
  /// builds — safe under the service's shared read lock (the snapshot
  /// writer runs there).
  const CoreFilterPlan* peek_filter_plan(const Cdo& cdo) const;

  /// Installs a snapshot-restored table as the CDO's filter plan (the
  /// predicate programs are compiled here against the current
  /// constraints). Replaces any cached plan.
  void install_filter_plan(const Cdo& cdo, CoreTable table) const;

  /// Drops every reuse library and all core indexes; the hierarchy,
  /// constraints, estimators, and domain hooks (all code) survive. The
  /// `!restore` path reloads a snapshot into the emptied layer.
  void clear_catalog();

  /// Cores indexed exactly at this CDO.
  const std::vector<const Core*>& cores_at(const Cdo& cdo) const;

  /// Cores indexed at this CDO or any descendant (the design-space region
  /// the CDO represents). Served from the cumulative subtree index built by
  /// index_cores(); the returned reference is stable until the next
  /// index_cores() call.
  const std::vector<const Core*>& cores_under(const Cdo& cdo) const;

  /// The CDO an indexed core resolved to (its most specific family);
  /// nullptr if the core was never indexed.
  const Cdo* indexed_cdo(const Core& core) const;

  const std::vector<std::string>& index_warnings() const { return index_warnings_; }

  // -- consistency constraints -----------------------------------------------

  void add_constraint(ConsistencyConstraint cc);
  const std::vector<ConsistencyConstraint>& constraints() const { return constraints_; }

  /// Constraints in scope at a CDO (the index's `all` list; the reference
  /// is stable until the next add_constraint()).
  const std::vector<const ConsistencyConstraint*>& constraints_at(const Cdo& cdo) const;

  /// Full constraint adjacency for a CDO — applicable constraints plus
  /// property-name lookups. Built lazily per CDO, invalidated by
  /// add_constraint(); new CDOs are indexed on first query.
  const ConstraintIndex& constraint_index(const Cdo& cdo) const;

  /// The columnar filter plan for a CDO: the CoreTable over
  /// cores_under(cdo) plus the compiled predicate programs (DESIGN.md
  /// §10). Built lazily, invalidated by index_cores() and
  /// add_constraint(); SharedLayer primes it before publishing an epoch.
  /// The reference is stable until the next invalidation.
  const CoreFilterPlan& filter_plan(const Cdo& cdo) const;

  // -- estimation --------------------------------------------------------------

  estimation::EstimatorRegistry& estimators() { return estimators_; }
  const estimation::EstimatorRegistry& estimators() const { return estimators_; }

  void set_context_builder(ContextBuilder builder);

  /// Builds the estimation input via the registered builder, or a generic
  /// default that reads EffectiveOperandLength / Radix / SliceWidth /
  /// FabricationTechnology / LayoutStyle bindings.
  estimation::EstimateInput build_context(const Bindings& bindings,
                                          const behavior::BehavioralDescription& bd) const;

  // -- behavioral decomposition (DI7) ---------------------------------------------

  /// Declares which CDO class implements operators of `kind` — the schema
  /// behind the paper's "FOR ALL Oper := OPERATORS(BD@*.Hardware)": during
  /// behavioral decomposition, each operator instance of a behavioral
  /// description recurses into the registered class (Section 5.1.6, the
  /// Adder/Multiplier CDOs of Fig. 10). Unregistered kinds are skipped.
  void set_operator_class(behavior::OpKind kind, std::string cdo_path);

  /// Registered class path for an operator kind; nullptr if none.
  const std::string* operator_class(behavior::OpKind kind) const;

  // -- requirement filters ------------------------------------------------------

  void set_core_filter(const std::string& requirement, CoreFilter filter);
  const CoreFilter* core_filter(const std::string& requirement) const;

  // -- integrity & documentation --------------------------------------------------

  /// Structural well-formedness checks: unspecialized generalized-issue
  /// options, constraint paths that match no CDO, estimator bindings to
  /// unknown tools. Returns human-readable findings (empty = clean).
  std::vector<std::string> validate() const;

  /// Renders the whole layer (hierarchy, properties, constraints,
  /// libraries) — the paper's "self-documented" claim made executable.
  std::string document() const;

  // -- observability ---------------------------------------------------------------

  /// Counters for the layer-side caches (constraint index, subtree core
  /// index): hits, misses, rebuilds. A view over the telemetry counters.
  QueryStats query_stats() const { return stats_view(telemetry_); }
  void reset_query_stats() const { telemetry_.reset_counters(); }

  /// The layer's telemetry hub. Layer-side events are counter-only (the
  /// subtree/constraint caches are hot and shared across sessions); attach
  /// a sink here to change that.
  telemetry::Telemetry& telemetry() const { return telemetry_; }

 private:
  /// Builds (and caches) the cumulative core list of `cdo`'s subtree.
  const std::vector<const Core*>& build_subtree_index(const Cdo& cdo) const;

  std::string name_;
  DesignSpace space_;
  std::vector<std::unique_ptr<ReuseLibrary>> libraries_;
  std::vector<ConsistencyConstraint> constraints_;
  std::set<std::string> constraint_ids_;  // duplicate-id index
  estimation::EstimatorRegistry estimators_ = estimation::EstimatorRegistry::standard();
  std::map<const Cdo*, std::vector<const Core*>> index_;
  // Reverse of index_. Hash map with an up-front reserve: at catalog scale
  // (1M cores) red-black nodes cost ~0.5 s to build and a pointer chase
  // per indexed_cdo() — measurable in both index_cores() and snapshot boot.
  std::unordered_map<const Core*, const Cdo*> core_cdo_;
  std::vector<std::string> index_warnings_;
  std::map<std::string, CoreFilter> core_filters_;
  std::map<behavior::OpKind, std::string> operator_classes_;
  ContextBuilder context_builder_;

  // Lazily filled, invalidation-aware query indexes (mutable: queries are
  // logically const). constraint_index_ is cleared by add_constraint();
  // subtree_index_ is rebuilt by index_cores() and filled on demand for
  // CDOs created after the last indexing pass.
  mutable std::map<const Cdo*, ConstraintIndex> constraint_index_;
  mutable std::map<const Cdo*, std::vector<const Core*>> subtree_index_;
  // unique_ptr: plans must stay address-stable while sessions hold the
  // reference across map growth.
  mutable std::map<const Cdo*, std::unique_ptr<CoreFilterPlan>> filter_plans_;
  mutable telemetry::Telemetry telemetry_;
};

}  // namespace dslayer::dsl
