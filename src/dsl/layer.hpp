// The design space layer.
//
// Ties together everything Fig. 1 shows: the CDO hierarchy (the implicit
// design-space representation), any number of reuse libraries indexed
// through it, the consistency constraints governing exploration, the early
// estimation tools CCs may bind, and the domain-specific hooks (core
// compliance filters, estimation context construction).
//
// Core indexing (Section 4): a core enters at the CDO named by its class
// path and descends the generalization hierarchy as far as its bindings
// answer the generalized issues — ending at the most specific family of
// design alternatives it belongs to. Cores whose class path or option
// bindings do not resolve are reported, not silently dropped.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dsl/cdo.hpp"
#include "dsl/constraint.hpp"
#include "dsl/core_library.hpp"
#include "estimation/estimators.hpp"

namespace dslayer::dsl {

class DesignSpaceLayer {
 public:
  /// Compliance predicate for one requirement: does `core` satisfy the
  /// requirement given the full session bindings? Registered by domain
  /// layers for rules too rich for the declarative Compliance enum (e.g.
  /// "latency of a composed multiplier at the required EOL").
  using CoreFilter = std::function<bool(const Core&, const Bindings&)>;

  /// Builds the estimation input for a behavioral description from the
  /// session bindings (maps option strings to technology models etc.).
  using ContextBuilder =
      std::function<estimation::EstimateInput(const Bindings&, const behavior::BehavioralDescription&)>;

  explicit DesignSpaceLayer(std::string name);

  const std::string& name() const { return name_; }

  DesignSpace& space() { return space_; }
  const DesignSpace& space() const { return space_; }

  // -- reuse libraries ------------------------------------------------------

  /// Creates and attaches a new (owned) reuse library.
  ReuseLibrary& add_library(std::string name);

  std::vector<const ReuseLibrary*> libraries() const;

  /// Mutable access to an attached library (IP-provider catalog updates:
  /// new cores are added and re-indexed without touching the hierarchy).
  /// nullptr if no library has that name.
  ReuseLibrary* library(const std::string& name);

  /// (Re)indexes every core of every library onto the CDO hierarchy.
  /// Returns the number of cores indexed; resolution problems are appended
  /// to index_warnings().
  std::size_t index_cores();

  /// Cores indexed exactly at this CDO.
  std::vector<const Core*> cores_at(const Cdo& cdo) const;

  /// Cores indexed at this CDO or any descendant (the design-space region
  /// the CDO represents).
  std::vector<const Core*> cores_under(const Cdo& cdo) const;

  const std::vector<std::string>& index_warnings() const { return index_warnings_; }

  // -- consistency constraints -----------------------------------------------

  void add_constraint(ConsistencyConstraint cc);
  const std::vector<ConsistencyConstraint>& constraints() const { return constraints_; }

  /// Constraints in scope at a CDO.
  std::vector<const ConsistencyConstraint*> constraints_at(const Cdo& cdo) const;

  // -- estimation --------------------------------------------------------------

  estimation::EstimatorRegistry& estimators() { return estimators_; }
  const estimation::EstimatorRegistry& estimators() const { return estimators_; }

  void set_context_builder(ContextBuilder builder);

  /// Builds the estimation input via the registered builder, or a generic
  /// default that reads EffectiveOperandLength / Radix / SliceWidth /
  /// FabricationTechnology / LayoutStyle bindings.
  estimation::EstimateInput build_context(const Bindings& bindings,
                                          const behavior::BehavioralDescription& bd) const;

  // -- behavioral decomposition (DI7) ---------------------------------------------

  /// Declares which CDO class implements operators of `kind` — the schema
  /// behind the paper's "FOR ALL Oper := OPERATORS(BD@*.Hardware)": during
  /// behavioral decomposition, each operator instance of a behavioral
  /// description recurses into the registered class (Section 5.1.6, the
  /// Adder/Multiplier CDOs of Fig. 10). Unregistered kinds are skipped.
  void set_operator_class(behavior::OpKind kind, std::string cdo_path);

  /// Registered class path for an operator kind; nullptr if none.
  const std::string* operator_class(behavior::OpKind kind) const;

  // -- requirement filters ------------------------------------------------------

  void set_core_filter(const std::string& requirement, CoreFilter filter);
  const CoreFilter* core_filter(const std::string& requirement) const;

  // -- integrity & documentation --------------------------------------------------

  /// Structural well-formedness checks: unspecialized generalized-issue
  /// options, constraint paths that match no CDO, estimator bindings to
  /// unknown tools. Returns human-readable findings (empty = clean).
  std::vector<std::string> validate() const;

  /// Renders the whole layer (hierarchy, properties, constraints,
  /// libraries) — the paper's "self-documented" claim made executable.
  std::string document() const;

 private:
  std::string name_;
  DesignSpace space_;
  std::vector<std::unique_ptr<ReuseLibrary>> libraries_;
  std::vector<ConsistencyConstraint> constraints_;
  estimation::EstimatorRegistry estimators_ = estimation::EstimatorRegistry::standard();
  std::map<const Cdo*, std::vector<const Core*>> index_;
  std::vector<std::string> index_warnings_;
  std::map<std::string, CoreFilter> core_filters_;
  std::map<behavior::OpKind, std::string> operator_classes_;
  ContextBuilder context_builder_;
};

}  // namespace dslayer::dsl
