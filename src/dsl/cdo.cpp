#include "dsl/cdo.hpp"

#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

Cdo::Cdo(std::string name, Cdo* parent, std::string doc)
    : name_(std::move(name)), doc_(std::move(doc)), parent_(parent) {
  if (name_.empty()) throw DefinitionError("CDO name must not be empty");
  if (name_.find('.') != std::string::npos || name_.find('@') != std::string::npos ||
      name_.find('*') != std::string::npos) {
    throw DefinitionError(cat("CDO name '", name_, "' must not contain '.', '@' or '*'"));
  }
}

std::string Cdo::path() const {
  if (parent_ == nullptr) return name_;
  return cat(parent_->path(), ".", name_);
}

unsigned Cdo::depth() const {
  unsigned d = 0;
  for (const Cdo* c = parent_; c != nullptr; c = c->parent_) ++d;
  return d;
}

void Cdo::add_property(Property property) {
  if (property.name.empty()) throw DefinitionError("property name must not be empty");
  if (find_property(property.name) != nullptr) {
    throw DefinitionError(
        cat("property '", property.name, "' already visible at CDO '", path(), "'"));
  }
  if (property.generalized) {
    if (property.kind != PropertyKind::kDesignIssue) {
      throw DefinitionError("only design issues can be generalized");
    }
    if (generalized_issue() != nullptr) {
      throw DefinitionError(cat("CDO '", path(), "' already has the generalized issue '",
                                generalized_issue()->name,
                                "' — a CDO may contain at most one"));
    }
    if (property.domain.kind() != ValueDomain::Kind::kOptions) {
      throw DefinitionError("a generalized issue needs an enumerated option domain");
    }
  }
  properties_.push_back(std::move(property));
}

const Property* Cdo::find_property(const std::string& name) const {
  for (const Cdo* c = this; c != nullptr; c = c->parent_) {
    for (const Property& p : c->properties_) {
      if (p.name == name) return &p;
    }
  }
  return nullptr;
}

const Cdo* Cdo::property_owner(const std::string& name) const {
  for (const Cdo* c = this; c != nullptr; c = c->parent_) {
    for (const Property& p : c->properties_) {
      if (p.name == name) return c;
    }
  }
  return nullptr;
}

std::vector<const Property*> Cdo::visible_properties() const {
  // Root-first so more general context reads first in reports.
  std::vector<const Cdo*> chain;
  for (const Cdo* c = this; c != nullptr; c = c->parent_) chain.push_back(c);
  std::vector<const Property*> out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const Property& p : (*it)->properties_) out.push_back(&p);
  }
  return out;
}

const Property* Cdo::generalized_issue() const {
  for (const Property& p : properties_) {
    if (p.generalized) return &p;
  }
  return nullptr;
}

Cdo& Cdo::specialize(const std::string& option, std::string name, std::string doc) {
  const Property* issue = generalized_issue();
  if (issue == nullptr) {
    throw DefinitionError(
        cat("CDO '", path(), "' has no generalized issue — cannot specialize"));
  }
  if (!issue->domain.has_option(option)) {
    throw DefinitionError(cat("'", option, "' is not an option of generalized issue '",
                              issue->name, "' at CDO '", path(), "'"));
  }
  if (child_by_option_.contains(option)) {
    throw DefinitionError(cat("option '", option, "' of CDO '", path(),
                              "' is already specialized"));
  }
  if (name.empty()) name = option;
  children_.push_back(std::make_unique<Cdo>(std::move(name), this, std::move(doc)));
  Cdo* child = children_.back().get();
  child->option_ = option;
  child_by_option_[option] = child;
  return *child;
}

Cdo* Cdo::child_for_option(const std::string& option) {
  const auto it = child_by_option_.find(option);
  return it == child_by_option_.end() ? nullptr : it->second;
}

const Cdo* Cdo::child_for_option(const std::string& option) const {
  const auto it = child_by_option_.find(option);
  return it == child_by_option_.end() ? nullptr : it->second;
}

std::vector<Cdo*> Cdo::children() {
  std::vector<Cdo*> out;
  out.reserve(children_.size());
  for (const auto& c : children_) out.push_back(c.get());
  return out;
}

std::vector<const Cdo*> Cdo::children() const {
  std::vector<const Cdo*> out;
  out.reserve(children_.size());
  for (const auto& c : children_) out.push_back(c.get());
  return out;
}

std::vector<const Cdo*> Cdo::subtree() const {
  std::vector<const Cdo*> out;
  visit([&out](const Cdo& c) { out.push_back(&c); });
  return out;
}

void Cdo::add_behavior(behavior::BehavioralDescription bd) {
  for (const auto& existing : behaviors_) {
    if (existing.name() == bd.name()) {
      throw DefinitionError(
          cat("behavioral description '", bd.name(), "' already attached to '", path(), "'"));
    }
  }
  behaviors_.push_back(std::move(bd));
}

std::vector<const behavior::BehavioralDescription*> Cdo::visible_behaviors() const {
  std::vector<const behavior::BehavioralDescription*> out;
  for (const Cdo* c = this; c != nullptr; c = c->parent_) {
    for (const auto& bd : c->behaviors_) out.push_back(&bd);
  }
  return out;
}

std::string Cdo::document(bool recursive) const {
  std::ostringstream os;
  os << "CDO " << path();
  if (!option_.empty()) os << "  (specializes option '" << option_ << "')";
  os << "\n";
  if (!doc_.empty()) os << "  " << doc_ << "\n";
  for (const Property& p : properties_) {
    os << "  [" << to_string(p.kind) << (p.generalized ? ", generalized" : "") << "] " << p.name
       << "  SetOfValues=" << p.domain.describe();
    if (p.unit != Unit::kNone) os << "  Unit: " << unit_suffix(p.unit);
    if (p.default_value.has_value()) os << "  Default: " << p.default_value->to_string();
    os << "\n";
    if (!p.doc.empty()) os << "      " << p.doc << "\n";
  }
  for (const auto& bd : behaviors_) {
    os << "  [behavioral description] " << bd.name() << "\n";
  }
  if (recursive) {
    for (const auto& c : children_) os << c->document(true);
  }
  return os.str();
}

Cdo& DesignSpace::add_root(std::string name, std::string doc) {
  for (const auto& r : roots_) {
    if (r->name() == name) throw DefinitionError(cat("root CDO '", name, "' already exists"));
  }
  roots_.push_back(std::make_unique<Cdo>(std::move(name), nullptr, std::move(doc)));
  return *roots_.back();
}

std::vector<Cdo*> DesignSpace::roots() {
  std::vector<Cdo*> out;
  for (const auto& r : roots_) out.push_back(r.get());
  return out;
}

std::vector<const Cdo*> DesignSpace::roots() const {
  std::vector<const Cdo*> out;
  for (const auto& r : roots_) out.push_back(r.get());
  return out;
}

namespace {

Cdo* find_in(Cdo* node, const std::vector<std::string>& segments, std::size_t index) {
  if (index == segments.size()) return node;
  for (Cdo* child : node->children()) {
    if (child->name() == segments[index]) return find_in(child, segments, index + 1);
  }
  return nullptr;
}

}  // namespace

Cdo* DesignSpace::find(const std::string& path) {
  const std::vector<std::string> segments = split(path, '.');
  if (segments.empty()) return nullptr;
  for (const auto& r : roots_) {
    if (r->name() == segments[0]) return find_in(r.get(), segments, 1);
  }
  return nullptr;
}

const Cdo* DesignSpace::find(const std::string& path) const {
  return const_cast<DesignSpace*>(this)->find(path);
}

std::vector<const Cdo*> DesignSpace::all() const {
  std::vector<const Cdo*> out;
  for (const auto& r : roots_) {
    r->visit([&out](const Cdo& c) { out.push_back(&c); });
  }
  return out;
}

}  // namespace dslayer::dsl
