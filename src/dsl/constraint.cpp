#include "dsl/constraint.hpp"

#include <sstream>

#include "dsl/cdo.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

std::string to_string(RelationKind k) {
  switch (k) {
    case RelationKind::kInconsistentOptions: return "InconsistentOptions";
    case RelationKind::kFormula: return "Formula";
    case RelationKind::kEstimatorBinding: return "EstimatorBinding";
    case RelationKind::kDominanceElimination: return "DominanceElimination";
  }
  return "?";
}

Value get_or_empty(const Bindings& bindings, const std::string& property) {
  const auto it = bindings.find(property);
  return it == bindings.end() ? Value{} : it->second;
}

bool compare_numbers(double lhs, PredicateAtom::Cmp cmp, double rhs) {
  switch (cmp) {
    case PredicateAtom::Cmp::kEq: return lhs == rhs;
    case PredicateAtom::Cmp::kNe: return lhs != rhs;
    case PredicateAtom::Cmp::kLt: return lhs < rhs;
    case PredicateAtom::Cmp::kLe: return lhs <= rhs;
    case PredicateAtom::Cmp::kGt: return lhs > rhs;
    case PredicateAtom::Cmp::kGe: return lhs >= rhs;
  }
  return false;
}

PredicateAtom PredicateAtom::equals(std::string property, Value constant) {
  PredicateAtom a;
  a.lhs = std::move(property);
  a.cmp = Cmp::kEq;
  a.rhs_const = std::move(constant);
  return a;
}

PredicateAtom PredicateAtom::not_equals(std::string property, Value constant) {
  PredicateAtom a = equals(std::move(property), std::move(constant));
  a.cmp = Cmp::kNe;
  return a;
}

PredicateAtom PredicateAtom::compares(std::string property, Cmp cmp, double constant) {
  PredicateAtom a;
  a.lhs = std::move(property);
  a.cmp = cmp;
  a.rhs_const = Value::number(constant);
  return a;
}

PredicateAtom PredicateAtom::product(std::string a, std::string b, Cmp cmp,
                                     std::string rhs_property) {
  PredicateAtom atom;
  atom.lhs = std::move(a);
  atom.lhs_factor = std::move(b);
  atom.cmp = cmp;
  atom.rhs_property = std::move(rhs_property);
  return atom;
}

bool PredicateAtom::holds(const Bindings& bindings) const {
  const Value lhs_value = get_or_empty(bindings, lhs);
  const Value rhs_value = rhs_property.empty() ? rhs_const : get_or_empty(bindings, rhs_property);
  if (!lhs_factor.empty()) {
    const Value factor = get_or_empty(bindings, lhs_factor);
    if (lhs_value.kind() != Value::Kind::kNumber || factor.kind() != Value::Kind::kNumber ||
        rhs_value.kind() != Value::Kind::kNumber) {
      return false;
    }
    return compare_numbers(lhs_value.as_number() * factor.as_number(), cmp, rhs_value.as_number());
  }
  if (lhs_value.kind() == Value::Kind::kNumber && rhs_value.kind() == Value::Kind::kNumber) {
    return compare_numbers(lhs_value.as_number(), cmp, rhs_value.as_number());
  }
  if (lhs_value.kind() == Value::Kind::kText && rhs_value.kind() == Value::Kind::kText) {
    if (cmp == Cmp::kEq) return lhs_value.as_text() == rhs_value.as_text();
    if (cmp == Cmp::kNe) return lhs_value.as_text() != rhs_value.as_text();
    return false;
  }
  if (lhs_value.kind() == Value::Kind::kFlag && rhs_value.kind() == Value::Kind::kFlag) {
    if (cmp == Cmp::kEq) return lhs_value.as_flag() == rhs_value.as_flag();
    if (cmp == Cmp::kNe) return lhs_value.as_flag() != rhs_value.as_flag();
    return false;
  }
  return false;  // kind mismatch / missing value / unordered kinds
}

namespace {

void check_common(const std::string& id, const std::vector<PropertyPath>& dependent) {
  if (id.empty()) throw DefinitionError("consistency constraint needs an id");
  if (dependent.empty()) {
    throw DefinitionError(cat("constraint '", id, "' needs a non-empty dependent set"));
  }
}

}  // namespace

ConsistencyConstraint ConsistencyConstraint::inconsistent_options(
    std::string id, std::string doc, std::vector<PropertyPath> independent,
    std::vector<PropertyPath> dependent, std::function<bool(const Bindings&)> violated) {
  check_common(id, dependent);
  DSLAYER_REQUIRE(violated != nullptr, "predicate must not be null");
  ConsistencyConstraint cc;
  cc.id_ = std::move(id);
  cc.doc_ = std::move(doc);
  cc.kind_ = RelationKind::kInconsistentOptions;
  cc.independent_ = std::move(independent);
  cc.dependent_ = std::move(dependent);
  cc.violated_ = std::move(violated);
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::dominance(
    std::string id, std::string doc, std::vector<PropertyPath> independent,
    std::vector<PropertyPath> dependent, std::function<bool(const Bindings&)> violated) {
  ConsistencyConstraint cc = inconsistent_options(std::move(id), std::move(doc),
                                                  std::move(independent), std::move(dependent),
                                                  std::move(violated));
  cc.kind_ = RelationKind::kDominanceElimination;
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::inconsistent_when(std::string id, std::string doc,
                                                               std::vector<PropertyPath> independent,
                                                               std::vector<PropertyPath> dependent,
                                                               std::vector<PredicateAtom> atoms) {
  DSLAYER_REQUIRE(!atoms.empty(), "declarative predicate needs at least one atom");
  // The lambda captures a copy of the atom list (not `this`): constraints
  // are moved into the layer's storage after construction.
  ConsistencyConstraint cc = inconsistent_options(
      std::move(id), std::move(doc), std::move(independent), std::move(dependent),
      [atoms](const Bindings& bindings) {
        for (const PredicateAtom& atom : atoms) {
          if (!atom.holds(bindings)) return false;
        }
        return true;
      });
  cc.atoms_ = std::move(atoms);
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::dominance_when(std::string id, std::string doc,
                                                            std::vector<PropertyPath> independent,
                                                            std::vector<PropertyPath> dependent,
                                                            std::vector<PredicateAtom> atoms) {
  ConsistencyConstraint cc = inconsistent_when(std::move(id), std::move(doc),
                                               std::move(independent), std::move(dependent),
                                               std::move(atoms));
  cc.kind_ = RelationKind::kDominanceElimination;
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::formula(std::string id, std::string doc,
                                                     std::vector<PropertyPath> independent,
                                                     PropertyPath dependent,
                                                     std::function<Value(const Bindings&)> compute) {
  check_common(id, {dependent});
  DSLAYER_REQUIRE(compute != nullptr, "formula must not be null");
  ConsistencyConstraint cc;
  cc.id_ = std::move(id);
  cc.doc_ = std::move(doc);
  cc.kind_ = RelationKind::kFormula;
  cc.independent_ = std::move(independent);
  cc.dependent_ = {std::move(dependent)};
  cc.compute_ = std::move(compute);
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::estimator(std::string id, std::string doc,
                                                       std::vector<PropertyPath> independent,
                                                       PropertyPath dependent,
                                                       std::string estimator_name) {
  check_common(id, {dependent});
  if (estimator_name.empty()) {
    throw DefinitionError(cat("constraint '", id, "' needs an estimator tool name"));
  }
  ConsistencyConstraint cc;
  cc.id_ = std::move(id);
  cc.doc_ = std::move(doc);
  cc.kind_ = RelationKind::kEstimatorBinding;
  cc.independent_ = std::move(independent);
  cc.dependent_ = {std::move(dependent)};
  cc.estimator_name_ = std::move(estimator_name);
  return cc;
}

bool ConsistencyConstraint::applies_at(const Cdo& cdo) const {
  for (const PropertyPath& dep : dependent_) {
    bool matched = false;
    for (const Cdo* c = &cdo; c != nullptr && !matched; c = c->parent()) {
      matched = dep.matches(c->path());
    }
    if (!matched) return false;
  }
  return true;
}

bool ConsistencyConstraint::depends_on(const std::string& property) const {
  for (const PropertyPath& p : independent_) {
    if (p.property() == property) return true;
  }
  return false;
}

bool ConsistencyConstraint::constrains(const std::string& property) const {
  for (const PropertyPath& p : dependent_) {
    if (p.property() == property) return true;
  }
  return false;
}

bool ConsistencyConstraint::independents_bound(const Bindings& bindings) const {
  for (const PropertyPath& p : independent_) {
    if (get_or_empty(bindings, p.property()).empty()) return false;
  }
  return true;
}

bool ConsistencyConstraint::violated(const Bindings& bindings) const {
  DSLAYER_REQUIRE(kind_ == RelationKind::kInconsistentOptions ||
                      kind_ == RelationKind::kDominanceElimination,
                  "violated() is only defined for predicate relations");
  evaluations_.add(1);
  if (!independents_bound(bindings)) return false;
  for (const PropertyPath& p : dependent_) {
    if (get_or_empty(bindings, p.property()).empty()) return false;
  }
  return violated_(bindings);
}

Value ConsistencyConstraint::evaluate(const Bindings& bindings) const {
  DSLAYER_REQUIRE(kind_ == RelationKind::kFormula, "evaluate() is only defined for formulas");
  if (!independents_bound(bindings)) {
    throw ExplorationError(cat("constraint ", id_,
                               ": independent set not fully addressed yet"));
  }
  evaluations_.add(1);
  return compute_(bindings);
}

std::string ConsistencyConstraint::describe() const {
  std::ostringstream os;
  os << id_ << ": " << doc_ << "\n  Indep_Set={";
  for (std::size_t i = 0; i < independent_.size(); ++i) {
    os << (i ? ", " : "") << independent_[i].to_string();
  }
  os << "}\n  Dep_Set={";
  for (std::size_t i = 0; i < dependent_.size(); ++i) {
    os << (i ? ", " : "") << dependent_[i].to_string();
  }
  os << "}\n  Relation: " << to_string(kind_);
  if (kind_ == RelationKind::kEstimatorBinding) os << "(" << estimator_name_ << ")";
  os << "\n";
  return os.str();
}

}  // namespace dslayer::dsl
