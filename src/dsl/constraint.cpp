#include "dsl/constraint.hpp"

#include <sstream>

#include "dsl/cdo.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

std::string to_string(RelationKind k) {
  switch (k) {
    case RelationKind::kInconsistentOptions: return "InconsistentOptions";
    case RelationKind::kFormula: return "Formula";
    case RelationKind::kEstimatorBinding: return "EstimatorBinding";
    case RelationKind::kDominanceElimination: return "DominanceElimination";
  }
  return "?";
}

Value get_or_empty(const Bindings& bindings, const std::string& property) {
  const auto it = bindings.find(property);
  return it == bindings.end() ? Value{} : it->second;
}

namespace {

void check_common(const std::string& id, const std::vector<PropertyPath>& dependent) {
  if (id.empty()) throw DefinitionError("consistency constraint needs an id");
  if (dependent.empty()) {
    throw DefinitionError(cat("constraint '", id, "' needs a non-empty dependent set"));
  }
}

}  // namespace

ConsistencyConstraint ConsistencyConstraint::inconsistent_options(
    std::string id, std::string doc, std::vector<PropertyPath> independent,
    std::vector<PropertyPath> dependent, std::function<bool(const Bindings&)> violated) {
  check_common(id, dependent);
  DSLAYER_REQUIRE(violated != nullptr, "predicate must not be null");
  ConsistencyConstraint cc;
  cc.id_ = std::move(id);
  cc.doc_ = std::move(doc);
  cc.kind_ = RelationKind::kInconsistentOptions;
  cc.independent_ = std::move(independent);
  cc.dependent_ = std::move(dependent);
  cc.violated_ = std::move(violated);
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::dominance(
    std::string id, std::string doc, std::vector<PropertyPath> independent,
    std::vector<PropertyPath> dependent, std::function<bool(const Bindings&)> violated) {
  ConsistencyConstraint cc = inconsistent_options(std::move(id), std::move(doc),
                                                  std::move(independent), std::move(dependent),
                                                  std::move(violated));
  cc.kind_ = RelationKind::kDominanceElimination;
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::formula(std::string id, std::string doc,
                                                     std::vector<PropertyPath> independent,
                                                     PropertyPath dependent,
                                                     std::function<Value(const Bindings&)> compute) {
  check_common(id, {dependent});
  DSLAYER_REQUIRE(compute != nullptr, "formula must not be null");
  ConsistencyConstraint cc;
  cc.id_ = std::move(id);
  cc.doc_ = std::move(doc);
  cc.kind_ = RelationKind::kFormula;
  cc.independent_ = std::move(independent);
  cc.dependent_ = {std::move(dependent)};
  cc.compute_ = std::move(compute);
  return cc;
}

ConsistencyConstraint ConsistencyConstraint::estimator(std::string id, std::string doc,
                                                       std::vector<PropertyPath> independent,
                                                       PropertyPath dependent,
                                                       std::string estimator_name) {
  check_common(id, {dependent});
  if (estimator_name.empty()) {
    throw DefinitionError(cat("constraint '", id, "' needs an estimator tool name"));
  }
  ConsistencyConstraint cc;
  cc.id_ = std::move(id);
  cc.doc_ = std::move(doc);
  cc.kind_ = RelationKind::kEstimatorBinding;
  cc.independent_ = std::move(independent);
  cc.dependent_ = {std::move(dependent)};
  cc.estimator_name_ = std::move(estimator_name);
  return cc;
}

bool ConsistencyConstraint::applies_at(const Cdo& cdo) const {
  for (const PropertyPath& dep : dependent_) {
    bool matched = false;
    for (const Cdo* c = &cdo; c != nullptr && !matched; c = c->parent()) {
      matched = dep.matches(c->path());
    }
    if (!matched) return false;
  }
  return true;
}

bool ConsistencyConstraint::depends_on(const std::string& property) const {
  for (const PropertyPath& p : independent_) {
    if (p.property() == property) return true;
  }
  return false;
}

bool ConsistencyConstraint::constrains(const std::string& property) const {
  for (const PropertyPath& p : dependent_) {
    if (p.property() == property) return true;
  }
  return false;
}

bool ConsistencyConstraint::independents_bound(const Bindings& bindings) const {
  for (const PropertyPath& p : independent_) {
    if (get_or_empty(bindings, p.property()).empty()) return false;
  }
  return true;
}

bool ConsistencyConstraint::violated(const Bindings& bindings) const {
  DSLAYER_REQUIRE(kind_ == RelationKind::kInconsistentOptions ||
                      kind_ == RelationKind::kDominanceElimination,
                  "violated() is only defined for predicate relations");
  evaluations_.add(1);
  if (!independents_bound(bindings)) return false;
  for (const PropertyPath& p : dependent_) {
    if (get_or_empty(bindings, p.property()).empty()) return false;
  }
  return violated_(bindings);
}

Value ConsistencyConstraint::evaluate(const Bindings& bindings) const {
  DSLAYER_REQUIRE(kind_ == RelationKind::kFormula, "evaluate() is only defined for formulas");
  if (!independents_bound(bindings)) {
    throw ExplorationError(cat("constraint ", id_,
                               ": independent set not fully addressed yet"));
  }
  evaluations_.add(1);
  return compute_(bindings);
}

std::string ConsistencyConstraint::describe() const {
  std::ostringstream os;
  os << id_ << ": " << doc_ << "\n  Indep_Set={";
  for (std::size_t i = 0; i < independent_.size(); ++i) {
    os << (i ? ", " : "") << independent_[i].to_string();
  }
  os << "}\n  Dep_Set={";
  for (std::size_t i = 0; i < dependent_.size(); ++i) {
    os << (i ? ", " : "") << dependent_[i].to_string();
  }
  os << "}\n  Relation: " << to_string(kind_);
  if (kind_ == RelationKind::kEstimatorBinding) os << "(" << estimator_name_ << ")";
  os << "\n";
  return os.str();
}

}  // namespace dslayer::dsl
