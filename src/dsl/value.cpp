#include "dsl/value.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

double Value::as_number() const {
  const double* v = std::get_if<double>(&data_);
  if (v == nullptr) throw PreconditionError(cat("value '", to_string(), "' is not a number"));
  return *v;
}

const std::string& Value::as_text() const {
  const std::string* v = std::get_if<std::string>(&data_);
  if (v == nullptr) throw PreconditionError(cat("value '", to_string(), "' is not text"));
  return *v;
}

bool Value::as_flag() const {
  const bool* v = std::get_if<bool>(&data_);
  if (v == nullptr) throw PreconditionError(cat("value '", to_string(), "' is not a flag"));
  return *v;
}

std::string Value::to_string() const {
  switch (kind()) {
    case Kind::kEmpty: return "<empty>";
    case Kind::kNumber: return format_double(std::get<double>(data_), 10);
    case Kind::kText: return std::get<std::string>(data_);
    case Kind::kFlag: return std::get<bool>(data_) ? "true" : "false";
  }
  return "?";
}

ValueDomain ValueDomain::any() {
  ValueDomain d;
  d.kind_ = Kind::kAny;
  return d;
}

ValueDomain ValueDomain::options(std::vector<std::string> options) {
  DSLAYER_REQUIRE(!options.empty(), "an option domain needs at least one option");
  ValueDomain d;
  d.kind_ = Kind::kOptions;
  d.options_ = std::move(options);
  return d;
}

ValueDomain ValueDomain::real_range(double lo, double hi) {
  DSLAYER_REQUIRE(lo <= hi, "empty real range");
  ValueDomain d;
  d.kind_ = Kind::kRealRange;
  d.lo_ = lo;
  d.hi_ = hi;
  return d;
}

ValueDomain ValueDomain::integer_set(std::function<bool(std::int64_t)> predicate,
                                     std::string description) {
  DSLAYER_REQUIRE(predicate != nullptr, "integer set needs a predicate");
  ValueDomain d;
  d.kind_ = Kind::kIntegerSet;
  d.predicate_ = std::move(predicate);
  d.description_ = std::move(description);
  return d;
}

ValueDomain ValueDomain::positive_integers() {
  return integer_set([](std::int64_t v) { return v >= 1; }, "{ i | i in Z+ }");
}

ValueDomain ValueDomain::powers_of_two() {
  return integer_set([](std::int64_t v) { return v >= 1 && (v & (v - 1)) == 0; },
                     "{ 2^i | i in Z, i >= 0 }");
}

ValueDomain ValueDomain::flags() {
  ValueDomain d;
  d.kind_ = Kind::kFlag;
  return d;
}

bool ValueDomain::contains(const Value& v) const {
  if (v.empty()) return false;
  switch (kind_) {
    case Kind::kAny:
      return true;
    case Kind::kOptions:
      return v.kind() == Value::Kind::kText && has_option(v.as_text());
    case Kind::kRealRange:
      return v.kind() == Value::Kind::kNumber && v.as_number() >= lo_ && v.as_number() <= hi_;
    case Kind::kIntegerSet: {
      if (v.kind() != Value::Kind::kNumber) return false;
      const double d = v.as_number();
      if (std::floor(d) != d || std::abs(d) > 9.0e15) return false;
      return predicate_(static_cast<std::int64_t>(d));
    }
    case Kind::kFlag:
      return v.kind() == Value::Kind::kFlag;
  }
  return false;
}

const std::vector<std::string>& ValueDomain::option_list() const {
  DSLAYER_REQUIRE(kind_ == Kind::kOptions, "not an option domain");
  return options_;
}

double ValueDomain::real_lo() const {
  DSLAYER_REQUIRE(kind_ == Kind::kRealRange, "not a real-range domain");
  return lo_;
}

double ValueDomain::real_hi() const {
  DSLAYER_REQUIRE(kind_ == Kind::kRealRange, "not a real-range domain");
  return hi_;
}

bool ValueDomain::has_option(const std::string& option) const {
  DSLAYER_REQUIRE(kind_ == Kind::kOptions, "not an option domain");
  for (const std::string& o : options_) {
    if (o == option) return true;
  }
  return false;
}

std::string ValueDomain::describe() const {
  switch (kind_) {
    case Kind::kAny: return "<any>";
    case Kind::kOptions: return cat("{", join(options_, ", "), "}");
    case Kind::kRealRange: {
      const bool open_lo = lo_ == -std::numeric_limits<double>::infinity();
      const bool open_hi = hi_ == std::numeric_limits<double>::infinity();
      return cat("[", open_lo ? "-inf" : format_double(lo_), ", ",
                 open_hi ? "+inf" : format_double(hi_), "]");
    }
    case Kind::kIntegerSet: return description_;
    case Kind::kFlag: return "{true, false}";
  }
  return "?";
}

}  // namespace dslayer::dsl
