#include "dsl/path.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::dsl {

PropertyPath PropertyPath::parse(const std::string& text) {
  const std::vector<std::string> parts = split(text, '@');
  if (parts.size() > 2 || parts[0].empty()) {
    throw DefinitionError(cat("malformed property path '", text, "'"));
  }
  return PropertyPath(std::string(trim(parts[0])),
                      parts.size() == 2 ? std::string(trim(parts[1])) : "");
}

PropertyPath::PropertyPath(std::string property, std::string pattern)
    : property_(std::move(property)), pattern_(std::move(pattern)) {
  if (property_.empty()) throw DefinitionError("property path needs a property name");
  property_symbol_ = support::intern_symbol(property_);
}

bool match_segments(const std::vector<std::string>& pattern,
                    const std::vector<std::string>& path) {
  // Dynamic programming over (pattern index, path index).
  const std::size_t pn = pattern.size();
  const std::size_t sn = path.size();
  std::vector<std::vector<char>> match(pn + 1, std::vector<char>(sn + 1, 0));
  match[0][0] = 1;
  for (std::size_t i = 1; i <= pn; ++i) {
    if (pattern[i - 1] == "*") {
      for (std::size_t j = 0; j <= sn; ++j) {
        // '*' absorbs zero segments, or extends a previous match by one.
        match[i][j] = match[i - 1][j] || (j > 0 && match[i][j - 1]);
      }
    } else {
      for (std::size_t j = 1; j <= sn; ++j) {
        match[i][j] = match[i - 1][j - 1] && pattern[i - 1] == path[j - 1];
      }
    }
  }
  return match[pn][sn] != 0;
}

bool PropertyPath::matches(const std::string& cdo_path) const {
  if (pattern_.empty()) return true;  // scoped to the CDO in scope
  const std::vector<std::string> pat = split(pattern_, '.');
  const std::vector<std::string> path = split(cdo_path, '.');
  if (match_segments(pat, path)) return true;
  // Single-name convenience: "OMM" matches any path ending in "OMM".
  if (pat.size() == 1 && pat[0] != "*" && !path.empty() && path.back() == pat[0]) return true;
  return false;
}

std::string PropertyPath::to_string() const {
  if (pattern_.empty()) return property_;
  return cat(property_, "@", pattern_);
}

}  // namespace dslayer::dsl
