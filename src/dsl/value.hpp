// Property values and value domains.
//
// Every property in the design space layer — a requirement like
// "EffectiveOperandLength = 768", a design decision like
// "Algorithm = Montgomery" — carries a value drawn from the property's
// SetOfValues (the paper's term, Fig. 8/11): an enumerated option list, a
// real range, or a predicate-constrained integer set such as
// "{2^i : i in Z+}" (Req1) or "{i in Z+ : EOL mod i = 0}" (Number of
// Slices; the EOL-dependence of that domain is enforced by a consistency
// constraint, since domains themselves are context-free).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

namespace dslayer::dsl {

/// A property value: a number, an option/text, or a flag.
class Value {
 public:
  enum class Kind { kEmpty, kNumber, kText, kFlag };

  /// Empty (unset) value.
  Value() = default;

  static Value number(double v) { return Value(v); }
  static Value text(std::string v) { return Value(std::move(v)); }
  static Value flag(bool v) { return Value(v); }

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool empty() const { return kind() == Kind::kEmpty; }

  /// Accessors throw PreconditionError on kind mismatch.
  double as_number() const;
  const std::string& as_text() const;
  bool as_flag() const;

  /// Readable rendering ("768", "Montgomery", "true", "<empty>").
  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) = default;

 private:
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(bool v) : data_(v) {}

  std::variant<std::monostate, double, std::string, bool> data_;
};

/// The set of values a property may take.
class ValueDomain {
 public:
  enum class Kind { kAny, kOptions, kRealRange, kIntegerSet, kFlag };

  /// Unconstrained.
  static ValueDomain any();

  /// Enumerated options (design-issue option lists).
  static ValueDomain options(std::vector<std::string> options);

  /// Real interval [lo, hi]; use infinities for open ends.
  static ValueDomain real_range(double lo, double hi);

  /// Integers satisfying a predicate; `description` renders the set, e.g.
  /// "{ 2^i | i in Z+ }".
  static ValueDomain integer_set(std::function<bool(std::int64_t)> predicate,
                                 std::string description);

  /// Convenience: all positive integers.
  static ValueDomain positive_integers();

  /// Convenience: positive powers of two (Req1's { 2^i }).
  static ValueDomain powers_of_two();

  /// Boolean.
  static ValueDomain flags();

  Kind kind() const { return kind_; }

  /// True if the value is a member of this domain.
  bool contains(const Value& v) const;

  /// Option list; throws PreconditionError unless kind() == kOptions.
  const std::vector<std::string>& option_list() const;

  /// Bounds of a real-range domain; throw unless kind() == kRealRange.
  double real_lo() const;
  double real_hi() const;

  /// True if `option` is one of the enumerated options (case-sensitive).
  bool has_option(const std::string& option) const;

  /// Renders the SetOfValues for the self-documented layer, e.g.
  /// "{Hardware, Software}" or "[0, 8] R+".
  std::string describe() const;

 private:
  ValueDomain() = default;

  Kind kind_ = Kind::kAny;
  std::vector<std::string> options_;
  double lo_ = 0.0;
  double hi_ = 0.0;
  std::function<bool(std::int64_t)> predicate_;
  std::string description_;
};

}  // namespace dslayer::dsl
