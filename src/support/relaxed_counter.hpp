// A relaxed atomic event counter that stays copyable.
//
// The service layer (src/service) runs many exploration sessions over one
// shared DesignSpaceLayer: the layer-side hot paths (constraint-index and
// subtree-index lookups, constraint predicate evaluations) execute under a
// SHARED reader lock, so their "how often did this happen" counters are
// bumped from several threads at once. std::atomic gives the bump
// well-defined semantics, but atomics are neither copyable nor movable —
// and these counters live inside objects that must stay movable
// (ConsistencyConstraint sits by value in a vector, Telemetry moves with
// its ExplorationSession). RelaxedCounter wraps the atomic and copies by
// snapshot.
//
// Memory ordering is relaxed throughout: the counters are monotonic event
// tallies read for observability (QueryStats, per-constraint evaluation
// counts), never used to publish other data. A copy taken while writers
// are active is a point-in-time snapshot, which is all the stats surfaces
// promise.
#pragma once

#include <atomic>
#include <cstdint>

namespace dslayer {

class RelaxedCounter {
 public:
  RelaxedCounter(std::uint64_t value = 0) noexcept : value_(value) {}
  RelaxedCounter(const RelaxedCounter& other) noexcept : value_(other.get()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) noexcept {
    value_.store(other.get(), std::memory_order_relaxed);
    return *this;
  }

  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void set(std::uint64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t get() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_;
};

}  // namespace dslayer
