#include "support/arena.hpp"

#include <algorithm>

namespace dslayer::support {

namespace {
constexpr std::size_t kMaxBlockBytes = 8 * 1024 * 1024;
}

Arena::Arena(std::size_t first_block_bytes)
    : next_block_bytes_(std::max<std::size_t>(first_block_bytes, 1024)) {}

Arena::Block& Arena::grow(std::size_t at_least) {
  // Reuse an already-retained later block when it is big enough;
  // otherwise append a fresh one (doubling, capped).
  while (current_ + 1 < blocks_.size()) {
    Block& candidate = blocks_[++current_];
    candidate.used = 0;
    if (candidate.size >= at_least) return candidate;
  }
  std::size_t size = std::max(next_block_bytes_, at_least);
  next_block_bytes_ = std::min(kMaxBlockBytes, next_block_bytes_ * 2);
  Block block;
  block.data = std::make_unique<unsigned char[]>(size);
  block.size = size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  return blocks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (blocks_.empty()) grow(std::max(bytes, next_block_bytes_));
  Block* block = &blocks_[current_];
  std::size_t offset = (block->used + align - 1) & ~(align - 1);
  if (offset + bytes > block->size) {
    block = &grow(bytes + align);
    offset = (block->used + align - 1) & ~(align - 1);
  }
  block->used = offset + bytes;
  return block->data.get() + offset;
}

void Arena::rewind(Mark m) {
  if (blocks_.empty()) return;
  current_ = std::min(m.block, blocks_.size() - 1);
  blocks_[current_].used = m.used;
}

std::size_t Arena::retained_bytes() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

Arena& Arena::scratch() {
  thread_local Arena arena;
  return arena;
}

}  // namespace dslayer::support
