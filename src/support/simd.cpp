#include "support/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define DSLAYER_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define DSLAYER_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace dslayer::support::simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels (always available; the parity oracle's anchor).

bool scalar_holds(double lhs, Cmp cmp, double rhs) {
  switch (cmp) {
    case Cmp::kEq: return lhs == rhs;
    case Cmp::kNe: return lhs != rhs;
    case Cmp::kLt: return lhs < rhs;
    case Cmp::kLe: return lhs <= rhs;
    case Cmp::kGt: return lhs > rhs;
    case Cmp::kGe: return lhs >= rhs;
  }
  return false;
}

std::uint64_t scalar_cmp_num(Lane lhs, Lane factor, bool has_factor, Cmp cmp, Lane rhs) {
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < 64; ++i) {
    double l = lhs.col != nullptr ? lhs.col[i] : lhs.broadcast;
    if (has_factor) l *= factor.col != nullptr ? factor.col[i] : factor.broadcast;
    const double r = rhs.col != nullptr ? rhs.col[i] : rhs.broadcast;
    if (scalar_holds(l, cmp, r)) bits |= std::uint64_t{1} << i;
  }
  return bits;
}

std::uint64_t scalar_eq_sym(const std::uint32_t* col, const std::uint32_t* rhs_col,
                            std::uint32_t wanted, bool negate) {
  std::uint64_t bits = 0;
  for (unsigned i = 0; i < 64; ++i) {
    const std::uint32_t r = rhs_col != nullptr ? rhs_col[i] : wanted;
    if ((col[i] == r) != negate) bits |= std::uint64_t{1} << i;
  }
  return bits;
}

constexpr KernelOps kScalarOps{Kernel::kScalar, &scalar_cmp_num, &scalar_eq_sym};

// ---------------------------------------------------------------------------
// AVX2: 4 doubles / 8 symbols per vector, 64-row block per call. Compare
// predicates use the ordered/unordered forms that reproduce C++'s scalar
// comparison semantics on NaN (ordered compares false, != true).

#if DSLAYER_SIMD_X86

#define DSLAYER_AVX2_CMP_BLOCK(NAME, IMM)                                              \
  __attribute__((target("avx2"))) std::uint64_t NAME(Lane lhs, Lane factor,            \
                                                     bool has_factor, Lane rhs) {      \
    std::uint64_t bits = 0;                                                            \
    const __m256d lhs_b = _mm256_set1_pd(lhs.broadcast);                               \
    const __m256d factor_b = _mm256_set1_pd(factor.broadcast);                         \
    const __m256d rhs_b = _mm256_set1_pd(rhs.broadcast);                               \
    for (unsigned i = 0; i < 64; i += 4) {                                             \
      __m256d l = lhs.col != nullptr ? _mm256_loadu_pd(lhs.col + i) : lhs_b;           \
      if (has_factor) {                                                                \
        const __m256d f = factor.col != nullptr ? _mm256_loadu_pd(factor.col + i)      \
                                                : factor_b;                            \
        l = _mm256_mul_pd(l, f);                                                       \
      }                                                                                \
      const __m256d r = rhs.col != nullptr ? _mm256_loadu_pd(rhs.col + i) : rhs_b;     \
      const int m = _mm256_movemask_pd(_mm256_cmp_pd(l, r, IMM));                      \
      bits |= static_cast<std::uint64_t>(static_cast<unsigned>(m)) << i;               \
    }                                                                                  \
    return bits;                                                                       \
  }

DSLAYER_AVX2_CMP_BLOCK(avx2_cmp_eq, _CMP_EQ_OQ)
DSLAYER_AVX2_CMP_BLOCK(avx2_cmp_ne, _CMP_NEQ_UQ)
DSLAYER_AVX2_CMP_BLOCK(avx2_cmp_lt, _CMP_LT_OQ)
DSLAYER_AVX2_CMP_BLOCK(avx2_cmp_le, _CMP_LE_OQ)
DSLAYER_AVX2_CMP_BLOCK(avx2_cmp_gt, _CMP_GT_OQ)
DSLAYER_AVX2_CMP_BLOCK(avx2_cmp_ge, _CMP_GE_OQ)
#undef DSLAYER_AVX2_CMP_BLOCK

std::uint64_t avx2_cmp_num(Lane lhs, Lane factor, bool has_factor, Cmp cmp, Lane rhs) {
  switch (cmp) {
    case Cmp::kEq: return avx2_cmp_eq(lhs, factor, has_factor, rhs);
    case Cmp::kNe: return avx2_cmp_ne(lhs, factor, has_factor, rhs);
    case Cmp::kLt: return avx2_cmp_lt(lhs, factor, has_factor, rhs);
    case Cmp::kLe: return avx2_cmp_le(lhs, factor, has_factor, rhs);
    case Cmp::kGt: return avx2_cmp_gt(lhs, factor, has_factor, rhs);
    case Cmp::kGe: return avx2_cmp_ge(lhs, factor, has_factor, rhs);
  }
  return 0;
}

__attribute__((target("avx2"))) std::uint64_t avx2_eq_sym(const std::uint32_t* col,
                                                          const std::uint32_t* rhs_col,
                                                          std::uint32_t wanted, bool negate) {
  std::uint64_t bits = 0;
  const __m256i wanted_v = _mm256_set1_epi32(static_cast<int>(wanted));
  for (unsigned i = 0; i < 64; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(col + i));
    const __m256i r = rhs_col != nullptr
                          ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rhs_col + i))
                          : wanted_v;
    const int m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, r)));
    bits |= static_cast<std::uint64_t>(static_cast<unsigned>(m)) << i;
  }
  return negate ? ~bits : bits;
}

constexpr KernelOps kAvx2Ops{Kernel::kAVX2, &avx2_cmp_num, &avx2_eq_sym};

#endif  // DSLAYER_SIMD_X86

// ---------------------------------------------------------------------------
// NEON (aarch64 baseline): 2 doubles / 4 symbols per vector.

#if DSLAYER_SIMD_NEON

template <typename CmpFn>
std::uint64_t neon_cmp_block(Lane lhs, Lane factor, bool has_factor, Lane rhs, CmpFn cmp_fn) {
  std::uint64_t bits = 0;
  const float64x2_t lhs_b = vdupq_n_f64(lhs.broadcast);
  const float64x2_t factor_b = vdupq_n_f64(factor.broadcast);
  const float64x2_t rhs_b = vdupq_n_f64(rhs.broadcast);
  for (unsigned i = 0; i < 64; i += 2) {
    float64x2_t l = lhs.col != nullptr ? vld1q_f64(lhs.col + i) : lhs_b;
    if (has_factor) {
      l = vmulq_f64(l, factor.col != nullptr ? vld1q_f64(factor.col + i) : factor_b);
    }
    const float64x2_t r = rhs.col != nullptr ? vld1q_f64(rhs.col + i) : rhs_b;
    const uint64x2_t m = cmp_fn(l, r);
    bits |= (vgetq_lane_u64(m, 0) & 1u) << i;
    bits |= (vgetq_lane_u64(m, 1) & 1u) << (i + 1);
  }
  return bits;
}

std::uint64_t neon_cmp_num(Lane lhs, Lane factor, bool has_factor, Cmp cmp, Lane rhs) {
  switch (cmp) {
    case Cmp::kEq:
      return neon_cmp_block(lhs, factor, has_factor, rhs,
                            [](float64x2_t a, float64x2_t b) { return vceqq_f64(a, b); });
    case Cmp::kNe:  // NaN != x is true: complement of ordered ==
      return neon_cmp_block(lhs, factor, has_factor, rhs, [](float64x2_t a, float64x2_t b) {
        return veorq_u64(vceqq_f64(a, b), vdupq_n_u64(~0ull));
      });
    case Cmp::kLt:
      return neon_cmp_block(lhs, factor, has_factor, rhs,
                            [](float64x2_t a, float64x2_t b) { return vcltq_f64(a, b); });
    case Cmp::kLe:
      return neon_cmp_block(lhs, factor, has_factor, rhs,
                            [](float64x2_t a, float64x2_t b) { return vcleq_f64(a, b); });
    case Cmp::kGt:
      return neon_cmp_block(lhs, factor, has_factor, rhs,
                            [](float64x2_t a, float64x2_t b) { return vcgtq_f64(a, b); });
    case Cmp::kGe:
      return neon_cmp_block(lhs, factor, has_factor, rhs,
                            [](float64x2_t a, float64x2_t b) { return vcgeq_f64(a, b); });
  }
  return 0;
}

std::uint64_t neon_eq_sym(const std::uint32_t* col, const std::uint32_t* rhs_col,
                          std::uint32_t wanted, bool negate) {
  std::uint64_t bits = 0;
  const uint32x4_t wanted_v = vdupq_n_u32(wanted);
  for (unsigned i = 0; i < 64; i += 4) {
    const uint32x4_t v = vld1q_u32(col + i);
    const uint32x4_t r = rhs_col != nullptr ? vld1q_u32(rhs_col + i) : wanted_v;
    const uint32x4_t m = vceqq_u32(v, r);
    bits |= static_cast<std::uint64_t>(vgetq_lane_u32(m, 0) & 1u) << i;
    bits |= static_cast<std::uint64_t>(vgetq_lane_u32(m, 1) & 1u) << (i + 1);
    bits |= static_cast<std::uint64_t>(vgetq_lane_u32(m, 2) & 1u) << (i + 2);
    bits |= static_cast<std::uint64_t>(vgetq_lane_u32(m, 3) & 1u) << (i + 3);
  }
  return negate ? ~bits : bits;
}

constexpr KernelOps kNeonOps{Kernel::kNEON, &neon_cmp_num, &neon_eq_sym};

#endif  // DSLAYER_SIMD_NEON

// ---------------------------------------------------------------------------
// Dispatch: env / set_kernel() override, else widest supported.

const KernelOps* table_for(Kernel kernel) {
  switch (kernel) {
#if DSLAYER_SIMD_X86
    case Kernel::kAVX2:
      if (__builtin_cpu_supports("avx2")) return &kAvx2Ops;
      break;
#endif
#if DSLAYER_SIMD_NEON
    case Kernel::kNEON: return &kNeonOps;
#endif
    default: break;
  }
  return &kScalarOps;
}

Kernel env_choice() {
  const char* env = std::getenv("DSLAYER_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Kernel::kScalar;
    if (std::strcmp(env, "avx2") == 0) return Kernel::kAVX2;
    if (std::strcmp(env, "neon") == 0) return Kernel::kNEON;
    // "widest", "auto", or anything else: detect below.
  }
  return widest_supported();
}

// Relaxed atomics: the choice is written from quiesced setup code and
// read (one load) at the top of every sweep.
std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const char* to_string(Kernel kernel) {
  switch (kernel) {
    case Kernel::kScalar: return "scalar";
    case Kernel::kAVX2: return "avx2";
    case Kernel::kNEON: return "neon";
  }
  return "scalar";
}

bool supported(Kernel kernel) { return table_for(kernel)->kind == kernel; }

Kernel widest_supported() {
#if DSLAYER_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Kernel::kAVX2;
#endif
#if DSLAYER_SIMD_NEON
  return Kernel::kNEON;
#endif
  return Kernel::kScalar;
}

const KernelOps& kernels() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    ops = table_for(env_choice());
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

Kernel active_kernel() { return kernels().kind; }

void set_kernel(Kernel kernel) {
  g_active.store(table_for(kernel), std::memory_order_release);
}

void reset_kernel_choice() {
  g_active.store(table_for(env_choice()), std::memory_order_release);
}

}  // namespace dslayer::support::simd
