#include "support/units.hpp"

#include "support/strings.hpp"

namespace dslayer {

std::string unit_suffix(Unit u) {
  switch (u) {
    case Unit::kNone: return "";
    case Unit::kNanoseconds: return "ns";
    case Unit::kMicroseconds: return "us";
    case Unit::kGates: return "gates";
    case Unit::kBits: return "bits";
    case Unit::kMegahertz: return "MHz";
    case Unit::kMilliwatts: return "mW";
  }
  return "?";
}

double convert(double value, Unit from, Unit to) {
  if (from == to) return value;
  if (from == Unit::kNanoseconds && to == Unit::kMicroseconds) return value / 1000.0;
  if (from == Unit::kMicroseconds && to == Unit::kNanoseconds) return value * 1000.0;
  if (from == Unit::kMegahertz && to == Unit::kNanoseconds) {
    DSLAYER_REQUIRE(value > 0.0, "frequency must be positive to convert to a period");
    return 1000.0 / value;
  }
  if (from == Unit::kNanoseconds && to == Unit::kMegahertz) {
    DSLAYER_REQUIRE(value > 0.0, "period must be positive to convert to a frequency");
    return 1000.0 / value;
  }
  throw PreconditionError(cat("no conversion from ", unit_suffix(from), " to ", unit_suffix(to)));
}

std::string to_string(const Quantity& q) {
  const std::string suffix = unit_suffix(q.unit);
  if (suffix.empty()) return format_double(q.value);
  return cat(format_double(q.value), " ", suffix);
}

}  // namespace dslayer
