// Failpoints: deterministic fault injection for the exploration service.
//
// A failpoint is a named site in production code where a test (or an
// operator chasing a bug) can make the process misbehave on purpose:
//
//   void RequestExecutor::worker_loop() {
//     ...
//     DSLAYER_FAILPOINT("service.executor.dequeue");
//     ...
//   }
//
// Disarmed — the steady state — a site costs one relaxed atomic load and
// a predicted-not-taken branch; no registry lookup, no lock, no string
// work. Armed, the site consults the process-global registry and acts by
// mode:
//
//   error       throw FailpointError (exercise the error-return paths)
//   delay       sleep a configured number of milliseconds (stalls,
//               deadline expiry, writer-epoch stalls, lock-hold windows)
//   crash-once  disarm itself, then std::abort() (crash-recovery tests;
//               "once" so a respawned process does not crash-loop)
//
// Every point keeps two counters: `hits` (times the site was evaluated
// while the registry had any point armed) and `fires` (times it acted).
// A point can be limited to N fires (`error:N`, `delay:MS:N`), after
// which it disarms itself.
//
// Arming paths:
//   * programmatic — FailpointRegistry::instance().arm(...) in tests;
//   * spec strings — arm_spec("service.session.migrate=error") /
//     ("x=delay:50") / ("x=error:3") / ("x=crash-once"), used by
//   * the DSLAYER_FAILPOINTS environment variable (comma-separated
//     specs, parsed at process start), and
//   * the `!failpoint` serve directive (src/service/batch_runner.cpp).
//
// The site catalog lives in DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace dslayer::support {

enum class FailpointMode : std::uint8_t {
  kOff,
  kError,      ///< throw FailpointError at the site
  kDelay,      ///< sleep `delay_ms` at the site
  kCrashOnce,  ///< disarm, then std::abort()
};

const char* to_string(FailpointMode mode);

class FailpointRegistry {
 public:
  struct Info {
    std::string name;
    FailpointMode mode = FailpointMode::kOff;
    double delay_ms = 0.0;
    int remaining = -1;  ///< fires left before self-disarm; -1 = unlimited
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  static FailpointRegistry& instance();

  /// Arms (or re-arms) `name`. `count` fires remain before the point
  /// disarms itself; -1 means unlimited.
  void arm(const std::string& name, FailpointMode mode, double delay_ms = 0.0, int count = -1);

  /// Parses and arms one "name=mode[:arg[:count]]" spec:
  ///   p=error   p=error:3   p=delay:50   p=delay:50:2   p=crash-once
  /// Returns false (and fills *error if given) on a malformed spec.
  bool arm_spec(std::string_view spec, std::string* error = nullptr);

  /// Arms every comma-separated spec in the environment variable; returns
  /// the number armed. Malformed specs are reported on stderr and skipped
  /// (fault injection must never take the process down by itself).
  std::size_t arm_from_env(const char* variable = "DSLAYER_FAILPOINTS");

  /// Disarms one point (counters are kept). False if never seen.
  bool disarm(const std::string& name);

  /// Disarms every point and forgets all counters.
  void reset();

  /// Snapshot of every point ever armed or hit, name order.
  std::vector<Info> list() const;

  /// Registers a site name with the declared-site catalog so operators can
  /// discover it (via list_declared() / `!failpoint list`) before it is
  /// ever armed or hit. Every in-tree DSLAYER_FAILPOINT site is
  /// pre-declared in failpoint.cpp; extensions and tests declare theirs
  /// here. Idempotent; never changes arming state or counters.
  void declare(std::string name);

  /// list() plus every declared-but-untouched site (zero counters,
  /// mode off), name order — the full site catalog, not just the points
  /// some test already exercised.
  std::vector<Info> list_declared() const;

  std::uint64_t hits(const std::string& name) const;
  std::uint64_t fires(const std::string& name) const;

  /// True while any point is armed — the only check disarmed sites pay.
  static bool active() { return active_points_.load(std::memory_order_relaxed) > 0; }

  /// Slow path behind DSLAYER_FAILPOINT: looks the site up and acts by
  /// mode. Called only while active().
  void evaluate(const char* site);

 private:
  FailpointRegistry();

  struct Point {
    FailpointMode mode = FailpointMode::kOff;
    double delay_ms = 0.0;
    int remaining = -1;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  static std::atomic<int> active_points_;

  mutable std::mutex lock_;
  std::map<std::string, Point> points_;
  std::set<std::string> declared_;
};

/// The site macro's target. Disarmed cost: one relaxed load + branch.
inline void failpoint(const char* site) {
  if (FailpointRegistry::active()) FailpointRegistry::instance().evaluate(site);
}

}  // namespace dslayer::support

/// Marks a fault-injection site. Expands to a call so it is valid in any
/// statement position; the name should be a stable dotted path
/// ("service.executor.dequeue") — it is the registry key and the wire
/// name in the `!failpoint` directive.
#define DSLAYER_FAILPOINT(site) ::dslayer::support::failpoint(site)
