// End-to-end request tracing for the exploration service.
//
// Every request entering a front end (TCP accept/parse, batch line,
// stdin serve) gets a trace: a process-unique id plus a list of typed
// spans recording where the request spent its time as it crosses layer
// boundaries — ingress (line extraction + front-end bookkeeping), parse,
// queue.wait (enqueue to dequeue inside the RequestExecutor), execute
// (the command on a worker strand), sweep (candidate-filter engines,
// nested under execute), respond (render + delivery). Span times are
// steady-clock nanoseconds relative to the trace origin, so the
// top-level chain's durations sum to approximately the client-observed
// latency.
//
// The pieces:
//
//   * Trace — one request's spans. Span mutation is guarded by a tiny
//     per-trace mutex: stages are serialized by the executor's queue
//     handoff, so the lock is uncontended; it exists so chunk-parallel
//     sweep lanes and TSan agree about the rare concurrent touch.
//   * TraceScope — RAII installer of the CURRENT thread's trace (a
//     thread_local, exactly like support::DeadlineScope). Deep
//     instrumentation sites (the sweep engines) consult
//     TraceScope::current(): one thread-local load and a branch when no
//     trace is installed, which is the whole cost tracing adds to an
//     unsampled request's hot path.
//   * SpanTimer — null-safe RAII span on a given trace.
//   * Tracer — the process-global hub: assigns ids, makes the sampling
//     decision (deterministic hash of seed ^ id, default 1-in-64,
//     --trace-sample), retains completed sampled traces in bounded
//     per-thread rings (one uncontended mutex op per completed trace),
//     and owns the slow-request flight recorder.
//
// Sampling vs the flight recorder: a trace object is created for EVERY
// request while the tracer is enabled, because "was this request slow?"
// is only known at the end. The coarse front-end/executor spans
// (ingress, parse, queue.wait, execute, respond — a handful per
// request) are always recorded on it; only the deep sweep spans are
// gated on the sampling decision (the worker installs a TraceScope only
// for sampled traces). Requests whose total latency reaches
// slow_request_ms are dumped to the flight recorder REGARDLESS of
// sampling, so p99 offenders are always explained — run --trace-sample 1
// to capture sweep detail for all of them.
//
// Joining with telemetry: a trace records the front end's request id and
// session, the same pair the protocol layer prints in `== <id> <session>`
// headers and the session journal keys its events by, so a flight record
// can be lined up with the telemetry journal for the same request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dslayer::trace {

/// The typed span vocabulary. Order is part of the JSONL wire format
/// only through to_string(); new kinds append.
enum class SpanKind : std::uint8_t {
  kIngress,    ///< front end: line extraction + bookkeeping ("ingress")
  kParse,      ///< protocol parse ("parse"), child of ingress
  kQueueWait,  ///< executor enqueue -> dequeue ("queue.wait")
  kExecute,    ///< command execution on a worker strand ("execute")
  kSweep,      ///< candidate-filter engine pass ("sweep"), child of execute
  kRespond,    ///< render + delivery ("respond")
};

inline constexpr std::size_t kSpanKindCount = 6;

/// Stable wire name ("ingress", "queue.wait", ...).
const char* to_string(SpanKind kind);

/// Sentinel parent index for top-level spans.
inline constexpr std::uint32_t kNoParent = 0xFFFFFFFFu;

struct Span {
  SpanKind kind = SpanKind::kIngress;
  std::uint32_t parent = kNoParent;  ///< index into the trace's span list
  std::uint64_t start_ns = 0;        ///< relative to the trace origin
  std::uint64_t duration_ns = 0;
  bool open = false;  ///< close_span not yet called (finish() force-closes)
  std::string detail;
};

/// One request's spans. Created by Tracer::start(), carried through the
/// service on the Request, finished exactly once by the front end that
/// delivered the response.
class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  Trace(std::uint64_t id, bool sampled, std::string session, std::uint64_t request_id,
        Clock::time_point origin);

  std::uint64_t id() const { return id_; }
  bool sampled() const { return sampled_; }
  const std::string& session() const { return session_; }
  std::uint64_t request_id() const { return request_id_; }
  Clock::time_point origin() const { return origin_; }

  /// Opens a span starting now (or at `start`); children opened before
  /// close_span() nest under it. Returns the span's index.
  std::uint32_t open_span(SpanKind kind, std::string detail = {});
  std::uint32_t open_span_at(SpanKind kind, Clock::time_point start, std::string detail = {});

  /// Closes span `index` at now. No-op if already closed or finished.
  void close_span(std::uint32_t index);

  /// Records a fully-formed span retroactively (e.g. queue.wait, whose
  /// bounds are the executor's enqueue/dequeue stamps). Does not affect
  /// the open-span nesting stack.
  std::uint32_t add_span(SpanKind kind, Clock::time_point start, Clock::time_point end,
                         std::uint32_t parent = kNoParent, std::string detail = {});

  /// Called by ChunkPool helper lanes that ran a sweep chunk under this
  /// trace — thread-safe (relaxed atomic); shows up as "pool_chunks".
  void note_pool_chunk() { pool_chunks_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t pool_chunks() const { return pool_chunks_.load(std::memory_order_relaxed); }

  /// Snapshot copies (exposition and tests).
  std::vector<Span> spans() const;

  /// Set by Tracer::finish(); 0 / false before.
  double total_ms() const;
  bool finished() const;

 private:
  friend class Tracer;

  std::uint64_t to_rel_ns(Clock::time_point tp) const;
  void finish_locked(Clock::time_point now);  // closes open spans, stamps total

  const std::uint64_t id_;
  const bool sampled_;
  const std::string session_;
  const std::uint64_t request_id_;
  const Clock::time_point origin_;

  mutable std::mutex lock_;
  std::vector<Span> spans_;
  std::vector<std::uint32_t> open_stack_;
  double total_ms_ = 0.0;
  bool finished_ = false;
  std::atomic<std::uint64_t> pool_chunks_{0};
};

/// Installs `trace` (may be null) as the current thread's trace for the
/// scope, restoring the previous one on exit. Installing null suppresses
/// any outer trace — mirrors DeadlineScope's suppression semantics.
class TraceScope {
 public:
  explicit TraceScope(Trace* trace);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The trace installed on this thread; null when none. One
  /// thread-local load — the only cost an untraced hot path pays.
  static Trace* current();

 private:
  Trace* previous_;
};

/// RAII span on `trace`; a null trace makes it a no-op.
class SpanTimer {
 public:
  SpanTimer(Trace* trace, SpanKind kind, std::string detail = {});
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  Trace* trace_;
  std::uint32_t index_ = 0;
};

struct TracerConfig {
  /// Sampling period: 1-in-N traces keep sweep detail and land in the
  /// retention rings; 1 = every request, 0 = tracing off entirely (no
  /// trace objects are created). The front-end default is 64
  /// (--trace-sample).
  std::uint32_t sample_every = 64;
  /// Seed of the deterministic sampling hash (--trace-seed): the same
  /// seed and id sequence always pick the same traces.
  std::uint64_t seed = 0x7ace5eedULL;
  /// Requests slower than this flight-record on finish; 0 disables the
  /// flight recorder (--slow-request-ms).
  double slow_request_ms = 0.0;
  /// Bound on retained flight records: the in-memory deque keeps the
  /// most recent N; the JSONL file stops after N records (with one
  /// truncation notice). Both drops count in stats().flight_dropped.
  std::size_t flight_capacity = 256;
  /// Optional JSONL file for flight records (--flight-recorder PATH).
  std::string flight_path;
  /// Completed sampled traces retained per thread ring.
  std::size_t ring_capacity = 128;
};

struct TracerStats {
  std::uint64_t started = 0;         ///< traces created
  std::uint64_t sampled = 0;         ///< traces that won the sampling draw
  std::uint64_t finished = 0;        ///< finish() calls
  std::uint64_t slow = 0;            ///< finished over slow_request_ms
  std::uint64_t flight_records = 0;  ///< flight records retained (memory)
  std::uint64_t flight_dropped = 0;  ///< flight records dropped at capacity
  std::uint64_t ring_dropped = 0;    ///< sampled traces evicted from rings
};

/// Process-global tracing hub. Disabled until configure()d with a
/// nonzero sample_every or slow_request_ms; enabled() is one relaxed
/// load, which is all a cold front end pays per line.
class Tracer {
 public:
  static Tracer& instance();

  /// Installs `config` and (re)opens the flight file if a path is set.
  /// Does not clear retention or counters — reset() does.
  void configure(const TracerConfig& config);
  TracerConfig config() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The deterministic sampling decision, exposed so tests can pin it:
  /// SplitMix64(seed ^ id) % every == 0 (every == 0 never samples).
  static bool sample_decision(std::uint64_t seed, std::uint64_t trace_id, std::uint32_t every);

  /// Starts a trace for one request (null when disabled): assigns the
  /// next id, draws the sampling decision, stamps `origin` as time zero.
  std::shared_ptr<Trace> start(std::string session, std::uint64_t request_id,
                               Trace::Clock::time_point origin);

  /// Finishes a trace exactly once: force-closes open spans, stamps the
  /// total, retains sampled traces in this thread's ring, and
  /// flight-records slow ones regardless of sampling. Null-safe and
  /// idempotent.
  void finish(const std::shared_ptr<Trace>& trace);

  /// Oldest-first snapshot of every ring's retained traces.
  std::vector<std::shared_ptr<const Trace>> recent() const;

  /// The in-memory flight records (rendered JSONL lines), oldest first.
  std::vector<std::string> flight_records() const;

  TracerStats stats() const;

  /// Disables tracing and clears retention, flight records, and
  /// counters (the id counter keeps running so ids stay unique).
  /// Test-and-operator reset; in-flight traces finish harmlessly.
  void reset();

 private:
  struct Ring {
    std::mutex lock;
    std::deque<std::shared_ptr<const Trace>> traces;
  };

  Tracer() = default;
  Ring& local_ring();

  mutable std::mutex config_lock_;
  TracerConfig config_{.sample_every = 0};  // disabled until configured
  std::unique_ptr<std::ofstream> flight_file_;
  std::uint64_t flight_file_records_ = 0;
  bool flight_file_truncated_ = false;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{0};

  std::atomic<std::uint64_t> started_{0}, sampled_{0}, finished_{0}, slow_{0};

  mutable std::mutex rings_lock_;
  std::vector<std::shared_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> ring_dropped_{0};

  mutable std::mutex flight_lock_;
  std::deque<std::string> flight_;
  std::uint64_t flight_total_ = 0;
  std::uint64_t flight_dropped_ = 0;
};

/// Renders a finished trace as one JSON line (no trailing newline):
/// {"trace":7,"request":3,"session":"s1","sampled":true,"total_ms":12.5,
///  "pool_chunks":0,"spans":[{"kind":"ingress","parent":-1,"start_us":0,
///  "dur_us":3.1,"detail":""},...]}
std::string to_jsonl(const Trace& trace);

}  // namespace dslayer::trace
