// A small fixed pool of helper threads for data-parallel chunk sweeps.
//
// The columnar filter kernels (dsl/core_table) split a core table into
// 64-row-aligned chunks and evaluate one compiled predicate over all
// chunks; because chunks never share a bitmask word, workers write
// disjoint memory and no per-row synchronization is needed. This pool is
// the execution backend: for_each_chunk(n, fn) runs fn(0..n-1) across the
// helpers with the calling thread participating, and returns when every
// chunk is done.
//
// One sweep runs at a time per pool. A caller that finds the pool busy
// (or that has nothing to gain: one chunk, zero helpers) just runs its
// chunks inline — the sweep, not the chunk, is the unit of backpressure,
// and inline execution is always correct because chunks are independent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dslayer::trace {
class Trace;
}  // namespace dslayer::trace

namespace dslayer::support {

class ChunkPool {
 public:
  /// Spawns `threads` helper workers (0 is legal: every sweep runs inline).
  explicit ChunkPool(std::size_t threads);
  ~ChunkPool();

  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;

  std::size_t threads() const { return workers_.size(); }

  /// Runs fn(i) exactly once for every i in [0, chunks), on the helpers
  /// and the calling thread; returns after the last chunk completes. fn
  /// must be safe to call concurrently for distinct i.
  ///
  /// The calling thread's trace (trace::TraceScope::current()) is
  /// re-installed on each helper lane for the duration of its chunks, so
  /// a sampled request's identity follows the sweep across threads; each
  /// helper-run chunk also bumps the trace's pool_chunks counter.
  void for_each_chunk(std::size_t chunks, const std::function<void(std::size_t)>& fn);

  /// The process-wide pool the filter kernels share: hardware_concurrency
  /// minus one helper (the caller is the missing lane), at least one so
  /// the parallel code path is exercised even on single-core hosts.
  static ChunkPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable sweep_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // non-null while a sweep runs
  trace::Trace* trace_ = nullptr;  // submitting thread's trace for the current sweep
  std::size_t next_ = 0;       // next unclaimed chunk
  std::size_t total_ = 0;      // chunks in the current sweep
  std::size_t in_flight_ = 0;  // chunks claimed but not finished
  bool stopping_ = false;

  std::mutex submit_lock_;  // serializes sweeps; busy => caller runs inline
  std::vector<std::thread> workers_;
};

}  // namespace dslayer::support
