// Portable SIMD word-kernels for the columnar predicate sweeps.
//
// The columnar filter engine (dsl/core_table, DESIGN.md §14) evaluates
// predicates over structure-of-arrays columns in 64-row blocks — one
// survivor-bitmask word at a time. This module supplies the per-block
// compare kernels behind a small dispatch table so the engine never
// mentions an ISA:
//
//   * cmp_num  — (lhs [* factor]) <cmp> rhs over 64 doubles, each operand
//     either a column stream or a broadcast constant, returning one bit
//     per row. NaN semantics match dsl::compare_numbers exactly (ordered
//     compares are false on NaN, != is true), so a vectorized sweep and
//     the scalar interpreter agree bit for bit.
//   * eq_sym   — interned-symbol equality/inequality over 64 u32 lanes
//     (column vs constant or column vs column).
//
// Dispatch: kernels() picks the widest ISA the CPU supports at first use
// — AVX2 on x86-64, NEON on aarch64, scalar everywhere else — unless the
// DSLAYER_SIMD environment variable (scalar|avx2|neon|widest|auto) or
// set_kernel() forces a choice. Forcing an unsupported ISA silently
// falls back to scalar: the forced-kernel CI runs compare survivors, so
// a fallback can never hide a divergence, only a lost speedup.
//
// Column streams must be readable for the full 64-lane block: CoreTable
// pads every column payload to a whole number of 64-row words, so the
// kernels never branch on a tail (callers mask tail bits instead).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dslayer::support::simd {

enum class Kernel : std::uint8_t { kScalar, kAVX2, kNEON };

const char* to_string(Kernel kernel);

/// Comparison opcodes, numerically identical to dsl::PredicateAtom::Cmp
/// (the dsl layer static_asserts the correspondence).
enum class Cmp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// One operand stream for a 64-row block: a column pointer (64 readable
/// doubles) or, when `col` is null, a constant broadcast to every lane.
struct Lane {
  const double* col = nullptr;
  double broadcast = 0.0;
};

/// The per-block kernel table. `cmp_num` returns bit i set iff
/// (lhs_i [* factor_i]) <cmp> rhs_i holds for row i; `eq_sym` returns
/// bit i set iff col[i] == wanted (flipped when negate), with `rhs_col`
/// (when non-null) replacing the constant per lane.
struct KernelOps {
  Kernel kind = Kernel::kScalar;
  std::uint64_t (*cmp_num)(Lane lhs, Lane factor, bool has_factor, Cmp cmp, Lane rhs) = nullptr;
  std::uint64_t (*eq_sym)(const std::uint32_t* col, const std::uint32_t* rhs_col,
                          std::uint32_t wanted, bool negate) = nullptr;
};

/// The active kernel table (env- or set_kernel()-forced, else widest
/// supported). The returned reference is process-global and immutable
/// between set_kernel() calls.
const KernelOps& kernels();

/// The ISA the active table actually uses.
Kernel active_kernel();

/// Widest ISA this CPU supports.
Kernel widest_supported();

/// True if `kernel` can run on this CPU.
bool supported(Kernel kernel);

/// Forces the kernel choice (tests/benches; unsupported ISAs fall back
/// to scalar). Not thread-safe against concurrent sweeps — flip it only
/// from quiesced test/bench setup code, like columnar_parallel_threshold.
void set_kernel(Kernel kernel);

/// Re-reads DSLAYER_SIMD and clears any set_kernel() override (tests).
void reset_kernel_choice();

}  // namespace dslayer::support::simd
