#include "support/cancel.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::support {

namespace {

struct ThreadDeadline {
  Deadline deadline;
  std::uint32_t stride = 0;  ///< calls since the last clock read
};

thread_local ThreadDeadline tl_deadline;

}  // namespace

Deadline current_deadline() { return tl_deadline.deadline; }

DeadlineScope::DeadlineScope(Deadline deadline) : previous_(tl_deadline.deadline) {
  tl_deadline.deadline = deadline;
  tl_deadline.stride = 0;
}

DeadlineScope::~DeadlineScope() {
  tl_deadline.deadline = previous_;
  tl_deadline.stride = 0;
}

void cancellation_checkpoint() {
  ThreadDeadline& tl = tl_deadline;
  if (!tl.deadline.set()) return;
  if (tl.stride++ % kCheckpointStride != 0) return;
  if (tl.deadline.expired()) {
    throw DeadlineExceeded("deadline exceeded (cancelled at a checkpoint)");
  }
}

bool cancellation_requested() { return tl_deadline.deadline.expired(); }

}  // namespace dslayer::support
