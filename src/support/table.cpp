#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/error.hpp"

namespace dslayer {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  DSLAYER_REQUIRE(!header_.empty(), "table needs at least one column");
  align_.assign(header_.size(), Align::kRight);
  align_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> cells) {
  DSLAYER_REQUIRE(cells.size() == header_.size(), "row arity must match header");
  body_.push_back(std::move(cells));
  ++rows_;
}

void TextTable::add_rule() { body_.emplace_back(); }

void TextTable::set_align(std::size_t column, Align align) {
  DSLAYER_REQUIRE(column < align_.size(), "column out of range");
  align_[column] = align;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : body_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto emit_row = [&](std::ostringstream& os, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      os << "| ";
      if (align_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (align_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << ' ';
    }
    os << "|\n";
  };

  const auto emit_rule = [&](std::ostringstream& os) {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_rule(os);
  emit_row(os, header_);
  emit_rule(os);
  for (const auto& row : body_) {
    if (row.empty()) {
      emit_rule(os);
    } else {
      emit_row(os, row);
    }
  }
  emit_rule(os);
  return os.str();
}

}  // namespace dslayer
