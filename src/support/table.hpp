// Plain-text table rendering for the benchmark harness. Every bench binary
// reproduces one of the paper's tables/figures as aligned rows on stdout;
// this keeps the formatting in one place.
#pragma once

#include <string>
#include <vector>

namespace dslayer {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows of strings and renders them with padded, aligned columns.
///
///   TextTable t({"Design", "Area", "Clk"});
///   t.add_row({"#2_64", "37299", "2.60"});
///   std::cout << t.render();
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal rule.
  void add_rule();

  /// Sets the alignment of a column (default: left for col 0, right otherwise).
  void set_align(std::size_t column, Align align);

  /// Number of data rows added so far (rules excluded).
  std::size_t row_count() const { return rows_; }

  /// Renders the full table, trailing newline included.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> body_;  // empty vector encodes a rule
  std::vector<Align> align_;
  std::size_t rows_ = 0;
};

}  // namespace dslayer
