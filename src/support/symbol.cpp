#include "support/symbol.hpp"

#include <mutex>

#include "support/error.hpp"

namespace dslayer::support {

Symbol SymbolTable::intern(std::string_view name) {
  {
    std::shared_lock lock(mutex_);
    if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  }
  std::unique_lock lock(mutex_);
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;  // lost the race
  DSLAYER_REQUIRE(names_.size() < kNoSymbol, "symbol table overflow");
  const Symbol id = static_cast<Symbol>(names_.size());
  const std::string& stored = names_.emplace_back(name);  // deque: never moved
  ids_.emplace(std::string_view(stored), id);
  return id;
}

std::optional<Symbol> SymbolTable::lookup(std::string_view name) const {
  std::shared_lock lock(mutex_);
  if (auto it = ids_.find(name); it != ids_.end()) return it->second;
  return std::nullopt;
}

const std::string& SymbolTable::name(Symbol symbol) const {
  std::shared_lock lock(mutex_);
  DSLAYER_REQUIRE(symbol < names_.size(), "unknown symbol id");
  return names_[symbol];  // entries are immutable once inserted
}

std::size_t SymbolTable::size() const {
  std::shared_lock lock(mutex_);
  return names_.size();
}

std::vector<std::string_view> SymbolTable::snapshot() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string_view> out;
  out.reserve(names_.size());
  for (const std::string& name : names_) out.emplace_back(name);
  return out;
}

SymbolTable& SymbolTable::global() {
  static SymbolTable table;
  return table;
}

}  // namespace dslayer::support
