// Units for figures of merit exchanged between the substrates and the design
// space layer. The paper's evaluation uses nanoseconds (clock period and
// latency), microseconds (modular multiplication delay), equivalent-gate /
// square-micron areas, and milliwatts (the power extension). A Quantity is a
// double tagged with a Unit; conversions are explicit.
#pragma once

#include <string>

#include "support/error.hpp"

namespace dslayer {

enum class Unit {
  kNone,          // dimensionless (cycle counts, ranks, ratios)
  kNanoseconds,   // clock periods, latencies (Table 1)
  kMicroseconds,  // modmul delays (Fig. 6)
  kGates,         // equivalent-gate area (Table 1 "Area")
  kBits,          // operand lengths (EOL)
  kMegahertz,     // clock rates
  kMilliwatts,    // power (Section 6 work-in-progress extension)
};

/// Short unit suffix for reports, e.g. "ns", "us", "gates".
std::string unit_suffix(Unit u);

/// A value tagged with a unit. Arithmetic is intentionally not provided:
/// substrates compute in doubles and tag at the reporting boundary.
struct Quantity {
  double value = 0.0;
  Unit unit = Unit::kNone;

  friend bool operator==(const Quantity&, const Quantity&) = default;
};

/// Converts between the two time units; identity otherwise-compatible pairs only.
double convert(double value, Unit from, Unit to);

/// Renders "12.3 ns" style strings.
std::string to_string(const Quantity& q);

}  // namespace dslayer
