// Per-thread bump arena for per-sweep scratch (DESIGN.md §14).
//
// Every columnar filter sweep needs short-lived arrays whose sizes depend
// on the query: the survivor bitmask, resolved predicate terms and ops,
// vector-lane descriptors, and prefilter residual masks. Allocating them
// from the general heap put malloc/free on the hot path once per sweep —
// at service rates that is thousands of allocator round-trips per second
// for memory with a strictly stack-like lifetime.
//
// Arena is a monotonic bump allocator over a chain of geometrically
// growing blocks. allocate() is a pointer bump; nothing is freed until
// rewind()/reset(), which just move the high-water mark back (blocks are
// retained, so a steady-state sweep allocates no heap memory at all).
// Only trivially destructible types may live in an arena — alloc_array
// static_asserts it — because rewinding runs no destructors.
//
// Arena::scratch() is the per-thread instance the filter engine uses:
// each executor worker (and each bench/test thread) gets its own, so
// sweeps never contend. ArenaScope is the RAII guard: it records the
// mark on entry and rewinds on exit, making nested scratch users (a
// sweep calling a helper that also borrows scratch) compose safely.
// ChunkPool helper lanes must NOT allocate from the caller's arena —
// the engine resolves all scratch on the calling thread before fanning
// chunks out, and workers only read it.
//
// Footprint: a thread's arena keeps its high-water capacity until the
// thread exits (a 1M-row sweep's scratch is ~a few hundred KiB). That
// bound is part of the bench's bytes_per_core budget story: scratch is
// O(rows/64) words plus O(predicates) descriptors, never O(rows) boxed
// values.
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace dslayer::support {

class Arena {
 public:
  /// First block size; later blocks double (capped at 8 MiB per block).
  explicit Arena(std::size_t first_block_bytes = 64 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (power of two, <= 16).
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed array of `n` default-initialized (i.e. uninitialized for
  /// scalars) elements. The caller fills it; nothing is destroyed.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is rewound without running destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Position token for rewind(): everything allocated after mark() is
  /// released (retained for reuse) when the mark is rewound.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };
  Mark mark() const { return {current_, blocks_.empty() ? 0 : blocks_[current_].used}; }
  void rewind(Mark m);

  /// Rewinds to empty; blocks are kept for reuse.
  void reset() { rewind({0, 0}); }

  /// Total capacity currently retained (the high-water footprint).
  std::size_t retained_bytes() const;

  /// This thread's scratch arena (created on first use, freed at thread
  /// exit). The filter engine's per-sweep allocations live here.
  static Arena& scratch();

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Block& grow(std::size_t at_least);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;
  std::size_t next_block_bytes_;
};

/// RAII watermark: rewinds the arena to the construction-time mark.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_->rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

}  // namespace dslayer::support
