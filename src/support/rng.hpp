// Deterministic pseudo-random number generation.
//
// Tests, property sweeps, and synthetic workload generators must be
// reproducible across runs and platforms, so the project uses its own
// SplitMix64 generator rather than std::default_random_engine (whose
// semantics are implementation-defined).
#pragma once

#include <cstdint>

#include "support/error.hpp"

namespace dslayer {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator (Steele et al.).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) via rejection-free Lemire reduction; bound > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    DSLAYER_REQUIRE(bound > 0, "bound must be positive");
    // 128-bit multiply-shift; the slight modulo bias is irrelevant for tests.
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi]; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    DSLAYER_REQUIRE(lo <= hi, "empty range");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p.
  bool next_bool(double p = 0.5) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace dslayer
