#include "support/telemetry.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace dslayer::telemetry {

namespace {

constexpr std::array<const char*, kEventKindCount> kKindNames = {
    "SessionOpened",       "RequirementSet",      "Decision",
    "Retract",             "Reaffirm",            "OptionEliminated",
    "ReassessmentFlagged", "ConstraintEvaluated", "ComplianceCheck",
    "CacheHit",            "CacheMiss",           "IndexRebuild",
    "QueryTimed",          "OverlayWrite",        "PrefilterSkip",
};

/// Shortest decimal rendering that round-trips an IEEE double through
/// strtod (17 significant digits), so journaled durations and encoded
/// numbers replay byte-exactly.
std::string round_trip_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* to_string(EventKind kind) {
  return kKindNames[static_cast<std::size_t>(kind)];
}

std::optional<EventKind> parse_event_kind(std::string_view name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_jsonl(const Event& event) {
  return cat("{\"seq\":", event.seq, ",\"kind\":\"", to_string(event.kind), "\",\"subject\":\"",
             json_escape(event.subject), "\",\"detail\":\"", json_escape(event.detail),
             "\",\"us\":", round_trip_double(event.duration_us), "}");
}

namespace {

/// Minimal scanner for the flat one-line objects to_jsonl() emits (string
/// and number values only, no nesting). Tolerates reordered keys and
/// whitespace; returns false on malformed input.
struct JsonScanner {
  std::string_view s;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= s.size() || s[pos] != c) return false;
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (!consume('"')) return false;
    out.clear();
    while (pos < s.size()) {
      const char c = s[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= s.size()) return false;
      const char esc = s[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > s.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // We only emit \u00XX for control bytes; decode the Latin-1
          // subset and degrade the rest to '?'.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated string
  }

  bool parse_number(double& out) {
    skip_ws();
    const std::size_t start = pos;
    while (pos < s.size() && (std::isdigit(static_cast<unsigned char>(s[pos])) != 0 ||
                              s[pos] == '-' || s[pos] == '+' || s[pos] == '.' || s[pos] == 'e' ||
                              s[pos] == 'E')) {
      ++pos;
    }
    if (pos == start) return false;
    const std::string token(s.substr(start, pos - start));
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }
};

}  // namespace

std::optional<Event> parse_event_jsonl(std::string_view line) {
  const std::string_view trimmed = trim(line);
  JsonScanner scan{trimmed};
  if (!scan.consume('{')) return std::nullopt;

  Event event;
  bool saw_kind = false;
  bool first = true;
  while (true) {
    scan.skip_ws();
    if (scan.consume('}')) break;
    if (!first && !scan.consume(',')) return std::nullopt;
    first = false;

    std::string key;
    if (!scan.parse_string(key) || !scan.consume(':')) return std::nullopt;
    if (key == "kind") {
      std::string name;
      if (!scan.parse_string(name)) return std::nullopt;
      const auto kind = parse_event_kind(name);
      if (!kind.has_value()) return std::nullopt;
      event.kind = *kind;
      saw_kind = true;
    } else if (key == "subject") {
      if (!scan.parse_string(event.subject)) return std::nullopt;
    } else if (key == "detail") {
      if (!scan.parse_string(event.detail)) return std::nullopt;
    } else if (key == "seq") {
      double v = 0.0;
      if (!scan.parse_number(v)) return std::nullopt;
      event.seq = static_cast<std::uint64_t>(v);
    } else if (key == "us") {
      if (!scan.parse_number(event.duration_us)) return std::nullopt;
    } else {
      // Unknown keys (schema growth) are skipped if string- or
      // number-valued.
      std::string ignored_s;
      double ignored_n = 0.0;
      scan.skip_ws();
      const bool ok = scan.pos < scan.s.size() && scan.s[scan.pos] == '"'
                          ? scan.parse_string(ignored_s)
                          : scan.parse_number(ignored_n);
      if (!ok) return std::nullopt;
    }
  }
  scan.skip_ws();
  if (scan.pos != scan.s.size() || !saw_kind) return std::nullopt;
  return event;
}

// ---------------------------------------------------------------------------
// RingBufferSink
// ---------------------------------------------------------------------------

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  buffer_.reserve(std::min<std::size_t>(capacity_, 256));
}

void RingBufferSink::on_event(const Event& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<Event> RingBufferSink::snapshot() const {
  std::vector<Event> out;
  out.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

std::uint64_t RingBufferSink::dropped() const { return total_ - buffer_.size(); }

void RingBufferSink::clear() {
  buffer_.clear();
  next_ = 0;
  total_ = 0;
}

// ---------------------------------------------------------------------------
// JournalSink
// ---------------------------------------------------------------------------

JournalSink::JournalSink(std::initializer_list<EventKind> kinds) : filtered_(true) {
  for (const EventKind kind : kinds) accept_[static_cast<std::size_t>(kind)] = true;
}

bool JournalSink::accepts(EventKind kind) const {
  return !filtered_ || accept_[static_cast<std::size_t>(kind)];
}

void JournalSink::on_event(const Event& event) {
  if (accepts(event.kind)) events_.push_back(event);
}

// ---------------------------------------------------------------------------
// JsonlFileSink
// ---------------------------------------------------------------------------

struct JsonlFileSink::Impl {
  std::ofstream out;
};

JsonlFileSink::JsonlFileSink(const std::string& path, std::size_t flush_every)
    : path_(path), flush_every_(flush_every == 0 ? 1 : flush_every),
      impl_(std::make_unique<Impl>()) {
  impl_->out.open(path, std::ios::out | std::ios::trunc);
  if (!impl_->out.is_open()) {
    throw Error(cat("telemetry: cannot open JSONL sink '", path, "' for writing"));
  }
}

JsonlFileSink::~JsonlFileSink() {
  // Buffered tail events must reach the file on orderly shutdown — an
  // ofstream destructor flushes too, but silently; this path still
  // counts a failure.
  if (unflushed_ > 0) flush();
}

void JsonlFileSink::flush() {
  unflushed_ = 0;
  impl_->out.flush();
  if (impl_->out.good()) return;
  write_failures_.add(1);
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "warning: telemetry sink '%s' flush failed — buffered events may be lost "
                 "(counted in write_failures)\n",
                 path_.c_str());
  }
  impl_->out.clear();
}

void JsonlFileSink::on_event(const Event& event) {
  bool wrote = false;
  try {
    DSLAYER_FAILPOINT("telemetry.jsonl_write");
    impl_->out << to_jsonl(event) << '\n';
    if (++unflushed_ >= flush_every_) {
      unflushed_ = 0;
      impl_->out.flush();
    }
    wrote = impl_->out.good();
  } catch (const FailpointError&) {
    wrote = false;  // injected device failure
  }
  if (wrote) return;
  write_failures_.add(1);
  if (!warned_) {
    warned_ = true;
    std::fprintf(stderr,
                 "warning: telemetry sink '%s' write failed — events are being dropped "
                 "(counted in write_failures; further failures are silent)\n",
                 path_.c_str());
  }
  // Clear the error state so the journal resumes if the device recovers;
  // the dropped events stay counted.
  impl_->out.clear();
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

Telemetry::Telemetry(std::size_t ring_capacity) : ring_(ring_capacity) {}

std::uint64_t Telemetry::emit(EventKind kind, std::string subject, std::string detail,
                              double duration_us) {
  Event event;
  event.seq = ++seq_;
  event.kind = kind;
  event.subject = std::move(subject);
  event.detail = std::move(detail);
  event.duration_us = duration_us;
  counts_[static_cast<std::size_t>(kind)].add(1);
  ring_.on_event(event);
  for (const auto& sink : sinks_) sink->on_event(event);
  return event.seq;
}

void Telemetry::record_timing(const std::string& query_kind, double duration_us) {
  histograms_[query_kind].record(duration_us);
  emit(EventKind::kQueryTimed, query_kind, {}, duration_us);
}

std::map<std::string, TimingSummary> Telemetry::timings() const {
  std::map<std::string, TimingSummary> out;
  for (const auto& [name, histogram] : histograms_) {
    TimingSummary summary;
    summary.count = histogram.count;
    summary.p50_us = histogram.quantile_us(0.50);
    summary.p95_us = histogram.quantile_us(0.95);
    summary.p99_us = histogram.quantile_us(0.99);
    summary.max_us = histogram.max_us;
    summary.total_us = histogram.total_us;
    out[name] = summary;
  }
  return out;
}

std::map<std::string, HistogramSnapshot> Telemetry::histogram_snapshots() const {
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot snapshot;
    snapshot.buckets = histogram.buckets;
    snapshot.count = histogram.count;
    snapshot.max_us = histogram.max_us;
    snapshot.total_us = histogram.total_us;
    out[name] = snapshot;
  }
  return out;
}

void Telemetry::add_sink(std::shared_ptr<EventSink> sink) {
  DSLAYER_REQUIRE(sink != nullptr, "telemetry sink must not be null");
  sinks_.push_back(std::move(sink));
}

void Telemetry::reset_counters() {
  for (RelaxedCounter& counter : counts_) counter.set(0);
  histograms_.clear();
}

std::size_t latency_bucket_ns(std::uint64_t ns) {
  if (ns == 0) return 0;
  // floor(log2 ns): 1 -> 0, 2 -> 1, 2^k -> k, 2^k + 1 -> k.
  return static_cast<std::size_t>(std::bit_width(ns)) - 1;
}

std::uint64_t bucket_upper_bound_ns(std::size_t bucket) {
  // Bucket i covers [2^i, 2^(i+1)); the last bucket is open-ended, its
  // bound reported as the saturating all-ones value so the sequence
  // stays strictly monotone (2^63 is bucket 62's exclusive bound).
  if (bucket >= kHistogramBuckets - 1) return ~0ULL;
  return 1ULL << (bucket + 1);
}

void Telemetry::Histogram::record(double us) {
  const double ns = us * 1000.0;
  std::size_t bucket = 0;
  if (ns >= 1.0) {
    bucket = latency_bucket_ns(static_cast<std::uint64_t>(std::min(ns, 9.0e18)));
  }
  ++buckets[std::min<std::size_t>(bucket, buckets.size() - 1)];
  ++count;
  max_us = std::max(max_us, us);
  total_us += us;
}

double Telemetry::Histogram::quantile_us(double q) const {
  if (count == 0) return 0.0;
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= std::max<std::uint64_t>(rank, 1)) {
      // Upper bound of bucket i, capped by the exact max.
      const double upper_ns = static_cast<double>(bucket_upper_bound_ns(i));
      return std::min(upper_ns / 1000.0, max_us);
    }
  }
  return max_us;
}

}  // namespace dslayer::telemetry
