// Error handling for the dslayer project.
//
// The library uses exceptions for contract and domain violations (per the
// C++ Core Guidelines, E.2/E.3): a violated precondition or an inconsistent
// design-space definition is a programming/authoring error that callers are
// not expected to handle locally.
//
// All dslayer exceptions derive from dslayer::Error so applications can
// establish a single catch boundary.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace dslayer {

/// Root of the dslayer exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A violated API precondition (caller bug).
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// A malformed design-space-layer definition (layer-author bug), e.g. two
/// generalized design issues on one CDO, or a dangling property path.
class DefinitionError : public Error {
 public:
  explicit DefinitionError(const std::string& what) : Error(what) {}
};

/// An invalid operation for the current exploration state, e.g. deciding a
/// dependent design issue before its independent set has been addressed.
class ExplorationError : public Error {
 public:
  explicit ExplorationError(const std::string& what) : Error(what) {}
};

/// Arithmetic domain errors in the bigint substrate (division by zero,
/// non-invertible modulus, ...).
class ArithmeticError : public Error {
 public:
  explicit ArithmeticError(const std::string& what) : Error(what) {}
};

/// Failures of the concurrent exploration service itself (unknown session,
/// session limit reached, executor shut down, ...) as opposed to failures
/// of the commands it executes, which stay ExplorationError.
class ServiceError : public Error {
 public:
  explicit ServiceError(const std::string& what) : Error(what) {}
};

/// A request ran past its deadline and was cooperatively cancelled at a
/// checkpoint (support/cancel.hpp). Terminal for the request: retrying
/// with the same deadline would expire again.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what) : Error(what) {}
};

/// The service is temporarily unable to take the request (a writer epoch
/// has stalled past the degradation threshold, or a resource is pinned).
/// Retryable: the condition clears once the writer finishes.
class UnavailableError : public Error {
 public:
  explicit UnavailableError(const std::string& what) : Error(what) {}
};

/// The session table is full and every session is pinned by an in-flight
/// request. Retryable: capacity frees as requests complete.
class SessionsBusyError : public ServiceError {
 public:
  explicit SessionsBusyError(const std::string& what) : ServiceError(what) {}
};

/// An armed failpoint fired in error mode (support/failpoint.hpp). Only
/// fault-injection tests ever see this type.
class FailpointError : public Error {
 public:
  explicit FailpointError(const std::string& what) : Error(what) {}
};

/// A durability failure in src/storage/: an I/O syscall error, a corrupt
/// or truncated journal/snapshot frame, or a snapshot that does not match
/// the running layer. Callers decide whether it is fatal (boot) or
/// degrades the request (a failed snapshot write leaves the WAL intact).
class StorageError : public Error {
 public:
  explicit StorageError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(std::string_view expr, std::string_view file, int line,
                                     std::string_view msg);
}  // namespace detail

/// Checks a precondition; throws PreconditionError with source location on failure.
#define DSLAYER_REQUIRE(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) {                                                              \
      ::dslayer::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                           \
  } while (false)

}  // namespace dslayer
