// Request deadlines and cooperative cancellation.
//
// The exploration service promises every request a bounded outcome: a
// request that arrives with `@<ms>` in the protocol carries a Deadline,
// and long-running query work gives the deadline a chance to fire at
// cancellation checkpoints (userver-style deadline propagation, scaled
// down to one process). The pieces:
//
//   * Deadline — an optional absolute steady_clock point. Value type;
//     default-constructed means "none".
//   * DeadlineScope — RAII installer of the CURRENT thread's deadline
//     (a thread_local). The request executor installs the request's
//     deadline around command execution; installing an unset Deadline
//     SUPPRESSES any outer deadline, which is how non-cancellable
//     sections (session migration replay) protect their invariants.
//   * cancellation_checkpoint() — called from the candidate-filter hot
//     loops (legacy scan per core, columnar engine per sweep). Throws
//     DeadlineExceeded when the installed deadline has passed. Without
//     an installed deadline it is one thread-local load and a branch;
//     with one it additionally strides the clock read (every
//     kCheckpointStride calls) so per-row checkpoints stay cheap.
//
// Throw-site discipline: checkpoints live only in derived-query
// computation (candidates() and the sweeps under it), never inside
// state mutation, so a DeadlineExceeded always leaves the session's
// entries exactly as they were — the twin-session oracle test enforces
// this.
#pragma once

#include <chrono>
#include <cstdint>

namespace dslayer::support {

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< no deadline

  static Deadline after_ms(double ms) {
    Deadline d;
    d.set_ = true;
    d.at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double, std::milli>(ms));
    return d;
  }
  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.set_ = true;
    d.at_ = when;
    return d;
  }

  bool set() const { return set_; }
  bool expired() const { return set_ && Clock::now() >= at_; }
  Clock::time_point time() const { return at_; }

  /// Milliseconds until expiry; negative once past, huge when unset.
  double remaining_ms() const {
    if (!set_) return 1e300;
    return std::chrono::duration<double, std::milli>(at_ - Clock::now()).count();
  }

 private:
  bool set_ = false;
  Clock::time_point at_{};
};

/// Clock reads per checkpoint are strided by this many calls.
inline constexpr std::uint32_t kCheckpointStride = 64;

/// The deadline installed on the current thread (unset if none).
Deadline current_deadline();

/// Installs `deadline` as the current thread's deadline for this scope,
/// restoring the previous one on exit. Installing an unset Deadline
/// suppresses cancellation for the scope (see header comment).
class DeadlineScope {
 public:
  explicit DeadlineScope(Deadline deadline);
  ~DeadlineScope();

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  Deadline previous_;
};

/// Throws DeadlineExceeded if the current thread's deadline has passed.
/// The clock is consulted on the first call of a scope and then every
/// kCheckpointStride calls.
void cancellation_checkpoint();

/// Unstrided check without throwing; true if the installed deadline has
/// passed. For sites that prefer returning an error to unwinding.
bool cancellation_requested();

}  // namespace dslayer::support
