#include "support/parallel.hpp"

#include "support/trace.hpp"

namespace dslayer::support {

ChunkPool::ChunkPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ChunkPool::~ChunkPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ChunkPool::worker_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_ready_.wait(lock, [&] { return stopping_ || (fn_ != nullptr && next_ < total_); });
    if (stopping_) return;
    while (fn_ != nullptr && next_ < total_) {
      const std::size_t chunk = next_++;
      ++in_flight_;
      const auto* fn = fn_;
      trace::Trace* sweep_trace = trace_;
      lock.unlock();
      {
        // Carry the submitting thread's trace onto this helper lane so
        // instrumentation inside the chunk sees the same request.
        trace::TraceScope scope(sweep_trace);
        if (sweep_trace != nullptr) sweep_trace->note_pool_chunk();
        (*fn)(chunk);
      }
      lock.lock();
      --in_flight_;
      if (next_ >= total_ && in_flight_ == 0) sweep_done_.notify_all();
    }
  }
}

void ChunkPool::for_each_chunk(std::size_t chunks,
                               const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  if (chunks == 1 || workers_.empty() || !submit_lock_.try_lock()) {
    for (std::size_t i = 0; i < chunks; ++i) fn(i);
    return;
  }
  std::lock_guard submit(submit_lock_, std::adopt_lock);
  {
    std::lock_guard lock(mutex_);
    fn_ = &fn;
    trace_ = trace::TraceScope::current();
    next_ = 0;
    total_ = chunks;
  }
  work_ready_.notify_all();

  std::unique_lock lock(mutex_);
  while (next_ < total_) {  // the caller is one of the lanes
    const std::size_t chunk = next_++;
    ++in_flight_;
    lock.unlock();
    fn(chunk);
    lock.lock();
    --in_flight_;
  }
  sweep_done_.wait(lock, [&] { return next_ >= total_ && in_flight_ == 0; });
  fn_ = nullptr;
  trace_ = nullptr;
  next_ = total_ = 0;
}

ChunkPool& ChunkPool::shared() {
  static ChunkPool pool([] {
    const unsigned hc = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hc > 1 ? hc - 1 : 1);
  }());
  return pool;
}

}  // namespace dslayer::support
