// Structured exploration telemetry: typed events, pluggable sinks, timers.
//
// The paper's interactive loop (Section 5) is a dialogue of decisions,
// eliminations, and re-assessments. This module turns that dialogue into a
// first-class, queryable record instead of a flat string log:
//
//   * Event — a typed record (kind, monotonic sequence number, subject,
//     detail, optional duration) of one step of an exploration or one
//     query-layer action;
//   * EventSink — pluggable observers. RingBufferSink keeps the last N
//     events in memory (the shell's `trace` view); JsonlFileSink streams
//     every event as one JSON line to a file; JournalSink keeps an
//     unbounded, kind-filtered journal (the record/replay substrate);
//   * Telemetry — the per-object hub: assigns sequence numbers, fans
//     events out to sinks, keeps aggregate per-kind counters for
//     high-frequency kinds that are counted but not materialized
//     (ConstraintEvaluated, ComplianceCheck on the hot candidate scan),
//     and owns per-query-kind latency histograms;
//   * ScopedTimer — RAII wall-clock probe feeding a named histogram and
//     emitting a QueryTimed event on scope exit.
//
// Layering: this is a support module — it knows nothing about CDOs,
// sessions, or values. The dsl layer encodes its payloads into the
// subject/detail strings (see ExplorationSession::export_journal()).
//
// Threading model (audited for the concurrent exploration service,
// DESIGN.md §9): count()/count_of() are thread-safe (relaxed atomics) —
// they are the only telemetry operations the layer-side query hot paths
// perform under the service's SHARED reader lock. Everything else
// (emit(), record_timing(), sinks, histograms, the sequence counter)
// requires external synchronization: session hubs are guarded by the
// service's per-session lock, and the shared layer's hub only emits or
// times on exclusive-epoch paths (index_cores, first-touch index builds —
// both pre-warmed by service::SharedLayer::prime()).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/relaxed_counter.hpp"

namespace dslayer::telemetry {

/// Everything the exploration and query layers report. Order is part of
/// the JSONL schema only through to_string(); new kinds append.
enum class EventKind : std::uint8_t {
  kSessionOpened,        ///< subject = CDO class path
  kRequirementSet,       ///< subject = property, detail = encoded value
  kDecision,             ///< subject = issue, detail = encoded value
  kRetract,              ///< subject = property
  kReaffirm,             ///< subject = property
  kOptionEliminated,     ///< subject = issue, detail = option + constraint id
  kReassessmentFlagged,  ///< subject = property, detail = constraint id
  kConstraintEvaluated,  ///< counted only (hot path) — predicate violated() calls
  kComplianceCheck,      ///< counted only (hot path) — cores run through the filter
  kCacheHit,             ///< subject = which memoized query answered
  kCacheMiss,            ///< subject = which memoized query recomputed
  kIndexRebuild,         ///< subject = which index was (re)built
  kQueryTimed,           ///< subject = query kind, duration_us = wall time
  kOverlayWrite,         ///< counted only (hot path) — per-core binding-overlay map writes
  kPrefilterSkip,        ///< counted only (hot path) — rows a declared prefilter spared the lambda
};

inline constexpr std::size_t kEventKindCount = 15;

/// Stable wire name ("Decision", "CacheHit", ...).
const char* to_string(EventKind kind);

/// Inverse of to_string; nullopt for unknown names.
std::optional<EventKind> parse_event_kind(std::string_view name);

/// One telemetry record. `seq` is monotonic per Telemetry hub, so a
/// journal's order is reconstructible even after sink-side filtering.
struct Event {
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kSessionOpened;
  std::string subject;
  std::string detail;
  double duration_us = 0.0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Escapes `s` for embedding in a JSON string literal (quotes, backslash,
/// control characters; non-ASCII bytes pass through untouched).
std::string json_escape(std::string_view s);

/// Renders one event as a single JSON line (no trailing newline):
/// {"seq":3,"kind":"Decision","subject":"Algorithm","detail":"txt:Montgomery","us":0}
std::string to_jsonl(const Event& event);

/// Parses a line produced by to_jsonl (tolerant of key order and extra
/// whitespace). nullopt on malformed input or unknown kind.
std::optional<Event> parse_event_jsonl(std::string_view line);

/// Observer interface; implementations must tolerate high event rates.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_event(const Event& event) = 0;
};

/// Bounded in-memory sink: keeps the most recent `capacity` events,
/// counting (not failing on) overflow.
class RingBufferSink final : public EventSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 4096);

  void on_event(const Event& event) override;

  /// Oldest-first copy of the retained events.
  std::vector<Event> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::uint64_t total_seen() const { return total_; }
  /// Events evicted by overflow (total_seen - retained).
  std::uint64_t dropped() const;
  void clear();

 private:
  std::size_t capacity_;
  std::vector<Event> buffer_;  // ring once full; next_ is the write head
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// Unbounded in-memory sink retaining only the listed kinds (all kinds
/// when the filter is empty). The session's replay journal is one of
/// these over the state-mutating kinds.
class JournalSink final : public EventSink {
 public:
  JournalSink() = default;
  explicit JournalSink(std::initializer_list<EventKind> kinds);

  void on_event(const Event& event) override;

  const std::vector<Event>& events() const { return events_; }
  bool accepts(EventKind kind) const;
  void clear() { events_.clear(); }

 private:
  std::array<bool, kEventKindCount> accept_{};
  bool filtered_ = false;
  std::vector<Event> events_;
};

/// Streams every event as one JSON line. `flush_every` bounds how much a
/// crash can silently lose: the sink flushes after every Nth event (the
/// default 1 flushes per event — journals survive crashes at stream
/// cost; a larger N amortizes the flush for high-rate streams, capping
/// loss at N-1 events), on explicit flush(), and at destruction. Throws
/// dslayer::Error if the file cannot be opened.
///
/// Write failures (disk full, path yanked) must not be silent data loss:
/// each failed write bumps write_failures(), the first one also prints a
/// one-shot stderr warning, and the sink keeps trying (the stream error
/// state is cleared so a recovered disk resumes the journal). The
/// "telemetry.jsonl_write" failpoint simulates a failing device.
class JsonlFileSink final : public EventSink {
 public:
  explicit JsonlFileSink(const std::string& path, std::size_t flush_every = 1);
  ~JsonlFileSink() override;

  void on_event(const Event& event) override;

  /// Pushes everything buffered to the file now (crash-adjacent callers
  /// — signal handlers excepted — use this before risky sections).
  void flush();

  const std::string& path() const { return path_; }
  std::size_t flush_every() const { return flush_every_; }

  /// Events that could not be written (and are lost from the file).
  std::uint64_t write_failures() const { return write_failures_.get(); }

 private:
  std::string path_;
  std::size_t flush_every_;
  std::size_t unflushed_ = 0;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  RelaxedCounter write_failures_;
  bool warned_ = false;
};

/// The latency histograms' bucket-edge convention, pinned by
/// tests/telemetry_test.cpp and shared with the Prometheus exposition
/// (service::render_metrics): bucket i holds samples in the half-open
/// nanosecond range [2^i, 2^(i+1)), so exact powers of two open their own
/// bucket (1 ns -> bucket 0, 2 ns -> bucket 1, 2^k -> bucket k,
/// 2^k + 1 -> bucket k). Bucket 0 additionally absorbs 0 ns, and the last
/// bucket absorbs everything >= 2^63 ns.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index for an integer nanosecond sample (floor(log2 ns)).
std::size_t latency_bucket_ns(std::uint64_t ns);

/// Exclusive upper bound of bucket i: 2^(i+1) ns (saturating at the last
/// bucket, whose true upper bound is +inf).
std::uint64_t bucket_upper_bound_ns(std::size_t bucket);

/// Copy of one named histogram's raw state, for exposition layers that
/// need the buckets themselves rather than the TimingSummary quantiles.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  std::uint64_t count = 0;
  double max_us = 0.0;
  double total_us = 0.0;
};

/// count / p50 / p95 / max / total of one named latency population.
/// Quantiles are read from power-of-two nanosecond buckets, so they are
/// upper-bound estimates accurate to 2x (see DESIGN.md §8); count, max,
/// and total are exact.
struct TimingSummary {
  std::uint64_t count = 0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  double total_us = 0.0;
};

/// The hub: sequence numbers, sinks, counters, histograms. One per
/// instrumented object (DesignSpaceLayer, ExplorationSession).
class Telemetry {
 public:
  explicit Telemetry(std::size_t ring_capacity = 4096);

  /// Materializes an event: assigns the next sequence number, bumps the
  /// per-kind counter, and fans out to the ring buffer and every added
  /// sink. Returns the assigned sequence number.
  std::uint64_t emit(EventKind kind, std::string subject = {}, std::string detail = {},
                     double duration_us = 0.0);

  /// Counter-only fast path for high-frequency kinds: no Event is
  /// allocated and sinks are not notified. Thread-safe (relaxed atomic) —
  /// shared-layer hot paths bump these concurrently under a reader lock.
  void count(EventKind kind, std::uint64_t n = 1) {
    counts_[static_cast<std::size_t>(kind)].add(n);
  }

  /// Total occurrences of `kind`, through either emit() or count().
  /// Thread-safe snapshot read.
  std::uint64_t count_of(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)].get();
  }

  /// Records one latency sample into the named histogram and emits a
  /// QueryTimed event.
  void record_timing(const std::string& query_kind, double duration_us);

  /// Snapshot of every named histogram.
  std::map<std::string, TimingSummary> timings() const;

  /// Raw-bucket snapshot of every named histogram (the `!metrics`
  /// exposition path). Same external-synchronization contract as
  /// timings().
  std::map<std::string, HistogramSnapshot> histogram_snapshots() const;

  /// The built-in bounded recent-events view.
  RingBufferSink& ring() { return ring_; }
  const RingBufferSink& ring() const { return ring_; }

  /// Attaches an additional sink (journal, JSONL file, test probe...).
  void add_sink(std::shared_ptr<EventSink> sink);

  /// Zeroes counters and histograms. The ring buffer and attached sinks
  /// keep their contents (resetting stats must not erase the trace); the
  /// sequence counter is never reset so event ids stay unique.
  void reset_counters();

 private:
  /// Power-of-two nanosecond buckets per the latency_bucket_ns()
  /// convention above; 64 buckets cover any double duration.
  struct Histogram {
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
    std::uint64_t count = 0;
    double max_us = 0.0;
    double total_us = 0.0;

    void record(double us);
    double quantile_us(double q) const;  ///< bucket upper bound at quantile q
  };

  std::uint64_t seq_ = 0;
  std::array<RelaxedCounter, kEventKindCount> counts_{};
  RingBufferSink ring_;
  std::vector<std::shared_ptr<EventSink>> sinks_;
  std::map<std::string, Histogram> histograms_;
};

/// RAII wall-clock probe: times its own lifetime and reports it to
/// `telemetry` under `query_kind`. Null-safe (a disabled probe costs one
/// branch). Move-only.
class ScopedTimer {
 public:
  ScopedTimer(Telemetry* telemetry, std::string query_kind)
      : telemetry_(telemetry),
        query_kind_(std::move(query_kind)),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (telemetry_ == nullptr) return;
    const auto stop = std::chrono::steady_clock::now();
    telemetry_->record_timing(query_kind_,
                              std::chrono::duration<double, std::micro>(stop - start_).count());
  }

 private:
  Telemetry* telemetry_;
  std::string query_kind_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dslayer::telemetry
