#include "support/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <utility>

#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/telemetry.hpp"

namespace dslayer::trace {
namespace {

thread_local Trace* g_current_trace = nullptr;

std::uint64_t ns_between(Trace::Clock::time_point from, Trace::Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

const char* to_string(SpanKind kind) {
  switch (kind) {
    case SpanKind::kIngress: return "ingress";
    case SpanKind::kParse: return "parse";
    case SpanKind::kQueueWait: return "queue.wait";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kSweep: return "sweep";
    case SpanKind::kRespond: return "respond";
  }
  return "unknown";
}

Trace::Trace(std::uint64_t id, bool sampled, std::string session, std::uint64_t request_id,
             Clock::time_point origin)
    : id_(id),
      sampled_(sampled),
      session_(std::move(session)),
      request_id_(request_id),
      origin_(origin) {
  spans_.reserve(8);
}

std::uint64_t Trace::to_rel_ns(Clock::time_point tp) const { return ns_between(origin_, tp); }

std::uint32_t Trace::open_span(SpanKind kind, std::string detail) {
  return open_span_at(kind, Clock::now(), std::move(detail));
}

std::uint32_t Trace::open_span_at(SpanKind kind, Clock::time_point start, std::string detail) {
  std::lock_guard<std::mutex> guard(lock_);
  Span span;
  span.kind = kind;
  span.parent = open_stack_.empty() ? kNoParent : open_stack_.back();
  span.start_ns = to_rel_ns(start);
  span.open = true;
  span.detail = std::move(detail);
  const auto index = static_cast<std::uint32_t>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(index);
  return index;
}

void Trace::close_span(std::uint32_t index) {
  const auto now = Clock::now();
  std::lock_guard<std::mutex> guard(lock_);
  if (finished_ || index >= spans_.size() || !spans_[index].open) return;
  Span& span = spans_[index];
  span.open = false;
  const std::uint64_t end_ns = to_rel_ns(now);
  span.duration_ns = end_ns > span.start_ns ? end_ns - span.start_ns : 0;
  // Closing out of order (an enclosing span closed before its child —
  // e.g. a force-close at finish) just drops the stack down to and
  // including this span.
  while (!open_stack_.empty()) {
    const std::uint32_t top = open_stack_.back();
    open_stack_.pop_back();
    if (top == index) break;
  }
}

std::uint32_t Trace::add_span(SpanKind kind, Clock::time_point start, Clock::time_point end,
                              std::uint32_t parent, std::string detail) {
  std::lock_guard<std::mutex> guard(lock_);
  if (finished_) return kNoParent;
  Span span;
  span.kind = kind;
  span.parent = parent;
  span.start_ns = to_rel_ns(start);
  span.duration_ns = end > start ? ns_between(start, end) : 0;
  span.open = false;
  span.detail = std::move(detail);
  const auto index = static_cast<std::uint32_t>(spans_.size());
  spans_.push_back(std::move(span));
  return index;
}

std::vector<Span> Trace::spans() const {
  std::lock_guard<std::mutex> guard(lock_);
  return spans_;
}

double Trace::total_ms() const {
  std::lock_guard<std::mutex> guard(lock_);
  return total_ms_;
}

bool Trace::finished() const {
  std::lock_guard<std::mutex> guard(lock_);
  return finished_;
}

void Trace::finish_locked(Clock::time_point now) {
  const std::uint64_t end_ns = to_rel_ns(now);
  for (Span& span : spans_) {
    if (!span.open) continue;
    span.open = false;
    span.duration_ns = end_ns > span.start_ns ? end_ns - span.start_ns : 0;
  }
  open_stack_.clear();
  total_ms_ = static_cast<double>(end_ns) / 1e6;
  finished_ = true;
}

TraceScope::TraceScope(Trace* trace) : previous_(g_current_trace) { g_current_trace = trace; }

TraceScope::~TraceScope() { g_current_trace = previous_; }

Trace* TraceScope::current() { return g_current_trace; }

SpanTimer::SpanTimer(Trace* trace, SpanKind kind, std::string detail) : trace_(trace) {
  if (trace_ != nullptr) index_ = trace_->open_span(kind, std::move(detail));
}

SpanTimer::~SpanTimer() {
  if (trace_ != nullptr) trace_->close_span(index_);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::configure(const TracerConfig& config) {
  std::lock_guard<std::mutex> guard(config_lock_);
  config_ = config;
  flight_file_.reset();
  flight_file_records_ = 0;
  flight_file_truncated_ = false;
  if (!config_.flight_path.empty()) {
    auto file = std::make_unique<std::ofstream>(config_.flight_path, std::ios::trunc);
    if (!*file) {
      std::cerr << "dslayer: cannot open flight recorder file '" << config_.flight_path
                << "'; keeping records in memory only\n";
    } else {
      flight_file_ = std::move(file);
    }
  }
  enabled_.store(config_.sample_every > 0 || config_.slow_request_ms > 0.0,
                 std::memory_order_relaxed);
}

TracerConfig Tracer::config() const {
  std::lock_guard<std::mutex> guard(config_lock_);
  return config_;
}

bool Tracer::sample_decision(std::uint64_t seed, std::uint64_t trace_id, std::uint32_t every) {
  if (every == 0) return false;
  if (every == 1) return true;
  return Rng(seed ^ trace_id).next_u64() % every == 0;
}

std::shared_ptr<Trace> Tracer::start(std::string session, std::uint64_t request_id,
                                     Trace::Clock::time_point origin) {
  if (!enabled()) return nullptr;
  std::uint32_t every = 0;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> guard(config_lock_);
    every = config_.sample_every;
    seed = config_.seed;
  }
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const bool sampled = sample_decision(seed, id, every);
  started_.fetch_add(1, std::memory_order_relaxed);
  if (sampled) sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<Trace>(id, sampled, std::move(session), request_id, origin);
}

Tracer::Ring& Tracer::local_ring() {
  // One ring per thread that ever finishes a sampled trace. The ring is
  // registered once and lives as long as the process (a handful of
  // front-end/worker threads), so recent() can walk all of them.
  thread_local std::shared_ptr<Ring> ring = [this] {
    auto created = std::make_shared<Ring>();
    std::lock_guard<std::mutex> guard(rings_lock_);
    rings_.push_back(created);
    return created;
  }();
  return *ring;
}

void Tracer::finish(const std::shared_ptr<Trace>& trace) {
  if (trace == nullptr) return;
  const auto now = Trace::Clock::now();
  double slow_ms = 0.0;
  std::size_t ring_capacity = 0;
  std::size_t flight_capacity = 0;
  {
    std::lock_guard<std::mutex> guard(config_lock_);
    slow_ms = config_.slow_request_ms;
    ring_capacity = config_.ring_capacity;
    flight_capacity = config_.flight_capacity;
  }
  {
    std::lock_guard<std::mutex> guard(trace->lock_);
    if (trace->finished_) return;
    trace->finish_locked(now);
  }
  finished_.fetch_add(1, std::memory_order_relaxed);

  if (trace->sampled() && ring_capacity > 0) {
    Ring& ring = local_ring();
    std::lock_guard<std::mutex> guard(ring.lock);
    ring.traces.push_back(trace);
    while (ring.traces.size() > ring_capacity) {
      ring.traces.pop_front();
      ring_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (slow_ms > 0.0 && trace->total_ms() >= slow_ms) {
    slow_.fetch_add(1, std::memory_order_relaxed);
    std::string line = to_jsonl(*trace);
    {
      std::lock_guard<std::mutex> guard(config_lock_);
      if (flight_file_ != nullptr) {
        if (flight_file_records_ < flight_capacity) {
          *flight_file_ << line << '\n';
          flight_file_->flush();
          ++flight_file_records_;
        } else if (!flight_file_truncated_) {
          *flight_file_ << "{\"truncated\":true,\"capacity\":" << flight_capacity << "}\n";
          flight_file_->flush();
          flight_file_truncated_ = true;
        }
      }
    }
    std::lock_guard<std::mutex> guard(flight_lock_);
    ++flight_total_;
    flight_.push_back(std::move(line));
    while (flight_.size() > flight_capacity) {
      flight_.pop_front();
      ++flight_dropped_;
    }
  }
}

std::vector<std::shared_ptr<const Trace>> Tracer::recent() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> guard(rings_lock_);
    rings = rings_;
  }
  std::vector<std::shared_ptr<const Trace>> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> guard(ring->lock);
    out.insert(out.end(), ring->traces.begin(), ring->traces.end());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });
  return out;
}

std::vector<std::string> Tracer::flight_records() const {
  std::lock_guard<std::mutex> guard(flight_lock_);
  return {flight_.begin(), flight_.end()};
}

TracerStats Tracer::stats() const {
  TracerStats stats;
  stats.started = started_.load(std::memory_order_relaxed);
  stats.sampled = sampled_.load(std::memory_order_relaxed);
  stats.finished = finished_.load(std::memory_order_relaxed);
  stats.slow = slow_.load(std::memory_order_relaxed);
  stats.ring_dropped = ring_dropped_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(flight_lock_);
    stats.flight_records = flight_.size();
    stats.flight_dropped = flight_dropped_;
  }
  return stats;
}

void Tracer::reset() {
  {
    std::lock_guard<std::mutex> guard(config_lock_);
    config_ = TracerConfig{.sample_every = 0};
    flight_file_.reset();
    flight_file_records_ = 0;
    flight_file_truncated_ = false;
  }
  enabled_.store(false, std::memory_order_relaxed);
  started_.store(0, std::memory_order_relaxed);
  sampled_.store(0, std::memory_order_relaxed);
  finished_.store(0, std::memory_order_relaxed);
  slow_.store(0, std::memory_order_relaxed);
  ring_dropped_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(rings_lock_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_guard(ring->lock);
      ring->traces.clear();
    }
  }
  std::lock_guard<std::mutex> guard(flight_lock_);
  flight_.clear();
  flight_total_ = 0;
  flight_dropped_ = 0;
}

std::string to_jsonl(const Trace& trace) {
  std::string out = cat("{\"trace\":", trace.id(), ",\"request\":", trace.request_id(),
                        ",\"session\":\"", telemetry::json_escape(trace.session()),
                        "\",\"sampled\":", trace.sampled() ? "true" : "false",
                        ",\"total_ms\":", format_double(trace.total_ms(), 3),
                        ",\"pool_chunks\":", trace.pool_chunks(), ",\"spans\":[");
  bool first = true;
  for (const Span& span : trace.spans()) {
    if (!first) out += ',';
    first = false;
    out += cat("{\"kind\":\"", to_string(span.kind), "\",\"parent\":",
               span.parent == kNoParent ? std::int64_t{-1} : static_cast<std::int64_t>(span.parent),
               ",\"start_us\":", format_double(static_cast<double>(span.start_ns) / 1e3, 3),
               ",\"dur_us\":", format_double(static_cast<double>(span.duration_ns) / 1e3, 3),
               ",\"detail\":\"", telemetry::json_escape(span.detail), "\"}");
  }
  out += "]}";
  return out;
}

}  // namespace dslayer::trace
