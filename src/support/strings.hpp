// Small string utilities used throughout the project: splitting/joining for
// property paths ("Radix@*.Hardware.Montgomery"), case folding for
// case-insensitive option lookup, and a variadic concatenation helper that
// substitutes for std::format (not available in the target toolchain).
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dslayer {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// True if strings are equal ignoring ASCII case.
bool iequals(std::string_view a, std::string_view b);

/// Streams all arguments into one string: cat("x=", 3, "!") == "x=3!".
template <typename... Ts>
std::string cat(Ts&&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

/// Formats a double with `digits` significant digits, trimming trailing zeros.
std::string format_double(double v, int digits = 4);

}  // namespace dslayer
