// Interned symbols: dense ids for the layer's hot names.
//
// The columnar candidate-matching path (DESIGN.md §10) cannot afford
// string-keyed lookups per core: property names referenced by constraints,
// core binding/metric names, and option strings stored in text columns are
// interned once into a process-wide SymbolTable and compared as a uint32
// afterwards. Interning is injective — symbol equality is exactly string
// equality — and ids are dense, so they double as column indexes.
//
// Concurrency: build paths (Core::bind, PropertyPath construction,
// CoreTable construction) call intern(), which takes the write lock only
// on a miss; query paths call lookup(), which never writes. Ids are never
// reused and the backing strings are never moved, so a Symbol and the
// reference returned by name() stay valid for the process lifetime.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dslayer::support {

using Symbol = std::uint32_t;

/// Sentinel for "no such name interned" / "no symbol".
inline constexpr Symbol kNoSymbol = 0xFFFFFFFFu;

class SymbolTable {
 public:
  /// Id of `name`, interning it first if unseen.
  Symbol intern(std::string_view name);

  /// Id of `name` if already interned; read-only (shared lock only).
  std::optional<Symbol> lookup(std::string_view name) const;

  /// The interned spelling. The reference is stable forever. Throws
  /// DefinitionError on an out-of-range symbol.
  const std::string& name(Symbol symbol) const;

  std::size_t size() const;

  /// All interned spellings in id order (index == Symbol). The views point
  /// into the table's backing storage, which is never moved or freed, so
  /// they stay valid for the process lifetime. Snapshot writers
  /// (src/storage/snapshot.cpp) persist this to remap symbols on reload.
  std::vector<std::string_view> snapshot() const;

  /// The process-wide table every layer component shares.
  static SymbolTable& global();

 private:
  mutable std::shared_mutex mutex_;
  std::deque<std::string> names_;                     // index == Symbol; never moved
  std::unordered_map<std::string_view, Symbol> ids_;  // views into names_
};

/// Shorthands over the global table.
inline Symbol intern_symbol(std::string_view name) { return SymbolTable::global().intern(name); }
inline std::optional<Symbol> lookup_symbol(std::string_view name) {
  return SymbolTable::global().lookup(name);
}
inline const std::string& symbol_name(Symbol symbol) { return SymbolTable::global().name(symbol); }

}  // namespace dslayer::support
