#include "support/failpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <thread>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::support {

std::atomic<int> FailpointRegistry::active_points_{0};

const char* to_string(FailpointMode mode) {
  switch (mode) {
    case FailpointMode::kOff: return "off";
    case FailpointMode::kError: return "error";
    case FailpointMode::kDelay: return "delay";
    case FailpointMode::kCrashOnce: return "crash-once";
  }
  return "?";
}

namespace {

// Every in-tree DSLAYER_FAILPOINT site. Kept here (not at the sites) so
// the disarmed macro stays one relaxed load — declaring at each site would
// add a registration branch to every hit. A new site must be added both at
// its call site and here; FailpointTest.DeclaredCatalogCoversCompiledSites
// cross-checks the list against the sources.
constexpr const char* kDeclaredSites[] = {
    "dsl.candidates.sweep",
    "net.conn.accept",
    "net.conn.read",
    "net.conn.write",
    "service.executor.dequeue",
    "service.executor.enqueue",
    "service.session.evict",
    "service.session.execute",
    "service.session.migrate",
    "service.shared_layer.prime",
    "service.shared_layer.publish",
    "storage.import.row",
    "storage.session.flush",
    "storage.session.rename",
    "storage.snapshot.rename",
    "storage.snapshot.sync",
    "storage.snapshot.write",
    "storage.wal.append",
    "storage.wal.open",
    "storage.wal.sync",
    "storage.wal.truncate",
    "telemetry.jsonl_write",
};

}  // namespace

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

FailpointRegistry::FailpointRegistry() {
  for (const char* site : kDeclaredSites) declared_.emplace(site);
}

namespace {

// Arm the DSLAYER_FAILPOINTS environment specs at process start, so even
// code paths that run before main() (static layer builders in tests) hit
// armed points. Self-contained: touches only the registry singleton.
const bool env_armed = [] {
  FailpointRegistry::instance().arm_from_env();
  return true;
}();

}  // namespace

void FailpointRegistry::arm(const std::string& name, FailpointMode mode, double delay_ms,
                            int count) {
  DSLAYER_REQUIRE(!name.empty(), "failpoint name must not be empty");
  std::lock_guard<std::mutex> guard(lock_);
  Point& point = points_[name];
  const bool was_armed = point.mode != FailpointMode::kOff;
  const bool now_armed = mode != FailpointMode::kOff && count != 0;
  point.mode = now_armed ? mode : FailpointMode::kOff;
  point.delay_ms = delay_ms;
  point.remaining = count;
  if (was_armed != now_armed) active_points_.fetch_add(now_armed ? 1 : -1, std::memory_order_relaxed);
}

bool FailpointRegistry::arm_spec(std::string_view spec, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = cat("failpoint spec '", std::string(spec), "': ", why);
    return false;
  };
  const std::string_view trimmed = trim(spec);
  const std::size_t eq = trimmed.find('=');
  if (eq == std::string_view::npos || eq == 0) return fail("expected name=mode[:arg[:count]]");
  const std::string name(trim(trimmed.substr(0, eq)));
  const std::vector<std::string> parts = split(std::string(trim(trimmed.substr(eq + 1))), ':');
  if (parts.empty() || parts[0].empty()) return fail("missing mode");

  const auto parse_count = [&](const std::string& text, int& out) {
    char* end = nullptr;
    const long v = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || v <= 0) return false;
    out = static_cast<int>(v);
    return true;
  };

  const std::string& mode = parts[0];
  if (mode == "error") {
    int count = -1;
    if (parts.size() > 2) return fail("error takes at most one :count");
    if (parts.size() == 2 && !parse_count(parts[1], count)) return fail("bad count");
    arm(name, FailpointMode::kError, 0.0, count);
    return true;
  }
  if (mode == "delay") {
    if (parts.size() < 2 || parts.size() > 3) return fail("delay needs :milliseconds[:count]");
    char* end = nullptr;
    const double ms = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || *end != '\0' || ms < 0) return fail("bad delay");
    int count = -1;
    if (parts.size() == 3 && !parse_count(parts[2], count)) return fail("bad count");
    arm(name, FailpointMode::kDelay, ms, count);
    return true;
  }
  if (mode == "crash-once") {
    if (parts.size() != 1) return fail("crash-once takes no arguments");
    arm(name, FailpointMode::kCrashOnce, 0.0, 1);
    return true;
  }
  if (mode == "off") {
    if (parts.size() != 1) return fail("off takes no arguments");
    disarm(name);
    return true;
  }
  return fail(cat("unknown mode '", mode, "' (error|delay|crash-once|off)"));
}

std::size_t FailpointRegistry::arm_from_env(const char* variable) {
  const char* value = std::getenv(variable);
  if (value == nullptr || *value == '\0') return 0;
  std::size_t armed = 0;
  for (const std::string& spec : split(value, ',')) {
    if (trim(spec).empty()) continue;
    std::string error;
    if (arm_spec(spec, &error)) {
      ++armed;
    } else {
      std::fprintf(stderr, "warning: %s: %s\n", variable, error.c_str());
    }
  }
  return armed;
}

bool FailpointRegistry::disarm(const std::string& name) {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = points_.find(name);
  if (it == points_.end()) return false;
  if (it->second.mode != FailpointMode::kOff) {
    it->second.mode = FailpointMode::kOff;
    active_points_.fetch_sub(1, std::memory_order_relaxed);
  }
  return true;
}

void FailpointRegistry::reset() {
  std::lock_guard<std::mutex> guard(lock_);
  for (auto& [name, point] : points_) {
    if (point.mode != FailpointMode::kOff) active_points_.fetch_sub(1, std::memory_order_relaxed);
  }
  points_.clear();
}

std::vector<FailpointRegistry::Info> FailpointRegistry::list() const {
  std::lock_guard<std::mutex> guard(lock_);
  std::vector<Info> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) {
    Info info;
    info.name = name;
    info.mode = point.mode;
    info.delay_ms = point.delay_ms;
    info.remaining = point.remaining;
    info.hits = point.hits;
    info.fires = point.fires;
    out.push_back(std::move(info));
  }
  return out;
}

void FailpointRegistry::declare(std::string name) {
  DSLAYER_REQUIRE(!name.empty(), "failpoint name must not be empty");
  std::lock_guard<std::mutex> guard(lock_);
  declared_.insert(std::move(name));
}

std::vector<FailpointRegistry::Info> FailpointRegistry::list_declared() const {
  std::lock_guard<std::mutex> guard(lock_);
  std::vector<Info> out;
  out.reserve(points_.size() + declared_.size());
  auto touched = points_.begin();
  auto declared = declared_.begin();
  const auto push_point = [&out](const std::string& name, const Point& point) {
    Info info;
    info.name = name;
    info.mode = point.mode;
    info.delay_ms = point.delay_ms;
    info.remaining = point.remaining;
    info.hits = point.hits;
    info.fires = point.fires;
    out.push_back(std::move(info));
  };
  // Sorted merge of the touched map and the declared catalog (both are
  // ordered); a site present in both renders once, with its counters.
  while (touched != points_.end() || declared != declared_.end()) {
    if (declared == declared_.end() ||
        (touched != points_.end() && touched->first < *declared)) {
      push_point(touched->first, touched->second);
      ++touched;
    } else if (touched == points_.end() || *declared < touched->first) {
      Info info;
      info.name = *declared;
      out.push_back(std::move(info));
      ++declared;
    } else {
      push_point(touched->first, touched->second);
      ++touched;
      ++declared;
    }
  }
  return out;
}

std::uint64_t FailpointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FailpointRegistry::fires(const std::string& name) const {
  std::lock_guard<std::mutex> guard(lock_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.fires;
}

void FailpointRegistry::evaluate(const char* site) {
  FailpointMode mode = FailpointMode::kOff;
  double delay_ms = 0.0;
  {
    std::lock_guard<std::mutex> guard(lock_);
    Point& point = points_[site];  // hit counters exist for armed-registry hits
    ++point.hits;
    if (point.mode == FailpointMode::kOff) return;
    if (point.remaining > 0 && --point.remaining == 0) {
      // Last permitted fire: self-disarm before acting, so a crash-once
      // point never re-crashes a respawned handler in the same process.
      mode = point.mode;
      delay_ms = point.delay_ms;
      point.mode = FailpointMode::kOff;
      active_points_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      mode = point.mode;
      delay_ms = point.delay_ms;
    }
    ++point.fires;
  }
  // Act outside the registry lock: a delay must not serialize other sites,
  // and a throw must not leave the lock held.
  switch (mode) {
    case FailpointMode::kOff:
      return;
    case FailpointMode::kError:
      throw FailpointError(cat("failpoint '", site, "' fired"));
    case FailpointMode::kDelay:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay_ms));
      return;
    case FailpointMode::kCrashOnce:
      std::fprintf(stderr, "failpoint '%s' fired in crash-once mode: aborting\n", site);
      std::fflush(stderr);
      std::abort();
  }
}

}  // namespace dslayer::support
