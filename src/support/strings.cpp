#include "support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace dslayer {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace dslayer
