// Functional (cycle-level) simulators for the modular-multiplier cores.
//
// The structural models in modmul_design.hpp predict area/clock/cycles; the
// simulators here execute the same digit-serial algorithms on real operands
// so the cores are verified implementations, not datasheets. Tests check
// the simulators against the bigint reference arithmetic, and check that
// the iteration counts they report match the cycle model of SliceDesign.
#pragma once

#include "bigint/biguint.hpp"

namespace dslayer::rtl {

/// Outcome of a digit-serial simulation.
struct SimResult {
  bigint::BigUint value;      ///< computed residue, < m
  unsigned iterations = 0;    ///< main-loop digit iterations executed
  unsigned corrections = 0;   ///< final conditional subtractions taken
};

/// Digit-serial radix-r Montgomery multiplication, exactly the datapath of
/// Fig. 10: n+1 iterations of R := (R + Ai*B + Qi*M) / r with the quotient
/// digit from the precomputed -M^-1 mod r.
///
/// Returns a*b*r^-(n+1) mod m where n+1 is the reported iteration count and
/// n = number of radix-r digits of m. Requires odd m, a < m, b < m, radix a
/// power of two >= 2.
SimResult simulate_montgomery(const bigint::BigUint& a, const bigint::BigUint& b,
                              const bigint::BigUint& m, unsigned radix);

/// Digit-serial radix-r Brickell multiplication: MSB-first scan with a
/// mod-M reduction after every partial product. Returns a*b mod m exactly;
/// works for even moduli too.
SimResult simulate_brickell(const bigint::BigUint& a, const bigint::BigUint& b,
                            const bigint::BigUint& m, unsigned radix);

/// Convenience: a plain a*b mod m through the Montgomery datapath,
/// including the domain conversions (two extra passes through the core,
/// exactly how the coprocessor of [10] uses the block).
bigint::BigUint montgomery_hw_modmul(const bigint::BigUint& a, const bigint::BigUint& b,
                                     const bigint::BigUint& m, unsigned radix);

}  // namespace dslayer::rtl
