#include "rtl/modmul_design.hpp"

#include <bit>
#include <cmath>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::rtl {

using tech::GateEval;

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kMontgomery: return "Montgomery";
    case Algorithm::kBrickell: return "Brickell";
  }
  return "?";
}

std::string to_string(AdderKind a) {
  switch (a) {
    case AdderKind::kCarryLookahead: return "CLA";
    case AdderKind::kCarrySave: return "CSA";
    case AdderKind::kRipple: return "RCA";
  }
  return "?";
}

std::string to_string(MultiplierKind m) {
  switch (m) {
    case MultiplierKind::kNone: return "N/A";
    case MultiplierKind::kArray: return "MUL";
    case MultiplierKind::kMuxBased: return "MUX";
  }
  return "?";
}

unsigned SliceConfig::digit_bits() const {
  DSLAYER_REQUIRE(radix >= 2 && (radix & (radix - 1)) == 0, "radix must be a power of two >= 2");
  return static_cast<unsigned>(std::countr_zero(radix));
}

unsigned SliceConfig::digits(unsigned eol_bits) const {
  const unsigned db = digit_bits();
  return (eol_bits + db - 1) / db;
}

SliceDesign::SliceDesign(SliceConfig config) : config_(config) {
  const unsigned w = config_.slice_width;
  const unsigned db = config_.digit_bits();
  const tech::Technology& t = config_.technology;

  if (w < 4 || w > 4096) {
    throw DefinitionError(cat("slice width ", w, " out of the supported 4..4096 range"));
  }
  if (config_.radix == 2 && config_.multiplier != MultiplierKind::kNone) {
    throw DefinitionError(
        "radix-2 designs have single-bit digits: a digit multiplier is meaningless");
  }
  if (config_.radix >= 4 && config_.multiplier == MultiplierKind::kNone) {
    throw DefinitionError(
        cat("radix-", config_.radix, " designs need a digit multiplier (MUL or MUX)"));
  }
  if (db > w) {
    throw DefinitionError("digit width exceeds the slice width");
  }

  const bool montgomery = config_.algorithm == Algorithm::kMontgomery;
  const bool carry_save = config_.adder == AdderKind::kCarrySave;

  const auto add_part = [this](std::string name, GateEval eval, bool critical) {
    area_ += eval.area;
    if (critical) clock_ns_ += eval.delay_ns;
    parts_.push_back(Part{std::move(name), eval, critical});
  };

  // --- registers -----------------------------------------------------------
  // Operand registers B and M (w bits each); the running residue R, which is
  // double-width when kept in redundant carry-save form; small digit buffers
  // for the scanned multiplier digit Ai (and Qi for Montgomery).
  const unsigned r_bits = carry_save ? 2 * w : w;
  const unsigned digit_buffers = montgomery ? 2 * db + 4 : db + 3;
  add_part("R register (residue)", tech::register_bank(r_bits, t), true);
  add_part("B register (multiplicand)", tech::register_bank(w, t), false);
  add_part("M register (modulus)", tech::register_bank(w, t), false);
  add_part("digit buffers", tech::register_bank(digit_buffers, t), false);

  // --- partial-product generation -------------------------------------------
  if (config_.radix == 2) {
    // Ai * B is a row of AND gates folded into a 2:1 mux (select 0 or B).
    add_part("partial-product mux", tech::mux2(w, t), true);
  } else if (config_.multiplier == MultiplierKind::kArray) {
    add_part("array digit multiplier", tech::array_digit_multiplier(db, w, t), true);
  } else {
    add_part("mux-based digit multiplier", tech::mux_digit_multiplier(db, w, t), true);
    add_part("multiple precompute unit", tech::multiple_precompute_unit(db, t), false);
  }

  // --- accumulation ----------------------------------------------------------
  switch (config_.adder) {
    case AdderKind::kCarryLookahead:
      add_part("carry-lookahead adder", tech::carry_lookahead_adder(w, t), true);
      break;
    case AdderKind::kCarrySave:
      // Two 3:2 compressor rows fold the partial product and (for
      // Montgomery) the Qi*M term into the redundant residue.
      add_part("carry-save row 0", tech::carry_save_row(w, t), true);
      add_part("carry-save row 1", tech::carry_save_row(w, t), true);
      break;
    case AdderKind::kRipple:
      add_part("ripple-carry adder", tech::ripple_carry_adder(w, t), true);
      break;
  }

  if (montgomery) {
    // Fig. 10 line 4: quotient-digit computation from R0 and (r - M0)^-1.
    add_part("Montgomery Q logic", tech::montgomery_q_logic(db, t), true);
  } else {
    // Brickell reduces by magnitude comparison at every step; even with
    // carry-save accumulation the comparison needs resolved carries, which
    // is the unbounded-carry-propagation cost CC2's sibling constraint
    // describes for CLA Montgomery multipliers.
    add_part("reduction comparator", tech::comparator(w, t), true);
    add_part("subtract/select mux", tech::mux2(w, t), true);
    if (carry_save) {
      // A resolving adder turns the redundant residue into conventional
      // form ahead of the comparator.
      add_part("carry-resolve adder", tech::carry_lookahead_adder(w, t), false);
    }
  }

  // --- control ---------------------------------------------------------------
  unsigned states = 8;
  if (config_.radix >= 4) states += 4;
  if (!montgomery) states += 8;
  add_part("control FSM", tech::control_fsm(states, t), false);

  // Clock closes through the registers: add clock->q is already counted via
  // the R register's critical flag? The register's delay is clk->q, counted
  // once via the R register part; add the fanout broadcast and setup time.
  clock_ns_ += tech::fanout_delay_ns(w, t);
  clock_ns_ += tech::register_setup_ns(t);

  // Routing / wiring overhead of the placed slice.
  area_ *= 1.05;
}

double SliceDesign::cycles(unsigned eol_bits) const {
  DSLAYER_REQUIRE(eol_bits >= 1, "operand length must be positive");
  const double digits = config_.digits(eol_bits);
  const bool carry_save = config_.adder == AdderKind::kCarrySave;
  if (config_.algorithm == Algorithm::kMontgomery) {
    // FOR i = 1 TO n+1 (Fig. 10), plus carry-save resolution at the end.
    return digits + 1 + (carry_save ? 2 : 0);
  }
  // Brickell: n digit iterations plus the trailing compare/subtract
  // pipeline (reduction lags accumulation by several stages).
  return digits + 8 + (carry_save ? 2 : 0);
}

double SliceDesign::latency_ns(unsigned eol_bits) const {
  return cycles(eol_bits) * clock_ns_;
}

MultiplierDesign::MultiplierDesign(SliceConfig slice, unsigned num_slices)
    : slice_(slice), num_slices_(num_slices) {
  DSLAYER_REQUIRE(num_slices >= 1, "a multiplier needs at least one slice");
}

MultiplierDesign MultiplierDesign::for_operand_length(SliceConfig slice, unsigned eol_bits) {
  DSLAYER_REQUIRE(eol_bits >= 1, "operand length must be positive");
  const unsigned w = slice.slice_width;
  return MultiplierDesign(slice, (eol_bits + w - 1) / w);
}

double MultiplierDesign::area() const {
  // Slices, inter-slice pipeline latches/wiring (2% per slice), and the
  // shared operand-load / result-drain control.
  return slice_.area() * num_slices_ * 1.02 + 1500.0 * slice_.config().technology.area_scale;
}

double MultiplierDesign::cycles(unsigned eol_bits) const {
  return slice_.cycles(eol_bits) + num_slices_;
}

double MultiplierDesign::latency_ns(unsigned eol_bits) const {
  return cycles(eol_bits) * clock_ns();
}

double MultiplierDesign::power_mw() const {
  // alpha * C * f: switched capacitance tracks area; frequency is the
  // design's own maximum rate; 0.15 is the datapath activity factor.
  const double freq_mhz = 1000.0 / clock_ns();
  return slice_.config().technology.power_coeff * (area() / 1000.0) * freq_mhz * 0.15 / 100.0;
}

std::string MultiplierDesign::label(int design_no) const {
  return cat("#", design_no, "_", slice_.config().slice_width);
}

const std::vector<CatalogEntry>& table1_catalog() {
  static const std::vector<CatalogEntry> kCatalog = {
      {1, Algorithm::kMontgomery, 2, AdderKind::kCarryLookahead, MultiplierKind::kNone},
      {2, Algorithm::kMontgomery, 2, AdderKind::kCarrySave, MultiplierKind::kNone},
      {3, Algorithm::kMontgomery, 4, AdderKind::kCarryLookahead, MultiplierKind::kArray},
      {4, Algorithm::kMontgomery, 4, AdderKind::kCarrySave, MultiplierKind::kArray},
      {5, Algorithm::kMontgomery, 4, AdderKind::kCarrySave, MultiplierKind::kMuxBased},
      {6, Algorithm::kMontgomery, 4, AdderKind::kCarryLookahead, MultiplierKind::kMuxBased},
      {7, Algorithm::kBrickell, 2, AdderKind::kCarryLookahead, MultiplierKind::kNone},
      {8, Algorithm::kBrickell, 2, AdderKind::kCarrySave, MultiplierKind::kNone},
  };
  return kCatalog;
}

SliceConfig make_config(const CatalogEntry& entry, unsigned slice_width,
                        const tech::Technology& technology) {
  SliceConfig config;
  config.algorithm = entry.algorithm;
  config.radix = entry.radix;
  config.adder = entry.adder;
  config.multiplier = entry.multiplier;
  config.slice_width = slice_width;
  config.technology = technology;
  return config;
}

}  // namespace dslayer::rtl
