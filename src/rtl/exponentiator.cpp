#include "rtl/exponentiator.hpp"

#include "bigint/modular.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::rtl {

std::string to_string(ExpMethod m) {
  switch (m) {
    case ExpMethod::kBinary: return "Binary";
    case ExpMethod::kMary4: return "m-ary-4";
    case ExpMethod::kMary16: return "m-ary-16";
  }
  return "?";
}

unsigned window_bits(ExpMethod m) {
  switch (m) {
    case ExpMethod::kBinary: return 1;
    case ExpMethod::kMary4: return 2;
    case ExpMethod::kMary16: return 4;
  }
  return 1;
}

ExponentiatorDesign::ExponentiatorDesign(MultiplierDesign multiplier, ExpMethod method)
    : multiplier_(std::move(multiplier)), method_(method) {}

double ExponentiatorDesign::multiplications(unsigned eol_bits) const {
  return bigint::MontgomeryContext::mary_multiplications(eol_bits, window_bits(method_));
}

double ExponentiatorDesign::modexp_us(unsigned eol_bits) const {
  DSLAYER_REQUIRE(multiplier_.datapath_bits() >= eol_bits,
                  "multiplier datapath narrower than the operand");
  return multiplications(eol_bits) * multiplier_.latency_ns(eol_bits) / 1000.0;
}

double ExponentiatorDesign::area(unsigned eol_bits) const {
  DSLAYER_REQUIRE(multiplier_.datapath_bits() >= eol_bits,
                  "multiplier datapath narrower than the operand");
  const tech::Technology& t = multiplier_.slice().config().technology;
  // Window table: 2^w - 1 operand-sized entries in dense storage (~1/4 of
  // flip-flop cost per bit), absent for the binary method.
  const unsigned entries = (1u << window_bits(method_)) - 1;
  const double table =
      method_ == ExpMethod::kBinary ? 0.0 : 27.0 * entries * eol_bits * t.area_scale;
  // Exponent scan controller: shift register for E plus the FSM.
  const double controller =
      tech::register_bank(eol_bits, t).area + tech::control_fsm(12, t).area;
  return multiplier_.area() + table + controller;
}

double ExponentiatorDesign::power_mw(unsigned eol_bits) const {
  const tech::Technology& t = multiplier_.slice().config().technology;
  const double freq_mhz = 1000.0 / multiplier_.clock_ns();
  return t.power_coeff * (area(eol_bits) / 1000.0) * freq_mhz * 0.15 / 100.0;
}

std::string ExponentiatorDesign::label(int multiplier_design_no) const {
  return cat(multiplier_.label(multiplier_design_no), "/", to_string(method_));
}

}  // namespace dslayer::rtl
