// Modular exponentiation coprocessor designs.
//
// The paper's case study is framed as selecting a modular multiplier "so as
// to meet the specifications given in [11] for a modular exponentiation
// coprocessor" [10], and Section 6 notes that the same decomposition
// mechanisms support "the transition between the conceptual design of the
// main architectural component (i.e., the coprocessor) and the conceptual
// design of its critical blocks". This module models that main component:
// a sliced modular multiplier (rtl::MultiplierDesign) driven by an
// exponent-scanning controller.
//
// The scanning method is a design issue of the Exponentiator CDO:
//   Binary   — square-and-multiply, ~1.5 multiplications per exponent bit,
//              no storage beyond the operand registers;
//   m-ary(w) — fixed w-bit windows: 2^w - 2 precomputation multiplications
//              plus table storage of 2^w - 1 operand-sized entries, for
//              ~(1 + (1 - 2^-w)/w) multiplications per bit. Classic
//              time/storage trade-off (Koc/Acar/Kaliski analyze exactly
//              this space).

#pragma once

#include "rtl/modmul_design.hpp"

namespace dslayer::rtl {

/// Exponent-scanning methods (options of "ExponentiationMethod").
enum class ExpMethod {
  kBinary,  // window of 1 bit
  kMary4,   // 2-bit windows (4-ary)
  kMary16,  // 4-bit windows (16-ary)
};

std::string to_string(ExpMethod m);

/// Window width in bits for a method.
unsigned window_bits(ExpMethod m);

/// All methods, for sweeps.
inline constexpr ExpMethod kAllExpMethods[] = {ExpMethod::kBinary, ExpMethod::kMary4,
                                               ExpMethod::kMary16};

/// A complete M^E mod N coprocessor: multiplier + exponent controller +
/// (for m-ary) the precomputed-multiple store.
class ExponentiatorDesign {
 public:
  /// The multiplier must cover the operand length it will be used at
  /// (checked in latency/area queries against the eol argument).
  ExponentiatorDesign(MultiplierDesign multiplier, ExpMethod method);

  const MultiplierDesign& multiplier() const { return multiplier_; }
  ExpMethod method() const { return method_; }

  /// Expected modular-multiplication count for an eol-bit exponent
  /// (random exponent model; includes Montgomery domain conversions).
  double multiplications(unsigned eol_bits) const;

  /// End-to-end delay of one eol-bit modular exponentiation, in
  /// microseconds. Throws PreconditionError if the multiplier datapath is
  /// narrower than eol_bits.
  double modexp_us(unsigned eol_bits) const;

  /// Multiplier + window table storage + exponent controller.
  double area(unsigned eol_bits) const;

  /// Dynamic power at the multiplier's clock rate (mW).
  double power_mw(unsigned eol_bits) const;

  /// Label like "#5_64/m-ary-16".
  std::string label(int multiplier_design_no) const;

 private:
  MultiplierDesign multiplier_;
  ExpMethod method_;
};

}  // namespace dslayer::rtl
