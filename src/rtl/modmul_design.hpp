// Structural models of hardware modular-multiplier cores.
//
// Table 1 of the paper evaluates eight alternative modular-multiplier slice
// designs, spanning the design issues of the Operator-Modular-Multiplier-
// Hardware CDO (Fig. 11): Algorithm {Montgomery, Brickell} x Radix {2, 4} x
// adder {carry-lookahead, carry-save} x digit multiplier {none, array,
// mux-based}, each synthesized at slice widths {8, 16, 32, 64, 128}. Full
// multipliers for encryption-sized operands (768/1024 bits, Req1) are built
// by composing EOL/width slices (Section 5.1.5 "Number of Slices" / "Slice
// Width" design issues).
//
// A SliceDesign composes the tech/ component library into a netlist summary
// (part list, total area, critical path -> clock) and a cycle-count model:
//
//   Montgomery: digits(EOL) + 1 iterations (Fig. 10's FOR i = 1 TO n+1),
//     plus 2 cycles to resolve the carry-save redundancy where applicable;
//   Brickell:   digits(EOL) iterations plus a compare/subtract epilogue
//     (the trailing reduction pipeline), plus the same carry-save resolve.
//
// Composed multipliers add one pipeline-fill cycle per slice. Slice
// boundaries are latched in carry-save form, so the composed clock equals
// the slice clock (the slice width, not the operand length, bounds the
// internal carry chains — the reason slicing exists, Section 5.1.5).
#pragma once

#include <string>
#include <vector>

#include "tech/components.hpp"
#include "tech/technology.hpp"

namespace dslayer::rtl {

/// Modular-multiplication algorithm (generalized design issue DI2).
enum class Algorithm { kMontgomery, kBrickell };

/// Adder implementation for the accumulation inside the loop.
enum class AdderKind { kCarryLookahead, kCarrySave, kRipple };

/// Digit-multiplier implementation (radix >= 4 only; radix 2 needs none).
enum class MultiplierKind { kNone, kArray, kMuxBased };

std::string to_string(Algorithm a);
std::string to_string(AdderKind a);
std::string to_string(MultiplierKind m);

/// Full configuration of one slice design.
struct SliceConfig {
  Algorithm algorithm = Algorithm::kMontgomery;
  unsigned radix = 2;  ///< power of two >= 2
  AdderKind adder = AdderKind::kCarrySave;
  MultiplierKind multiplier = MultiplierKind::kNone;
  unsigned slice_width = 32;  ///< bits processed by one slice
  tech::Technology technology;

  /// Bits consumed per iteration: log2(radix).
  unsigned digit_bits() const;

  /// Number of radix-r digits of an eol-bit operand.
  unsigned digits(unsigned eol_bits) const;
};

/// One named component instance in the slice netlist summary.
struct Part {
  std::string name;
  tech::GateEval eval;
  bool on_critical_path = false;
};

/// Gate-level evaluation of one modular-multiplier slice.
class SliceDesign {
 public:
  /// Builds and validates the netlist; throws DefinitionError on
  /// inconsistent configurations (e.g. radix 2 with an array multiplier —
  /// exactly the kind of combination consistency constraints eliminate).
  explicit SliceDesign(SliceConfig config);

  const SliceConfig& config() const { return config_; }

  /// Component breakdown (for reports and the netlist tests).
  const std::vector<Part>& parts() const { return parts_; }

  /// Total silicon area (technology area units, Table 1 "Area").
  double area() const { return area_; }

  /// Minimum clock period (critical path + setup; Table 1 "Clk", ns).
  double clock_ns() const { return clock_ns_; }

  /// Iterations to multiply eol-bit operands on this single slice.
  double cycles(unsigned eol_bits) const;

  /// cycles * clock (Table 1 "Latency" uses eol == slice_width).
  double latency_ns(unsigned eol_bits) const;

 private:
  SliceConfig config_;
  std::vector<Part> parts_;
  double area_ = 0.0;
  double clock_ns_ = 0.0;
};

/// A complete modular multiplier: `num_slices` pipelined slices covering
/// num_slices * slice_width operand bits.
class MultiplierDesign {
 public:
  MultiplierDesign(SliceConfig slice, unsigned num_slices);

  /// Convenience: enough slices for eol-bit operands (ceil division).
  static MultiplierDesign for_operand_length(SliceConfig slice, unsigned eol_bits);

  const SliceDesign& slice() const { return slice_; }
  unsigned num_slices() const { return num_slices_; }

  /// Total operand bits the datapath covers.
  unsigned datapath_bits() const { return num_slices_ * slice_.config().slice_width; }

  /// Slices + inter-slice wiring + shared control.
  double area() const;

  /// Composed clock equals the slice clock (carry-save slice boundaries).
  double clock_ns() const { return slice_.clock_ns(); }

  /// Algorithm iterations + epilogue + one fill cycle per slice.
  double cycles(unsigned eol_bits) const;

  /// End-to-end delay of one eol-bit modular multiplication (ns).
  double latency_ns(unsigned eol_bits) const;

  /// Dynamic power at the design's own maximum clock rate (mW) — the
  /// paper's Section 6 power extension.
  double power_mw() const;

  /// Paper-style label, e.g. "#2_64" (design number, slice width).
  std::string label(int design_no) const;

 private:
  SliceDesign slice_;
  unsigned num_slices_;
};

/// One row of the paper's Table 1 catalog (designs #1..#8).
struct CatalogEntry {
  int design_no;
  Algorithm algorithm;
  unsigned radix;
  AdderKind adder;
  MultiplierKind multiplier;
};

/// The eight alternative designs of Table 1, in paper order.
const std::vector<CatalogEntry>& table1_catalog();

/// The slice widths Table 1 sweeps.
inline constexpr unsigned kTable1SliceWidths[] = {8, 16, 32, 64, 128};

/// Builds the SliceConfig for a catalog entry at a given width/technology.
SliceConfig make_config(const CatalogEntry& entry, unsigned slice_width,
                        const tech::Technology& technology);

}  // namespace dslayer::rtl
