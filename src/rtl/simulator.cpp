#include "rtl/simulator.hpp"

#include <bit>

#include "bigint/modular.hpp"
#include "support/error.hpp"

namespace dslayer::rtl {

using bigint::BigUint;

namespace {

unsigned digit_bits_of(unsigned radix) {
  DSLAYER_REQUIRE(radix >= 2 && (radix & (radix - 1)) == 0, "radix must be a power of two >= 2");
  return static_cast<unsigned>(std::countr_zero(radix));
}

/// Digit d (0 = least significant) of x in radix 2^db.
std::uint32_t digit_of(const BigUint& x, unsigned d, unsigned db) {
  std::uint32_t v = 0;
  for (unsigned k = db; k-- > 0;) {
    v = static_cast<std::uint32_t>((v << 1) | (x.bit(d * db + k) ? 1u : 0u));
  }
  return v;
}

}  // namespace

SimResult simulate_montgomery(const BigUint& a, const BigUint& b, const BigUint& m,
                              unsigned radix) {
  DSLAYER_REQUIRE(m.is_odd(), "Montgomery requires an odd modulus (CC1)");
  DSLAYER_REQUIRE(a < m && b < m, "operands must be reduced");
  const unsigned db = digit_bits_of(radix);
  const unsigned n = (m.bit_length() + db - 1) / db;  // digits of the modulus

  // Precompute -M^-1 mod r (the "(r - M0)^-1" constant of Fig. 10 line 4).
  const BigUint r_val(static_cast<std::uint64_t>(radix));
  const BigUint m_mod_r = m % r_val;
  const std::uint64_t minv =
      bigint::mod_inverse(m_mod_r, r_val).to_u64();  // M^-1 mod r
  const std::uint64_t neg_minv = (radix - minv) % radix;  // -M^-1 mod r

  SimResult result;
  BigUint r_acc;  // the residue register R
  for (unsigned i = 0; i <= n; ++i) {  // FOR i = 1 TO n+1
    const std::uint32_t ai = digit_of(a, i, db);
    BigUint t = r_acc;
    if (ai != 0) t += b * BigUint(ai);
    // Qi := (T0 * (r - M0)^-1) mod r
    const std::uint64_t t0 = t.is_zero() ? 0 : (t.limb(0) & (radix - 1));
    const std::uint64_t qi = (t0 * neg_minv) & (radix - 1);
    if (qi != 0) t += m * BigUint(qi);
    t >>= db;  // div r — exact by construction of qi
    r_acc = std::move(t);
    ++result.iterations;
  }
  // IF (R > M) THEN R := R - M (lines 5-6); R < 2M is guaranteed.
  while (r_acc >= m) {
    r_acc -= m;
    ++result.corrections;
  }
  result.value = std::move(r_acc);
  return result;
}

SimResult simulate_brickell(const BigUint& a, const BigUint& b, const BigUint& m,
                            unsigned radix) {
  DSLAYER_REQUIRE(!m.is_zero(), "modulus must be positive");
  DSLAYER_REQUIRE(a < m && b < m, "operands must be reduced");
  const unsigned db = digit_bits_of(radix);
  const unsigned bits = a.bit_length();
  const unsigned n = bits == 0 ? 0 : (bits + db - 1) / db;

  SimResult result;
  BigUint r_acc;
  for (unsigned d = n; d-- > 0;) {
    r_acc <<= db;
    const std::uint32_t ad = digit_of(a, d, db);
    if (ad != 0) r_acc += b * BigUint(ad);
    // mod-M reduction at every partial product; the residue before the
    // shift is < m, so at most `radix` subtractions are needed.
    while (r_acc >= m) {
      r_acc -= m;
      ++result.corrections;
    }
    ++result.iterations;
  }
  result.value = std::move(r_acc);
  return result;
}

BigUint montgomery_hw_modmul(const BigUint& a, const BigUint& b, const BigUint& m,
                             unsigned radix) {
  const unsigned db = digit_bits_of(radix);
  const unsigned n = (m.bit_length() + db - 1) / db;
  // r^(n+1) mod m, then r^(2(n+1)) mod m: the conversion constant.
  BigUint r_pow{1};
  r_pow <<= db * (n + 1);
  const BigUint r2 = (r_pow % m) * (r_pow % m) % m;
  // ab * r^-(n+1), then * r^2(n+1) * r^-(n+1) = ab mod m.
  const SimResult product = simulate_montgomery(a % m, b % m, m, radix);
  const SimResult fixed = simulate_montgomery(product.value, r2 % m, m, radix);
  return fixed.value;
}

}  // namespace dslayer::rtl
