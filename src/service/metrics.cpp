#include "service/metrics.hpp"

#include <cstdio>
#include <map>

#include "storage/counters.hpp"
#include "support/failpoint.hpp"
#include "support/simd.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace dslayer::service {

namespace {

/// %.9g round-trips every boundary/sum we emit and never produces the
/// locale-dependent formats Prometheus rejects.
std::string number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Escapes a label value per the text format: backslash, quote, newline.
std::string label_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

void family(std::string& out, std::string_view name, std::string_view help,
            std::string_view type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void sample(std::string& out, std::string_view name, std::uint64_t value) {
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void sample(std::string& out, std::string_view name, double value) {
  out += name;
  out += ' ';
  out += number(value);
  out += '\n';
}

/// One labeled histogram series from a telemetry snapshot: elided empty
/// buckets, cumulative counts, le in seconds, the mandatory +Inf bucket,
/// then _sum/_count.
void histogram_series(std::string& out, std::string_view name, const std::string& verb,
                      const telemetry::HistogramSnapshot& snapshot) {
  const std::string label = std::string("{verb=\"") + label_escape(verb) + "\",le=\"";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < snapshot.buckets.size(); ++i) {
    if (snapshot.buckets[i] == 0) continue;
    cumulative += snapshot.buckets[i];
    const double le_seconds =
        static_cast<double>(telemetry::bucket_upper_bound_ns(i)) / 1e9;
    out += name;
    out += "_bucket";
    out += label;
    out += number(le_seconds);
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  out += name;
  out += "_bucket";
  out += label;
  out += "+Inf\"} ";
  out += std::to_string(snapshot.count);
  out += '\n';
  out += name;
  out += "_sum{verb=\"";
  out += label_escape(verb);
  out += "\"} ";
  out += number(snapshot.total_us / 1e6);
  out += '\n';
  out += name;
  out += "_count{verb=\"";
  out += label_escape(verb);
  out += "\"} ";
  out += std::to_string(snapshot.count);
  out += '\n';
}

}  // namespace

std::string render_metrics(SessionManager& manager, RequestExecutor& executor,
                           const FrontEndStatsFn& front_end) {
  std::string out;
  out.reserve(4096);

  const RequestExecutor::Stats xs = executor.stats();
  family(out, "dslayer_requests_accepted_total", "Requests accepted by the executor queue.",
         "counter");
  sample(out, "dslayer_requests_accepted_total", xs.accepted);
  family(out, "dslayer_requests_executed_total",
         "Accepted requests completed with any terminal status.", "counter");
  sample(out, "dslayer_requests_executed_total", xs.executed);
  family(out, "dslayer_requests_rejected_total",
         "Submissions refused by backpressure (queue at capacity).", "counter");
  sample(out, "dslayer_requests_rejected_total", xs.rejected);
  family(out, "dslayer_requests_errors_total", "Completed requests that returned an error.",
         "counter");
  sample(out, "dslayer_requests_errors_total", xs.errors);
  family(out, "dslayer_requests_deadline_expired_total",
         "Requests answered deadline-exceeded (queued or mid-sweep).", "counter");
  sample(out, "dslayer_requests_deadline_expired_total", xs.deadline_expired);
  family(out, "dslayer_requests_shed_total",
         "Requests shed at dequeue after exceeding the queue-wait limit.", "counter");
  sample(out, "dslayer_requests_shed_total", xs.shed);
  family(out, "dslayer_queue_depth", "Requests accepted but not yet completed.", "gauge");
  sample(out, "dslayer_queue_depth", static_cast<std::uint64_t>(xs.queue_depth));
  family(out, "dslayer_queue_depth_peak", "High-water mark of the queue depth gauge.", "gauge");
  sample(out, "dslayer_queue_depth_peak", static_cast<std::uint64_t>(xs.peak_queue_depth));
  family(out, "dslayer_queue_wait_ewma_ms",
         "Exponentially weighted moving average of recent queue waits.", "gauge");
  sample(out, "dslayer_queue_wait_ewma_ms", executor.queue_wait_ewma_ms());

  // Info-style gauge: which columnar word-kernel path is serving traffic
  // (runtime dispatch — CPU features and the DSLAYER_SIMD override).
  family(out, "dslayer_simd_kernel",
         "Active columnar filter word-kernel ISA; the value is always 1.", "gauge");
  out += "dslayer_simd_kernel{kernel=\"";
  out += label_escape(support::simd::to_string(support::simd::kernels().kind));
  out += "\"} 1\n";

  const SessionManager::Stats ms = manager.stats();
  family(out, "dslayer_sessions_live", "Sessions currently open.", "gauge");
  sample(out, "dslayer_sessions_live", static_cast<std::uint64_t>(manager.session_count()));
  family(out, "dslayer_sessions_created_total", "Sessions created on first use.", "counter");
  sample(out, "dslayer_sessions_created_total", ms.created);
  family(out, "dslayer_sessions_closed_total", "Sessions closed explicitly.", "counter");
  sample(out, "dslayer_sessions_closed_total", ms.closed);
  family(out, "dslayer_sessions_evicted_total", "Sessions LRU-evicted at capacity.", "counter");
  sample(out, "dslayer_sessions_evicted_total", ms.evicted);
  family(out, "dslayer_session_commands_total", "Commands that reached a session engine.",
         "counter");
  sample(out, "dslayer_session_commands_total", ms.commands);
  family(out, "dslayer_session_migrations_total",
         "Sessions migrated across shared-layer epochs by journal replay.", "counter");
  sample(out, "dslayer_session_migrations_total", ms.migrations);
  family(out, "dslayer_session_migration_failures_total",
         "Epoch migrations that failed loudly (journal no longer replays).", "counter");
  sample(out, "dslayer_session_migration_failures_total", ms.migration_failures);
  family(out, "dslayer_sessions_restored_total",
         "Sessions rebuilt from a durable journal after a restart or eviction.", "counter");
  sample(out, "dslayer_sessions_restored_total", ms.restored);
  family(out, "dslayer_session_restore_failures_total",
         "Durable session journals that no longer replay against the catalog.", "counter");
  sample(out, "dslayer_session_restore_failures_total", ms.restore_failures);

  // Storage-layer durability counters (process-global: WAL, snapshots,
  // session journals, bulk import — zero everywhere without --data).
  const storage::StorageCounters& sc = storage::counters();
  family(out, "dslayer_storage_wal_appends_total",
         "Catalog mutation frames appended to the write-ahead journal.", "counter");
  sample(out, "dslayer_storage_wal_appends_total", sc.wal_appends.get());
  family(out, "dslayer_storage_wal_synced_bytes_total",
         "Journal bytes made durable by fsync.", "counter");
  sample(out, "dslayer_storage_wal_synced_bytes_total", sc.wal_synced_bytes.get());
  family(out, "dslayer_storage_snapshot_writes_total",
         "Catalog snapshots published (checkpoints).", "counter");
  sample(out, "dslayer_storage_snapshot_writes_total", sc.snapshot_writes.get());
  family(out, "dslayer_storage_snapshot_bytes_total",
         "Bytes written across all published snapshots.", "counter");
  sample(out, "dslayer_storage_snapshot_bytes_total", sc.snapshot_bytes.get());
  family(out, "dslayer_storage_snapshot_loads_total",
         "Snapshots loaded into a layer (boot and !restore).", "counter");
  sample(out, "dslayer_storage_snapshot_loads_total", sc.snapshot_loads.get());
  family(out, "dslayer_storage_recovery_replayed_records_total",
         "Journal records re-applied during recovery.", "counter");
  sample(out, "dslayer_storage_recovery_replayed_records_total",
         sc.recovery_replayed_records.get());
  family(out, "dslayer_storage_recovery_truncated_bytes_total",
         "Torn journal tail bytes dropped during recovery.", "counter");
  sample(out, "dslayer_storage_recovery_truncated_bytes_total",
         sc.recovery_truncated_bytes.get());
  family(out, "dslayer_storage_session_flushes_total",
         "Durable session journal writes (atomic save or append).", "counter");
  sample(out, "dslayer_storage_session_flushes_total", sc.session_flushes.get());
  family(out, "dslayer_storage_session_flush_failures_total",
         "Session journal writes that failed (durability degraded).", "counter");
  sample(out, "dslayer_storage_session_flush_failures_total",
         sc.session_flush_failures.get());
  family(out, "dslayer_storage_import_rows_total",
         "Cores parsed from bulk CSV imports.", "counter");
  sample(out, "dslayer_storage_import_rows_total", sc.import_rows.get());

  // Per-verb latency histograms. "request" is the all-verbs population,
  // exposed as verb="all"; "request.<verb>" becomes verb="<verb>".
  family(out, "dslayer_request_latency_seconds",
         "Request latency (queue wait + execution) by command verb, power-of-two buckets.",
         "histogram");
  for (const auto& [key, snapshot] : executor.histogram_snapshots()) {
    std::string verb;
    if (key == "request") {
      verb = "all";
    } else if (key.rfind("request.", 0) == 0) {
      verb = key.substr(8);
    } else {
      continue;  // not a request-latency histogram
    }
    histogram_series(out, "dslayer_request_latency_seconds", verb, snapshot);
  }

  if (front_end) {
    const FrontEndCounters net = front_end();
    family(out, "dslayer_net_connections_open", "Connections currently open.", "gauge");
    sample(out, "dslayer_net_connections_open",
           static_cast<std::uint64_t>(net.open_connections));
    family(out, "dslayer_net_connections_accepted_total", "Connections accepted.", "counter");
    sample(out, "dslayer_net_connections_accepted_total", net.accepted);
    family(out, "dslayer_net_connections_closed_total", "Connections fully closed.", "counter");
    sample(out, "dslayer_net_connections_closed_total", net.closed);
    family(out, "dslayer_net_connections_rejected_total",
           "Accepts refused at the connection cap.", "counter");
    sample(out, "dslayer_net_connections_rejected_total", net.rejected_connects);
    family(out, "dslayer_net_requests_total", "Well-formed requests submitted from the wire.",
           "counter");
    sample(out, "dslayer_net_requests_total", net.requests);
    family(out, "dslayer_net_responses_total", "Responses written to connection outboxes.",
           "counter");
    sample(out, "dslayer_net_responses_total", net.responses);
    family(out, "dslayer_net_invalid_lines_total", "Parse failures answered inline.", "counter");
    sample(out, "dslayer_net_invalid_lines_total", net.invalid_lines);
    family(out, "dslayer_net_oversized_lines_total", "Lines over the per-line byte cap.",
           "counter");
    sample(out, "dslayer_net_oversized_lines_total", net.oversized_lines);
    family(out, "dslayer_net_directives_total", "Directive sync points executed.", "counter");
    sample(out, "dslayer_net_directives_total", net.directives);
    family(out, "dslayer_net_idle_closed_total", "Connections closed by the idle sweep.",
           "counter");
    sample(out, "dslayer_net_idle_closed_total", net.idle_closed);
    family(out, "dslayer_net_slow_reader_closed_total",
           "Connections closed for unread output over the buffer cap.", "counter");
    sample(out, "dslayer_net_slow_reader_closed_total", net.slow_reader_closed);
    family(out, "dslayer_net_faulted_total",
           "Connections killed by io errors or injected faults.", "counter");
    sample(out, "dslayer_net_faulted_total", net.faulted);
  }

  const trace::TracerStats ts = trace::Tracer::instance().stats();
  family(out, "dslayer_traces_started_total", "Request traces created at ingress.", "counter");
  sample(out, "dslayer_traces_started_total", ts.started);
  family(out, "dslayer_traces_sampled_total",
         "Traces that won the sampling draw (deep spans + retention).", "counter");
  sample(out, "dslayer_traces_sampled_total", ts.sampled);
  family(out, "dslayer_traces_finished_total", "Traces finished by a front end.", "counter");
  sample(out, "dslayer_traces_finished_total", ts.finished);
  family(out, "dslayer_traces_slow_total",
         "Finished traces over the slow-request threshold.", "counter");
  sample(out, "dslayer_traces_slow_total", ts.slow);
  family(out, "dslayer_flight_records", "Slow-request flight records currently retained.",
         "gauge");
  sample(out, "dslayer_flight_records", ts.flight_records);
  family(out, "dslayer_flight_records_dropped_total",
         "Flight records evicted by the retention bound.", "counter");
  sample(out, "dslayer_flight_records_dropped_total", ts.flight_dropped);

  // Armed failpoints only — the registry lists what chaos has touched,
  // so a healthy process exposes no failpoint series at all.
  const auto failpoints = support::FailpointRegistry::instance().list();
  if (!failpoints.empty()) {
    family(out, "dslayer_failpoint_hits_total",
           "Times an armed failpoint site was reached.", "counter");
    for (const auto& info : failpoints) {
      out += "dslayer_failpoint_hits_total{site=\"" + label_escape(info.name) + "\"} " +
             std::to_string(info.hits) + "\n";
    }
    family(out, "dslayer_failpoint_fires_total",
           "Times an armed failpoint actually injected its fault.", "counter");
    for (const auto& info : failpoints) {
      out += "dslayer_failpoint_fires_total{site=\"" + label_escape(info.name) + "\"} " +
             std::to_string(info.fires) + "\n";
    }
  }

  out += "# EOF\n";
  return out;
}

}  // namespace dslayer::service
