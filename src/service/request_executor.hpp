// Bounded worker-pool executor for protocol requests.
//
// Shape: a fixed pool of worker threads over per-session strands. Each
// session has a FIFO inbox; a session with pending work is queued at most
// once on the shared ready queue, and one worker drains one session at a
// time. That preserves per-session request order (a designer's decide
// must not race their own retract) while letting different sessions
// execute in parallel on the shared layer's reader lock.
//
// Backpressure is explicit, not silent: the total number of queued
// requests is bounded by Options::queue_capacity. try_submit() refuses
// over-capacity work (the request is counted as rejected and the caller
// retries or reports); submit() blocks until capacity frees up. Nothing
// is ever dropped after acceptance: every accepted request completes with
// exactly one callback, whatever its fate.
//
// Fault tolerance (PR 5 wiring):
//   * Deadlines — a request with deadline_ms > 0 starts its clock at
//     submission. If it is already expired when a worker dequeues it, the
//     worker answers kDeadlineExceeded in O(µs) without acquiring a
//     session; otherwise the deadline is installed as the worker thread's
//     cooperative-cancellation deadline (support/cancel.hpp) so a long
//     candidates sweep unwinds mid-request via checkpoints.
//   * Shedding — with Options::max_queue_wait_ms set, a request that
//     waited longer than that in the queue is shed at dequeue (kRejected
//     / kOverloaded) with a retry-after hint derived from the EWMA queue
//     wait, converting silent latency collapse into explicit, retryable
//     refusals.
//   * Failpoints — "service.executor.enqueue" and
//     "service.executor.dequeue" (support/failpoint.hpp) inject faults at
//     the queue boundaries; workers translate any escaped exception into
//     a terminal kInternal response rather than dying.
//
// Telemetry (PR 2 wiring): the executor owns a telemetry::Telemetry hub.
// Per-request wall latency (queue wait + execution) feeds the "request"
// histogram and a per-command-kind "request.<verb>" histogram; stats()
// exposes the live queue-depth gauge, its high-water mark, and the
// accepted/rejected/error counters.
//
// Options::injected_latency_us simulates the paper's Fig. 1 deployment,
// where compliance queries consult remote IP-provider catalogs: each
// request sleeps that long before executing, modeling the round trip.
// The sleep overlaps across workers, so throughput scales with the pool
// even on machines with few cores (see bench/service_throughput.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.hpp"
#include "service/session_manager.hpp"
#include "support/cancel.hpp"
#include "support/telemetry.hpp"

namespace dslayer::service {

class RequestExecutor {
 public:
  struct Options {
    std::size_t workers = 2;
    std::size_t queue_capacity = 256;  ///< bound on accepted-but-unfinished requests
    double injected_latency_us = 0.0;  ///< simulated remote-catalog round trip
    /// Overload shed threshold: a request that waited in the queue longer
    /// than this is answered kRejected/kOverloaded at dequeue instead of
    /// executing late. 0 disables shedding.
    double max_queue_wait_ms = 0.0;
  };

  /// Completion callback; invoked exactly once per accepted request, on a
  /// worker thread. Must be thread-safe and must not call back into the
  /// executor.
  using Callback = std::function<void(Response)>;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t executed = 0;  ///< accepted requests completed (any status)
    std::uint64_t rejected = 0;  ///< try_submit refusals (backpressure)
    std::uint64_t errors = 0;    ///< completed requests that returned kError
    std::uint64_t deadline_expired = 0;  ///< kDeadlineExceeded responses
    std::uint64_t shed = 0;              ///< dequeued over max_queue_wait_ms
    std::size_t queue_depth = 0;       ///< accepted, not yet completed
    std::size_t peak_queue_depth = 0;  ///< high-water mark of the gauge
  };

  explicit RequestExecutor(SessionManager& manager);
  RequestExecutor(SessionManager& manager, Options options);
  ~RequestExecutor();  ///< shutdown() if still running

  RequestExecutor(const RequestExecutor&) = delete;
  RequestExecutor& operator=(const RequestExecutor&) = delete;

  /// Non-blocking submit. Returns false — and counts a rejection — when
  /// the queue is at capacity or the executor is shutting down; the
  /// request was not enqueued and the callback will never fire.
  bool try_submit(Request request, Callback done);

  /// Blocking submit: waits for queue capacity. Throws ServiceError if
  /// the executor is shut down while waiting.
  void submit(Request request, Callback done);

  /// Blocks until every accepted request has completed.
  void drain();

  /// Fences the queue (further try_submit() calls are rejected, blocked
  /// submit() calls throw), drains every already-accepted request, then
  /// joins the workers. Idempotent.
  void shutdown();

  Stats stats() const;

  /// Suggested client back-off before retrying a shed/rejected request:
  /// tracks the recent queue wait (EWMA), never below 1ms. Thread-safe.
  double retry_after_hint_ms() const;

  /// Per-request latency histograms ("request", "request.<verb>").
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Thread-safe raw-bucket snapshot of the request histograms, for the
  /// `!metrics` Prometheus exposition (takes telemetry_lock_ internally,
  /// unlike telemetry(), whose reads the caller must serialize).
  std::map<std::string, telemetry::HistogramSnapshot> histogram_snapshots() const;

  /// Current EWMA of recent queue waits (the retry-after signal), as a
  /// gauge for exposition. Thread-safe.
  double queue_wait_ewma_ms() const;

  const Options& options() const { return options_; }

 private:
  struct Item {
    Request request;
    Callback done;
    std::chrono::steady_clock::time_point enqueued;
    support::Deadline deadline;  ///< unset when the request has none
  };

  /// One session's FIFO inbox. `scheduled` is true while the strand sits
  /// on the ready queue or a worker is draining it — the at-most-once
  /// scheduling invariant behind per-session ordering.
  struct Strand {
    std::string session;
    std::deque<Item> inbox;
    bool scheduled = false;
  };

  void enqueue_locked(Item item);
  void worker_loop();
  Response execute(Item& item);

  SessionManager* manager_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable space_free_;
  std::condition_variable idle_;
  std::map<std::string, std::shared_ptr<Strand>> strands_;
  std::deque<std::shared_ptr<Strand>> ready_;
  std::size_t pending_ = 0;  ///< accepted, not yet completed
  std::size_t peak_pending_ = 0;
  bool stopping_ = false;

  mutable std::mutex telemetry_lock_;  ///< Telemetry::record_timing is not thread-safe
  telemetry::Telemetry telemetry_{1024};
  double ewma_queue_wait_ms_ = 0.0;  ///< guarded by telemetry_lock_

  RelaxedCounter accepted_;
  RelaxedCounter executed_;
  RelaxedCounter rejected_;
  RelaxedCounter errors_;
  RelaxedCounter deadline_expired_;
  RelaxedCounter shed_;

  std::vector<std::thread> workers_;
};

}  // namespace dslayer::service
