#include "service/batch_runner.hpp"

#include <chrono>
#include <condition_variable>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>
#include <vector>

#include "service/client.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/simd.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dslayer::service {

namespace {

void print_stats(const DirectiveContext& context, std::ostream& out) {
  SessionManager& manager = *context.manager;
  RequestExecutor& executor = *context.executor;
  const RequestExecutor::Stats xs = executor.stats();
  const SessionManager::Stats ms = manager.stats();
  out << "executor: accepted=" << xs.accepted << " executed=" << xs.executed
      << " rejected=" << xs.rejected << " errors=" << xs.errors
      << " deadline_expired=" << xs.deadline_expired << " shed=" << xs.shed
      << " depth=" << xs.queue_depth << " peak_depth=" << xs.peak_queue_depth << "\n";
  out << "sessions: live=" << manager.session_count() << " created=" << ms.created
      << " closed=" << ms.closed << " evicted=" << ms.evicted << " commands=" << ms.commands
      << " migrations=" << ms.migrations << " migration_failures=" << ms.migration_failures
      << " restored=" << ms.restored << " restore_failures=" << ms.restore_failures << "\n";
  out << "simd: kernel=" << support::simd::to_string(support::simd::kernels().kind) << "\n";
  if (context.front_end) {
    // Serve/net parity: network-mode operators see connection-lifecycle
    // counters here, not only through `!metrics`.
    const FrontEndCounters net = context.front_end();
    out << "net: open=" << net.open_connections << " accepted=" << net.accepted
        << " closed=" << net.closed << " rejected_connects=" << net.rejected_connects
        << " requests=" << net.requests << " responses=" << net.responses
        << " invalid_lines=" << net.invalid_lines << " oversized_lines=" << net.oversized_lines
        << " directives=" << net.directives << " idle_closed=" << net.idle_closed
        << " slow_reader_closed=" << net.slow_reader_closed << " faulted=" << net.faulted
        << "\n";
  }
  const auto& tracer = trace::Tracer::instance();
  if (tracer.enabled()) {
    const trace::TracerStats ts = tracer.stats();
    out << "traces: started=" << ts.started << " sampled=" << ts.sampled
        << " finished=" << ts.finished << " slow=" << ts.slow
        << " flight_records=" << ts.flight_records << " flight_dropped=" << ts.flight_dropped
        << "\n";
  }
  for (const auto& [name, t] : executor.telemetry().timings()) {
    out << "  " << name << "  n=" << t.count << "  p50=" << format_double(t.p50_us, 4)
        << "us  p95=" << format_double(t.p95_us, 4) << "us  p99=" << format_double(t.p99_us, 4)
        << "us  max=" << format_double(t.max_us, 4) << "us\n";
  }
}

/// Records the respond span around `write` and finishes the trace —
/// every terminal delivery path funnels through here exactly once.
template <typename WriteFn>
void respond_and_finish(const std::shared_ptr<trace::Trace>& trace, WriteFn&& write) {
  if (trace == nullptr) {
    write();
    return;
  }
  const std::uint32_t span = trace->open_span(trace::SpanKind::kRespond);
  write();
  trace->close_span(span);
  trace::Tracer::instance().finish(trace);
}

void print_failpoints(const std::vector<support::FailpointRegistry::Info>& infos,
                      std::ostream& out) {
  for (const auto& info : infos) {
    out << "  " << info.name << " mode=" << support::to_string(info.mode)
        << " hits=" << info.hits << " fires=" << info.fires;
    if (info.remaining >= 0) out << " remaining=" << info.remaining;
    if (info.delay_ms > 0) out << " delay_ms=" << info.delay_ms;
    out << "\n";
  }
}

void run_failpoint_directive(const std::vector<std::string>& words, std::ostream& out) {
  auto& registry = support::FailpointRegistry::instance();
  if (words.size() < 2) {
    // Bare `!failpoint`: list what is armed (chaos-run introspection).
    const auto infos = registry.list();
    if (infos.empty()) {
      out << "no failpoints armed\n";
      return;
    }
    print_failpoints(infos, out);
    return;
  }
  if (words[1] == "list") {
    // Every site compiled into the binary (the declared catalog), armed
    // or not — so operators need not know a site name a priori.
    print_failpoints(registry.list_declared(), out);
    return;
  }
  std::string error;
  if (registry.arm_spec(words[1], &error)) {
    out << "armed " << words[1] << "\n";
  } else {
    out << "error: " << error << "\n";
  }
}

}  // namespace

void begin_request_trace(Request& request, std::chrono::steady_clock::time_point received) {
  auto& tracer = trace::Tracer::instance();
  if (!tracer.enabled()) return;
  request.trace = tracer.start(request.session, request.id, received);
  if (request.trace == nullptr) return;
  const auto parsed = trace::Trace::Clock::now();
  const std::uint32_t ingress =
      request.trace->add_span(trace::SpanKind::kIngress, received, parsed);
  request.trace->add_span(trace::SpanKind::kParse, received, parsed, ingress);
}

void count_terminal(const Response& response, BatchSummary& summary) {
  switch (response.status) {
    case ResponseStatus::kOk: break;
    case ResponseStatus::kError: ++summary.errors; break;
    case ResponseStatus::kRejected: ++summary.rejected; break;
    case ResponseStatus::kDeadlineExceeded: ++summary.deadline_expired; break;
  }
}

bool run_directive(const DirectiveContext& context, const std::string& line, std::ostream& out) {
  SessionManager& manager = *context.manager;
  const auto words = split(std::string(trim(line)), ' ');
  const std::string& directive = words[0];
  if (directive == "!drain") {
    out << "drained\n";
  } else if (directive == "!sessions") {
    for (const auto& name : manager.session_names()) out << "  " << name << "\n";
  } else if (directive == "!stats") {
    print_stats(context, out);
  } else if (directive == "!metrics") {
    out << render_metrics(manager, *context.executor, context.front_end);
  } else if (directive == "!failpoint") {
    run_failpoint_directive(words, out);
  } else if (directive == "!snapshot") {
    if (context.durable == nullptr) {
      out << "error: no durable catalog (start with --data <dir>)\n";
      return false;
    }
    try {
      // The read lock gives the snapshot writer a quiescent layer
      // (mutators go through SharedLayer::write's exclusive lock) without
      // stalling concurrent readers.
      const auto reader = manager.shared().read_lock();
      const storage::SnapshotWriteReport report = context.durable->checkpoint();
      out << "snapshot: " << report.bytes << " bytes, " << report.cores << " cores, "
          << report.tables << " tables, seq " << context.durable->sequence() << "\n";
    } catch (const Error& e) {
      out << "error: snapshot failed: " << e.what() << "\n";
      return false;
    }
  } else if (directive == "!restore") {
    if (context.durable == nullptr) {
      out << "error: no durable catalog (start with --data <dir>)\n";
      return false;
    }
    try {
      storage::BootReport report;
      // A writer epoch: sessions migrate off the discarded state by
      // journal replay on their next command. kPreserve keeps the
      // snapshot-restored index instead of re-deriving it.
      const std::uint64_t epoch = manager.shared().write(
          [&](dsl::DesignSpaceLayer&) { report = context.durable->reload(); },
          SharedLayer::Reindex::kPreserve);
      out << "restored: snapshot=" << (report.loaded_snapshot ? "yes" : "no")
          << " replayed=" << report.replayed_records << " skipped=" << report.skipped_records
          << " cores=" << report.snapshot.cores << " epoch=" << epoch << "\n";
    } catch (const Error& e) {
      out << "error: restore failed: " << e.what() << "\n";
      return false;
    }
  } else if (directive == "!close") {
    if (words.size() < 2) {
      out << "error: usage: !close <session>\n";
      return false;
    }
    out << (manager.close(words[1]) ? "closed " : "no session ") << words[1] << "\n";
  } else {
    out << "error: unknown directive '" << directive
        << "' (try: !sessions, !stats, !metrics, !close <session>, !drain, "
           "!failpoint [list|<spec>], !snapshot, !restore)\n";
    return false;
  }
  return true;
}

bool run_directive(SessionManager& manager, RequestExecutor& executor, const std::string& line,
                   std::ostream& out) {
  DirectiveContext context;
  context.manager = &manager;
  context.executor = &executor;
  return run_directive(context, line, out);
}

BatchSummary run_batch(SessionManager& manager, RequestExecutor& executor, std::istream& in,
                       std::ostream& out, storage::DurableCatalog* durable) {
  DirectiveContext context;
  context.manager = &manager;
  context.executor = &executor;
  context.durable = durable;
  BatchSummary summary;
  // Submissions go through a retrying client: transient refusals (full
  // queue, shed, degraded layer, busy sessions) are retried with backoff
  // and only terminal responses land here.
  ServiceClient client(executor);

  // Responses arrive on worker/retry threads in completion order; the
  // batch contract is submission order, so they park here until a flush.
  std::mutex collect_lock;
  std::condition_variable room;
  std::map<std::uint64_t, Response> responses;
  std::size_t outstanding = 0;  // guarded by collect_lock

  // Drains the client (every request terminal) and prints everything
  // collected so far, in submission order. Runs at every directive (a
  // synchronization point — the directive must observe exactly the state
  // after the requests above it) and at end of input.
  const auto flush = [&] {
    client.drain();
    executor.drain();
    std::lock_guard<std::mutex> guard(collect_lock);
    for (const auto& [id, response] : responses) {
      count_terminal(response, summary);
      out << render_response(response);
    }
    responses.clear();
  };

  std::uint64_t next_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto received = std::chrono::steady_clock::now();
    if (is_directive(line)) {
      flush();
      run_directive(context, line, out);
      continue;
    }
    std::string parse_error;
    std::optional<Request> request = parse_request(line, &parse_error);
    if (!request.has_value()) {
      if (parse_error.empty()) continue;  // blank / comment
      Response bad = invalid_request_response(++next_id, parse_error);
      std::lock_guard<std::mutex> guard(collect_lock);
      responses.emplace(bad.id, std::move(bad));
      ++summary.requests;
      continue;
    }
    request->id = ++next_id;
    ++summary.requests;
    begin_request_trace(*request, received);
    {
      // Reader-side throttle: cap requests in flight at the executor's
      // queue capacity so a fast reader leans on backpressure instead of
      // ballooning the client's retry queue.
      std::unique_lock<std::mutex> guard(collect_lock);
      room.wait(guard, [&] { return outstanding < executor.options().queue_capacity; });
      ++outstanding;
    }
    // Batch mode renders output later (at a flush, in submission order),
    // so the trace finishes at terminal delivery without a respond span.
    auto request_trace = request->trace;
    client.submit(*request, [&collect_lock, &room, &responses, &outstanding,
                             request_trace](Response response) {
      trace::Tracer::instance().finish(request_trace);
      std::lock_guard<std::mutex> guard(collect_lock);
      responses.emplace(response.id, std::move(response));
      --outstanding;
      room.notify_one();
    });
  }
  flush();
  client.shutdown();
  return summary;
}

BatchSummary run_serve(SessionManager& manager, RequestExecutor& executor, std::istream& in,
                       std::ostream& out, storage::DurableCatalog* durable) {
  DirectiveContext context;
  context.manager = &manager;
  context.executor = &executor;
  context.durable = durable;
  BatchSummary summary;
  std::mutex out_lock;  // responses print whole from worker threads
  std::uint64_t next_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    const auto received = std::chrono::steady_clock::now();
    if (is_directive(line)) {
      // Drain before locking: in-flight requests finish by delivering
      // under out_lock, so draining while holding it would deadlock.
      executor.drain();
      std::lock_guard<std::mutex> guard(out_lock);
      run_directive(context, line, out);
      out.flush();
      continue;
    }
    std::string parse_error;
    std::optional<Request> request = parse_request(line, &parse_error);
    if (!request.has_value()) {
      if (parse_error.empty()) continue;  // blank / comment
      std::lock_guard<std::mutex> guard(out_lock);
      out << render_response(invalid_request_response(++next_id, parse_error));
      out.flush();
      ++summary.errors;
      continue;
    }
    request->id = ++next_id;
    ++summary.requests;
    begin_request_trace(*request, received);
    // Every executor-delivered terminal lands in the summary: rejections
    // the executor produced itself (shed at dequeue, busy sessions,
    // degraded layer) and expired deadlines used to vanish here, leaving
    // only the direct queue-full path below counted — so serve and batch
    // summaries disagreed for the same input.
    auto request_trace = request->trace;
    const auto deliver = [&out_lock, &out, &summary, request_trace](Response response) {
      respond_and_finish(request_trace, [&] {
        std::lock_guard<std::mutex> guard(out_lock);
        count_terminal(response, summary);
        out << render_response(response);
        out.flush();
      });
    };
    // Bounded retries make backpressure visible instead of blocking the
    // reader forever: after `kRetries` full queues the request is
    // reported rejected and the client may resubmit.
    constexpr int kRetries = 50;
    bool accepted = false;
    for (int attempt = 0; attempt < kRetries && !accepted; ++attempt) {
      accepted = executor.try_submit(*request, deliver);
      if (!accepted) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!accepted) {
      Response rejection;
      rejection.id = request->id;
      rejection.session = request->session;
      rejection.status = ResponseStatus::kRejected;
      rejection.code = ErrorCode::kOverloaded;
      rejection.retry_after_ms = executor.retry_after_hint_ms();
      rejection.output = "error: queue full — resubmit\n";
      respond_and_finish(request_trace, [&] {
        std::lock_guard<std::mutex> guard(out_lock);
        count_terminal(rejection, summary);
        out << render_response(rejection);
        out.flush();
      });
    }
  }
  executor.drain();
  return summary;
}

}  // namespace dslayer::service
