// Thread-safe shared access to one DesignSpaceLayer (DESIGN.md §9).
//
// The paper's Fig. 1 shows several designers and IP providers around one
// design space layer: designers explore (read) while providers update
// catalogs (write). SharedLayer turns that picture into a concurrency
// contract over the single-threaded DesignSpaceLayer:
//
//   * readers — exploration sessions executing queries/decisions — hold a
//     SHARED lock, so any number run at once;
//   * writers — catalog updates (`library()->add(...)` + re-index) and
//     add_constraint() — get an EXCLUSIVE epoch: the writer runs alone,
//     the layer is re-indexed and every lazily-filled query cache is
//     re-primed, and the epoch counter is bumped.
//
// The epoch bump is the coherence signal: session-side memoized query
// caches keyed to the old epoch are stale, and SessionManager rebuilds
// such sessions deterministically from their replay journals before
// letting them touch the new layer (migration-by-replay).
//
// Why prime()? DesignSpaceLayer fills its per-CDO constraint and subtree
// indexes lazily inside logically-const queries. A first-touch miss under
// a shared lock would be a data race (two readers inserting into the same
// std::map). prime() walks every CDO under the exclusive lock and touches
// every such cache, so readers only ever hit the populated, structurally
// immutable fast path (const find + relaxed-atomic counter bumps).
//
// Failure model (DESIGN.md §11): a writer that throws — its own fault or
// an injected "service.shared_layer.prime" failpoint — must not strand
// readers on half-primed caches. write() re-primes best-effort, STILL
// publishes a new epoch (forcing every session through migration, the
// conservative direction), and only then rethrows. A stalled writer is
// observable via writer_stall_ms(); readers that refuse to block behind
// it use read_lock_or_unavailable(), which fails fast with
// UnavailableError once the wait budget is spent — the service's
// degraded read-only path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "dsl/layer.hpp"
#include "support/failpoint.hpp"

namespace dslayer::service {

class SharedLayer {
 public:
  /// How a writer epoch rebuilds the layer's indexes before publishing.
  enum class Reindex {
    kFull,      ///< index_cores() + prime — any mutation may have happened
    kPreserve,  ///< prime only — the writer restored a snapshot index
                ///< (dsl::DesignSpaceLayer::restore_index) that a re-index
                ///< would discard, wasting the mmap'd tables it aliased
  };

  /// Wraps (does not own) a fully built layer. Primes every query cache
  /// immediately so readers can start at epoch 1. `reindex` is kPreserve
  /// when the caller already indexed the layer (snapshot boot).
  explicit SharedLayer(dsl::DesignSpaceLayer& layer, Reindex reindex = Reindex::kFull);

  SharedLayer(const SharedLayer&) = delete;
  SharedLayer& operator=(const SharedLayer&) = delete;

  /// The current coherence generation. Bumped once per write() — even a
  /// failed write publishes (see class comment); a session built at an
  /// older epoch must be migrated before its next command.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Acquires the shared (reader) lock for the caller's scope, waiting as
  /// long as it takes. Every access to layer() outside write() must
  /// happen under one of these.
  std::shared_lock<std::shared_timed_mutex> read_lock() const {
    return std::shared_lock<std::shared_timed_mutex>(mutex_);
  }

  /// Bounded-wait reader lock: waits up to `max_wait_ms`, then throws
  /// UnavailableError (retryable) naming how long the current writer has
  /// been stalling. This is the degraded-mode entry: callers convert the
  /// throw into a fast kUnavailable response instead of queueing designer
  /// requests behind a wedged catalog update.
  std::shared_lock<std::shared_timed_mutex> read_lock_or_unavailable(double max_wait_ms) const;

  /// Milliseconds the current exclusive writer has held the layer, or 0
  /// when no writer is active. Thread-safe; monotonic-clock based.
  double writer_stall_ms() const;

  /// The wrapped layer. Const: readers cannot mutate it by construction.
  const dsl::DesignSpaceLayer& layer() const { return *layer_; }

  /// One exclusive writer epoch: runs `fn` on the mutable layer with all
  /// readers excluded, then re-indexes cores, re-primes every query
  /// cache, and publishes the new epoch. `fn` may add cores, libraries,
  /// constraints, CDOs — anything a layer author could do.
  ///
  /// Exception safety: if `fn` (or an injected fault) throws, the caches
  /// are re-primed best-effort and a new epoch is still published before
  /// the exception escapes, so readers never observe a half-written
  /// un-published layer. The "service.shared_layer.publish" failpoint
  /// fires before `fn` (an error there aborts the write untouched, but
  /// still costs an epoch); "service.shared_layer.prime" fires inside the
  /// re-prime (an error there exercises the partial-write recovery path);
  /// a delay at either site is the stalled-writer scenario.
  template <typename Fn>
  std::uint64_t write(Fn&& fn, Reindex reindex = Reindex::kFull) {
    std::unique_lock<std::shared_timed_mutex> exclusive(mutex_);
    const WriterMark mark(*this);
    DSLAYER_FAILPOINT("service.shared_layer.publish");
    try {
      fn(*layer_);
      reindex_and_prime(/*inject=*/true, reindex);
    } catch (...) {
      // fn may have partially mutated the layer, or prime may have been
      // interrupted: restore the readers-only-see-primed-caches invariant
      // (swallowing nested faults — this path must complete), publish so
      // every session migrates off the suspect epoch, then surface the
      // original fault to the writer.
      try {
        // Always the full rebuild here: the failed writer may have left
        // any restored index half-applied.
        reindex_and_prime(/*inject=*/false, Reindex::kFull);
      } catch (...) {
      }
      publish_next_epoch();
      throw;
    }
    return publish_next_epoch();
  }

 private:
  /// RAII writer-stall marker: stamps writer_since_ns_ while the
  /// exclusive lock is held so readers can measure the stall.
  struct WriterMark {
    explicit WriterMark(const SharedLayer& owner) : owner_(owner) {
      owner_.writer_since_ns_.store(now_ns(), std::memory_order_release);
    }
    ~WriterMark() { owner_.writer_since_ns_.store(0, std::memory_order_release); }
    const SharedLayer& owner_;
  };

  static std::int64_t now_ns();

  /// index_cores() (skipped under Reindex::kPreserve) + first-touch of
  /// every per-CDO lazy cache. Caller must hold the exclusive lock (or be
  /// the constructor). `inject` arms the "service.shared_layer.prime"
  /// failpoint site; the recovery re-prime passes false so it cannot
  /// re-fire into its own cleanup.
  void reindex_and_prime(bool inject, Reindex reindex);

  std::uint64_t publish_next_epoch() {
    const std::uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(next, std::memory_order_release);
    return next;
  }

  dsl::DesignSpaceLayer* layer_;
  mutable std::shared_timed_mutex mutex_;
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::int64_t> writer_since_ns_{0};
};

}  // namespace dslayer::service
