// Thread-safe shared access to one DesignSpaceLayer (DESIGN.md §9).
//
// The paper's Fig. 1 shows several designers and IP providers around one
// design space layer: designers explore (read) while providers update
// catalogs (write). SharedLayer turns that picture into a concurrency
// contract over the single-threaded DesignSpaceLayer:
//
//   * readers — exploration sessions executing queries/decisions — hold a
//     SHARED lock, so any number run at once;
//   * writers — catalog updates (`library()->add(...)` + re-index) and
//     add_constraint() — get an EXCLUSIVE epoch: the writer runs alone,
//     the layer is re-indexed and every lazily-filled query cache is
//     re-primed, and the epoch counter is bumped.
//
// The epoch bump is the coherence signal: session-side memoized query
// caches keyed to the old epoch are stale, and SessionManager rebuilds
// such sessions deterministically from their replay journals before
// letting them touch the new layer (migration-by-replay).
//
// Why prime()? DesignSpaceLayer fills its per-CDO constraint and subtree
// indexes lazily inside logically-const queries. A first-touch miss under
// a shared lock would be a data race (two readers inserting into the same
// std::map). prime() walks every CDO under the exclusive lock and touches
// every such cache, so readers only ever hit the populated, structurally
// immutable fast path (const find + relaxed-atomic counter bumps).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "dsl/layer.hpp"

namespace dslayer::service {

class SharedLayer {
 public:
  /// Wraps (does not own) a fully built layer. Primes every query cache
  /// immediately so readers can start at epoch 1.
  explicit SharedLayer(dsl::DesignSpaceLayer& layer);

  SharedLayer(const SharedLayer&) = delete;
  SharedLayer& operator=(const SharedLayer&) = delete;

  /// The current coherence generation. Bumped once per write(); a session
  /// built at an older epoch must be migrated before its next command.
  std::uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Acquires the shared (reader) lock for the caller's scope. Every
  /// access to layer() outside write() must happen under one of these.
  std::shared_lock<std::shared_mutex> read_lock() const {
    return std::shared_lock<std::shared_mutex>(mutex_);
  }

  /// The wrapped layer. Const: readers cannot mutate it by construction.
  const dsl::DesignSpaceLayer& layer() const { return *layer_; }

  /// One exclusive writer epoch: runs `fn` on the mutable layer with all
  /// readers excluded, then re-indexes cores, re-primes every query
  /// cache, and publishes the new epoch. `fn` may add cores, libraries,
  /// constraints, CDOs — anything a layer author could do.
  template <typename Fn>
  std::uint64_t write(Fn&& fn) {
    std::unique_lock<std::shared_mutex> exclusive(mutex_);
    fn(*layer_);
    reindex_and_prime();
    const std::uint64_t next = epoch_.load(std::memory_order_relaxed) + 1;
    epoch_.store(next, std::memory_order_release);
    return next;
  }

 private:
  /// index_cores() + first-touch of every per-CDO lazy cache. Caller must
  /// hold the exclusive lock (or be the constructor).
  void reindex_and_prime();

  dsl::DesignSpaceLayer* layer_;
  mutable std::shared_mutex mutex_;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace dslayer::service
