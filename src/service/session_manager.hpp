// Named, concurrent exploration sessions over one SharedLayer.
//
// Each session is a ShellEngine (one open ExplorationSession plus the
// command grammar) with a lock, the SharedLayer epoch its state was built
// at, and an LRU timestamp. The manager owns the name -> session registry
// and the lifecycle the service promises:
//
//   create    — sessions appear on first use of a name (bounded count;
//               at capacity the least-recently-used idle session is
//               evicted to make room);
//   execute   — one shell-grammar command under the session lock and the
//               shared reader lock; per-session ordering is the
//               executor's strand guarantee, the lock makes even
//               unordered direct calls safe;
//   migrate   — a session built at an older epoch is rebuilt from its
//               replay journal against the updated layer before its next
//               command (coherent cache invalidation: every memoized
//               per-session query is recomputed against the new layer);
//   close     — explicit (`quit` command or close()) or by eviction.
//
// Lock order: a session lock may be held when the registry lock is taken
// (the quit-path close); registry-side code never blocks on a session
// lock, so that nesting cannot deadlock. The shared reader lock is
// innermost. Writers (SharedLayer::write) take no manager locks, so
// catalog updates cannot deadlock against exploration.
//
// Eviction safety: acquire() pins the session (while still holding the
// registry lock) and execute() unpins it once the command is done, so a
// session handed to a caller cannot be evicted in the window between the
// registry lookup and the caller taking the session lock. Eviction only
// considers sessions with a zero pin count — every session-lock holder
// pins first, so an unpinned session is guaranteed idle.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dsl/shell.hpp"
#include "service/shared_layer.hpp"
#include "storage/session_store.hpp"
#include "support/relaxed_counter.hpp"

namespace dslayer::service {

class SessionManager {
 public:
  struct Options {
    /// Hard bound on live sessions; creating past it evicts the LRU idle
    /// session, or fails with SessionsBusyError (retryable) if every
    /// session is busy.
    std::size_t max_sessions = 64;
    /// Degraded-mode threshold: execute() waits at most this long for the
    /// shared reader lock, then fails fast with UnavailableError
    /// (retryable) instead of queueing behind a stalled catalog writer.
    /// 0 = wait forever (the pre-degradation behavior).
    double degraded_after_ms = 0.0;
    /// Durable session journals (not owned; may be null = volatile
    /// sessions). With a store: a session created for a name with a
    /// persisted journal is rebuilt from it by replay before its first
    /// command; every state-changing command re-persists the journal
    /// (append for the common one-command delta, atomic rewrite
    /// otherwise); `quit` and close() delete it; LRU eviction keeps it —
    /// an evicted name resumes from disk on next use. Persistence
    /// failures never fail the command: they are counted in
    /// storage::counters().session_flush_failures (and restore_failures
    /// in Stats).
    storage::SessionStore* store = nullptr;
  };

  /// Counter snapshot (see stats()).
  struct Stats {
    std::uint64_t created = 0;
    std::uint64_t closed = 0;    ///< explicit close / quit
    std::uint64_t evicted = 0;   ///< LRU-evicted at capacity or by evict_idle()
    std::uint64_t commands = 0;  ///< execute() calls that reached an engine
    std::uint64_t migrations = 0;
    std::uint64_t migration_failures = 0;
    std::uint64_t restored = 0;          ///< sessions rebuilt from a durable journal
    std::uint64_t restore_failures = 0;  ///< durable journals that no longer replay
  };

  explicit SessionManager(SharedLayer& shared);
  SessionManager(SharedLayer& shared, Options options);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Executes one shell-grammar command line against the named session,
  /// creating the session on first use. Migrates the session first if a
  /// writer epoch has passed. `quit`/`exit` close the session. Writes the
  /// command's output (or "error: ...") to `out`. Thread-safe. Command
  /// failures return kError; manager-level failures throw typed errors
  /// the executor maps to wire codes: SessionsBusyError (session limit,
  /// nothing evictable), UnavailableError (degraded_after_ms exceeded
  /// behind a stalled writer), DeadlineExceeded (the caller's deadline
  /// expired at a sweep checkpoint — session state is untouched because
  /// checkpoints only run in derived-query computation).
  ///
  /// Failpoints: "service.session.execute" fires before the command,
  /// "service.session.migrate" inside journal replay (an error there is
  /// a forced migration failure), "service.session.evict" before an LRU
  /// eviction.
  dsl::ShellEngine::Status execute(const std::string& session, const std::string& line,
                                   std::ostream& out);

  /// Closes a session by name; false if it does not exist.
  bool close(const std::string& session);

  /// Evicts every session whose last touch is older than the newest
  /// `keep_recent` touches and that is not pinned by an in-flight
  /// execute(). Returns evicted count.
  std::size_t evict_idle(std::size_t keep_recent);

  std::vector<std::string> session_names() const;
  std::size_t session_count() const;
  Stats stats() const;

  SharedLayer& shared() { return *shared_; }

 private:
  struct Session {
    explicit Session(const dsl::DesignSpaceLayer& layer) : engine(layer) {}
    std::mutex lock;
    dsl::ShellEngine engine;
    std::uint64_t epoch = 0;       ///< SharedLayer epoch the state is valid for
    std::uint64_t last_touch = 0;  ///< manager touch counter (LRU)
    std::atomic<int> pins{0};      ///< in-flight execute() holds; guards eviction
    /// Durable journal found at create, replayed under the locks before
    /// the first command (needs the shared reader lock acquire() cannot
    /// take).
    std::optional<std::string> pending_restore;
    /// Bytes of engine journal known to be on disk; the persist path
    /// appends the delta when the on-disk prefix is trusted.
    std::size_t persisted_bytes = 0;
    /// False until this process wrote the file itself — the first persist
    /// after a restore rewrites whole instead of appending to a prefix it
    /// only assumes matches.
    bool append_safe = false;
  };

  /// Looks up or creates the named session; bumps its LRU stamp and pins
  /// the session against eviction. The caller must unpin when done.
  std::shared_ptr<Session> acquire(const std::string& name);

  /// Erases the registry entry for `name` only if it still points at
  /// `expected` — the quit path runs on a session object that may have
  /// been closed and its name reclaimed by a newer session meanwhile.
  bool close_if_current(const std::string& name, const std::shared_ptr<Session>& expected);

  /// Rebuilds a stale session from its journal. Caller holds the session
  /// lock and the shared reader lock. Returns false (with an "error: ..."
  /// line on `out`) when the journal no longer replays cleanly — the
  /// session is then left freshly closed at the new epoch.
  bool migrate(Session& session, const std::string& name, std::ostream& out);

  /// Replays a durable journal into a freshly created session. Caller
  /// holds the session lock and the shared reader lock. Mirrors migrate():
  /// false leaves the session freshly closed with an "error: ..." line.
  bool restore(Session& session, const std::string& name, std::ostream& out);

  /// Persists the session's journal after a state-changing command; never
  /// throws (failures land in storage counters).
  void persist(Session& session, const std::string& name);

  /// Deletes the durable journal (quit / explicit close); never throws.
  void discard_persisted(const std::string& name);

  SharedLayer* shared_;
  Options options_;

  mutable std::mutex registry_lock_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;
  std::uint64_t touch_counter_ = 0;  // guarded by registry_lock_

  RelaxedCounter created_;
  RelaxedCounter closed_;
  RelaxedCounter evicted_;
  RelaxedCounter commands_;
  RelaxedCounter migrations_;
  RelaxedCounter migration_failures_;
  RelaxedCounter restored_;
  RelaxedCounter restore_failures_;
};

}  // namespace dslayer::service
