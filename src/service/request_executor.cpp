#include "service/request_executor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::service {

RequestExecutor::RequestExecutor(SessionManager& manager)
    : RequestExecutor(manager, Options{}) {}

RequestExecutor::RequestExecutor(SessionManager& manager, Options options)
    : manager_(&manager), options_(options) {
  DSLAYER_REQUIRE(options_.workers > 0, "executor needs at least one worker");
  DSLAYER_REQUIRE(options_.queue_capacity > 0, "executor queue needs capacity for one request");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RequestExecutor::~RequestExecutor() { shutdown(); }

void RequestExecutor::enqueue_locked(Item item) {
  auto& strand = strands_[item.request.session];
  if (strand == nullptr) {
    strand = std::make_shared<Strand>();
    strand->session = item.request.session;
  }
  strand->inbox.push_back(std::move(item));
  ++pending_;
  peak_pending_ = std::max(peak_pending_, pending_);
  accepted_.add(1);
  if (!strand->scheduled) {
    strand->scheduled = true;
    ready_.push_back(strand);
    work_ready_.notify_one();
  }
}

bool RequestExecutor::try_submit(Request request, Callback done) {
  DSLAYER_REQUIRE(done != nullptr, "executor callback must not be null");
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || pending_ >= options_.queue_capacity) {
    rejected_.add(1);
    return false;
  }
  Item item{std::move(request), std::move(done), std::chrono::steady_clock::now()};
  enqueue_locked(std::move(item));
  return true;
}

void RequestExecutor::submit(Request request, Callback done) {
  DSLAYER_REQUIRE(done != nullptr, "executor callback must not be null");
  std::unique_lock<std::mutex> lock(mutex_);
  space_free_.wait(lock, [this] { return stopping_ || pending_ < options_.queue_capacity; });
  if (stopping_) throw ServiceError("executor is shut down");
  Item item{std::move(request), std::move(done), std::chrono::steady_clock::now()};
  enqueue_locked(std::move(item));
}

Response RequestExecutor::execute(Item& item) {
  if (options_.injected_latency_us > 0.0) {
    // Modeled remote-catalog round trip (see header); the sleep is the
    // blocking component workers overlap.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(options_.injected_latency_us));
  }
  Response response;
  response.id = item.request.id;
  response.session = item.request.session;
  std::ostringstream out;
  try {
    const dsl::ShellEngine::Status status =
        manager_->execute(item.request.session, item.request.command, out);
    response.status = status == dsl::ShellEngine::Status::kError ? ResponseStatus::kError
                                                                 : ResponseStatus::kOk;
  } catch (const Error& e) {
    out << "error: " << e.what() << "\n";
    response.status = ResponseStatus::kError;
  }
  response.output = out.str();
  const auto finished = std::chrono::steady_clock::now();
  response.latency_us =
      std::chrono::duration<double, std::micro>(finished - item.enqueued).count();

  const std::string verb = item.request.command.substr(0, item.request.command.find(' '));
  {
    std::lock_guard<std::mutex> telemetry_guard(telemetry_lock_);
    telemetry_.record_timing("request", response.latency_us);
    telemetry_.record_timing(cat("request.", verb), response.latency_us);
  }
  executed_.add(1);
  if (response.status == ResponseStatus::kError) errors_.add(1);
  return response;
}

void RequestExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::shared_ptr<Strand> strand = ready_.front();
    ready_.pop_front();
    // Drain this session's inbox to empty. Only this worker touches the
    // strand while `scheduled` is true, so per-session order holds.
    while (!strand->inbox.empty()) {
      Item item = std::move(strand->inbox.front());
      strand->inbox.pop_front();
      lock.unlock();
      Response response = execute(item);
      item.done(std::move(response));
      lock.lock();
      --pending_;
      space_free_.notify_one();
      if (pending_ == 0) idle_.notify_all();
    }
    strand->scheduled = false;
    // Drop the empty strand so long-running services don't accumulate a
    // registry entry per session name ever seen.
    if (const auto it = strands_.find(strand->session);
        it != strands_.end() && it->second == strand) {
      strands_.erase(it);
    }
  }
}

void RequestExecutor::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

void RequestExecutor::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    // Fence the queue before draining: blocked submit() callers wake and
    // observe stopping_ (they throw), try_submit() rejects, so pending_
    // can only fall. Waiting for idle first would never return while
    // producers keep enqueuing. Workers exit only once the ready queue is
    // empty, so everything accepted before the fence still executes.
    stopping_ = true;
    space_free_.notify_all();
    work_ready_.notify_all();
    idle_.wait(lock, [this] { return pending_ == 0; });
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

RequestExecutor::Stats RequestExecutor::stats() const {
  Stats stats;
  stats.accepted = accepted_.get();
  stats.executed = executed_.get();
  stats.rejected = rejected_.get();
  stats.errors = errors_.get();
  std::lock_guard<std::mutex> lock(mutex_);
  stats.queue_depth = pending_;
  stats.peak_queue_depth = peak_pending_;
  return stats;
}

}  // namespace dslayer::service
