#include "service/request_executor.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dslayer::service {

namespace {

support::Deadline deadline_for(const Request& request) {
  return request.deadline_ms > 0.0 ? support::Deadline::after_ms(request.deadline_ms)
                                   : support::Deadline{};
}

}  // namespace

RequestExecutor::RequestExecutor(SessionManager& manager)
    : RequestExecutor(manager, Options{}) {}

RequestExecutor::RequestExecutor(SessionManager& manager, Options options)
    : manager_(&manager), options_(options) {
  DSLAYER_REQUIRE(options_.workers > 0, "executor needs at least one worker");
  DSLAYER_REQUIRE(options_.queue_capacity > 0, "executor queue needs capacity for one request");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RequestExecutor::~RequestExecutor() { shutdown(); }

void RequestExecutor::enqueue_locked(Item item) {
  auto& strand = strands_[item.request.session];
  if (strand == nullptr) {
    strand = std::make_shared<Strand>();
    strand->session = item.request.session;
  }
  strand->inbox.push_back(std::move(item));
  ++pending_;
  peak_pending_ = std::max(peak_pending_, pending_);
  accepted_.add(1);
  if (!strand->scheduled) {
    strand->scheduled = true;
    ready_.push_back(strand);
    work_ready_.notify_one();
  }
}

bool RequestExecutor::try_submit(Request request, Callback done) {
  DSLAYER_REQUIRE(done != nullptr, "executor callback must not be null");
  try {
    DSLAYER_FAILPOINT("service.executor.enqueue");
  } catch (const FailpointError&) {
    // An injected enqueue fault behaves exactly like backpressure: the
    // request was never accepted, so no callback will fire.
    rejected_.add(1);
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_ || pending_ >= options_.queue_capacity) {
    rejected_.add(1);
    return false;
  }
  const support::Deadline deadline = deadline_for(request);
  Item item{std::move(request), std::move(done), std::chrono::steady_clock::now(), deadline};
  enqueue_locked(std::move(item));
  return true;
}

void RequestExecutor::submit(Request request, Callback done) {
  DSLAYER_REQUIRE(done != nullptr, "executor callback must not be null");
  try {
    DSLAYER_FAILPOINT("service.executor.enqueue");
  } catch (const FailpointError& e) {
    rejected_.add(1);
    throw ServiceError(cat("request was not accepted: ", e.what()));
  }
  std::unique_lock<std::mutex> lock(mutex_);
  space_free_.wait(lock, [this] { return stopping_ || pending_ < options_.queue_capacity; });
  if (stopping_) throw ServiceError("executor is shut down");
  const support::Deadline deadline = deadline_for(request);
  Item item{std::move(request), std::move(done), std::chrono::steady_clock::now(), deadline};
  enqueue_locked(std::move(item));
}

Response RequestExecutor::execute(Item& item) {
  Response response;
  response.id = item.request.id;
  response.session = item.request.session;

  const auto dequeued = std::chrono::steady_clock::now();
  const double queue_wait_ms =
      std::chrono::duration<double, std::milli>(dequeued - item.enqueued).count();
  // The queue wait is only known retroactively (enqueue -> this dequeue),
  // so it is recorded as a pre-bounded span rather than open/close.
  trace::Trace* req_trace = item.request.trace.get();
  std::uint32_t execute_span = trace::kNoParent;
  if (req_trace != nullptr) {
    req_trace->add_span(trace::SpanKind::kQueueWait, item.enqueued, dequeued);
    execute_span = req_trace->open_span_at(trace::SpanKind::kExecute, dequeued,
                                           item.request.command.substr(
                                               0, item.request.command.find(' ')));
  }
  {
    std::lock_guard<std::mutex> telemetry_guard(telemetry_lock_);
    // EWMA over recent queue waits feeds the retry-after hint handed to
    // shed clients; alpha 0.2 tracks load shifts within ~5 requests.
    ewma_queue_wait_ms_ += 0.2 * (queue_wait_ms - ewma_queue_wait_ms_);
  }

  // Fate checks at dequeue, cheapest first — none of these touches a
  // session or the shared layer.
  bool run_command = true;
  if (item.deadline.set() && item.deadline.expired()) {
    // Expired while queued: the designer has already given up on this
    // answer; spending a session acquire on it only adds load.
    response.status = ResponseStatus::kDeadlineExceeded;
    response.code = ErrorCode::kDeadlineExceeded;
    response.output = cat("error: deadline expired after ", format_double(queue_wait_ms, 1),
                          "ms in queue\n");
    deadline_expired_.add(1);
    run_command = false;
  } else if (options_.max_queue_wait_ms > 0.0 && queue_wait_ms > options_.max_queue_wait_ms) {
    response.status = ResponseStatus::kRejected;
    response.code = ErrorCode::kOverloaded;
    response.retry_after_ms = retry_after_hint_ms();
    response.output = cat("error: shed after ", format_double(queue_wait_ms, 1),
                          "ms in queue (limit ", format_double(options_.max_queue_wait_ms, 1),
                          "ms)\n");
    shed_.add(1);
    run_command = false;
  } else {
    try {
      DSLAYER_FAILPOINT("service.executor.dequeue");
    } catch (const FailpointError& e) {
      response.status = ResponseStatus::kError;
      response.code = ErrorCode::kInternal;
      response.output = cat("error: ", e.what(), "\n");
      run_command = false;
    }
  }

  if (run_command) {
    if (options_.injected_latency_us > 0.0) {
      // Modeled remote-catalog round trip (see header); the sleep is the
      // blocking component workers overlap.
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::micro>(options_.injected_latency_us));
    }
    std::ostringstream out;
    try {
      // The request's deadline becomes this thread's cancellation
      // deadline for the duration of the command: checkpoints in the
      // candidates sweeps throw DeadlineExceeded once it expires.
      support::DeadlineScope deadline_scope(item.deadline);
      // Deep (sweep-level) spans are only collected for sampled traces:
      // the engines consult TraceScope::current(), so leaving it null
      // keeps the unsampled hot path at one thread-local load.
      trace::TraceScope trace_scope(req_trace != nullptr && req_trace->sampled() ? req_trace
                                                                                 : nullptr);
      const dsl::ShellEngine::Status status =
          manager_->execute(item.request.session, item.request.command, out);
      response.status = status == dsl::ShellEngine::Status::kError ? ResponseStatus::kError
                                                                   : ResponseStatus::kOk;
      response.code =
          status == dsl::ShellEngine::Status::kError ? ErrorCode::kCommandFailed : ErrorCode::kNone;
    } catch (const DeadlineExceeded& e) {
      out << "error: " << e.what() << "\n";
      response.status = ResponseStatus::kDeadlineExceeded;
      response.code = ErrorCode::kDeadlineExceeded;
      deadline_expired_.add(1);
    } catch (const SessionsBusyError& e) {
      out << "error: " << e.what() << "\n";
      response.status = ResponseStatus::kRejected;
      response.code = ErrorCode::kSessionsBusy;
      response.retry_after_ms = retry_after_hint_ms();
    } catch (const UnavailableError& e) {
      out << "error: " << e.what() << "\n";
      response.status = ResponseStatus::kRejected;
      response.code = ErrorCode::kUnavailable;
      response.retry_after_ms = retry_after_hint_ms();
    } catch (const FailpointError& e) {
      out << "error: " << e.what() << "\n";
      response.status = ResponseStatus::kError;
      response.code = ErrorCode::kInternal;
    } catch (const Error& e) {
      out << "error: " << e.what() << "\n";
      response.status = ResponseStatus::kError;
      response.code = ErrorCode::kCommandFailed;
    } catch (const std::exception& e) {
      // A worker thread must survive anything a command throws; an
      // untyped escape is reported, not propagated.
      out << "error: internal: " << e.what() << "\n";
      response.status = ResponseStatus::kError;
      response.code = ErrorCode::kInternal;
    }
    response.output = out.str();
  }
  if (req_trace != nullptr && execute_span != trace::kNoParent) {
    req_trace->close_span(execute_span);
  }

  const auto finished = std::chrono::steady_clock::now();
  response.latency_us =
      std::chrono::duration<double, std::micro>(finished - item.enqueued).count();

  const std::string verb = item.request.command.substr(0, item.request.command.find(' '));
  {
    std::lock_guard<std::mutex> telemetry_guard(telemetry_lock_);
    telemetry_.record_timing("request", response.latency_us);
    telemetry_.record_timing(cat("request.", verb), response.latency_us);
  }
  executed_.add(1);
  if (response.status == ResponseStatus::kError) errors_.add(1);
  return response;
}

std::map<std::string, telemetry::HistogramSnapshot> RequestExecutor::histogram_snapshots() const {
  std::lock_guard<std::mutex> telemetry_guard(telemetry_lock_);
  return telemetry_.histogram_snapshots();
}

double RequestExecutor::queue_wait_ewma_ms() const {
  std::lock_guard<std::mutex> telemetry_guard(telemetry_lock_);
  return ewma_queue_wait_ms_;
}

double RequestExecutor::retry_after_hint_ms() const {
  std::lock_guard<std::mutex> telemetry_guard(telemetry_lock_);
  // At least 1ms: a zero hint would tell clients to hammer the queue.
  return std::max(1.0, ewma_queue_wait_ms_);
}

void RequestExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [this] { return stopping_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (stopping_) return;
      continue;
    }
    const std::shared_ptr<Strand> strand = ready_.front();
    ready_.pop_front();
    // Drain this session's inbox to empty. Only this worker touches the
    // strand while `scheduled` is true, so per-session order holds.
    while (!strand->inbox.empty()) {
      Item item = std::move(strand->inbox.front());
      strand->inbox.pop_front();
      lock.unlock();
      Response response = execute(item);
      try {
        item.done(std::move(response));
      } catch (...) {
        // A throwing completion callback is a front-end bug, but it must
        // not take a worker thread (and the whole queue) down with it.
      }
      lock.lock();
      --pending_;
      space_free_.notify_one();
      if (pending_ == 0) idle_.notify_all();
    }
    strand->scheduled = false;
    // Drop the empty strand so long-running services don't accumulate a
    // registry entry per session name ever seen.
    if (const auto it = strands_.find(strand->session);
        it != strands_.end() && it->second == strand) {
      strands_.erase(it);
    }
  }
}

void RequestExecutor::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return pending_ == 0; });
}

void RequestExecutor::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    // Fence the queue before draining: blocked submit() callers wake and
    // observe stopping_ (they throw), try_submit() rejects, so pending_
    // can only fall. Waiting for idle first would never return while
    // producers keep enqueuing. Workers exit only once the ready queue is
    // empty, so everything accepted before the fence still executes.
    stopping_ = true;
    space_free_.notify_all();
    work_ready_.notify_all();
    idle_.wait(lock, [this] { return pending_ == 0; });
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

RequestExecutor::Stats RequestExecutor::stats() const {
  Stats stats;
  stats.accepted = accepted_.get();
  stats.executed = executed_.get();
  stats.rejected = rejected_.get();
  stats.errors = errors_.get();
  stats.deadline_expired = deadline_expired_.get();
  stats.shed = shed_.get();
  std::lock_guard<std::mutex> lock(mutex_);
  stats.queue_depth = pending_;
  stats.peak_queue_depth = peak_pending_;
  return stats;
}

}  // namespace dslayer::service
