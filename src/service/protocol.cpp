#include "service/protocol.hpp"

#include <cctype>
#include <cstdlib>

#include "support/strings.hpp"

namespace dslayer::service {

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kError: return "error";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "?";
}

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kInvalidRequest: return "invalid-request";
    case ErrorCode::kCommandFailed: return "command-failed";
    case ErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case ErrorCode::kSessionsBusy: return "sessions-busy";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

bool is_retryable(ErrorCode code) {
  switch (code) {
    case ErrorCode::kSessionsBusy:
    case ErrorCode::kOverloaded:
    case ErrorCode::kUnavailable:
      return true;
    case ErrorCode::kNone:
    case ErrorCode::kInvalidRequest:
    case ErrorCode::kCommandFailed:
    case ErrorCode::kDeadlineExceeded:
    case ErrorCode::kInternal:
      return false;
  }
  return false;
}

bool is_directive(std::string_view line) {
  const std::string_view trimmed = trim(line);
  return !trimmed.empty() && trimmed.front() == '!';
}

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Parses the `@<ms>` session suffix. Returns false (with *error set) on
/// a malformed suffix; on success *deadline_ms > 0.
bool parse_deadline_suffix(std::string_view token, double* deadline_ms, std::string* error) {
  if (token.empty()) {
    set_error(error, "deadline suffix '@' with no milliseconds (expected <session>@<ms>)");
    return false;
  }
  double value = 0.0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      set_error(error,
                cat("bad deadline '", std::string(token),
                    "' — everything after the first '@' must be a whole number of ms "
                    "('@' is reserved for the deadline suffix and cannot appear in "
                    "session names)"));
      return false;
    }
    value = value * 10.0 + (c - '0');
    if (value > 1e9) {  // ~11.5 days; anything larger is a typo
      set_error(error, cat("deadline '", std::string(token), "' is out of range"));
      return false;
    }
  }
  if (value <= 0.0) {
    set_error(error, "deadline must be a positive number of milliseconds");
    return false;
  }
  *deadline_ms = value;
  return true;
}

}  // namespace

std::optional<Request> parse_request(std::string_view line, std::string* error) noexcept {
  try {
    if (line.size() > kMaxRequestLineBytes) {
      set_error(error, cat("request line of ", line.size(), " bytes exceeds the ",
                           kMaxRequestLineBytes, "-byte limit"));
      return std::nullopt;
    }
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') return std::nullopt;
    const std::size_t gap = trimmed.find(' ');
    if (gap == std::string_view::npos) {
      set_error(error, cat("request '", std::string(trimmed),
                           "' names a session but no command (expected: <session> <command...>)"));
      return std::nullopt;
    }
    Request request;
    std::string_view session = trimmed.substr(0, gap);
    // Split at the FIRST '@': the character is reserved for the deadline
    // suffix and may not appear in session names. Splitting at the last
    // '@' used to parse "user@host" as session "user@" + deadline "host"
    // and reject it with a misleading "bad deadline 'host'" message.
    const std::size_t at = session.find('@');
    if (at != std::string_view::npos) {
      if (!parse_deadline_suffix(session.substr(at + 1), &request.deadline_ms, error)) {
        return std::nullopt;
      }
      session = session.substr(0, at);
    }
    if (session.empty()) {
      set_error(error, cat("request '", std::string(trimmed), "' has an empty session name"));
      return std::nullopt;
    }
    request.session = std::string(session);
    request.command = std::string(trim(trimmed.substr(gap + 1)));
    if (request.command.empty()) {
      set_error(error, cat("request for session '", request.session, "' has an empty command"));
      return std::nullopt;
    }
    return request;
  } catch (...) {
    // Allocation failure on adversarial input must not take the server
    // down; report the line as malformed instead.
    set_error(error, "request line could not be parsed");
    return std::nullopt;
  }
}

Response invalid_request_response(std::uint64_t id, const std::string& error) {
  Response bad;
  bad.id = id;
  bad.session = "-";
  bad.status = ResponseStatus::kError;
  bad.code = ErrorCode::kInvalidRequest;
  bad.output = cat("error: ", error, "\n");
  return bad;
}

std::string render_response(const Response& response) {
  std::string out = cat("== ", response.id, " ", response.session, " ",
                        to_string(response.status));
  if (response.code != ErrorCode::kNone) out += cat(" code=", to_string(response.code));
  if (response.retry_after_ms > 0.0) {
    out += cat(" retry-after-ms=", static_cast<std::uint64_t>(response.retry_after_ms));
  }
  out += '\n';
  out += response.output;
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

}  // namespace dslayer::service
