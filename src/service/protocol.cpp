#include "service/protocol.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::service {

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kError: return "error";
    case ResponseStatus::kRejected: return "rejected";
  }
  return "?";
}

bool is_directive(std::string_view line) {
  const std::string_view trimmed = trim(line);
  return !trimmed.empty() && trimmed.front() == '!';
}

std::optional<Request> parse_request(std::string_view line) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return std::nullopt;
  const std::size_t gap = trimmed.find(' ');
  if (gap == std::string_view::npos) {
    throw ServiceError(cat("request '", std::string(trimmed),
                           "' names a session but no command (expected: <session> <command...>)"));
  }
  Request request;
  request.session = std::string(trimmed.substr(0, gap));
  request.command = std::string(trim(trimmed.substr(gap + 1)));
  if (request.command.empty()) {
    throw ServiceError(cat("request for session '", request.session, "' has an empty command"));
  }
  return request;
}

std::string render_response(const Response& response) {
  std::string out = cat("== ", response.id, " ", response.session, " ",
                        to_string(response.status), "\n", response.output);
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

}  // namespace dslayer::service
