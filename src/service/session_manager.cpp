#include "service/session_manager.hpp"

#include <algorithm>
#include <ostream>

#include "storage/counters.hpp"
#include "support/cancel.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace dslayer::service {

SessionManager::SessionManager(SharedLayer& shared) : SessionManager(shared, Options{}) {}

SessionManager::SessionManager(SharedLayer& shared, Options options)
    : shared_(&shared), options_(options) {
  DSLAYER_REQUIRE(options_.max_sessions > 0, "session manager needs capacity for one session");
}

std::shared_ptr<SessionManager::Session> SessionManager::acquire(const std::string& name) {
  DSLAYER_REQUIRE(!name.empty(), "session name must not be empty");
  std::lock_guard<std::mutex> registry(registry_lock_);
  const std::uint64_t now = ++touch_counter_;
  if (const auto it = sessions_.find(name); it != sessions_.end()) {
    it->second->last_touch = now;
    it->second->pins.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  if (sessions_.size() >= options_.max_sessions) {
    // Evict the least-recently-used unpinned session (a pin means a
    // command is in flight or about to take the session lock — never
    // yank state from under it). Eviction is the idle-session policy, so
    // a later request for an evicted name simply starts a fresh session.
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (victim != sessions_.end() && it->second->last_touch >= victim->second->last_touch) {
        continue;
      }
      if (it->second->pins.load(std::memory_order_relaxed) == 0) victim = it;
    }
    if (victim == sessions_.end()) {
      throw SessionsBusyError(cat("session limit (", options_.max_sessions,
                                  ") reached and every session is busy"));
    }
    // Chaos hook: an error here aborts the acquire before any state
    // changes (the victim survives, the new session is never created).
    DSLAYER_FAILPOINT("service.session.evict");
    sessions_.erase(victim);
    evicted_.add(1);
  }
  auto session = std::make_shared<Session>(shared_->layer());
  session->epoch = shared_->epoch();
  session->last_touch = now;
  session->pins.store(1, std::memory_order_relaxed);
  if (options_.store != nullptr) {
    // A durable journal under this name (pre-restart, or LRU-evicted)
    // resumes the session. Loaded here (one small-file read under the
    // registry lock) but replayed later, under the shared reader lock
    // acquire() must not take.
    try {
      session->pending_restore = options_.store->load(name);
    } catch (const Error&) {
      restore_failures_.add(1);  // unreadable journal: start fresh
    }
  }
  sessions_.emplace(name, session);
  created_.add(1);
  return session;
}

bool SessionManager::migrate(Session& session, const std::string& name, std::ostream& out) {
  migrations_.add(1);
  const std::string journal = session.engine.journal_jsonl();
  session.engine.close_session();
  session.epoch = shared_->epoch();
  if (journal.empty()) return true;  // nothing to carry across the epoch
  try {
    // Replay must run to completion or not at all: a request deadline
    // expiring mid-replay would otherwise leave a half-rebuilt session.
    // Installing an unset deadline suppresses the caller's for the scope.
    const support::DeadlineScope no_deadline{support::Deadline{}};
    DSLAYER_FAILPOINT("service.session.migrate");
    session.engine.restore_from_journal(journal);
    return true;
  } catch (const Error& e) {
    // The updated layer rejects part of the journaled history (e.g. a
    // new constraint now vetoes an old decision). The session stays
    // open-able but empty; the designer re-decides against the new space.
    migration_failures_.add(1);
    out << "error: session '" << name << "' could not be migrated to layer epoch "
        << session.epoch << ": " << e.what() << "\n";
    return false;
  }
}

bool SessionManager::restore(Session& session, const std::string& name, std::ostream& out) {
  const std::string journal = std::move(*session.pending_restore);
  session.pending_restore.reset();
  if (journal.empty()) return true;
  try {
    // Same all-or-nothing rule as migrate(): the caller's deadline must
    // not expire mid-replay and leave a half-rebuilt session.
    const support::DeadlineScope no_deadline{support::Deadline{}};
    session.engine.restore_from_journal(journal);
    // Trust the byte count but not the on-disk prefix for appends — the
    // first persist after a restore rewrites whole (append_safe stays
    // false until this process writes the file itself).
    session.persisted_bytes = journal.size();
    restored_.add(1);
    return true;
  } catch (const Error& e) {
    // The recovered catalog rejects part of the journaled history (the
    // same shape as a migration failure). The session starts fresh; its
    // next state-changing command overwrites the stale journal.
    restore_failures_.add(1);
    session.engine.close_session();
    session.persisted_bytes = 0;
    out << "error: session '" << name << "' could not be restored from its durable journal: "
        << e.what() << "\n";
    return false;
  }
}

void SessionManager::persist(Session& session, const std::string& name) {
  const std::string journal = session.engine.journal_jsonl();
  if (session.append_safe && journal.size() == session.persisted_bytes) return;  // read-only cmd
  try {
    if (session.append_safe && journal.size() > session.persisted_bytes) {
      options_.store->append(name,
                             std::string_view(journal).substr(session.persisted_bytes));
    } else {
      // Shrunk (migration compaction), diverged, or not yet trusted:
      // atomic whole-file rewrite.
      options_.store->save(name, journal);
    }
    session.persisted_bytes = journal.size();
    session.append_safe = true;
  } catch (const Error&) {
    // Durability degraded, the command itself succeeded — surfacing this
    // as a command error would make designers re-issue decisions that DID
    // apply. Counted for alerting; append_safe drops so the next persist
    // rewrites whole.
    storage::counters().session_flush_failures.add();
    session.append_safe = false;
  }
}

void SessionManager::discard_persisted(const std::string& name) {
  if (options_.store == nullptr) return;
  try {
    options_.store->remove(name);
  } catch (const Error&) {
    storage::counters().session_flush_failures.add();
  }
}

dsl::ShellEngine::Status SessionManager::execute(const std::string& session_name,
                                                 const std::string& line, std::ostream& out) {
  const std::shared_ptr<Session> session = acquire(session_name);
  // acquire() pinned the session, so eviction cannot erase it before the
  // session lock below is taken; unpin on every exit path.
  struct Unpin {
    Session* session;
    ~Unpin() { session->pins.fetch_sub(1, std::memory_order_relaxed); }
  } unpin{session.get()};
  std::lock_guard<std::mutex> guard(session->lock);
  const auto reader = options_.degraded_after_ms > 0.0
                          ? shared_->read_lock_or_unavailable(options_.degraded_after_ms)
                          : shared_->read_lock();
  DSLAYER_FAILPOINT("service.session.execute");
  commands_.add(1);
  if (session->epoch != shared_->epoch() && !migrate(*session, session_name, out)) {
    return dsl::ShellEngine::Status::kError;
  }
  if (session->pending_restore.has_value() && !restore(*session, session_name, out)) {
    return dsl::ShellEngine::Status::kError;
  }
  const dsl::ShellEngine::Status status = session->engine.execute(line, out);
  if (status == dsl::ShellEngine::Status::kQuit) {
    session->engine.close_session();
    close_if_current(session_name, session);
    discard_persisted(session_name);
    out << "closed\n";
  } else if (options_.store != nullptr && status == dsl::ShellEngine::Status::kOk) {
    persist(*session, session_name);
  }
  return status;
}

bool SessionManager::close_if_current(const std::string& name,
                                      const std::shared_ptr<Session>& expected) {
  std::lock_guard<std::mutex> registry(registry_lock_);
  const auto it = sessions_.find(name);
  if (it == sessions_.end() || it->second != expected) return false;
  sessions_.erase(it);
  closed_.add(1);
  return true;
}

bool SessionManager::close(const std::string& session) {
  bool erased;
  {
    std::lock_guard<std::mutex> registry(registry_lock_);
    erased = sessions_.erase(session) > 0;
    if (erased) closed_.add(1);
  }
  // Explicit close is "forget this session", eviction is not: an evicted
  // name resumes from its journal, a closed one starts fresh. Also drops
  // journals orphaned by a pre-close crash (erased false, file present).
  discard_persisted(session);
  return erased;
}

std::size_t SessionManager::evict_idle(std::size_t keep_recent) {
  std::lock_guard<std::mutex> registry(registry_lock_);
  if (sessions_.size() <= keep_recent) return 0;
  std::vector<std::uint64_t> touches;
  touches.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) touches.push_back(session->last_touch);
  std::sort(touches.begin(), touches.end(), std::greater<>());
  const std::uint64_t cutoff = keep_recent == 0 ? touch_counter_ + 1 : touches[keep_recent - 1];
  std::size_t evicted = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->last_touch < cutoff &&
        it->second->pins.load(std::memory_order_relaxed) == 0) {
      it = sessions_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evicted_.add(evicted);
  return evicted;
}

std::vector<std::string> SessionManager::session_names() const {
  std::lock_guard<std::mutex> registry(registry_lock_);
  std::vector<std::string> names;
  names.reserve(sessions_.size());
  for (const auto& [name, session] : sessions_) names.push_back(name);
  return names;
}

std::size_t SessionManager::session_count() const {
  std::lock_guard<std::mutex> registry(registry_lock_);
  return sessions_.size();
}

SessionManager::Stats SessionManager::stats() const {
  Stats stats;
  stats.created = created_.get();
  stats.closed = closed_.get();
  stats.evicted = evicted_.get();
  stats.commands = commands_.get();
  stats.migrations = migrations_.get();
  stats.migration_failures = migration_failures_.get();
  stats.restored = restored_.get();
  stats.restore_failures = restore_failures_.get();
  return stats;
}

}  // namespace dslayer::service
