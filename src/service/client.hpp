// Retrying client front end over a RequestExecutor.
//
// The executor is deliberately blunt about transient failure: it rejects
// at capacity, sheds over-age queue entries, and fails fast behind a
// stalled writer — all as *retryable* responses (is_retryable() on the
// ErrorCode). ServiceClient is the policy layer that turns those into a
// clean exactly-once contract for callers:
//
//   submit(request, done)  ->  `done` fires exactly once, with the first
//                              TERMINAL response (success, command error,
//                              deadline exceeded, ...) or with the last
//                              retryable response once attempts run out.
//
// Retries run on a dedicated background thread, never inline in an
// executor completion callback (callbacks must not call back into the
// executor). Back-off is capped exponential with jitter, and a server
// retry-after-ms hint overrides the computed floor — the overload
// degradation loop: the server sheds, the hint spreads retries out, the
// queue recovers.
//
// Shutdown order: drain()/shutdown() the client BEFORE shutting down the
// executor it wraps — a retry submitted into a stopped executor is
// rejected and simply burns the request's remaining attempts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "service/protocol.hpp"
#include "service/request_executor.hpp"
#include "support/rng.hpp"

namespace dslayer::service {

class ServiceClient {
 public:
  struct Options {
    int max_attempts = 4;           ///< total tries per request (first + retries)
    double base_backoff_ms = 2.0;   ///< first retry delay floor; doubles per retry
    double max_backoff_ms = 100.0;  ///< exponential cap
    std::uint64_t jitter_seed = 0x5eed11e5u;  ///< deterministic jitter stream
  };

  /// Un-jittered back-off floor before the `retry`-th retry (1-based):
  /// base_backoff_ms * 2^(retry-1), capped at max_backoff_ms — the first
  /// retry waits around the configured base, not double it. The actual
  /// delay is max(floor, server retry-after hint) * [0.5, 1.5) jitter.
  static double backoff_floor_ms(const Options& options, int retry);

  /// Terminal-response callback; invoked exactly once per submit(), on a
  /// worker or the retry thread. Must not call back into the client or
  /// the executor.
  using Callback = std::function<void(Response)>;

  struct Stats {
    std::uint64_t submitted = 0;  ///< submit() calls
    std::uint64_t retries = 0;    ///< resubmissions (excludes first attempts)
    std::uint64_t delivered = 0;  ///< terminal callbacks fired
    std::uint64_t exhausted = 0;  ///< delivered retryable after max_attempts
  };

  explicit ServiceClient(RequestExecutor& executor);
  ServiceClient(RequestExecutor& executor, Options options);
  ~ServiceClient();  ///< shutdown() if still running

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Submits with retry. Never blocks on queue capacity: a full queue is
  /// the first retryable outcome. Note each attempt restarts the
  /// request's deadline_ms budget at its own submission.
  void submit(Request request, Callback done);

  /// Blocks until every submitted request has received its terminal
  /// response. Bounded: attempts are capped, so this always returns.
  void drain();

  /// drain(), then stops the retry thread. Idempotent.
  void shutdown();

  Stats stats() const;

 private:
  /// One request's retry state, threaded through executor callbacks.
  struct Tracked {
    Request request;
    Callback done;
    int attempt = 0;  ///< attempts already submitted
  };
  using TrackedPtr = std::shared_ptr<Tracked>;

  void attempt_submit(const TrackedPtr& tracked);
  void on_response(const TrackedPtr& tracked, Response response);
  void deliver(const TrackedPtr& tracked, Response response, bool exhausted);
  void schedule_retry(const TrackedPtr& tracked, double delay_ms);
  void retry_loop();

  RequestExecutor* executor_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable retry_ready_;  ///< retry thread wakeup
  std::condition_variable drained_;      ///< drain() wakeup
  /// Due-time ordered retry queue (multimap: ties are FIFO enough).
  std::multimap<std::chrono::steady_clock::time_point, TrackedPtr> retry_queue_;
  std::size_t in_flight_ = 0;  ///< submitted, terminal response not yet delivered
  bool stopping_ = false;
  Rng jitter_;  ///< guarded by mutex_

  std::uint64_t submitted_ = 0;  // stats, guarded by mutex_
  std::uint64_t retries_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t exhausted_ = 0;

  std::thread retry_thread_;
};

}  // namespace dslayer::service
