#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::service {

ServiceClient::ServiceClient(RequestExecutor& executor) : ServiceClient(executor, Options{}) {}

ServiceClient::ServiceClient(RequestExecutor& executor, Options options)
    : executor_(&executor), options_(options), jitter_(options.jitter_seed) {
  DSLAYER_REQUIRE(options_.max_attempts > 0, "client needs at least one attempt");
  retry_thread_ = std::thread([this] { retry_loop(); });
}

ServiceClient::~ServiceClient() { shutdown(); }

double ServiceClient::backoff_floor_ms(const Options& options, int retry) {
  const int exponent = std::min(std::max(retry - 1, 0), 20);
  return std::min(options.max_backoff_ms,
                  options.base_backoff_ms * static_cast<double>(1ULL << exponent));
}

void ServiceClient::submit(Request request, Callback done) {
  DSLAYER_REQUIRE(done != nullptr, "client callback must not be null");
  auto tracked = std::make_shared<Tracked>();
  tracked->request = std::move(request);
  tracked->done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DSLAYER_REQUIRE(!stopping_, "client is shut down");
    ++submitted_;
    ++in_flight_;
  }
  attempt_submit(tracked);
}

void ServiceClient::attempt_submit(const TrackedPtr& tracked) {
  ++tracked->attempt;
  const bool accepted = executor_->try_submit(
      tracked->request, [this, tracked](Response response) {
        // Worker thread. Scheduling a retry only touches client state —
        // never the executor — so the no-reentry callback rule holds.
        on_response(tracked, std::move(response));
      });
  if (accepted) return;
  // Never enqueued (full queue / enqueue failpoint / stopped executor):
  // synthesize the retryable rejection the executor would have produced.
  Response rejection;
  rejection.id = tracked->request.id;
  rejection.session = tracked->request.session;
  rejection.status = ResponseStatus::kRejected;
  rejection.code = ErrorCode::kOverloaded;
  rejection.retry_after_ms = executor_->retry_after_hint_ms();
  rejection.output = "error: queue full — resubmit\n";
  on_response(tracked, std::move(rejection));
}

void ServiceClient::on_response(const TrackedPtr& tracked, Response response) {
  if (!is_retryable(response.code)) {
    deliver(tracked, std::move(response), /*exhausted=*/false);
    return;
  }
  double delay_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (tracked->attempt < options_.max_attempts && !stopping_) {
      ++retries_;
      // Capped exponential back-off with full-range jitter; the server's
      // retry-after hint, when larger, wins (it knows the queue).
      // `attempt` counts attempts already made, so it is exactly the
      // 1-based index of the upcoming retry: the first retry sleeps
      // around base_backoff_ms (exponent 0), not double it.
      const double exponential = backoff_floor_ms(options_, tracked->attempt);
      const double floor_ms = std::max(exponential, response.retry_after_ms);
      delay_ms = floor_ms * (0.5 + jitter_.next_double());
    }
  }
  if (delay_ms <= 0.0) {
    // Out of budget (or shutting down): the last retryable response is
    // the terminal answer; the caller decides whether to come back.
    deliver(tracked, std::move(response), /*exhausted=*/true);
    return;
  }
  schedule_retry(tracked, delay_ms);
}

void ServiceClient::deliver(const TrackedPtr& tracked, Response response, bool exhausted) {
  Callback done = std::move(tracked->done);
  tracked->done = nullptr;
  done(std::move(response));
  std::lock_guard<std::mutex> lock(mutex_);
  ++delivered_;
  if (exhausted) ++exhausted_;
  --in_flight_;
  if (in_flight_ == 0) drained_.notify_all();
}

void ServiceClient::schedule_retry(const TrackedPtr& tracked, double delay_ms) {
  const auto due = std::chrono::steady_clock::now() +
                   std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                       std::chrono::duration<double, std::milli>(delay_ms));
  std::lock_guard<std::mutex> lock(mutex_);
  retry_queue_.emplace(due, tracked);
  retry_ready_.notify_one();
}

void ServiceClient::retry_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    retry_ready_.wait(lock, [this] { return stopping_ || !retry_queue_.empty(); });
    if (retry_queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    const auto due = retry_queue_.begin()->first;
    if (const auto now = std::chrono::steady_clock::now(); due > now) {
      // Sleep until the earliest retry matures (or new, earlier work /
      // shutdown arrives and the wait predicate re-evaluates).
      retry_ready_.wait_until(lock, due);
      continue;
    }
    const TrackedPtr tracked = retry_queue_.begin()->second;
    retry_queue_.erase(retry_queue_.begin());
    lock.unlock();
    attempt_submit(tracked);
    lock.lock();
  }
}

void ServiceClient::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

void ServiceClient::shutdown() {
  drain();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    retry_ready_.notify_all();
  }
  if (retry_thread_.joinable()) retry_thread_.join();
}

ServiceClient::Stats ServiceClient::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.submitted = submitted_;
  stats.retries = retries_;
  stats.delivered = delivered_;
  stats.exhausted = exhausted_;
  return stats;
}

}  // namespace dslayer::service
