// Stream front ends over the executor: batch and serve modes.
//
// Both read the newline-delimited protocol (protocol.hpp) from an input
// stream and run every request through a RequestExecutor:
//
//   * run_batch  — submits everything (blocking submits, so backpressure
//     throttles the reader instead of rejecting), drains, then prints
//     all responses in SUBMISSION order. Scripted/test mode: output is
//     deterministic given per-session determinism.
//   * run_serve — prints each response as it COMPLETES (ids make the
//     interleaving reconstructible), flushing per response. Interactive
//     mode: a slow session never holds back output for the others. Uses
//     try_submit with bounded retries so a stalled queue surfaces as
//     `rejected` responses rather than silent blocking.
//
// Front-end directives (lines starting with '!') are synchronization
// points: the runner drains the executor, then acts — `!sessions` lists
// live sessions, `!stats` dumps executor + manager counters and latency
// histograms, `!close <session>` closes one, `!drain` just drains.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "service/request_executor.hpp"
#include "service/session_manager.hpp"

namespace dslayer::service {

struct BatchSummary {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;  ///< serve mode: retries exhausted
};

BatchSummary run_batch(SessionManager& manager, RequestExecutor& executor, std::istream& in,
                       std::ostream& out);

BatchSummary run_serve(SessionManager& manager, RequestExecutor& executor, std::istream& in,
                       std::ostream& out);

}  // namespace dslayer::service
