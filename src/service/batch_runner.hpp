// Stream front ends over the executor: batch and serve modes.
//
// Both read the newline-delimited protocol (protocol.hpp) from an input
// stream and run every request through a RequestExecutor:
//
//   * run_batch  — submits everything (blocking submits, so backpressure
//     throttles the reader instead of rejecting), drains, then prints
//     all responses in SUBMISSION order. Scripted/test mode: output is
//     deterministic given per-session determinism.
//   * run_serve — prints each response as it COMPLETES (ids make the
//     interleaving reconstructible), flushing per response. Interactive
//     mode: a slow session never holds back output for the others. Uses
//     try_submit with bounded retries so a stalled queue surfaces as
//     `rejected` responses rather than silent blocking.
//
// Front-end directives (lines starting with '!') are synchronization
// points: the runner drains the executor, then acts — `!sessions` lists
// live sessions, `!stats` dumps executor + manager counters and latency
// histograms, `!close <session>` closes one, `!drain` just drains.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>

#include "service/metrics.hpp"
#include "service/request_executor.hpp"
#include "service/session_manager.hpp"
#include "storage/durable_catalog.hpp"

namespace dslayer::service {

/// Terminal-response accounting shared by both front ends. Every request
/// lands in exactly one bucket by its terminal ResponseStatus — whether
/// the executor delivered it through a callback or the front end
/// synthesized it (parse failure, retries exhausted) — so batch and
/// serve summaries agree for the same input.
struct BatchSummary {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;    ///< kError (command failures, invalid lines, internal)
  std::uint64_t rejected = 0;  ///< kRejected (queue full, shed, busy, unavailable)
  /// kDeadlineExceeded terminal responses. Kept distinct from `errors`:
  /// an expired deadline is the caller's budget running out, not the
  /// service misbehaving, and clients alert on the two differently.
  std::uint64_t deadline_expired = 0;
};

/// Tallies one terminal response into the summary (kOk counts nowhere).
void count_terminal(const Response& response, BatchSummary& summary);

/// Attaches an end-to-end trace to a freshly parsed request (no-op while
/// the tracer is disabled): `received` is when the front end pulled the
/// line off its wire/stream, and becomes the trace origin; the ingress
/// span (with its parse child) covers received -> now. Shared by every
/// front end — batch, serve, and the TCP server.
void begin_request_trace(Request& request, std::chrono::steady_clock::time_point received);

/// Everything a directive handler can reach. `front_end` is the optional
/// TCP-counter snapshot provider (metrics.hpp) a network front end
/// injects so `!stats` and `!metrics` show connection-lifecycle counters;
/// stream front ends leave it null.
struct DirectiveContext {
  SessionManager* manager = nullptr;
  RequestExecutor* executor = nullptr;
  FrontEndStatsFn front_end;
  /// Durable-catalog handle (null without --data): enables `!snapshot`
  /// (checkpoint under the shared read lock — readers keep running,
  /// writers are excluded) and `!restore` (re-boot from disk inside a
  /// SharedLayer writer epoch, so every session migrates off the
  /// discarded in-memory state).
  storage::DurableCatalog* durable = nullptr;
};

/// Handles one '!' directive line (`!sessions`, `!stats`, `!metrics`,
/// `!close <s>`, `!drain`, `!failpoint [<spec>]`), writing its output to
/// `out`. Returns false for unknown directives (reported on `out`).
/// Directives are synchronization points: callers must drain the executor
/// FIRST — and must do so before taking any lock a completion callback
/// needs, or the drain waits on callbacks that wait on the lock. The one
/// exception is `!metrics`, whose payload is built entirely from
/// thread-safe snapshots: front ends may serve it without draining (a
/// scrape must not block behind a busy queue).
bool run_directive(const DirectiveContext& context, const std::string& line, std::ostream& out);

/// Convenience overload for front ends without TCP counters.
bool run_directive(SessionManager& manager, RequestExecutor& executor, const std::string& line,
                   std::ostream& out);

/// `durable` (optional) enables the `!snapshot` / `!restore` directives.
BatchSummary run_batch(SessionManager& manager, RequestExecutor& executor, std::istream& in,
                       std::ostream& out, storage::DurableCatalog* durable = nullptr);

BatchSummary run_serve(SessionManager& manager, RequestExecutor& executor, std::istream& in,
                       std::ostream& out, storage::DurableCatalog* durable = nullptr);

}  // namespace dslayer::service
