// Prometheus text exposition for the exploration service.
//
// render_metrics() turns the service's live state — executor counters and
// per-verb latency histograms, session-manager counters, tracer and
// flight-recorder totals, armed-failpoint hit counts, and (when a TCP
// front end is attached) connection-lifecycle counters — into Prometheus
// text format (version 0.0.4 with an OpenMetrics-style `# EOF`
// terminator, which doubles as the payload framing marker on the TCP
// path). scripts/check_metrics_format.py validates the rules this module
// must uphold: name charset, one HELP/TYPE pair per family, monotone
// non-decreasing cumulative histogram buckets ending in le="+Inf", and
// bucket/_count agreement.
//
// The latency histograms reuse telemetry's power-of-two nanosecond
// buckets (telemetry::latency_bucket_ns) verbatim: bucket i's exclusive
// upper bound 2^(i+1) ns becomes the `le` boundary in seconds. Empty
// buckets are elided (a subset of boundaries is valid Prometheus as long
// as the counts stay cumulative), so a typical verb costs a handful of
// lines, not 64.
//
// Layering: service cannot depend on net, but network-mode operators
// need the NetServer counters here and in `!stats`. The net layer passes
// a FrontEndStatsFn snapshot provider down instead (see
// batch_runner.hpp's DirectiveContext).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/request_executor.hpp"
#include "service/session_manager.hpp"

namespace dslayer::service {

/// Connection-lifecycle counters of a TCP front end, decoupled from
/// net::NetServer::Stats so the service layer stays net-free. The net
/// layer copies its stats into this shape inside its provider.
struct FrontEndCounters {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t rejected_connects = 0;
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t invalid_lines = 0;
  std::uint64_t oversized_lines = 0;
  std::uint64_t directives = 0;
  std::uint64_t idle_closed = 0;
  std::uint64_t slow_reader_closed = 0;
  std::uint64_t faulted = 0;
  std::size_t open_connections = 0;
};

/// Snapshot provider a front end injects; null = no TCP front end.
using FrontEndStatsFn = std::function<FrontEndCounters()>;

/// Renders the full `!metrics` payload (HELP/TYPE + samples per family,
/// `# EOF` last line). Thread-safe against concurrent request execution:
/// every input is read through a thread-safe snapshot API, so the TCP
/// front end serves this inline without draining the executor.
std::string render_metrics(SessionManager& manager, RequestExecutor& executor,
                           const FrontEndStatsFn& front_end = {});

}  // namespace dslayer::service
