#include "service/shared_layer.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::service {

SharedLayer::SharedLayer(dsl::DesignSpaceLayer& layer, Reindex reindex) : layer_(&layer) {
  std::unique_lock<std::shared_timed_mutex> exclusive(mutex_);
  reindex_and_prime(/*inject=*/false, reindex);
  epoch_.store(1, std::memory_order_release);
}

std::int64_t SharedLayer::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double SharedLayer::writer_stall_ms() const {
  const std::int64_t since = writer_since_ns_.load(std::memory_order_acquire);
  if (since == 0) return 0.0;
  return static_cast<double>(now_ns() - since) / 1e6;
}

std::shared_lock<std::shared_timed_mutex> SharedLayer::read_lock_or_unavailable(
    double max_wait_ms) const {
  std::shared_lock<std::shared_timed_mutex> lock(mutex_, std::defer_lock);
  const auto budget =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(max_wait_ms));
  if (lock.try_lock_for(budget)) return lock;
  throw UnavailableError(
      cat("layer is degraded: a catalog writer has held the layer for ",
          format_double(writer_stall_ms(), 1), "ms (waited ", format_double(max_wait_ms, 1),
          "ms) — retry after the update publishes"));
}

void SharedLayer::reindex_and_prime(bool inject, Reindex reindex) {
  if (inject) DSLAYER_FAILPOINT("service.shared_layer.prime");
  if (reindex == Reindex::kFull) layer_->index_cores();
  // Touch every lazily-built per-CDO cache so no reader ever takes the
  // map-inserting miss path. cores_under() also covers cores_at() (both
  // read indexes index_cores() just rebuilt).
  for (const dsl::Cdo* cdo : layer_->space().all()) {
    (void)layer_->constraint_index(*cdo);
    (void)layer_->cores_under(*cdo);
    // Rebuild the columnar filter plan (table + compiled predicate
    // programs) too, so post-publish candidate queries are pure hits.
    (void)layer_->filter_plan(*cdo);
  }
}

}  // namespace dslayer::service
