#include "service/shared_layer.hpp"

namespace dslayer::service {

SharedLayer::SharedLayer(dsl::DesignSpaceLayer& layer) : layer_(&layer) {
  std::unique_lock<std::shared_mutex> exclusive(mutex_);
  reindex_and_prime();
  epoch_.store(1, std::memory_order_release);
}

void SharedLayer::reindex_and_prime() {
  layer_->index_cores();
  // Touch every lazily-built per-CDO cache so no reader ever takes the
  // map-inserting miss path. cores_under() also covers cores_at() (both
  // read indexes index_cores() just rebuilt).
  for (const dsl::Cdo* cdo : layer_->space().all()) {
    (void)layer_->constraint_index(*cdo);
    (void)layer_->cores_under(*cdo);
    // Rebuild the columnar filter plan (table + compiled predicate
    // programs) too, so post-publish candidate queries are pure hits.
    (void)layer_->filter_plan(*cdo);
  }
}

}  // namespace dslayer::service
