// The service's newline-delimited request protocol.
//
// One request per line, reusing the shell command grammar verbatim after
// a leading session name:
//
//   <session> <shell-command...>     e.g.  s1 open Operator.Modular.Multiplier
//                                          s1 decide Algorithm Montgomery
//                                          s2 candidates
//
// Blank lines and `#` comments are skipped. Lines starting with `!` are
// front-end directives (handled synchronously by the batch runner, not
// queued): `!sessions`, `!stats`, `!close <session>`, `!drain`.
//
// Every queued request yields exactly one Response. The batch front end
// renders a response as a `== <id> <session> <ok|error|rejected>` header
// line followed by the command's output, so multi-line outputs stay
// unambiguous and a stream of responses is machine-splittable on `== `.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dslayer::service {

struct Request {
  std::uint64_t id = 0;  ///< submission order, assigned by the front end
  std::string session;
  std::string command;  ///< one shell-grammar command line
};

enum class ResponseStatus : std::uint8_t {
  kOk,
  kError,     ///< the command failed ("error: ..." in output)
  kRejected,  ///< backpressure: never executed, safe to retry
};

const char* to_string(ResponseStatus status);

struct Response {
  std::uint64_t id = 0;
  std::string session;
  ResponseStatus status = ResponseStatus::kOk;
  std::string output;  ///< the command's shell output, newline-terminated
  double latency_us = 0.0;  ///< queue wait + execution (0 for rejections)
};

/// Splits one protocol line into (session, command). nullopt for blank
/// lines and comments. The caller assigns `id`. Throws ServiceError when
/// a session name arrives without a command.
std::optional<Request> parse_request(std::string_view line);

/// True if the line is a front-end directive (starts with '!').
bool is_directive(std::string_view line);

/// Renders the `== <id> <session> <status>` header plus output.
std::string render_response(const Response& response);

}  // namespace dslayer::service
