// The service's newline-delimited request protocol.
//
// One request per line, reusing the shell command grammar verbatim after
// a leading session name:
//
//   <session> <shell-command...>     e.g.  s1 open Operator.Modular.Multiplier
//                                          s1 decide Algorithm Montgomery
//                                          s2 candidates
//
// The session token may carry an optional request deadline as an `@<ms>`
// suffix (`s1@250 candidates` = "answer within 250ms of submission or
// fail fast with deadline-exceeded"). `'@'` is RESERVED for that suffix:
// the token is split at the first `'@'` and everything after it must be
// a whole number of milliseconds, so session names cannot contain `'@'`
// (a token like `user@host` is rejected with a message that says so
// rather than a misleading deadline-parse error). Blank lines and `#`
// comments are skipped. Lines starting with `!` are front-end directives (handled
// synchronously by the batch runner, not queued): `!sessions`, `!stats`,
// `!close <session>`, `!drain`, `!failpoint <spec>`.
//
// Every queued request yields exactly one Response. The batch front end
// renders a response as a `== <id> <session> <status>` header line —
// augmented with `code=<error-code>` and `retry-after-ms=<n>` when set —
// followed by the command's output, so multi-line outputs stay
// unambiguous and a stream of responses is machine-splittable on `== `.
//
// Failure taxonomy: ResponseStatus is the coarse wire verdict (did the
// command run, and did it succeed); ErrorCode is the typed cause. The
// split matters to clients: is_retryable(code) says whether resubmitting
// the same line can succeed (backpressure, overload, degraded layer) or
// is pointless (malformed request, command error, expired deadline).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace dslayer::trace {
class Trace;
}  // namespace dslayer::trace

namespace dslayer::service {

/// Hard cap on one protocol line. Longer lines are rejected as
/// kInvalidRequest before any copy is made — a line is attacker-sized
/// input in serve mode, and the parser must stay O(line) with bounded
/// allocation.
inline constexpr std::size_t kMaxRequestLineBytes = 64 * 1024;

struct Request {
  std::uint64_t id = 0;  ///< submission order, assigned by the front end
  std::string session;
  std::string command;  ///< one shell-grammar command line
  /// Optional deadline budget in milliseconds, parsed from the `@<ms>`
  /// session suffix; 0 = no deadline. The executor starts the clock at
  /// submission, so queue wait counts against the budget.
  double deadline_ms = 0.0;
  /// End-to-end trace attached at ingress by the front end (null when
  /// tracing is disabled). Shared so it survives ServiceClient retries:
  /// a retried request accumulates one queue.wait/execute span pair per
  /// attempt on the same trace. The front end that delivers the final
  /// response calls trace::Tracer::finish().
  std::shared_ptr<trace::Trace> trace;
};

enum class ResponseStatus : std::uint8_t {
  kOk,
  kError,             ///< the command ran and failed ("error: ..." in output)
  kRejected,          ///< backpressure: never executed, safe to retry
  kDeadlineExceeded,  ///< the request's deadline expired before completion
};

const char* to_string(ResponseStatus status);

/// Typed failure cause, machine-readable on the wire as `code=<name>`.
/// kNone accompanies kOk; every non-ok response carries a specific code.
enum class ErrorCode : std::uint8_t {
  kNone,              ///< success
  kInvalidRequest,    ///< malformed line (no command, oversized, bad token)
  kCommandFailed,     ///< the shell command itself failed — terminal
  kDeadlineExceeded,  ///< request deadline expired (queued or mid-sweep)
  kSessionsBusy,      ///< session table full, every session pinned — retryable
  kOverloaded,        ///< queue full or queue wait over the shed threshold
  kUnavailable,       ///< shared layer degraded (writer stalled) — retryable
  kInternal,          ///< unexpected exception; state may be suspect
};

const char* to_string(ErrorCode code);

/// True when resubmitting the same request can plausibly succeed
/// (transient capacity/availability causes); false for terminal causes.
bool is_retryable(ErrorCode code);

struct Response {
  std::uint64_t id = 0;
  std::string session;
  ResponseStatus status = ResponseStatus::kOk;
  ErrorCode code = ErrorCode::kNone;
  std::string output;  ///< the command's shell output, newline-terminated
  double latency_us = 0.0;  ///< queue wait + execution (0 for rejections)
  /// Overload hint: when > 0, the service suggests the client wait this
  /// long before retrying (rendered as `retry-after-ms=<n>`).
  double retry_after_ms = 0.0;
};

/// Splits one protocol line into a Request. Never throws:
///   * blank lines and `#` comments    -> nullopt, *error untouched
///   * malformed or oversized lines    -> nullopt, *error set (non-empty)
///   * well-formed request             -> Request (caller assigns `id`)
/// `error` may be null when the caller does not care why a line failed.
std::optional<Request> parse_request(std::string_view line, std::string* error = nullptr) noexcept;

/// True if the line is a front-end directive (starts with '!').
bool is_directive(std::string_view line);

/// The canonical kError/kInvalidRequest response for a line that never
/// became a request (parse failure, oversized line). Session is "-";
/// `error` lands in the output as "error: <error>". Every front end
/// (batch, serve, TCP) answers malformed input with this shape.
Response invalid_request_response(std::uint64_t id, const std::string& error);

/// Renders the `== <id> <session> <status>` header plus output. Non-ok
/// codes append ` code=<name>`; a positive retry_after_ms appends
/// ` retry-after-ms=<n>`.
std::string render_response(const Response& response);

}  // namespace dslayer::service
