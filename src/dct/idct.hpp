// 8x8 inverse discrete cosine transform implementations.
//
// The media layer's IDCT cores (Figs. 2-4 of the paper) are not datasheet
// stubs: the two algorithm families the layer discriminates — row-column
// separable and fused/flowgraph — are implemented here and verified
// against a double-precision reference in the spirit of IEEE Std 1180
// (random-block accuracy bounds), the conformance regime MPEG-class
// decoders (paper ref [4]) were tested under.
//
//  * idct_8x8_reference: direct O(N^4) double-precision definition — the
//    "mathematical definition of the transform" at the top of the Fig. 4
//    hierarchy, from which all algorithmic variants derive.
//  * idct_8x8_row_col: separable fixed-point implementation (two 1-D
//    passes with an intermediate transpose), the IDCT_row_col behavioral
//    description's algorithm.
//  * idct_8x8_fused: a scaled/fused fixed-point variant that folds the
//    scale factors of the two passes together (fewer multiplications,
//    deeper adder chains — the IDCT_fused behavioral description).
//
// The forward transform is provided to generate conformance test vectors.
#pragma once

#include <array>
#include <cstdint>

namespace dslayer::dct {

/// An 8x8 block in row-major order.
using Block = std::array<double, 64>;
using IntBlock = std::array<std::int32_t, 64>;

/// Forward 8x8 DCT-II (double precision, orthonormal scaling).
Block dct_8x8(const Block& spatial);

/// Direct-definition inverse 8x8 DCT (double precision) — the reference
/// every hardware algorithm is verified against.
Block idct_8x8_reference(const Block& coefficients);

/// Row-column separable fixed-point IDCT. Input: integer DCT coefficients
/// (typically dequantized, range +-2048); output: integer samples. The
/// internal datapath uses 13 fractional bits, matching a 16-bit hardware
/// implementation with widened accumulators.
IntBlock idct_8x8_row_col(const IntBlock& coefficients);

/// Fused/scaled fixed-point IDCT: the per-pass constant multiplications of
/// the row-column form are folded into a single pre-scaling of the
/// coefficients, leaving butterfly passes with fewer multiplications.
IntBlock idct_8x8_fused(const IntBlock& coefficients);

/// Peak absolute error of a fixed-point IDCT against the reference over
/// `blocks` random coefficient blocks (IEEE-1180-style accuracy probe).
/// `fused` selects the algorithm; `seed` makes the probe reproducible.
double idct_peak_error(bool fused, int blocks, std::uint64_t seed);

}  // namespace dslayer::dct
