#include "dct/idct.hpp"

#include <cmath>
#include <cstdlib>

#include "support/rng.hpp"

namespace dslayer::dct {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Orthonormal 1-D scale factor c(u).
double scale_c(int u) { return u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0); }

/// cos((2i+1) u pi / 16).
double basis(int u, int i) { return std::cos((2 * i + 1) * u * kPi / 16.0); }

/// Fixed-point tables, built once.
struct Tables {
  // Tc[u][i] = c(u) * cos(...) * 2^13  (row-column form).
  std::int32_t tc[8][8];
  // C[u][i] = cos(...) * 2^11          (fused form, scale folded out).
  std::int32_t c[8][8];
  // SC[u][v] = c(u) * c(v) * 2^12      (fused pre-scaling).
  std::int32_t sc[8][8];

  Tables() {
    for (int u = 0; u < 8; ++u) {
      for (int i = 0; i < 8; ++i) {
        tc[u][i] = static_cast<std::int32_t>(std::lround(scale_c(u) * basis(u, i) * 8192.0));
        c[u][i] = static_cast<std::int32_t>(std::lround(basis(u, i) * 2048.0));
      }
    }
    for (int u = 0; u < 8; ++u) {
      for (int v = 0; v < 8; ++v) {
        sc[u][v] = static_cast<std::int32_t>(std::lround(scale_c(u) * scale_c(v) * 4096.0));
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

std::int64_t rounded_shift(std::int64_t v, unsigned bits) {
  return (v + (std::int64_t{1} << (bits - 1))) >> bits;
}

}  // namespace

Block dct_8x8(const Block& spatial) {
  Block out{};
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      double acc = 0.0;
      for (int i = 0; i < 8; ++i) {
        for (int j = 0; j < 8; ++j) {
          acc += spatial[static_cast<std::size_t>(i * 8 + j)] * basis(u, i) * basis(v, j);
        }
      }
      out[static_cast<std::size_t>(u * 8 + v)] = scale_c(u) * scale_c(v) * acc;
    }
  }
  return out;
}

Block idct_8x8_reference(const Block& coefficients) {
  Block out{};
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      double acc = 0.0;
      for (int u = 0; u < 8; ++u) {
        for (int v = 0; v < 8; ++v) {
          acc += scale_c(u) * scale_c(v) * coefficients[static_cast<std::size_t>(u * 8 + v)] *
                 basis(u, i) * basis(v, j);
        }
      }
      out[static_cast<std::size_t>(i * 8 + j)] = acc;
    }
  }
  return out;
}

IntBlock idct_8x8_row_col(const IntBlock& coefficients) {
  const Tables& t = tables();
  // Row pass: every row is an independent 1-D IDCT; keep 4 fractional bits.
  std::int64_t mid[64];
  for (int r = 0; r < 8; ++r) {
    for (int i = 0; i < 8; ++i) {
      std::int64_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += static_cast<std::int64_t>(coefficients[static_cast<std::size_t>(r * 8 + u)]) *
               t.tc[u][i];
      }
      mid[r * 8 + i] = rounded_shift(acc, 9);  // 2^13 -> 2^4
    }
  }
  // Column pass: transpose orientation, drop all fractional bits at the end.
  IntBlock out{};
  for (int col = 0; col < 8; ++col) {
    for (int i = 0; i < 8; ++i) {
      std::int64_t acc = 0;
      for (int u = 0; u < 8; ++u) {
        acc += mid[u * 8 + col] * t.tc[u][i];
      }
      out[static_cast<std::size_t>(i * 8 + col)] =
          static_cast<std::int32_t>(rounded_shift(acc, 17));  // 2^(4+13) -> 2^0
    }
  }
  return out;
}

namespace {

/// 1-D pure-cosine pass of the fused form: even/odd symmetry halves the
/// multiplications (4 products per half-sample instead of 8) at the cost
/// of the extra add/sub butterflies — the trade the IDCT_fused behavioral
/// description models.
void fused_pass(const std::int64_t in[8], std::int64_t out[8], unsigned drop_bits) {
  const Tables& t = tables();
  for (int i = 0; i < 4; ++i) {
    std::int64_t even = 0;
    std::int64_t odd = 0;
    for (int u = 0; u < 8; u += 2) even += in[u] * t.c[u][i];
    for (int u = 1; u < 8; u += 2) odd += in[u] * t.c[u][i];
    out[i] = rounded_shift(even + odd, drop_bits);
    out[7 - i] = rounded_shift(even - odd, drop_bits);  // cos symmetry
  }
}

}  // namespace

IntBlock idct_8x8_fused(const IntBlock& coefficients) {
  const Tables& t = tables();
  // Pre-scale: fold c(u)c(v) of both passes into the coefficients once.
  std::int64_t w[64];
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      w[u * 8 + v] = rounded_shift(
          static_cast<std::int64_t>(coefficients[static_cast<std::size_t>(u * 8 + v)]) *
              t.sc[u][v],
          4);  // 2^12 -> 2^8
    }
  }
  // Row pass (scale 2^8 * 2^11 -> drop 8 -> 2^11), then column pass.
  std::int64_t mid[64];
  for (int r = 0; r < 8; ++r) {
    std::int64_t row[8], res[8];
    for (int u = 0; u < 8; ++u) row[u] = w[r * 8 + u];
    fused_pass(row, res, 8);
    for (int i = 0; i < 8; ++i) mid[r * 8 + i] = res[i];
  }
  IntBlock out{};
  for (int col = 0; col < 8; ++col) {
    std::int64_t column[8], res[8];
    for (int u = 0; u < 8; ++u) column[u] = mid[u * 8 + col];
    fused_pass(column, res, 22);  // 2^(11+11) -> 2^0
    for (int i = 0; i < 8; ++i) {
      out[static_cast<std::size_t>(i * 8 + col)] = static_cast<std::int32_t>(res[i]);
    }
  }
  return out;
}

double idct_peak_error(bool fused, int blocks, std::uint64_t seed) {
  Rng rng(seed);
  double peak = 0.0;
  for (int b = 0; b < blocks; ++b) {
    IntBlock coeffs{};
    Block exact{};
    for (std::size_t k = 0; k < 64; ++k) {
      // IEEE-1180-style range [-300, 300].
      coeffs[k] = static_cast<std::int32_t>(rng.next_in(-300, 300));
      exact[k] = coeffs[k];
    }
    const Block reference = idct_8x8_reference(exact);
    const IntBlock result = fused ? idct_8x8_fused(coeffs) : idct_8x8_row_col(coeffs);
    for (std::size_t k = 0; k < 64; ++k) {
      peak = std::max(peak, std::abs(reference[k] - static_cast<double>(result[k])));
    }
  }
  return peak;
}

}  // namespace dslayer::dct
