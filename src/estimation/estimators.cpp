#include "estimation/estimators.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "tech/components.hpp"

namespace dslayer::estimation {

using behavior::BehavioralDescription;
using behavior::OpKind;

namespace {

void require_bd(const EstimateInput& input, const char* who) {
  if (input.bd == nullptr) {
    throw PreconditionError(cat(who, " needs a behavioral description"));
  }
}

}  // namespace

double BehaviorDelayEstimator::op_delay_ns(const BehavioralDescription::Op& op,
                                           const tech::Technology& technology) {
  const unsigned w = std::max(op.width_bits, 1u);
  switch (op.kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
      return tech::carry_lookahead_adder(w, technology).delay_ns;
    case OpKind::kMul:
      // A full w x w array multiplier is roughly a partial-product stack of
      // depth ~w reduced log-wise plus a final carry-propagate add.
      return tech::array_digit_multiplier(std::min(w, 16u), w, technology).delay_ns +
             tech::carry_lookahead_adder(w, technology).delay_ns;
    case OpKind::kDivRadix:
    case OpKind::kModRadix:
      return 0.0;  // power-of-two radix: pure wiring
    case OpKind::kCompare:
      return tech::comparator(w, technology).delay_ns;
    case OpKind::kSelect:
      return tech::mux2(w, technology).delay_ns;
    case OpKind::kAssign:
      return 0.0;
  }
  return 0.0;
}

double BehaviorDelayEstimator::estimate(const EstimateInput& input) const {
  require_bd(input, "BehaviorDelayEstimator");
  const tech::Technology technology = input.technology;
  const auto delay = [&technology](const BehavioralDescription::Op& op) {
    return op_delay_ns(op, technology);
  };
  // Rank by the loop-body path when there is a loop (the recurring cycle),
  // otherwise by the whole description.
  if (input.bd->has_loop()) return input.bd->loop_critical_path(delay);
  return input.bd->critical_path(delay);
}

double LatencyCyclesEstimator::estimate(const EstimateInput& input) const {
  require_bd(input, "LatencyCyclesEstimator");
  return input.bd->iteration_count(input.eol_bits, input.radix);
}

double BehaviorAreaEstimator::op_area(const BehavioralDescription::Op& op,
                                      const tech::Technology& technology) {
  const unsigned w = std::max(op.width_bits, 1u);
  switch (op.kind) {
    case OpKind::kAdd:
    case OpKind::kSub:
      return tech::carry_lookahead_adder(w, technology).area;
    case OpKind::kMul:
      return tech::array_digit_multiplier(std::min(w, 16u), w, technology).area;
    case OpKind::kDivRadix:
    case OpKind::kModRadix:
      return 0.0;
    case OpKind::kCompare:
      return tech::comparator(w, technology).area;
    case OpKind::kSelect:
      return tech::mux2(w, technology).area;
    case OpKind::kAssign:
      return tech::register_bank(w, technology).area;
  }
  return 0.0;
}

double BehaviorAreaEstimator::estimate(const EstimateInput& input) const {
  require_bd(input, "BehaviorAreaEstimator");
  double area = 0.0;
  for (const auto& op : input.bd->ops()) area += op_area(op, input.technology);
  return area;
}

double BehaviorPowerEstimator::estimate(const EstimateInput& input) const {
  require_bd(input, "BehaviorPowerEstimator");
  BehaviorAreaEstimator area_tool;
  BehaviorDelayEstimator delay_tool;
  const double area = area_tool.estimate(input);
  const double path_ns = std::max(delay_tool.estimate(input), 0.5);
  const double freq_mhz = 1000.0 / path_ns;
  return input.technology.power_coeff * (area / 1000.0) * freq_mhz * 0.15 / 100.0;
}

void EstimatorRegistry::add(std::unique_ptr<Estimator> estimator) {
  DSLAYER_REQUIRE(estimator != nullptr, "null estimator");
  if (find(estimator->name()) != nullptr) {
    throw DefinitionError(cat("estimator '", estimator->name(), "' already registered"));
  }
  estimators_.push_back(std::move(estimator));
}

const Estimator* EstimatorRegistry::find(const std::string& name) const {
  for (const auto& e : estimators_) {
    if (e->name() == name) return e.get();
  }
  return nullptr;
}

std::vector<std::string> EstimatorRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(estimators_.size());
  for (const auto& e : estimators_) out.push_back(e->name());
  return out;
}

EstimatorRegistry EstimatorRegistry::standard() {
  EstimatorRegistry r;
  r.add(std::make_unique<BehaviorDelayEstimator>());
  r.add(std::make_unique<LatencyCyclesEstimator>());
  r.add(std::make_unique<BehaviorAreaEstimator>());
  r.add(std::make_unique<BehaviorPowerEstimator>());
  return r;
}

}  // namespace dslayer::estimation
