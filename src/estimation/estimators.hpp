// Early estimation tools.
//
// The paper (CC3 in Fig. 13, and the discussion in Section 5.2) binds
// estimation tools into the design space layer through consistency
// constraints: "Estimation tools are useful when no suitable hard cores are
// found in the reuse library", and the layer "defines the context for which
// specific metrics and early estimation tools are to be used".
//
// Estimators consume an algorithmic-level behavioral description plus the
// current design-space context (operand length, radix, technology) and
// produce one figure of merit. The registry gives consistency constraints a
// stable name to reference (CC3 names "BehaviorDelayEstimator").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "behavior/behavior.hpp"
#include "support/units.hpp"
#include "tech/technology.hpp"

namespace dslayer::estimation {

/// Context for one estimate: the BD under evaluation plus the design
/// decisions that scale it.
struct EstimateInput {
  const behavior::BehavioralDescription* bd = nullptr;
  unsigned eol_bits = 32;          ///< effective operand length (Req1)
  unsigned radix = 2;              ///< digit radix of the algorithm
  unsigned datapath_bits = 32;     ///< operator datapath width
  tech::Technology technology;     ///< DI5/DI6 selection
};

/// Interface of an early estimation tool.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Registry name, referenced by consistency constraints (CC3).
  virtual std::string name() const = 0;

  /// The figure of merit produced.
  virtual Unit unit() const = 0;

  /// Produces the estimate; throws PreconditionError if input.bd is null
  /// and the estimator needs one.
  virtual double estimate(const EstimateInput& input) const = 0;
};

/// CC3's "BehaviorDelayEstimator": ranks behavioral descriptions by the
/// combinational critical path of one loop iteration, with per-operator
/// delays taken from the tech component library (MaxCombinationalDelay).
class BehaviorDelayEstimator final : public Estimator {
 public:
  std::string name() const override { return "BehaviorDelayEstimator"; }
  Unit unit() const override { return Unit::kNanoseconds; }
  double estimate(const EstimateInput& input) const override;

  /// Delay of one operation at the given width/technology (exposed for the
  /// tests and for critical-path reports).
  static double op_delay_ns(const behavior::BehavioralDescription::Op& op,
                            const tech::Technology& technology);
};

/// CC2 as a tool: latency of the full operation in cycles,
/// iterations(EOL, radix) x ops-per-iteration (1 for the pipelined loop).
/// The paper's closed form is L = 2 x EOL / R + 1 for radix in {2, 4}; this
/// estimator generalizes to digit counts.
class LatencyCyclesEstimator final : public Estimator {
 public:
  std::string name() const override { return "LatencyCyclesEstimator"; }
  Unit unit() const override { return Unit::kNone; }
  double estimate(const EstimateInput& input) const override;
};

/// Area from operator inventory: sums component areas of every operator
/// instance in the BD at the datapath width.
class BehaviorAreaEstimator final : public Estimator {
 public:
  std::string name() const override { return "BehaviorAreaEstimator"; }
  Unit unit() const override { return Unit::kGates; }
  double estimate(const EstimateInput& input) const override;

  static double op_area(const behavior::BehavioralDescription::Op& op,
                        const tech::Technology& technology);
};

/// Power extension (paper Section 6 "work in progress"): activity x
/// switched capacitance (~area) x operating frequency (1/critical path).
class BehaviorPowerEstimator final : public Estimator {
 public:
  std::string name() const override { return "BehaviorPowerEstimator"; }
  Unit unit() const override { return Unit::kMilliwatts; }
  double estimate(const EstimateInput& input) const override;
};

/// Name-keyed registry so consistency constraints can reference tools.
class EstimatorRegistry {
 public:
  /// Registers a tool; throws DefinitionError on duplicate names.
  void add(std::unique_ptr<Estimator> estimator);

  /// Finds by name; nullptr if absent.
  const Estimator* find(const std::string& name) const;

  /// All registered names (for reports).
  std::vector<std::string> names() const;

  /// A registry preloaded with the four standard tools.
  static EstimatorRegistry standard();

 private:
  std::vector<std::unique_ptr<Estimator>> estimators_;
};

}  // namespace dslayer::estimation
