// The media (IDCT) design space layer — the paper's motivating example.
//
// Section 2 uses five IDCT hard cores to show why organizing a design
// space by the traditional abstraction levels (Fig. 2) guides exploration
// poorly, while a generalization/specialization hierarchy built on
// evaluation-space proximity (Fig. 3) discriminates the clusters {1,2,5}
// vs {3,4} first: "Designs 1 and 4 ... could very well be different
// implementations of the exact same IDCT algorithm (say, one using a 0.35u
// standard cell library, and the other using a 0.7u standard cell
// library)".
//
// We build exactly that situation: five synthetic hard cores spanning two
// fabrication technologies and two IDCT algorithm families (plus one
// software core), with figures of merit produced by the estimation tools
// over the IDCT behavioral descriptions — so the technology clusters
// emerge from the same component models the rest of the system uses.
#pragma once

#include <memory>
#include <vector>

#include "analysis/evaluation_space.hpp"
#include "dct/idct.hpp"
#include "dsl/layer.hpp"

namespace dslayer::domains {

inline constexpr const char* kIdctPrecision = "Precision";
inline constexpr const char* kIdctAlgorithm = "IdctAlgorithm";
inline constexpr const char* kPathIdct = "IDCT";
inline constexpr const char* kPathIdctHw = "IDCT.Hardware";

/// Builds the IDCT layer: hierarchy of Fig. 4 (implementation style first,
/// then — per Section 2.2 — fabrication technology as the cluster-driving
/// generalized issue inside Hardware), the five hard cores of Figs. 2-3
/// (ids "IDCT 1" .. "IDCT 5") and one software core, indexed.
std::unique_ptr<dsl::DesignSpaceLayer> build_media_layer();

/// The five hard cores as evaluation-space points (metrics: area,
/// delay_ns; attributes: FabricationTechnology, LayoutStyle,
/// IdctAlgorithm) — the input of the Fig. 3 clustering reproduction.
std::vector<analysis::EvalPoint> idct_eval_points(const dsl::DesignSpaceLayer& layer);

/// Functional execution of a hard core's algorithm family: runs the
/// fixed-point IDCT (dct/) matching the core's IdctAlgorithm binding, so
/// the media cores are verified implementations exactly like the crypto
/// cores (whose datapaths the RTL simulator executes). Throws
/// PreconditionError if the core is not a hardware IDCT core.
dct::IntBlock execute_idct_core(const dsl::Core& core, const dct::IntBlock& coefficients);

}  // namespace dslayer::domains
