#include "domains/media.hpp"

#include "domains/crypto.hpp"

#include "behavior/behavior.hpp"
#include "estimation/estimators.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "tech/technology.hpp"

namespace dslayer::domains {

using dsl::Core;
using dsl::Property;
using dsl::Value;
using dsl::ValueDomain;

namespace {

constexpr const char* kRowCol = "Row-Column";
constexpr const char* kFused = "Fused-Flowgraph";

/// Figures of merit of one hard core, from the estimation tools over the
/// matching behavioral description (so technologies scale consistently).
struct IdctEval {
  double area;
  double delay_ns;  // per 8x8 block
  double power_mw;
};

IdctEval evaluate_idct(const std::string& algorithm, const tech::Technology& technology) {
  const behavior::BehavioralDescription bd = algorithm == kRowCol
                                                 ? behavior::idct_row_col_bd(16)
                                                 : behavior::idct_fused_bd(16);
  estimation::EstimateInput input;
  input.bd = &bd;
  input.eol_bits = 16;
  input.datapath_bits = 16;
  input.technology = technology;

  const estimation::BehaviorAreaEstimator area_tool;
  const estimation::BehaviorDelayEstimator delay_tool;
  const estimation::BehaviorPowerEstimator power_tool;
  const double iteration_ns = delay_tool.estimate(input);
  const double iterations = bd.iteration_count(16, 2);
  return IdctEval{area_tool.estimate(input), iteration_ns * iterations,
                  power_tool.estimate(input)};
}

}  // namespace

std::unique_ptr<dsl::DesignSpaceLayer> build_media_layer() {
  auto layer = std::make_unique<dsl::DesignSpaceLayer>("media");

  dsl::Cdo& idct = layer->space().add_root(
      "IDCT", "Inverse Discrete Cosine Transform blocks (8x8, MPEG-class decoders)");
  idct.add_property(Property::requirement(
      kIdctPrecision, ValueDomain::positive_integers(),
      "Required fixed-point precision of the reconstruction (IEEE 1180-style)", Unit::kBits));
  idct.add_property(Property::generalized_issue(
      "ImplementationStyle", {"Hardware", "Software"},
      "Hardware blocks vs software on a programmable platform"));

  dsl::Cdo& hw = idct.specialize("Hardware");
  // Per Section 2.2, the issue that best explains the evaluation-space
  // clusters — fabrication technology — is generalized FIRST; algorithm
  // and layout style remain fine-grained trade-offs inside each family.
  hw.add_property(Property::generalized_issue(
      "FabricationTechnology",
      {to_string(tech::Process::k035um), to_string(tech::Process::k070um)},
      "The technology split drives the {1,2,5} vs {3,4} area/delay clusters of Fig. 3"));
  hw.add_property(Property::design_issue(
      kIdctAlgorithm, ValueDomain::options({kRowCol, kFused}),
      "1-D row/column passes vs fused 2-D flowgraph (fewer multiplies, deeper chains)"));
  hw.add_property(Property::design_issue(
      "LayoutStyle",
      ValueDomain::options({to_string(tech::LayoutStyle::kStandardCell),
                            to_string(tech::LayoutStyle::kGateArray)}),
      "Standard cell vs gate array"));
  dsl::Cdo& hw035 = hw.specialize(to_string(tech::Process::k035um), "um035");
  dsl::Cdo& hw070 = hw.specialize(to_string(tech::Process::k070um), "um070");
  hw035.add_behavior(behavior::idct_row_col_bd(16));
  hw035.add_behavior(behavior::idct_fused_bd(16));
  hw070.add_behavior(behavior::idct_row_col_bd(16));

  dsl::Cdo& sw = idct.specialize("Software");
  sw.add_property(Property::design_issue(
      "Platform", ValueDomain::options({"Embedded-RISC", "Embedded-DSP"}),
      "Programmable platform running the IDCT routine"));

  // --- the five hard cores of Figs. 2-3 + one software core -------------------
  dsl::ReuseLibrary& lib = layer->add_library("media-cores");
  struct Spec {
    const char* name;
    const char* algorithm;
    tech::Process process;
    tech::LayoutStyle layout;
  };
  const Spec specs[] = {
      {"IDCT 1", kRowCol, tech::Process::k035um, tech::LayoutStyle::kStandardCell},
      {"IDCT 2", kFused, tech::Process::k035um, tech::LayoutStyle::kStandardCell},
      {"IDCT 3", kRowCol, tech::Process::k070um, tech::LayoutStyle::kStandardCell},
      {"IDCT 4", kFused, tech::Process::k070um, tech::LayoutStyle::kStandardCell},
      {"IDCT 5", kRowCol, tech::Process::k035um, tech::LayoutStyle::kGateArray},
  };
  for (const Spec& spec : specs) {
    const tech::Technology technology = tech::technology(spec.process, spec.layout);
    const IdctEval eval = evaluate_idct(spec.algorithm, technology);
    Core core(spec.name, kPathIdct);
    core.bind("ImplementationStyle", Value::text("Hardware"))
        .bind("FabricationTechnology", Value::text(to_string(spec.process)))
        .bind("LayoutStyle", Value::text(to_string(spec.layout)))
        .bind(kIdctAlgorithm, Value::text(spec.algorithm));
    core.set_metric(kMetricArea, eval.area)
        .set_metric(kMetricDelayNs, eval.delay_ns)
        .set_metric(kMetricPowerMw, eval.power_mw);
    core.add_view("algorithm", cat("ip://media/", spec.name, "/alg"))
        .add_view("rt", cat("ip://media/", spec.name, "/rtl.v"))
        .add_view("logic", cat("ip://media/", spec.name, "/netlist"))
        .add_view("physical", cat("ip://media/", spec.name, "/gds2"));
    lib.add(std::move(core));
  }
  Core sw_core("IDCT sw-risc", kPathIdct);
  sw_core.bind("ImplementationStyle", Value::text("Software"))
      .bind("Platform", Value::text("Embedded-RISC"));
  sw_core.set_metric(kMetricDelayNs, 6.0e5).set_metric(kMetricCodeBytes, 4200.0);
  lib.add(std::move(sw_core));

  layer->index_cores();
  return layer;
}

dct::IntBlock execute_idct_core(const dsl::Core& core, const dct::IntBlock& coefficients) {
  const auto algorithm = core.binding(kIdctAlgorithm);
  const auto impl = core.binding("ImplementationStyle");
  if (!algorithm.has_value() || !impl.has_value() || impl->as_text() != "Hardware") {
    throw PreconditionError(cat("core '", core.name(), "' is not a hardware IDCT core"));
  }
  return algorithm->as_text() == kFused ? dct::idct_8x8_fused(coefficients)
                                        : dct::idct_8x8_row_col(coefficients);
}

std::vector<analysis::EvalPoint> idct_eval_points(const dsl::DesignSpaceLayer& layer) {
  std::vector<analysis::EvalPoint> points;
  const dsl::Cdo* idct = layer.space().find(kPathIdct);
  DSLAYER_REQUIRE(idct != nullptr, "layer has no IDCT class");
  for (const Core* core : layer.cores_under(*idct)) {
    const auto impl = core->binding("ImplementationStyle");
    if (!impl.has_value() || impl->as_text() != "Hardware") continue;
    analysis::EvalPoint point;
    point.id = core->name();
    point.metrics["area"] = core->metric(kMetricArea).value_or(0.0);
    point.metrics["delay_ns"] = core->metric(kMetricDelayNs).value_or(0.0);
    for (const char* attr : {"FabricationTechnology", "LayoutStyle", kIdctAlgorithm}) {
      const auto v = core->binding(attr);
      if (v.has_value()) point.attributes[attr] = v->as_text();
    }
    points.push_back(std::move(point));
  }
  return points;
}

}  // namespace dslayer::domains
