#include "domains/crypto.hpp"

#include <cmath>

#include "behavior/behavior.hpp"
#include "dsl/exploration.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "tech/components.hpp"

namespace dslayer::domains {

using dsl::Bindings;
using dsl::Compliance;
using dsl::ConsistencyConstraint;
using dsl::Core;
using dsl::Property;
using dsl::PropertyPath;
using dsl::ReuseLibrary;
using dsl::Value;
using dsl::ValueDomain;

namespace {

// ---------------------------------------------------------------------------
// Option-string <-> substrate-enum mapping
// ---------------------------------------------------------------------------

rtl::Algorithm parse_algorithm(const std::string& s) {
  if (s == to_string(rtl::Algorithm::kMontgomery)) return rtl::Algorithm::kMontgomery;
  if (s == to_string(rtl::Algorithm::kBrickell)) return rtl::Algorithm::kBrickell;
  throw PreconditionError(cat("unknown algorithm option '", s, "'"));
}

rtl::AdderKind parse_adder(const std::string& s) {
  if (s == to_string(rtl::AdderKind::kCarryLookahead)) return rtl::AdderKind::kCarryLookahead;
  if (s == to_string(rtl::AdderKind::kCarrySave)) return rtl::AdderKind::kCarrySave;
  if (s == to_string(rtl::AdderKind::kRipple)) return rtl::AdderKind::kRipple;
  throw PreconditionError(cat("unknown adder option '", s, "'"));
}

rtl::MultiplierKind parse_multiplier(const std::string& s) {
  if (s == to_string(rtl::MultiplierKind::kNone)) return rtl::MultiplierKind::kNone;
  if (s == to_string(rtl::MultiplierKind::kArray)) return rtl::MultiplierKind::kArray;
  if (s == to_string(rtl::MultiplierKind::kMuxBased)) return rtl::MultiplierKind::kMuxBased;
  throw PreconditionError(cat("unknown multiplier option '", s, "'"));
}

tech::Technology parse_technology(const std::string& process, const std::string& layout) {
  const tech::Process p = process == to_string(tech::Process::k070um) ? tech::Process::k070um
                                                                      : tech::Process::k035um;
  const tech::LayoutStyle l = layout == to_string(tech::LayoutStyle::kGateArray)
                                  ? tech::LayoutStyle::kGateArray
                                  : tech::LayoutStyle::kStandardCell;
  return tech::technology(p, l);
}

bigint::MontVariant parse_variant(const std::string& s) {
  for (bigint::MontVariant v : bigint::kAllMontVariants) {
    if (s == to_string(v)) return v;
  }
  throw PreconditionError(cat("unknown scanning method '", s, "'"));
}

std::string text_of(const Bindings& bindings, const char* name, const char* fallback) {
  const Value v = dsl::get_or_empty(bindings, name);
  return v.kind() == Value::Kind::kText ? v.as_text() : fallback;
}

double number_of(const Bindings& bindings, const char* name, double fallback) {
  const Value v = dsl::get_or_empty(bindings, name);
  return v.kind() == Value::Kind::kNumber ? v.as_number() : fallback;
}

// ---------------------------------------------------------------------------
// Hierarchy (Figs. 5 and 7)
// ---------------------------------------------------------------------------

void build_hierarchy(dsl::DesignSpaceLayer& layer, const CryptoLayerOptions& options) {
  dsl::Cdo& op = layer.space().add_root(
      "Operator", "Arithmetic/logic operators for encryption applications (Fig. 5)");
  op.add_property(Property::requirement(
      kEOL, ValueDomain::positive_integers(),
      "Effective operand length in bits (Req1; cryptographic moduli reach 2^1000+)",
      Unit::kBits));
  op.add_property(Property::generalized_issue(
      "OperatorClass", {"LogicArithmetic", "Modular"},
      "Functional family: conventional logic/arithmetic vs modular arithmetic"));

  // --- Logic/Arithmetic branch ---------------------------------------------
  dsl::Cdo& la = op.specialize("LogicArithmetic");
  la.add_property(Property::generalized_issue("Function", {"Logic", "Arithmetic"},
                                              "Bit-level logic vs numeric arithmetic"));
  la.specialize("Logic");
  dsl::Cdo& arith = la.specialize("Arithmetic");
  arith.add_property(Property::generalized_issue("Operation", {"Adder", "Multiplier"},
                                                 "The arithmetic operation implemented"));

  dsl::Cdo& adder = arith.specialize("Adder");
  adder.add_property(
      Property::requirement(kWordSize, ValueDomain::positive_integers(),
                            "Required adder word size", Unit::kBits)
          .with_compliance(Compliance::kCoreAtLeast, kMetricWidth));
  adder.add_property(Property::generalized_issue(
      kAdderAlgorithm,
      {to_string(rtl::AdderKind::kCarryLookahead), to_string(rtl::AdderKind::kCarrySave),
       to_string(rtl::AdderKind::kRipple)},
      "Adder logic style (Fig. 10: carry-look-ahead vs carry-save specializations)"));
  adder.specialize(to_string(rtl::AdderKind::kCarryLookahead), "CarryLookAhead");
  adder.specialize(to_string(rtl::AdderKind::kCarrySave), "CarrySave");
  adder.specialize(to_string(rtl::AdderKind::kRipple), "RippleCarry");

  dsl::Cdo& mult = arith.specialize("Multiplier");
  mult.add_property(
      Property::requirement(kWordSize, ValueDomain::positive_integers(),
                            "Required multiplier word size", Unit::kBits)
          .with_compliance(Compliance::kCoreAtLeast, kMetricWidth));
  mult.add_property(Property::design_issue(
      "MultiplierStyle",
      ValueDomain::options({to_string(rtl::MultiplierKind::kArray),
                            to_string(rtl::MultiplierKind::kMuxBased)}),
      "Array multiplier vs multiplexer-based multiplier-by-constant"));

  // --- Modular branch ----------------------------------------------------------
  dsl::Cdo& modular = op.specialize("Modular");
  modular.add_property(Property::generalized_issue(
      "ModularOperation", {"Exponentiator", "Multiplier"},
      "Modular exponentiation (M^E mod N) vs modular multiplication (AxB mod M)"));

  dsl::Cdo& expo = modular.specialize("Exponentiator");
  expo.add_property(Property::design_issue(
      kExpMethod,
      ValueDomain::options({to_string(rtl::ExpMethod::kBinary),
                            to_string(rtl::ExpMethod::kMary4),
                            to_string(rtl::ExpMethod::kMary16)}),
      "Exponent scanning: binary square-and-multiply vs m-ary fixed windows "
      "(2^w-1 stored multiples buy fewer multiplications per bit)"));
  expo.add_property(Property::requirement(
                        kModExpLatency, ValueDomain::real_range(0.0, 1.0e12),
                        "Maximum delay of one modular exponentiation at the 768-bit "
                        "operating point of [10]/[11]",
                        Unit::kMicroseconds)
                        .with_compliance(Compliance::kCoreAtMost, kMetricModExpUs768));

  // --- OMM: Operator - Modular - Multiplier (Fig. 8) -----------------------------
  dsl::Cdo& omm = modular.specialize("Multiplier");
  omm.add_property(Property::requirement(
      kOperandCoding,
      ValueDomain::options({"2's complement", "Sign-Magnitude", "Unsigned"}),
      "Req2: coding of the input operands"));
  omm.add_property(Property::requirement(
      kResultCoding,
      ValueDomain::options({"2's complement", "Sign-Magnitude", "Unsigned", "Redundant"}),
      "Req3: acceptable coding of the result (Redundant permits carry-save outputs)"));
  omm.add_property(Property::requirement(
      kModuloIsOdd, ValueDomain::options({"Guaranteed", "NotGuaranteed"}),
      "Req4: is the modulus guaranteed odd? (prime moduli of cryptography are)"));
  omm.add_property(Property::requirement(
      kLatencyBound, ValueDomain::real_range(0.0, 1.0e12),
      "Req5: maximum delay of one modular multiplication", Unit::kMicroseconds));
  omm.add_property(Property::requirement(
      kPowerBudget, ValueDomain::real_range(0.0, 1.0e12),
      "Maximum dynamic power of the block (the paper's Section 6 power extension)",
      Unit::kMilliwatts));
  omm.add_property(Property::generalized_issue(
      kImplStyle, {"Hardware", "Software"},
      "DI1: hardware and software designs offer radically different performance "
      "ranges (Fig. 6), so this issue partitions the space"));

  // --- OMM-H (Fig. 11) ---------------------------------------------------------
  dsl::Cdo& hw = omm.specialize("Hardware");
  hw.add_property(Property::design_issue(
      kLayoutStyle,
      ValueDomain::options({to_string(tech::LayoutStyle::kStandardCell),
                            to_string(tech::LayoutStyle::kGateArray)}),
      "DI5: the layout styles collapsed into the generalized 'Hardware' option"));
  if (options.hierarchy == OmmHierarchy::kAlgorithmFirst) {
    hw.add_property(Property::design_issue(
        kFabTech,
        ValueDomain::options({to_string(tech::Process::k035um), to_string(tech::Process::k070um)}),
        "DI6: fabrication technology"));
  }
  hw.add_property(Property::design_issue(
                      kRadix, ValueDomain::powers_of_two(),
                      "DI3: digits per iteration; higher radix trades area for cycles (CC2)")
                      .with_default(Value::number(2.0)));
  hw.add_property(Property::design_issue(
                      kNumSlices, ValueDomain::positive_integers(),
                      "DI4: number of slices composed to cover the EOL; an integration "
                      "parameter, so it does not filter slice cores")
                      .without_core_filtering());
  hw.add_property(Property::design_issue(
      kSliceWidth, ValueDomain::positive_integers(),
      "Slice width in bits: bounds the internal carry chains and thus the clock"));
  hw.add_property(Property::design_issue(
      kLoopAdder,
      ValueDomain::options({to_string(rtl::AdderKind::kCarryLookahead),
                            to_string(rtl::AdderKind::kCarrySave)}),
      "DI7 projection: implementation of the additions in the loop (Fig. 10 line 3); "
      "conceptual design recurses into the Adder CDO"));
  hw.add_property(Property::design_issue(
      kLoopMultiplier,
      ValueDomain::options({to_string(rtl::MultiplierKind::kNone),
                            to_string(rtl::MultiplierKind::kArray),
                            to_string(rtl::MultiplierKind::kMuxBased)}),
      "DI7 projection: implementation of the digit multiplications in the loop"));
  hw.add_property(Property::figure_of_merit(
      kMaxCombDelay, Unit::kNanoseconds,
      "CC3's dependent: combinational-delay rank of alternative behavioral descriptions"));

  if (options.hierarchy == OmmHierarchy::kAlgorithmFirst) {
    // The paper's Fig. 7: the algorithm partitions the space.
    hw.add_property(Property::generalized_issue(
        kAlgorithm,
        {to_string(rtl::Algorithm::kMontgomery), to_string(rtl::Algorithm::kBrickell)},
        "DI2 (generalized): Montgomery consistently dominates Brickell when usable "
        "(Fig. 9), so the choice is not a fine-grained trade-off"));

    dsl::Cdo& hm = hw.specialize(to_string(rtl::Algorithm::kMontgomery));
    hm.add_property(Property::figure_of_merit(
        kLatencyCycles, Unit::kNone, "CC2's dependent: loop iterations per multiplication"));
    hm.add_behavior(behavior::montgomery_bd(2, 64));
    hm.add_behavior(behavior::montgomery_bd(4, 64));

    dsl::Cdo& hb = hw.specialize(to_string(rtl::Algorithm::kBrickell));
    hb.add_property(Property::figure_of_merit(
        kLatencyCycles, Unit::kNone, "Loop iterations per multiplication"));
    hb.add_behavior(behavior::brickell_bd(2, 64));
  } else {
    // Technology-first coexisting hierarchy (Section 6 future work):
    // commit to a process before an algorithm; the algorithm remains a
    // regular trade-off issue within each technology family.
    hw.add_property(Property::design_issue(
        kAlgorithm,
        ValueDomain::options(
            {to_string(rtl::Algorithm::kMontgomery), to_string(rtl::Algorithm::kBrickell)}),
        "DI2 demoted to a fine-grained issue in the technology-first hierarchy"));
    hw.add_property(Property::figure_of_merit(
        kLatencyCycles, Unit::kNone,
        "CC2's dependent (Montgomery closed form; meaningful once Algorithm=Montgomery)"));
    hw.add_behavior(behavior::montgomery_bd(2, 64));
    hw.add_behavior(behavior::montgomery_bd(4, 64));
    hw.add_behavior(behavior::brickell_bd(2, 64));
    hw.add_property(Property::generalized_issue(
        kFabTech,
        {to_string(tech::Process::k035um), to_string(tech::Process::k070um)},
        "DI6 (generalized): the process families offer distinct area/delay/power "
        "ranges, partitioning the space for cost-driven environments"));
    hw.specialize(to_string(tech::Process::k035um), "um035");
    hw.specialize(to_string(tech::Process::k070um), "um070");
  }

  // --- OMM-S ---------------------------------------------------------------------
  dsl::Cdo& sw = omm.specialize("Software");
  sw.add_property(Property::generalized_issue(
      kPlatform, {"PC-Processor", "Embedded-RISC", "Embedded-DSP"},
      "Programmable platform executing the routine (Section 2.2's software branch)"));
  dsl::Cdo& pc = sw.specialize("PC-Processor", "PCProcessor");
  pc.add_property(Property::design_issue(
      kCodeQuality,
      ValueDomain::options({to_string(swmodel::CodeQuality::kC),
                            to_string(swmodel::CodeQuality::kAssembly)}),
      "Compiled C vs hand-optimized assembly (ref [12])"));
  pc.add_property(Property::design_issue(
      kScanning,
      ValueDomain::options({"SOS", "CIOS", "FIOS", "FIPS", "CIHS"}),
      "Montgomery word-scanning method (Koc-Acar-Kaliski)"));
  sw.specialize("Embedded-RISC", "EmbeddedRISC");
  sw.specialize("Embedded-DSP", "EmbeddedDSP");
}

// ---------------------------------------------------------------------------
// Consistency constraints (Fig. 13)
// ---------------------------------------------------------------------------

void add_constraints(dsl::DesignSpaceLayer& layer, const CryptoLayerOptions& options) {
  // CC1: the Montgomery algorithm requires an odd modulus. Stated as
  // declarative atoms so the columnar filter compiles it (DESIGN.md §10).
  layer.add_constraint(ConsistencyConstraint::inconsistent_when(
      "CC1", "Montgomery Algorithm requires odd modulo",
      {PropertyPath::parse(cat(kModuloIsOdd, "@Multiplier"))},
      {PropertyPath::parse(cat(kAlgorithm, "@*.Multiplier.Hardware"))},
      {dsl::PredicateAtom::equals(kModuloIsOdd, Value::text("NotGuaranteed")),
       dsl::PredicateAtom::equals(kAlgorithm,
                                  Value::text(to_string(rtl::Algorithm::kMontgomery)))}));

  // CC2: the greater the radix, the smaller the latency in cycles:
  // L = 2 * EOL / R + 1 (the paper's closed form, defined for carry-save
  // Montgomery multipliers).
  const char* cc2_scope = options.hierarchy == OmmHierarchy::kAlgorithmFirst
                              ? "*.Hardware.Montgomery"
                              : "*.Multiplier.Hardware";
  layer.add_constraint(ConsistencyConstraint::formula(
      "CC2", "The greater the Radix, the smaller the latency in #cycles",
      {PropertyPath::parse(cat(kRadix, "@", cc2_scope)),
       PropertyPath::parse(cat(kEOL, "@Operator"))},
      PropertyPath::parse(cat(kLatencyCycles, "@", cc2_scope)),
      [](const Bindings& b) {
        const double eol = dsl::get_or_empty(b, kEOL).as_number();
        const double radix = dsl::get_or_empty(b, kRadix).as_number();
        return Value::number(2.0 * eol / radix + 1.0);
      }));

  // CC3: behavioral decomposition impacts delay — rank BDs with the
  // BehaviorDelayEstimator when no design data exists yet.
  layer.add_constraint(ConsistencyConstraint::estimator(
      "CC3", "Behavioral Decomposition impacts delay",
      {PropertyPath::parse("BehavioralDecomposition@*.Multiplier.Hardware")},
      PropertyPath::parse(cat(kMaxCombDelay, "@*.Multiplier.Hardware")),
      "BehaviorDelayEstimator"));

  if (options.dominance_rules) {
  // CC4: for Montgomery with EOL >= 32, only carry-save adders should
  // implement the loop additions — anything else is dominated (unbounded
  // carry propagation, low performance, large area).
  layer.add_constraint(ConsistencyConstraint::dominance_when(
      "CC4", "Inferior solutions eliminated: Montgomery & EOL >= 32 requires Carry-Save adders",
      {PropertyPath::parse(cat(kEOL, "@Operator")),
       PropertyPath::parse(cat(kAlgorithm, "@*.Multiplier.Hardware"))},
      {PropertyPath::parse(cat(kLoopAdder, "@*.Multiplier.Hardware"))},
      {dsl::PredicateAtom::equals(kAlgorithm,
                                  Value::text(to_string(rtl::Algorithm::kMontgomery))),
       dsl::PredicateAtom::compares(kEOL, dsl::PredicateAtom::Cmp::kGe, 32.0),
       dsl::PredicateAtom::not_equals(kLoopAdder,
                                      Value::text(to_string(rtl::AdderKind::kCarrySave)))}));

  // CC5 (the paper's "similar constraint"): multiplexer-based multipliers
  // for the loop multiplications, for any EOL (radix >= 4 designs only —
  // radix 2 has no digit multiplier).
  layer.add_constraint(ConsistencyConstraint::dominance_when(
      "CC5", "Multiplexer-based multipliers dominate for the loop multiplications (any EOL)",
      {PropertyPath::parse(cat(kAlgorithm, "@*.Multiplier.Hardware")),
       PropertyPath::parse(cat(kRadix, "@*.Multiplier.Hardware"))},
      {PropertyPath::parse(cat(kLoopMultiplier, "@*.Multiplier.Hardware"))},
      {dsl::PredicateAtom::equals(kAlgorithm,
                                  Value::text(to_string(rtl::Algorithm::kMontgomery))),
       dsl::PredicateAtom::compares(kRadix, dsl::PredicateAtom::Cmp::kGe, 4.0),
       dsl::PredicateAtom::equals(kLoopMultiplier,
                                  Value::text(to_string(rtl::MultiplierKind::kArray)))}));
  }

  // CC6 (Fig. 6's lesson as a heuristic): software cannot reach
  // sub-100-microsecond multiplications at cryptographic operand lengths.
  layer.add_constraint(ConsistencyConstraint::inconsistent_when(
      "CC6", "Software implementations cannot meet aggressive latency bounds (Fig. 6 ranges)",
      {PropertyPath::parse(cat(kLatencyBound, "@Multiplier")),
       PropertyPath::parse(cat(kEOL, "@Operator"))},
      {PropertyPath::parse(cat(kImplStyle, "@Multiplier"))},
      {dsl::PredicateAtom::equals(kImplStyle, Value::text("Software")),
       dsl::PredicateAtom::compares(kLatencyBound, dsl::PredicateAtom::Cmp::kLt, 100.0),
       dsl::PredicateAtom::compares(kEOL, dsl::PredicateAtom::Cmp::kGe, 256.0)}));

  // CC7: the sliced datapath must cover the operand:
  // NumberOfSlices * SliceWidth >= EOL.
  layer.add_constraint(ConsistencyConstraint::inconsistent_when(
      "CC7", "Slices must cover the operand: NumberOfSlices x SliceWidth >= EOL",
      {PropertyPath::parse(cat(kEOL, "@Operator")),
       PropertyPath::parse(cat(kSliceWidth, "@*.Multiplier.Hardware"))},
      {PropertyPath::parse(cat(kNumSlices, "@*.Multiplier.Hardware"))},
      {dsl::PredicateAtom::product(kNumSlices, kSliceWidth, dsl::PredicateAtom::Cmp::kLt,
                                   kEOL)}));
}

// ---------------------------------------------------------------------------
// Reuse libraries
// ---------------------------------------------------------------------------

void populate_hardware_library(ReuseLibrary& lib) {
  const auto add_slice_core = [&lib](const rtl::CatalogEntry& entry, unsigned width,
                                     const tech::Technology& technology) {
    const rtl::SliceConfig config = rtl::make_config(entry, width, technology);
    const rtl::SliceDesign slice(config);
    const rtl::MultiplierDesign one(config, 1);
    Core core(cat("mm", entry.design_no, "_w", width, "_", technology.name()), kPathOMM);
    core.bind(kImplStyle, Value::text("Hardware"))
        .bind(kAlgorithm, Value::text(to_string(entry.algorithm)))
        .bind(kRadix, Value::number(entry.radix))
        .bind(kLoopAdder, Value::text(to_string(entry.adder)))
        .bind(kLoopMultiplier, Value::text(to_string(entry.multiplier)))
        .bind(kSliceWidth, Value::number(width))
        .bind(kLayoutStyle, Value::text(to_string(technology.layout)))
        .bind(kFabTech, Value::text(to_string(technology.process)))
        .bind(kResultCoding, Value::text(entry.adder == rtl::AdderKind::kCarrySave
                                             ? "Redundant"
                                             : "2's complement"))
        .bind(kOperandCoding, Value::text("2's complement"));
    core.set_metric(kMetricArea, slice.area())
        .set_metric(kMetricClockNs, slice.clock_ns())
        .set_metric(kMetricLatencyNs, slice.latency_ns(width))
        .set_metric(kMetricPowerMw, one.power_mw())
        .set_metric(kMetricWidth, width);
    core.add_view("algorithm", cat("ip://lsi/mm", entry.design_no, "/alg.vhd"))
        .add_view("rt", cat("ip://lsi/mm", entry.design_no, "/w", width, "/rtl.vhd"))
        .add_view("physical", cat("ip://lsi/mm", entry.design_no, "/w", width, "/gds2"));
    lib.add(std::move(core));
  };

  const tech::Technology t035 =
      tech::technology(tech::Process::k035um, tech::LayoutStyle::kStandardCell);
  for (const rtl::CatalogEntry& entry : rtl::table1_catalog()) {
    for (unsigned width : rtl::kTable1SliceWidths) {
      add_slice_core(entry, width, t035);
    }
  }
  // A few cores in other technologies so DI5/DI6 decisions have bite.
  const tech::Technology t070 =
      tech::technology(tech::Process::k070um, tech::LayoutStyle::kStandardCell);
  const tech::Technology t035ga =
      tech::technology(tech::Process::k035um, tech::LayoutStyle::kGateArray);
  for (const unsigned width : {16u, 64u}) {
    add_slice_core(rtl::table1_catalog()[1], width, t070);   // design #2
    add_slice_core(rtl::table1_catalog()[7], width, t070);   // design #8
    add_slice_core(rtl::table1_catalog()[1], width, t035ga); // design #2
  }
}

void populate_software_library(ReuseLibrary& lib) {
  for (const swmodel::SoftwareCore& sw : swmodel::software_catalog()) {
    Core core(cat("sw_", to_string(sw.variant()), "_",
                  sw.quality() == swmodel::CodeQuality::kC ? "c" : "asm"),
              kPathOMM);
    core.bind(kImplStyle, Value::text("Software"))
        .bind(kPlatform, Value::text("PC-Processor"))
        .bind(kCodeQuality, Value::text(to_string(sw.quality())))
        .bind(kScanning, Value::text(to_string(sw.variant())))
        .bind(kOperandCoding, Value::text("Unsigned"))
        .bind(kResultCoding, Value::text("Unsigned"));
    core.set_metric(kMetricModMulUs1024, sw.mont_mul_us(1024))
        .set_metric(kMetricCodeBytes, sw.code_size_bytes());
    core.add_view("algorithm", cat("ip://kak96/", to_string(sw.variant()), ".pseudo"))
        .add_view("source", cat("ip://kak96/", to_string(sw.variant()),
                                sw.quality() == swmodel::CodeQuality::kC ? ".c" : ".s"));
    lib.add(std::move(core));
  }
}

void populate_arith_library(ReuseLibrary& lib) {
  const tech::Technology t035 =
      tech::technology(tech::Process::k035um, tech::LayoutStyle::kStandardCell);
  const auto add_adder = [&lib, &t035](rtl::AdderKind kind, unsigned width) {
    tech::GateEval eval;
    switch (kind) {
      case rtl::AdderKind::kCarryLookahead: eval = tech::carry_lookahead_adder(width, t035); break;
      case rtl::AdderKind::kCarrySave: eval = tech::carry_save_row(width, t035); break;
      case rtl::AdderKind::kRipple: eval = tech::ripple_carry_adder(width, t035); break;
    }
    Core core(cat("add_", to_string(kind), "_w", width), kPathAdder);
    core.bind(kAdderAlgorithm, Value::text(to_string(kind)));
    core.set_metric(kMetricArea, eval.area)
        .set_metric(kMetricDelayNs, eval.delay_ns)
        .set_metric(kMetricWidth, width);
    core.add_view("rt", cat("ip://arith/add_", to_string(kind), "_", width, ".vhd"));
    lib.add(std::move(core));
  };
  for (unsigned width : {8u, 16u, 32u, 64u, 128u}) {
    add_adder(rtl::AdderKind::kCarryLookahead, width);
    add_adder(rtl::AdderKind::kCarrySave, width);
    add_adder(rtl::AdderKind::kRipple, width);
  }

  for (unsigned width : {8u, 16u, 32u, 64u}) {
    for (const rtl::MultiplierKind kind :
         {rtl::MultiplierKind::kArray, rtl::MultiplierKind::kMuxBased}) {
      const tech::GateEval eval = kind == rtl::MultiplierKind::kArray
                                      ? tech::array_digit_multiplier(2, width, t035)
                                      : tech::mux_digit_multiplier(2, width, t035);
      Core core(cat("mul_", to_string(kind), "_w", width),
                "Operator.LogicArithmetic.Arithmetic.Multiplier");
      core.bind("MultiplierStyle", Value::text(to_string(kind)));
      core.set_metric(kMetricArea, eval.area)
          .set_metric(kMetricDelayNs, eval.delay_ns)
          .set_metric(kMetricWidth, width);
      lib.add(std::move(core));
    }
  }

  // Composed modular-exponentiation coprocessors: multiplier design x
  // scanning method, evaluated at the 768-bit operating point of [10].
  for (const int design : {2, 5}) {
    for (const unsigned width : {32u, 64u}) {
      const rtl::SliceConfig config =
          rtl::make_config(rtl::table1_catalog()[static_cast<std::size_t>(design - 1)], width,
                           t035);
      const rtl::MultiplierDesign mult = rtl::MultiplierDesign::for_operand_length(config, 768);
      for (const rtl::ExpMethod method : rtl::kAllExpMethods) {
        const rtl::ExponentiatorDesign expo(mult, method);
        Core core(cat("expo_", design, "_w", width, "_", to_string(method)),
                  kPathExponentiator);
        core.bind(kExpMethod, Value::text(to_string(method)))
            .bind(kAlgorithm, Value::text(to_string(config.algorithm)))
            .bind(kRadix, Value::number(config.radix))
            .bind(kSliceWidth, Value::number(width));
        core.set_metric(kMetricModExpUs768, expo.modexp_us(768))
            .set_metric(kMetricArea, expo.area(768))
            .set_metric(kMetricPowerMw, expo.power_mw(768));
        core.add_view("rt", cat("ip://upm/expo/", design, "_", width, ".vhd"));
        lib.add(std::move(core));
      }
    }
  }

  // The hand-built modular exponentiation coprocessor of ref [10].
  Core coproc("rsa_coprocessor_upm", kPathExponentiator);
  coproc.bind(kExpMethod, Value::text("Binary"));
  coproc.set_metric(kMetricArea, 1.1e6)
      .set_metric(kMetricModExpUs768, 2450.0)
      .set_metric(kMetricPowerMw, 310.0);
  coproc.add_view("physical", "ip://upm/rsa-coproc/gds2");
  lib.add(std::move(coproc));
}

// ---------------------------------------------------------------------------
// Requirement filters (compliance too rich for the declarative enum)
// ---------------------------------------------------------------------------

bool latency_filter(const Core& core, const Bindings& bindings) {
  const double bound_us = number_of(bindings, kLatencyBound, 1.0e12);
  const double eol = number_of(bindings, kEOL, 0.0);
  if (eol <= 0.0) return true;  // cannot evaluate until the EOL is known

  const std::string style = text_of(bindings, kImplStyle, "");
  const auto impl = core.binding(kImplStyle);
  const std::string core_style =
      impl.has_value() && impl->kind() == Value::Kind::kText ? impl->as_text() : "";

  if (core_style == "Hardware") {
    const rtl::SliceConfig config = slice_config_from_core(core);
    const rtl::MultiplierDesign design =
        rtl::MultiplierDesign::for_operand_length(config, static_cast<unsigned>(eol));
    return design.latency_ns(static_cast<unsigned>(eol)) / 1000.0 <= bound_us;
  }
  if (core_style == "Software") {
    const swmodel::SoftwareCore sw = software_core_from(core);
    return sw.mont_mul_us(static_cast<unsigned>(eol)) <= bound_us;
  }
  (void)style;
  return true;  // cores of other classes are not latency-constrained here
}

bool power_filter(const Core& core, const Bindings& bindings) {
  const double budget_mw = number_of(bindings, kPowerBudget, 1.0e12);
  const double eol = number_of(bindings, kEOL, 0.0);
  const auto impl = core.binding(kImplStyle);
  if (!impl.has_value() || impl->kind() != Value::Kind::kText ||
      impl->as_text() != "Hardware" || eol <= 0.0) {
    return true;  // only composed hardware blocks draw the budget here
  }
  const rtl::SliceConfig config = slice_config_from_core(core);
  const rtl::MultiplierDesign design =
      rtl::MultiplierDesign::for_operand_length(config, static_cast<unsigned>(eol));
  return design.power_mw() <= budget_mw;
}

}  // namespace

rtl::SliceConfig slice_config_from_core(const Core& core) {
  const auto text = [&core](const char* name) {
    const auto v = core.binding(name);
    if (!v.has_value() || v->kind() != Value::Kind::kText) {
      throw PreconditionError(cat("core '", core.name(), "' lacks text binding '", name, "'"));
    }
    return v->as_text();
  };
  const auto number = [&core](const char* name) {
    const auto v = core.binding(name);
    if (!v.has_value() || v->kind() != Value::Kind::kNumber) {
      throw PreconditionError(cat("core '", core.name(), "' lacks numeric binding '", name, "'"));
    }
    return v->as_number();
  };
  rtl::SliceConfig config;
  config.algorithm = parse_algorithm(text(kAlgorithm));
  config.radix = static_cast<unsigned>(number(kRadix));
  config.adder = parse_adder(text(kLoopAdder));
  config.multiplier = parse_multiplier(text(kLoopMultiplier));
  config.slice_width = static_cast<unsigned>(number(kSliceWidth));
  config.technology = parse_technology(text(kFabTech), text(kLayoutStyle));
  return config;
}

swmodel::SoftwareCore software_core_from(const Core& core) {
  const auto variant = core.binding(kScanning);
  const auto quality = core.binding(kCodeQuality);
  if (!variant.has_value() || !quality.has_value()) {
    throw PreconditionError(cat("core '", core.name(), "' is not a software routine"));
  }
  const swmodel::CodeQuality q = quality->as_text() == to_string(swmodel::CodeQuality::kC)
                                     ? swmodel::CodeQuality::kC
                                     : swmodel::CodeQuality::kAssembly;
  return swmodel::SoftwareCore(parse_variant(variant->as_text()), q, swmodel::pentium60());
}

std::unique_ptr<dsl::DesignSpaceLayer> build_crypto_layer(const CryptoLayerOptions& options) {
  auto layer = std::make_unique<dsl::DesignSpaceLayer>("cryptography");
  build_hierarchy(*layer, options);
  add_constraints(*layer, options);

  populate_hardware_library(layer->add_library("lsi-hardcores"));
  populate_software_library(layer->add_library("soft-ip"));
  populate_arith_library(layer->add_library("arith-blocks"));

  layer->set_core_filter(kLatencyBound, latency_filter);
  layer->set_core_filter(kPowerBudget, power_filter);

  // DI7's schema: the operator kinds appearing in the behavioral
  // descriptions recurse into these classes (Fig. 10's arrows from the
  // modular multiplier's loop into the Adder/Multiplier CDOs).
  layer->set_operator_class(behavior::OpKind::kAdd, kPathAdder);
  layer->set_operator_class(behavior::OpKind::kSub, kPathAdder);
  layer->set_operator_class(behavior::OpKind::kMul,
                            "Operator.LogicArithmetic.Arithmetic.Multiplier");

  layer->index_cores();
  return layer;
}

rtl::ExponentiatorDesign exponentiator_from_core(const Core& core) {
  const auto method_binding = core.binding(kExpMethod);
  const auto width = core.binding(kSliceWidth);
  const auto algorithm = core.binding(kAlgorithm);
  if (!method_binding.has_value() || !width.has_value() || !algorithm.has_value()) {
    throw PreconditionError(cat("core '", core.name(), "' is not a composed exponentiator"));
  }
  rtl::ExpMethod method = rtl::ExpMethod::kBinary;
  for (const rtl::ExpMethod m : rtl::kAllExpMethods) {
    if (to_string(m) == method_binding->as_text()) method = m;
  }
  rtl::SliceConfig config;
  config.algorithm = parse_algorithm(algorithm->as_text());
  config.radix = static_cast<unsigned>(core.binding(kRadix)->as_number());
  config.adder = rtl::AdderKind::kCarrySave;
  config.multiplier = config.radix >= 4 ? rtl::MultiplierKind::kMuxBased
                                        : rtl::MultiplierKind::kNone;
  config.slice_width = static_cast<unsigned>(width->as_number());
  config.technology =
      tech::technology(tech::Process::k035um, tech::LayoutStyle::kStandardCell);
  return rtl::ExponentiatorDesign(rtl::MultiplierDesign::for_operand_length(config, 768),
                                  method);
}

void apply_coprocessor_spec(dsl::ExplorationSession& session) {
  session.set_requirement(kEOL, 768.0);
  session.set_requirement(kOperandCoding, "2's complement");
  session.set_requirement(kResultCoding, "Redundant");
  session.set_requirement(kModuloIsOdd, "Guaranteed");
  session.set_requirement(kLatencyBound, 8.0);
}

}  // namespace dslayer::domains
