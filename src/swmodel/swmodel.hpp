// Software modular-multiplier cores.
//
// The "Software" branch of the paper's implementation-style design issue
// (Fig. 6) is populated by C and hand-optimized assembly Montgomery
// multiplication routines executing on a Pentium 60, as measured by Koc,
// Acar and Kaliski. We have no Pentium 60, so this module substitutes a
// word-operation cost model (DESIGN.md Section 4): the functional routines
// are the real implementations in bigint/montgomery_variants.*, and their
// instrumented operation counts (single-precision multiplies, adds, memory
// traffic, loop iterations) are priced with P5-class cycle costs. Assembly
// quality prices the raw counts; compiled 1996-era C pays a constant
// overhead factor (materializing 32x64 products through helper calls,
// poorer scheduling).
//
// The model needs to reproduce two facts from Fig. 6: software is 2-3
// orders of magnitude slower than the hardware cores (which justifies
// "Implementation Style" as a generalized, space-partitioning design
// issue), and ASM-vs-C spans roughly another decade.
#pragma once

#include <string>
#include <vector>

#include "bigint/biguint.hpp"
#include "bigint/montgomery_variants.hpp"

namespace dslayer::swmodel {

/// Implementation quality of the routine (a design issue of the software
/// sub-space).
enum class CodeQuality { kC, kAssembly };

std::string to_string(CodeQuality q);

/// Cycle-cost model of a scalar processor.
struct ProcessorModel {
  std::string name;
  double clock_mhz = 60.0;
  double mul_cycles = 11.0;    ///< 32x32->64 multiply (P5 imul)
  double add_cycles = 1.0;     ///< word add / add-with-carry
  double load_cycles = 1.2;    ///< cache-hit word load
  double store_cycles = 1.2;   ///< word store
  double loop_cycles = 5.0;    ///< per inner iteration: index update + branch
  double c_overhead = 8.2;     ///< compiled-C multiplier over hand assembly
};

/// The paper's reference processor (ref [12] measured on a Pentium 60).
ProcessorModel pentium60();

/// One software core: a Montgomery variant at a code-quality level on a
/// processor. This is both a functional implementation (execute()) and a
/// performance model (mont_mul_us()).
class SoftwareCore {
 public:
  SoftwareCore(bigint::MontVariant variant, CodeQuality quality, ProcessorModel cpu);

  bigint::MontVariant variant() const { return variant_; }
  CodeQuality quality() const { return quality_; }
  const ProcessorModel& cpu() const { return cpu_; }

  /// "CIOS C code" / "CIHS ASM" — the labels of Fig. 6.
  std::string label() const;

  /// Instrumented word-operation counts for one eol-bit MontMul
  /// (sub-word operands occupy one machine word).
  bigint::OpCounts op_counts(unsigned eol_bits) const;

  /// Predicted time of one eol-bit modular multiplication (microseconds).
  double mont_mul_us(unsigned eol_bits) const;

  /// Predicted time of a full eol-bit modular exponentiation (binary
  /// square-and-multiply, ~1.5 multiplications per exponent bit).
  double mod_exp_us(unsigned eol_bits) const;

  /// Rough code footprint in bytes (figure of merit for embedded targets).
  double code_size_bytes() const;

  /// Functional execution: a*b mod m through this routine (including the
  /// Montgomery domain conversions). Verified against bigint in tests.
  bigint::BigUint execute(const bigint::BigUint& a, const bigint::BigUint& b,
                          const bigint::BigUint& m) const;

 private:
  bigint::MontVariant variant_;
  CodeQuality quality_;
  ProcessorModel cpu_;
};

/// The ten software cores (5 variants x {C, ASM}) on the Pentium 60.
std::vector<SoftwareCore> software_catalog();

}  // namespace dslayer::swmodel
