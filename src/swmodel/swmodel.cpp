#include "swmodel/swmodel.hpp"

#include <algorithm>
#include <vector>

#include "bigint/modular.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::swmodel {

using bigint::BigUint;
using bigint::MontVariant;
using bigint::OpCounts;

std::string to_string(CodeQuality q) {
  switch (q) {
    case CodeQuality::kC: return "C code";
    case CodeQuality::kAssembly: return "ASM";
  }
  return "?";
}

ProcessorModel pentium60() {
  ProcessorModel p;
  p.name = "Pentium 60";
  return p;  // defaults are the P5 costs
}

SoftwareCore::SoftwareCore(MontVariant variant, CodeQuality quality, ProcessorModel cpu)
    : variant_(variant), quality_(quality), cpu_(std::move(cpu)) {}

std::string SoftwareCore::label() const {
  return cat(bigint::to_string(variant_), " ", to_string(quality_));
}

namespace {

/// Deterministic synthetic operands with exactly `words` 32-bit words, used
/// to drive one instrumented run of the routine (the control flow of every
/// variant is data-independent except for the final corrections, so any
/// full-width operands produce representative counts).
struct SyntheticOperands {
  std::vector<std::uint32_t> a, b, m;
  std::uint32_t m_prime;
};

SyntheticOperands make_operands(std::size_t words) {
  SyntheticOperands ops;
  ops.m.resize(words);
  ops.a.resize(words);
  ops.b.resize(words);
  for (std::size_t i = 0; i < words; ++i) {
    // Full-magnitude modulus, operands just below it.
    ops.m[i] = 0xFFFFFFF1u - static_cast<std::uint32_t>(i * 97);
    ops.a[i] = ops.m[i] - 3u;
    ops.b[i] = ops.m[i] - 7u;
  }
  ops.m[0] |= 1u;  // odd
  ops.a[words - 1] = ops.m[words - 1] - 1u;
  ops.b[words - 1] = ops.m[words - 1] - 2u;
  ops.m_prime = bigint::mont_word_inverse(ops.m[0]);
  return ops;
}

}  // namespace

OpCounts SoftwareCore::op_counts(unsigned eol_bits) const {
  DSLAYER_REQUIRE(eol_bits >= 1, "operand length must be positive");
  // Sub-word operands still occupy one machine word.
  const std::size_t words = std::max<std::size_t>(1, (eol_bits + 31) / 32);
  const SyntheticOperands ops = make_operands(words);
  std::vector<std::uint32_t> out(words);
  OpCounts counts;
  bigint::mont_mul(variant_, ops.a, ops.b, ops.m, ops.m_prime, out, &counts);
  return counts;
}

double SoftwareCore::mont_mul_us(unsigned eol_bits) const {
  const OpCounts counts = op_counts(eol_bits);
  // Inner-loop iteration count tracks the multiply count for all variants
  // (each inner iteration performs one or two multiplies).
  const double iterations = static_cast<double>(counts.word_mults);
  double cycles = static_cast<double>(counts.word_mults) * cpu_.mul_cycles +
                  static_cast<double>(counts.word_adds) * cpu_.add_cycles +
                  static_cast<double>(counts.loads) * cpu_.load_cycles +
                  static_cast<double>(counts.stores) * cpu_.store_cycles +
                  iterations * cpu_.loop_cycles;
  if (quality_ == CodeQuality::kC) cycles *= cpu_.c_overhead;
  return cycles / cpu_.clock_mhz;  // cycles / MHz = microseconds
}

double SoftwareCore::mod_exp_us(unsigned eol_bits) const {
  // Left-to-right binary exponentiation with an eol-bit exponent: one
  // squaring per bit plus a multiplication for the (expected) half of the
  // bits that are set, plus the two domain conversions.
  const double muls = 1.5 * eol_bits + 2.0;
  return muls * mont_mul_us(eol_bits);
}

double SoftwareCore::code_size_bytes() const {
  // Footprints in the spirit of ref [12]: product-scanning code is tighter;
  // assembly is denser than compiled C.
  double base = 0.0;
  switch (variant_) {
    case MontVariant::kSOS: base = 900.0; break;
    case MontVariant::kCIOS: base = 1100.0; break;
    case MontVariant::kFIOS: base = 1300.0; break;
    case MontVariant::kFIPS: base = 1600.0; break;
    case MontVariant::kCIHS: base = 1500.0; break;
  }
  return quality_ == CodeQuality::kC ? base * 2.4 : base;
}

BigUint SoftwareCore::execute(const BigUint& a, const BigUint& b, const BigUint& m) const {
  DSLAYER_REQUIRE(m.is_odd(), "software Montgomery cores require an odd modulus");
  const std::size_t words = m.limb_count();
  std::vector<std::uint32_t> av(words), bv(words), mv(words), out(words);
  const BigUint ra = a % m;
  const BigUint rb = b % m;
  for (std::size_t i = 0; i < words; ++i) {
    av[i] = ra.limb(i);
    bv[i] = rb.limb(i);
    mv[i] = m.limb(i);
  }
  const std::uint32_t m_prime = bigint::mont_word_inverse(mv[0]);

  // ab * R^-1, then correct by R^2 * R^-1: net a*b mod m.
  bigint::mont_mul(variant_, av, bv, mv, m_prime, out, nullptr);
  BigUint r{1};
  r <<= static_cast<unsigned>(words * 32);
  const BigUint r2 = ((r % m) * (r % m)) % m;
  std::vector<std::uint32_t> r2v(words), fixed(words);
  for (std::size_t i = 0; i < words; ++i) r2v[i] = r2.limb(i);
  bigint::mont_mul(variant_, out, r2v, mv, m_prime, fixed, nullptr);
  return BigUint::from_limbs(fixed);
}

std::vector<SoftwareCore> software_catalog() {
  std::vector<SoftwareCore> cores;
  const ProcessorModel cpu = pentium60();
  for (MontVariant v : bigint::kAllMontVariants) {
    cores.emplace_back(v, CodeQuality::kAssembly, cpu);
    cores.emplace_back(v, CodeQuality::kC, cpu);
  }
  return cores;
}

}  // namespace dslayer::swmodel
