#include "tech/components.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace dslayer::tech {

namespace {

double log2d(unsigned w) { return std::log2(static_cast<double>(std::max(w, 1u))); }

GateEval scaled(double area, double delay_ns, const Technology& t) {
  return GateEval{area * t.area_scale, delay_ns * t.delay_scale};
}

}  // namespace

GateEval register_bank(unsigned bits, const Technology& t) {
  // 110 units and 0.45 ns clk->q per flip-flop bit.
  return scaled(110.0 * bits, 0.45, t);
}

double register_setup_ns(const Technology& t) { return 0.30 * t.delay_scale; }

GateEval ripple_carry_adder(unsigned width, const Technology& t) {
  DSLAYER_REQUIRE(width >= 1, "zero-width adder");
  // One full adder per bit; the carry ripples through every stage.
  return scaled(45.0 * width, 0.18 * width + 0.25, t);
}

GateEval carry_lookahead_adder(unsigned width, const Technology& t) {
  DSLAYER_REQUIRE(width >= 1, "zero-width adder");
  // P/G generation + log-depth lookahead tree + sum: ~2x ripple area,
  // delay linear in log2(width). Constants fit the Table 1 CLA columns.
  const double delay = std::max(0.40, 0.82 * log2d(width) - 1.00);
  return scaled(90.0 * width, delay, t);
}

GateEval carry_save_row(unsigned width, const Technology& t) {
  DSLAYER_REQUIRE(width >= 1, "zero-width compressor");
  // A row of independent full adders: width-independent delay.
  return scaled(45.0 * width, 0.55, t);
}

GateEval comparator(unsigned width, const Technology& t) {
  DSLAYER_REQUIRE(width >= 1, "zero-width comparator");
  // Magnitude comparison cannot avoid resolving carries: log-depth tree.
  return scaled(70.0 * width, 0.55 + 0.18 * log2d(width), t);
}

GateEval mux2(unsigned width, const Technology& t) {
  return scaled(33.0 * width, 0.20, t);
}

GateEval mux4(unsigned width, const Technology& t) {
  return scaled(61.0 * width, 0.32, t);
}

GateEval array_digit_multiplier(unsigned digit_bits, unsigned width, const Technology& t) {
  DSLAYER_REQUIRE(digit_bits >= 1 && width >= 1, "zero-width multiplier");
  // digit_bits partial-product rows over a width-bit operand, reduced by a
  // small compressor column: area ~ digit_bits x width, delay grows with
  // the reduction/propagation across the operand width.
  const double area = (115.0 + 95.0 * digit_bits) * width;
  const double delay = std::max(0.30, (0.22 + 0.11 * digit_bits) * log2d(width) - 0.40);
  return scaled(area, delay, t);
}

GateEval mux_digit_multiplier(unsigned digit_bits, unsigned width, const Technology& t) {
  DSLAYER_REQUIRE(digit_bits >= 1 && width >= 1, "zero-width multiplier");
  // Selection among the 2^digit_bits precomputed multiples: one wide mux.
  // Delay is width-independent (the precomputed multiples arrive settled).
  const double area = (14.0 * (1u << digit_bits)) * width;
  const double delay = 0.30 + 0.10 * digit_bits;
  return scaled(area, delay, t);
}

GateEval multiple_precompute_unit(unsigned digit_bits, const Technology& t) {
  // Forms the odd multiples (e.g. 3B for radix 4) once per operand load and
  // stores them; amortized over the whole multiplication, so it contributes
  // area but not cycle-time delay.
  const unsigned multiples = (1u << digit_bits) - 2;  // beyond 0 and B itself
  return scaled(700.0 + 425.0 * multiples, 0.0, t);
}

GateEval montgomery_q_logic(unsigned digit_bits, const Technology& t) {
  // Fig. 10 line 4: Qi from R0 and the precomputed (r - M0)^-1. For radix 2
  // this is a couple of gates; each extra digit bit adds a small
  // multiply-accumulate slice.
  return scaled(260.0 + 210.0 * (digit_bits - 1), 0.32 + 0.30 * (digit_bits - 1), t);
}

GateEval control_fsm(unsigned complexity, const Technology& t) {
  return scaled(620.0 + 45.0 * complexity, 0.0, t);
}

double fanout_delay_ns(unsigned width, const Technology& t) {
  // Buffer tree to broadcast the digit/control across the slice datapath;
  // negligible up to 8 bits, then ~0.13 ns per doubling.
  if (width <= 8) return 0.0;
  return 0.13 * (log2d(width) - 3.0) * t.delay_scale;
}

}  // namespace dslayer::tech
