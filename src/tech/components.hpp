// Gate-level component library.
//
// The datapath building blocks the paper's case study discriminates on:
// adders ("Carry-Look-Ahead" and "Carry-Save" are explicit design options
// of the Adder CDO, Fig. 10/12), multipliers (full array multipliers vs
// "Multiplexer-Based" multipliers-by-constant, Table 1), registers, muxes
// and comparators. Each component reports an area (0.35um standard-cell
// area units, where a D flip-flop bit is ~110 units) and a worst-case
// propagation delay (ns), both scaled by the target Technology.
//
// The constants are calibrated so the composed modular-multiplier slices of
// rtl/ land in the area/clock ranges of the paper's Table 1; the *shapes*
// follow from structure: carry-lookahead delay grows with log2(width),
// carry-save delay is width-independent (two 3:2 compressor rows), a
// magnitude comparator needs a full carry chain (which is why Brickell
// designs cannot hide it even with carry-save accumulation), and an array
// digit-multiplier both grows with width and outweighs a multiplexer-based
// constant-multiple selector.
#pragma once

#include "tech/technology.hpp"

namespace dslayer::tech {

/// Area/delay of one component instance.
struct GateEval {
  double area = 0.0;      ///< 0.35um std-cell area units
  double delay_ns = 0.0;  ///< worst-case propagation delay
};

/// D-flip-flop register bank of `bits` bits. Delay is clk->q; the matching
/// setup time is in register_setup_ns().
GateEval register_bank(unsigned bits, const Technology& t);

/// Setup time to close a cycle through registers (added to path delays).
double register_setup_ns(const Technology& t);

/// Ripple-carry adder: O(w) delay, cheapest area. Kept for completeness of
/// the Adder CDO's "logic style" options.
GateEval ripple_carry_adder(unsigned width, const Technology& t);

/// Carry-lookahead adder: O(log w) delay.
GateEval carry_lookahead_adder(unsigned width, const Technology& t);

/// One carry-save 3:2 compressor row: constant delay, keeps sums redundant.
GateEval carry_save_row(unsigned width, const Technology& t);

/// Magnitude comparator (>=): needs a full carry chain, O(log w) delay.
GateEval comparator(unsigned width, const Technology& t);

/// 2:1 multiplexer row.
GateEval mux2(unsigned width, const Technology& t);

/// 4:1 multiplexer row.
GateEval mux4(unsigned width, const Technology& t);

/// Array multiplier of a `digit_bits`-bit digit by a `width`-bit operand
/// (the partial-product generator of radix >= 4 designs, Table 1 "MUL").
GateEval array_digit_multiplier(unsigned digit_bits, unsigned width, const Technology& t);

/// Multiplexer-based multiplier-by-digit: selects among precomputed small
/// multiples (Table 1 "MUX"). Selection is per-slice; see
/// multiple_precompute_unit() for the shared precomputation.
GateEval mux_digit_multiplier(unsigned digit_bits, unsigned width, const Technology& t);

/// Precomputation unit for the MUX multiplier (forms and stores the odd
/// multiples, e.g. 3B for radix 4); charged once per slice as fixed area.
GateEval multiple_precompute_unit(unsigned digit_bits, const Technology& t);

/// Quotient-digit logic of a Montgomery iteration (Fig. 10 line 4):
/// computes Qi from the low bits of R. Cost grows with the digit width.
GateEval montgomery_q_logic(unsigned digit_bits, const Technology& t);

/// Control FSM overhead (sequencing, handshakes); `complexity` is an
/// abstract state count.
GateEval control_fsm(unsigned complexity, const Technology& t);

/// Broadcast/fanout penalty for distributing a control or digit signal to a
/// `width`-bit datapath; pure delay, no area (buffers are inside components).
double fanout_delay_ns(unsigned width, const Technology& t);

}  // namespace dslayer::tech
