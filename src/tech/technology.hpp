// Technology models.
//
// Two of the paper's design issues for the Operator-Modular-Multiplier-
// Hardware CDO (Fig. 11) are "Layout Style" (DI5: standard cell, gate
// array, ...) and "Fabrication Technology" (DI6: 0.7u, 0.35u, ...). These
// options "define the meaning of the generalized Hardware option": they
// scale every component's area and delay, and their combinations create the
// technology clusters visible in the IDCT evaluation space of Figs. 2-3
// (e.g. "one using a 0.35u standard cell library, and the other a 0.7u
// standard cell library").
//
// The baseline (scale 1.0/1.0) is a 0.35u standard-cell library modeled on
// the LSI G10 the paper synthesized Table 1 with. Other technologies are
// classical constant-field scalings: halving the feature size roughly
// doubles speed and quarters area; gate arrays pay an area/delay penalty
// over standard cells for lower NRE.
#pragma once

#include <string>
#include <vector>

namespace dslayer::tech {

/// Layout style options of design issue DI5.
enum class LayoutStyle { kStandardCell, kGateArray };

/// Fabrication process options of design issue DI6.
enum class Process { k035um, k070um };

std::string to_string(LayoutStyle s);
std::string to_string(Process p);

/// A concrete technology: one (process, layout) combination with its scale
/// factors relative to the 0.35um standard-cell baseline.
struct Technology {
  Process process = Process::k035um;
  LayoutStyle layout = LayoutStyle::kStandardCell;
  double delay_scale = 1.0;  ///< multiplies every component delay
  double area_scale = 1.0;   ///< multiplies every component area
  /// Switched-capacitance coefficient for the power extension (Section 6
  /// "work in progress"): mW per (area unit x MHz), before activity factors.
  double power_coeff = 1.0;

  /// Human-readable name, e.g. "0.35um std-cell".
  std::string name() const;

  friend bool operator==(const Technology&, const Technology&) = default;
};

/// The technology for a (process, layout) pair.
Technology technology(Process process, LayoutStyle layout);

/// All four modeled technologies (cartesian product of the option sets).
std::vector<Technology> all_technologies();

}  // namespace dslayer::tech
