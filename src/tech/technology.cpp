#include "tech/technology.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace dslayer::tech {

std::string to_string(LayoutStyle s) {
  switch (s) {
    case LayoutStyle::kStandardCell: return "std-cell";
    case LayoutStyle::kGateArray: return "gate-array";
  }
  return "?";
}

std::string to_string(Process p) {
  switch (p) {
    case Process::k035um: return "0.35um";
    case Process::k070um: return "0.70um";
  }
  return "?";
}

std::string Technology::name() const {
  return cat(to_string(process), " ", to_string(layout));
}

Technology technology(Process process, LayoutStyle layout) {
  Technology t;
  t.process = process;
  t.layout = layout;
  // Constant-field scaling from the 0.35um baseline: the 0.7um process is
  // ~2x slower and 4x larger per function. 0.7um also runs at a higher
  // supply voltage, so its switched power per area-MHz is higher.
  if (process == Process::k070um) {
    t.delay_scale = 2.0;
    t.area_scale = 4.0;
    t.power_coeff = 2.6;
  }
  // Gate arrays trade density and speed for mask-cost: routing through a
  // prefabricated fabric costs ~25% delay and ~55% area.
  if (layout == LayoutStyle::kGateArray) {
    t.delay_scale *= 1.25;
    t.area_scale *= 1.55;
    t.power_coeff *= 1.2;
  }
  return t;
}

std::vector<Technology> all_technologies() {
  std::vector<Technology> out;
  for (Process p : {Process::k035um, Process::k070um}) {
    for (LayoutStyle s : {LayoutStyle::kStandardCell, LayoutStyle::kGateArray}) {
      out.push_back(technology(p, s));
    }
  }
  return out;
}

}  // namespace dslayer::tech
