#include <gtest/gtest.h>

#include "bigint/modular.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "swmodel/swmodel.hpp"

namespace dslayer::swmodel {
namespace {

using bigint::MontVariant;

SoftwareCore make(MontVariant v, CodeQuality q) { return SoftwareCore(v, q, pentium60()); }

TEST(Processor, Pentium60Defaults) {
  const ProcessorModel p = pentium60();
  EXPECT_EQ(p.name, "Pentium 60");
  EXPECT_DOUBLE_EQ(p.clock_mhz, 60.0);
  EXPECT_GT(p.mul_cycles, p.add_cycles);
  EXPECT_GT(p.c_overhead, 1.0);
}

TEST(Core, Labels) {
  EXPECT_EQ(make(MontVariant::kCIOS, CodeQuality::kC).label(), "CIOS C code");
  EXPECT_EQ(make(MontVariant::kCIHS, CodeQuality::kAssembly).label(), "CIHS ASM");
}

TEST(Core, CSlowerThanAssemblyByConstantFactor) {
  for (MontVariant v : bigint::kAllMontVariants) {
    const double asm_us = make(v, CodeQuality::kAssembly).mont_mul_us(1024);
    const double c_us = make(v, CodeQuality::kC).mont_mul_us(1024);
    EXPECT_NEAR(c_us / asm_us, pentium60().c_overhead, 1e-9) << to_string(v);
  }
}

TEST(Core, Fig6Ranges) {
  // The paper's Fig. 6 at 1024 bits: ASM routines in the high hundreds of
  // microseconds, C routines in the several-thousand range.
  for (MontVariant v : bigint::kAllMontVariants) {
    const double asm_us = make(v, CodeQuality::kAssembly).mont_mul_us(1024);
    const double c_us = make(v, CodeQuality::kC).mont_mul_us(1024);
    EXPECT_GT(asm_us, 400.0) << to_string(v);
    EXPECT_LT(asm_us, 1300.0) << to_string(v);
    EXPECT_GT(c_us, 4000.0) << to_string(v);
    EXPECT_LT(c_us, 9000.0) << to_string(v);
  }
}

TEST(Core, TimeGrowsQuadratically) {
  const SoftwareCore core = make(MontVariant::kCIOS, CodeQuality::kAssembly);
  const double t512 = core.mont_mul_us(512);
  const double t1024 = core.mont_mul_us(1024);
  EXPECT_GT(t1024 / t512, 3.3);
  EXPECT_LT(t1024 / t512, 4.5);
}

TEST(Core, ModExpIsBitCountTimesMultiplications) {
  const SoftwareCore core = make(MontVariant::kCIOS, CodeQuality::kAssembly);
  const double one = core.mont_mul_us(768);
  EXPECT_NEAR(core.mod_exp_us(768), (1.5 * 768 + 2) * one, 1e-6);
}

TEST(Core, OpCountsExposed) {
  const auto counts = make(MontVariant::kSOS, CodeQuality::kC).op_counts(1024);
  EXPECT_GT(counts.word_mults, 2000u);  // 2s^2 + s at s = 32
  EXPECT_GT(counts.loads, counts.stores);
}

TEST(Core, SubWordOperandsOccupyOneWord) {
  // Tiny operands still cost one machine word of arithmetic.
  const SoftwareCore core = make(MontVariant::kSOS, CodeQuality::kC);
  EXPECT_DOUBLE_EQ(core.mont_mul_us(16), core.mont_mul_us(32));
  EXPECT_GT(core.mont_mul_us(16), 0.0);
}

TEST(Core, CodeSizeOrdering) {
  // Assembly denser than C; product scanning code larger than SOS.
  EXPECT_LT(make(MontVariant::kSOS, CodeQuality::kAssembly).code_size_bytes(),
            make(MontVariant::kSOS, CodeQuality::kC).code_size_bytes());
  EXPECT_LT(make(MontVariant::kSOS, CodeQuality::kAssembly).code_size_bytes(),
            make(MontVariant::kFIPS, CodeQuality::kAssembly).code_size_bytes());
}

TEST(Core, ExecuteMatchesReference) {
  Rng rng(21);
  for (int i = 0; i < 10; ++i) {
    bigint::BigUint m = bigint::BigUint::random_bits(rng, 256);
    if (!m.is_odd()) m += bigint::BigUint(1);
    const auto a = bigint::BigUint::random_below(rng, m);
    const auto b = bigint::BigUint::random_below(rng, m);
    const auto expected = bigint::mod_mul_paper_pencil(a, b, m);
    for (MontVariant v : bigint::kAllMontVariants) {
      EXPECT_EQ(make(v, CodeQuality::kAssembly).execute(a, b, m), expected) << to_string(v);
    }
  }
}

TEST(Core, ExecuteRejectsEvenModulus) {
  EXPECT_THROW(make(MontVariant::kCIOS, CodeQuality::kC)
                   .execute(bigint::BigUint(3), bigint::BigUint(5), bigint::BigUint(100)),
               PreconditionError);
}

TEST(Catalog, TenCores) {
  const auto catalog = software_catalog();
  EXPECT_EQ(catalog.size(), 10u);  // 5 variants x {C, ASM}
  int asm_count = 0;
  for (const auto& core : catalog) {
    if (core.quality() == CodeQuality::kAssembly) ++asm_count;
  }
  EXPECT_EQ(asm_count, 5);
}

class HardwareGapSweep : public ::testing::TestWithParam<MontVariant> {};

TEST_P(HardwareGapSweep, SoftwareOrdersOfMagnitudeSlowerThanFig6Hardware) {
  // Fig. 6's central claim: the fastest software is still >100x slower than
  // the hardware cores (1.96-4.32 us).
  const double asm_us = make(GetParam(), CodeQuality::kAssembly).mont_mul_us(1024);
  EXPECT_GT(asm_us / 4.32, 100.0);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, HardwareGapSweep,
                         ::testing::ValuesIn(bigint::kAllMontVariants),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace dslayer::swmodel
