// Tier-2 chaos for the TCP front end: connection-level failpoints
// (accept-time faults, mid-line disconnects, write-path failures) armed
// under concurrent socket load, plus the slowloris/half-open shapes the
// idle sweep must defuse. Runs under ASan and TSan in CI; the loads are
// sized for a small machine — the point is interleaving coverage and
// lifecycle invariants, not throughput.
//
// The invariant under every fault: the SERVER survives. Individual
// connections may die abruptly (that is the injected fault), but the
// loop keeps serving, in-flight executor work completes harmlessly
// against closed connections, and a clean post-chaos connection gets
// clean service.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "domains/crypto.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/request_executor.hpp"
#include "service/session_manager.hpp"
#include "service/shared_layer.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace dslayer {
namespace {

using net::NetServer;
using net::Socket;
using service::RequestExecutor;
using service::SessionManager;
using service::SharedLayer;

constexpr const char* kOmm = "Operator.Modular.Multiplier";

/// Disarms every failpoint when a test exits, pass or fail.
struct FailpointGuard {
  ~FailpointGuard() { support::FailpointRegistry::instance().reset(); }
  support::FailpointRegistry& registry = support::FailpointRegistry::instance();
};

class NetChaosTest : public ::testing::Test {
 protected:
  NetChaosTest() : layer_(domains::build_crypto_layer()), shared_(*layer_), manager_(shared_) {}

  void start(NetServer::Options net_options, RequestExecutor::Options exec_options) {
    executor_ = std::make_unique<RequestExecutor>(manager_, exec_options);
    net_options.port = 0;
    server_ = std::make_unique<NetServer>(manager_, *executor_, net_options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  std::unique_ptr<dsl::DesignSpaceLayer> layer_;
  SharedLayer shared_;
  SessionManager manager_;
  std::unique_ptr<RequestExecutor> executor_;  // outlives the server below
  std::unique_ptr<NetServer> server_;
};

/// One scripted client: connect, pipeline a few requests, read until the
/// server answers them all or hangs up. Returns completed responses.
std::size_t run_client(std::uint16_t port, int index, int requests) {
  std::string error;
  Socket sock = net::connect_local(port, &error);
  if (!sock.valid()) return 0;
  std::string burst = cat("c", std::to_string(index), " open ", kOmm, "\n");
  for (int i = 1; i < requests; ++i) {
    burst += cat("c", std::to_string(index), " range area\n");
  }
  std::size_t sent = 0;
  while (sent < burst.size()) {
    const ssize_t n = ::send(sock.fd(), burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return 0;  // injected fault killed the connection mid-send
    sent += static_cast<std::size_t>(n);
  }
  std::string received;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::size_t headers = 0;
  while (headers < static_cast<std::size_t>(requests) &&
         std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{sock.fd(), POLLIN, 0};
    if (::poll(&pfd, 1, 200) <= 0) continue;
    char buf[8192];
    const ssize_t n = ::read(sock.fd(), buf, sizeof(buf));
    if (n <= 0) break;  // server hung up (fault) — fine, count what we got
    received.append(buf, static_cast<std::size_t>(n));
    headers = 0;
    for (std::size_t pos = 0; (pos = received.find("== ", pos)) != std::string::npos; pos += 3) {
      if (pos == 0 || received[pos - 1] == '\n') ++headers;
    }
  }
  return headers;
}

TEST_F(NetChaosTest, ServerSurvivesConnectionFailpointsUnderLoad) {
  FailpointGuard failpoints;
  NetServer::Options net_options;
  net_options.conn_inflight_cap = 8;
  RequestExecutor::Options exec_options;
  exec_options.workers = 2;
  exec_options.queue_capacity = 128;
  start(net_options, exec_options);

  // Faults at every connection boundary: some accepts die, some reads
  // cut the connection mid-stream, some writes fail while flushing.
  ASSERT_TRUE(failpoints.registry.arm_spec("net.conn.accept=error:3"));
  ASSERT_TRUE(failpoints.registry.arm_spec("net.conn.read=error:4"));
  ASSERT_TRUE(failpoints.registry.arm_spec("net.conn.write=error:3"));

  constexpr int kClients = 24;
  constexpr int kRequestsPerClient = 4;
  std::atomic<std::size_t> total_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, i, &total_responses] {
      total_responses += run_client(server_->port(), i, kRequestsPerClient);
    });
  }
  for (auto& thread : clients) thread.join();

  // Faults hit, yet plenty of traffic still completed around them.
  const auto stats = server_->stats();
  EXPECT_GE(stats.faulted, 3u) << "failpoints never fired";
  EXPECT_GT(total_responses.load(), 0u);

  // Post-chaos, with failpoints spent/disarmed, a fresh connection gets
  // clean end-to-end service from the same loop.
  failpoints.registry.reset();
  EXPECT_EQ(run_client(server_->port(), 999, 3), 3u);

  // Nothing accepted by the executor was lost, whatever happened to the
  // connection that submitted it.
  server_->stop();
  const auto exec_stats = executor_->stats();
  EXPECT_EQ(exec_stats.accepted, exec_stats.executed);
}

TEST_F(NetChaosTest, TracingAtFullSamplingSurvivesConnectionChaos) {
  // Tracing's worst case: every request traced (sample=1), the flight
  // recorder armed with a threshold most requests beat, and connection
  // failpoints killing sockets mid-request — so traces finish via every
  // terminal path (normal delivery, rejected-at-door, connections that
  // died before their response). Run under ASan and TSan in CI; the
  // invariant is the same as the undecorated chaos test (the server
  // survives) plus trace accounting: every started trace finishes
  // exactly once, whatever happened to its connection.
  FailpointGuard failpoints;
  trace::Tracer::instance().reset();
  trace::TracerConfig trace_config;
  trace_config.sample_every = 1;
  trace_config.slow_request_ms = 1.0;
  trace_config.ring_capacity = 16;
  trace_config.flight_capacity = 32;
  trace::Tracer::instance().configure(trace_config);

  NetServer::Options net_options;
  net_options.conn_inflight_cap = 8;
  RequestExecutor::Options exec_options;
  exec_options.workers = 2;
  exec_options.queue_capacity = 128;
  exec_options.injected_latency_us = 2000.0;  // most requests cross the 1ms threshold
  start(net_options, exec_options);

  ASSERT_TRUE(failpoints.registry.arm_spec("net.conn.read=error:4"));
  ASSERT_TRUE(failpoints.registry.arm_spec("net.conn.write=error:3"));

  constexpr int kClients = 16;
  constexpr int kRequestsPerClient = 4;
  std::atomic<std::size_t> total_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([this, i, &total_responses] {
      total_responses += run_client(server_->port(), i, kRequestsPerClient);
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_GT(total_responses.load(), 0u);

  failpoints.registry.reset();
  EXPECT_EQ(run_client(server_->port(), 999, 3), 3u);  // clean post-chaos service

  // Quiesce, then audit the trace accounting.
  server_->stop();
  const auto stats = trace::Tracer::instance().stats();
  EXPECT_GT(stats.started, 0u);
  EXPECT_EQ(stats.sampled, stats.started);    // sample=1: everything sampled
  EXPECT_EQ(stats.finished, stats.started);   // every trace reached a terminal path
  EXPECT_GT(stats.slow, 0u);                  // the 2ms requests beat the 1ms bar
  EXPECT_LE(trace::Tracer::instance().flight_records().size(), trace_config.flight_capacity);
  trace::Tracer::instance().reset();
}

TEST_F(NetChaosTest, SlowlorisAndHalfOpenSocketsAreSweptByTheIdleTimeout) {
  NetServer::Options net_options;
  net_options.idle_timeout_ms = 150.0;
  RequestExecutor::Options exec_options;
  exec_options.workers = 1;
  start(net_options, exec_options);

  // A slowloris drips bytes but never completes a line; a half-open
  // socket connects and goes silent forever. Both must be evicted while
  // an honest (if chatty) client keeps getting service.
  std::string error;
  Socket slowloris = net::connect_local(server_->port(), &error);
  ASSERT_TRUE(slowloris.valid()) << error;
  Socket half_open = net::connect_local(server_->port(), &error);
  ASSERT_TRUE(half_open.valid()) << error;

  std::atomic<bool> stop_drip{false};
  std::thread dripper([&] {
    // One byte every 400ms: each arrival resets last_activity, but the
    // gaps exceed the 150ms budget, so the sweep wins mid-gap.
    const char byte = 'x';
    while (!stop_drip.load()) {
      if (::send(slowloris.fd(), &byte, 1, MSG_NOSIGNAL) <= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(400));
    }
  });

  EXPECT_EQ(run_client(server_->port(), 1, 3), 3u);  // honest client unharmed

  // Both attackers die within a few sweep periods.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->stats().idle_closed < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  stop_drip = true;
  dripper.join();
  EXPECT_GE(server_->stats().idle_closed, 2u);

  // The partial slowloris line was discarded with its connection: no
  // request was ever forged from it.
  EXPECT_EQ(manager_.session_count(), 1u);  // just the honest client's
}

}  // namespace
}  // namespace dslayer
