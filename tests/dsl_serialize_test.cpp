#include <gtest/gtest.h>

#include "domains/crypto.hpp"
#include "domains/media.hpp"
#include "dsl/serialize.hpp"
#include "support/error.hpp"

namespace dslayer::dsl {
namespace {

/// Structural equality of the data parts of two layers.
void expect_same_structure(const DesignSpaceLayer& a, const DesignSpaceLayer& b) {
  // Same CDO paths, options, docs.
  const auto a_cdos = a.space().all();
  const auto b_cdos = b.space().all();
  ASSERT_EQ(a_cdos.size(), b_cdos.size());
  for (std::size_t i = 0; i < a_cdos.size(); ++i) {
    SCOPED_TRACE(a_cdos[i]->path());
    EXPECT_EQ(a_cdos[i]->path(), b_cdos[i]->path());
    EXPECT_EQ(a_cdos[i]->specializing_option(), b_cdos[i]->specializing_option());
    EXPECT_EQ(a_cdos[i]->doc(), b_cdos[i]->doc());
    // Same properties, attribute for attribute.
    const auto& ap = a_cdos[i]->local_properties();
    const auto& bp = b_cdos[i]->local_properties();
    ASSERT_EQ(ap.size(), bp.size());
    for (std::size_t j = 0; j < ap.size(); ++j) {
      SCOPED_TRACE(ap[j].name);
      EXPECT_EQ(ap[j].name, bp[j].name);
      EXPECT_EQ(ap[j].kind, bp[j].kind);
      EXPECT_EQ(ap[j].generalized, bp[j].generalized);
      EXPECT_EQ(ap[j].unit, bp[j].unit);
      EXPECT_EQ(ap[j].filters_cores, bp[j].filters_cores);
      EXPECT_EQ(ap[j].compliance, bp[j].compliance);
      EXPECT_EQ(ap[j].compliance_key, bp[j].compliance_key);
      EXPECT_EQ(ap[j].default_value, bp[j].default_value);
      EXPECT_EQ(ap[j].doc, bp[j].doc);
      if (ap[j].domain.kind() != ValueDomain::Kind::kIntegerSet) {
        EXPECT_EQ(ap[j].domain.describe(), bp[j].domain.describe());
      }
    }
  }
  // Same libraries, cores, bindings, metrics, views.
  const auto a_libs = a.libraries();
  const auto b_libs = b.libraries();
  ASSERT_EQ(a_libs.size(), b_libs.size());
  for (std::size_t i = 0; i < a_libs.size(); ++i) {
    EXPECT_EQ(a_libs[i]->name(), b_libs[i]->name());
    const auto a_cores = a_libs[i]->cores();
    const auto b_cores = b_libs[i]->cores();
    ASSERT_EQ(a_cores.size(), b_cores.size());
    for (std::size_t j = 0; j < a_cores.size(); ++j) {
      SCOPED_TRACE(a_cores[j]->name());
      EXPECT_EQ(a_cores[j]->name(), b_cores[j]->name());
      EXPECT_EQ(a_cores[j]->class_path(), b_cores[j]->class_path());
      EXPECT_EQ(a_cores[j]->bindings(), b_cores[j]->bindings());
      EXPECT_EQ(a_cores[j]->metrics(), b_cores[j]->metrics());
      ASSERT_EQ(a_cores[j]->views().size(), b_cores[j]->views().size());
    }
  }
}

TEST(Serialize, CryptoLayerRoundTrips) {
  auto original = domains::build_crypto_layer();
  const std::string text = export_layer(*original);
  EXPECT_NE(text.find("dslayer-format 1"), std::string::npos);

  ImportResult imported = import_layer(text);
  ASSERT_NE(imported.layer, nullptr);
  EXPECT_EQ(imported.layer->name(), "cryptography");
  expect_same_structure(*original, *imported.layer);
  // The NumberOfSlices divisor-style domains are well-known sets here, so
  // the only accepted degradations are custom integer domains (none).
  EXPECT_TRUE(imported.warnings.empty());
}

TEST(Serialize, MediaLayerRoundTrips) {
  auto original = domains::build_media_layer();
  ImportResult imported = import_layer(export_layer(*original));
  expect_same_structure(*original, *imported.layer);
}

TEST(Serialize, ImportedIndexMatchesOriginal) {
  auto original = domains::build_crypto_layer();
  ImportResult imported = import_layer(export_layer(*original));
  for (const char* path : {domains::kPathOMM, domains::kPathOMMHM, domains::kPathOMMS,
                           domains::kPathAdder, domains::kPathExponentiator}) {
    const Cdo* a = original->space().find(path);
    const Cdo* b = imported.layer->space().find(path);
    ASSERT_NE(b, nullptr) << path;
    EXPECT_EQ(original->cores_under(*a).size(), imported.layer->cores_under(*b).size()) << path;
  }
}

TEST(Serialize, ExplorationWorksOnImportedLayer) {
  // Constraints/filters are code and do not travel; requirement compliance
  // rules and the structural pruning do.
  auto original = domains::build_crypto_layer();
  ImportResult imported = import_layer(export_layer(*original));
  ExplorationSession s(*imported.layer, domains::kPathOMM);
  s.set_requirement(domains::kEOL, 768.0);
  s.decide(domains::kImplStyle, "Hardware");
  s.decide(domains::kAlgorithm, "Montgomery");
  s.decide(domains::kLoopAdder, "CSA");
  EXPECT_EQ(s.current().path(), domains::kPathOMMHM);
  const auto cores = s.candidates();
  EXPECT_FALSE(cores.empty());
  for (const Core* core : cores) {
    EXPECT_EQ(core->binding(domains::kLoopAdder), Value::text("CSA"));
  }
  // Declarative compliance travels: the exponentiator latency rule works.
  ExplorationSession e(*imported.layer, domains::kPathExponentiator);
  e.set_requirement(domains::kModExpLatency, 1500.0);
  for (const Core* core : e.candidates()) {
    EXPECT_LE(core->metric(domains::kMetricModExpUs768).value(), 1500.0);
  }
}

TEST(Serialize, QuotingSurvivesHostileStrings) {
  DesignSpaceLayer layer("weird \"quotes\" and \\slashes\\");
  Cdo& root = layer.space().add_root("Root", "doc with \"quotes\" and spaces");
  root.add_property(Property::requirement("R 1", ValueDomain::options({"a b", "c\"d"}),
                                          "docs \\ with escapes"));
  ReuseLibrary& lib = layer.add_library("lib \"x\"");
  Core core("core \"1\"", "Root");
  core.bind("R 1", Value::text("a b"));
  lib.add(std::move(core));
  layer.index_cores();

  ImportResult imported = import_layer(export_layer(layer));
  expect_same_structure(layer, *imported.layer);
  EXPECT_EQ(imported.layer->name(), "weird \"quotes\" and \\slashes\\");
}

TEST(Serialize, CustomIntegerDomainDegradesWithWarning) {
  DesignSpaceLayer layer("custom");
  Cdo& root = layer.space().add_root("Root");
  root.add_property(Property::requirement(
      "Divisors", ValueDomain::integer_set([](std::int64_t i) { return 768 % i == 0; },
                                           "{ i | 768 mod i = 0 }"),
      "divisor domain"));
  ImportResult imported = import_layer(export_layer(layer));
  ASSERT_EQ(imported.warnings.size(), 1u);
  EXPECT_NE(imported.warnings[0].find("widened"), std::string::npos);
  // The imported domain is the documented fallback.
  const Property* p = imported.layer->space().find("Root")->find_property("Divisors");
  EXPECT_TRUE(p->domain.contains(Value::number(7)));  // widened: any positive int
}

TEST(Serialize, MalformedInputsThrow) {
  EXPECT_THROW(import_layer(""), DefinitionError);
  EXPECT_THROW(import_layer("layer \"x\"\n"), DefinitionError);  // missing header
  EXPECT_THROW(import_layer("dslayer-format 2\nlayer \"x\"\n"), DefinitionError);
  EXPECT_THROW(import_layer("dslayer-format 1\ncdo \"X\" parent \"\" option \"\" doc \"\"\n"),
               DefinitionError);  // cdo before layer
  EXPECT_THROW(import_layer("dslayer-format 1\nlayer \"x\"\nbogus \"y\"\n"), DefinitionError);
  EXPECT_THROW(import_layer("dslayer-format 1\nlayer \"x\"\ncore \"c\" class \"X\"\n"),
               DefinitionError);  // core before library
  EXPECT_THROW(import_layer("dslayer-format 1\nlayer \"x\"\nlayer \"unterminated\n"),
               DefinitionError);
}

TEST(Serialize, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "dslayer-format 1\n"
      "\n"
      "# a comment\n"
      "layer \"tiny\"\n"
      "cdo \"Root\" parent \"\" option \"\" doc \"\"\n";
  ImportResult imported = import_layer(text);
  EXPECT_NE(imported.layer->space().find("Root"), nullptr);
}

TEST(Serialize, ExportEmbedsConstraintDescriptions) {
  auto layer = domains::build_crypto_layer();
  const std::string text = export_layer(*layer);
  EXPECT_NE(text.find("# constraint \"CC1\""), std::string::npos);
  EXPECT_NE(text.find("# constraint \"CC4\""), std::string::npos);
  EXPECT_NE(text.find("# behavior \"Montgomery_r2\""), std::string::npos);
}

}  // namespace
}  // namespace dslayer::dsl
