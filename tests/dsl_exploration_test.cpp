#include <gtest/gtest.h>

#include "dsl/exploration.hpp"
#include "support/error.hpp"

namespace dslayer::dsl {
namespace {

/// A self-contained layer exercising every exploration mechanism:
///   Block (req Size, req Budget) -> Style {HW, SW}
///   HW: issues Tech {new, old}, Width (powers of two), derived "Cycles",
///       estimator-bound "DelayRank"; generalized Scheme {P, Q} -> leaves
/// Constraints:
///   O1: Width decidable only after Tech           (ordering)
///   V1: Scheme=Q inconsistent with Size >= 100    (veto / reassessment)
///   D1: Tech=old dominated when Budget <= 10      (dominance)
///   F1: Cycles = Size / Width                     (formula)
///   E1: DelayRank by BehaviorDelayEstimator       (estimator binding)
std::unique_ptr<DesignSpaceLayer> rich_layer() {
  auto layer = std::make_unique<DesignSpaceLayer>("rich");
  Cdo& block = layer->space().add_root("Block");
  block.add_property(Property::requirement("Size", ValueDomain::positive_integers(), ""));
  block.add_property(Property::requirement("Budget", ValueDomain::real_range(0, 1e9), "")
                         .with_compliance(Compliance::kCoreAtMost, "cost"));
  block.add_property(Property::generalized_issue("Style", {"HW", "SW"}, ""));

  Cdo& hw = block.specialize("HW");
  hw.add_property(Property::design_issue("Tech", ValueDomain::options({"new", "old"}), ""));
  hw.add_property(Property::design_issue("Width", ValueDomain::powers_of_two(), ""));
  hw.add_property(Property::figure_of_merit("Cycles", Unit::kNone, ""));
  hw.add_property(Property::figure_of_merit("DelayRank", Unit::kNanoseconds, ""));
  hw.add_property(Property::generalized_issue("Scheme", {"P", "Q"}, ""));
  Cdo& p = hw.specialize("P");
  p.add_behavior(behavior::montgomery_bd(2, 32));
  p.add_behavior(behavior::montgomery_bd(4, 32));
  hw.specialize("Q");
  block.specialize("SW");

  layer->add_constraint(ConsistencyConstraint::inconsistent_options(
      "O1", "width follows tech", {PropertyPath::parse("Tech@*.HW")},
      {PropertyPath::parse("Width@*.HW")}, [](const Bindings&) { return false; }));
  layer->add_constraint(ConsistencyConstraint::inconsistent_options(
      "V1", "scheme Q only for small blocks", {PropertyPath::parse("Size@Block")},
      {PropertyPath::parse("Scheme@*.HW")}, [](const Bindings& b) {
        return get_or_empty(b, "Size").as_number() >= 100 &&
               get_or_empty(b, "Scheme").as_text() == "Q";
      }));
  layer->add_constraint(ConsistencyConstraint::dominance(
      "D1", "old tech dominated on tight budgets", {PropertyPath::parse("Budget@Block")},
      {PropertyPath::parse("Tech@*.HW")}, [](const Bindings& b) {
        return get_or_empty(b, "Budget").as_number() <= 10 &&
               get_or_empty(b, "Tech").as_text() == "old";
      }));
  layer->add_constraint(ConsistencyConstraint::formula(
      "F1", "cycles = size / width",
      {PropertyPath::parse("Size@Block"), PropertyPath::parse("Width@*.HW")},
      PropertyPath::parse("Cycles@*.HW"), [](const Bindings& b) {
        return Value::number(get_or_empty(b, "Size").as_number() /
                             get_or_empty(b, "Width").as_number());
      }));
  layer->add_constraint(ConsistencyConstraint::estimator(
      "E1", "rank behaviors", {}, PropertyPath::parse("DelayRank@*.HW"),
      "BehaviorDelayEstimator"));

  ReuseLibrary& lib = layer->add_library("cores");
  const auto add = [&lib](const char* name, const char* style, const char* scheme,
                          const char* tech, double width, double cost, double area) {
    Core c(name, "Block");
    c.bind("Style", Value::text(style));
    if (scheme != nullptr) c.bind("Scheme", Value::text(scheme));
    if (tech != nullptr) c.bind("Tech", Value::text(tech));
    if (width > 0) c.bind("Width", Value::number(width));
    c.set_metric("cost", cost).set_metric("area", area);
    lib.add(std::move(c));
  };
  add("hw_p_new_16", "HW", "P", "new", 16, 8, 100);
  add("hw_p_new_32", "HW", "P", "new", 32, 9, 180);
  add("hw_p_old_16", "HW", "P", "old", 16, 4, 320);
  add("hw_q_new_16", "HW", "Q", "new", 16, 7, 90);
  add("sw_generic", "SW", nullptr, nullptr, 0, 1, 0);
  layer->index_cores();
  return layer;
}

TEST(Session, UnknownClassPathThrows) {
  auto layer = rich_layer();
  EXPECT_THROW(ExplorationSession(*layer, "No.Such"), DefinitionError);
}

TEST(Session, StructuralDecisionsFromClassPath) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  EXPECT_EQ(s.value_of("Style"), Value::text("HW"));
  EXPECT_EQ(s.candidates().size(), 4u);  // SW core out of scope
  // Structural values cannot be retracted or re-decided.
  EXPECT_THROW(s.retract("Style"), ExplorationError);
  EXPECT_THROW(s.decide("Style", "SW"), ExplorationError);
}

TEST(Session, RequirementDomainEnforced) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block");
  EXPECT_THROW(s.set_requirement("Size", -5.0), ExplorationError);
  EXPECT_THROW(s.set_requirement("Size", Value::text("big")), ExplorationError);
  EXPECT_THROW(s.set_requirement("NoSuch", 1.0), ExplorationError);
  // Design issues cannot be entered as requirements and vice versa.
  EXPECT_THROW(s.set_requirement("Style", "HW"), ExplorationError);
  EXPECT_THROW(s.decide("Size", 5.0), ExplorationError);
}

TEST(Session, GeneralizedDecisionDescends) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block");
  EXPECT_EQ(s.current().path(), "Block");
  s.decide("Style", "HW");
  EXPECT_EQ(s.current().path(), "Block.HW");
  s.decide("Scheme", "P");
  EXPECT_EQ(s.current().path(), "Block.HW.P");
  EXPECT_EQ(s.candidates().size(), 3u);  // P cores only
}

TEST(Session, RegularDecisionFiltersCoresProperly) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.decide("Tech", "new");
  ASSERT_EQ(s.candidates().size(), 3u);
  s.decide("Width", 16.0);
  EXPECT_EQ(s.candidates().size(), 2u);  // hw_p_new_16, hw_q_new_16
}

TEST(Session, OrderingEnforcedBetweenDesignIssues) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  // O1: Width only after the Tech design issue has been decided.
  EXPECT_THROW(s.decide("Width", 16.0), ExplorationError);
  s.decide("Tech", "new");
  EXPECT_NO_THROW(s.decide("Width", 16.0));
}

TEST(Session, RequirementIndependentsDoNotBlockDecisions) {
  // V1 depends on the Size REQUIREMENT; an unset requirement is a problem
  // given that leaves the relation unevaluable, not an ordering barrier.
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  EXPECT_NO_THROW(s.decide("Scheme", "Q"));
}

TEST(Session, VetoOnDependentDecision) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.set_requirement("Size", 128.0);
  EXPECT_THROW(s.decide("Scheme", "Q"), ExplorationError);  // V1
  EXPECT_NO_THROW(s.decide("Scheme", "P"));
}

TEST(Session, DominanceVetoReportsInferior) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.set_requirement("Budget", 5.0);
  try {
    s.decide("Tech", "old");
    FAIL() << "expected veto";
  } catch (const ExplorationError& e) {
    EXPECT_NE(std::string(e.what()).find("inferior"), std::string::npos);
  }
}

TEST(Session, AvailableAndEliminatedOptions) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.set_requirement("Size", 128.0);
  EXPECT_EQ(s.available_options("Scheme"), std::vector<std::string>{"P"});
  const auto eliminated = s.eliminated_options("Scheme");
  ASSERT_EQ(eliminated.size(), 1u);
  EXPECT_EQ(eliminated[0].first, "Q");
  EXPECT_EQ(eliminated[0].second, "V1");
  // With a small size both remain.
  s.set_requirement("Size", 10.0);
  EXPECT_EQ(s.available_options("Scheme").size(), 2u);
}

TEST(Session, ReassessmentFlowOnIndependentChange) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.set_requirement("Size", 10.0);
  s.decide("Scheme", "Q");
  EXPECT_EQ(s.state_of("Scheme"), ExplorationSession::State::kSet);

  // Revising the independent does NOT throw; it flags Scheme.
  s.set_requirement("Size", 200.0);
  EXPECT_EQ(s.state_of("Scheme"), ExplorationSession::State::kNeedsReassessment);
  EXPECT_EQ(s.pending_reassessment(), std::vector<std::string>{"Scheme"});

  // Re-affirming the now-inconsistent value fails...
  EXPECT_THROW(s.reaffirm("Scheme"), ExplorationError);
  // ...but after shrinking Size again it succeeds.
  s.set_requirement("Size", 10.0);
  EXPECT_NO_THROW(s.reaffirm("Scheme"));
  EXPECT_EQ(s.state_of("Scheme"), ExplorationSession::State::kSet);
}

TEST(Session, ReaffirmOnlyWhenFlagged) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  EXPECT_THROW(s.reaffirm("Tech"), ExplorationError);
}

TEST(Session, RetractAscendsAndDropsScope) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block");
  s.decide("Style", "HW");
  s.decide("Tech", "new");
  s.decide("Scheme", "P");
  EXPECT_EQ(s.current().path(), "Block.HW.P");

  s.retract("Scheme");
  EXPECT_EQ(s.current().path(), "Block.HW");
  EXPECT_EQ(s.state_of("Scheme"), ExplorationSession::State::kUnset);
  EXPECT_EQ(s.value_of("Tech"), Value::text("new"));  // still in scope

  s.retract("Style");
  EXPECT_EQ(s.current().path(), "Block");
  // Tech was declared below Block: dropped with the scope.
  EXPECT_EQ(s.state_of("Tech"), ExplorationSession::State::kUnset);
}

TEST(Session, RetractUnsetThrows) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block");
  EXPECT_THROW(s.retract("Style"), ExplorationError);
}

TEST(Session, CandidatesRespectComplianceRules) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.set_requirement("Budget", 8.0);  // kCoreAtMost on metric "cost"
  // hw_p_new_32 (9) is out; old-tech core (4) is cheap but D1 eliminates it.
  const auto names = [&s] {
    std::vector<std::string> out;
    for (const Core* c : s.candidates()) out.push_back(c->name());
    return out;
  }();
  EXPECT_EQ(names, (std::vector<std::string>{"hw_p_new_16", "hw_q_new_16"}));
}

TEST(Session, MetricRangeOverCandidates) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  const auto range = s.metric_range("area");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->count, 4u);
  EXPECT_DOUBLE_EQ(range->min, 90.0);
  EXPECT_DOUBLE_EQ(range->max, 320.0);
  EXPECT_FALSE(s.metric_range("nonexistent").has_value());
}

TEST(Session, DerivedFormulaValue) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  EXPECT_FALSE(s.derived("Cycles").has_value());  // Width unbound
  s.set_requirement("Size", 64.0);
  s.decide("Tech", "new");  // O1 orders Width after Tech
  s.decide("Width", 16.0);
  EXPECT_EQ(s.derived("Cycles"), Value::number(4.0));
  s.decide("Width", 32.0);  // revision recomputes
  EXPECT_EQ(s.derived("Cycles"), Value::number(2.0));
}

TEST(Session, RankBehaviorsThroughEstimatorConstraint) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW.P");
  const auto ranks = s.rank_behaviors("DelayRank");
  ASSERT_EQ(ranks.size(), 2u);
  EXPECT_EQ(ranks[0].bd_name, "Montgomery_r2");  // gated PPs beat digit muls
  EXPECT_LT(ranks[0].value, ranks[1].value);
  EXPECT_THROW(s.rank_behaviors("NoSuchProperty"), ExplorationError);
}

TEST(Session, OptionRangesForRegularIssue) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  const auto ranges = s.option_ranges("Tech", "area");
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges.at("new").count, 3u);
  EXPECT_DOUBLE_EQ(ranges.at("new").min, 90.0);
  EXPECT_DOUBLE_EQ(ranges.at("new").max, 180.0);
  EXPECT_EQ(ranges.at("old").count, 1u);
  EXPECT_DOUBLE_EQ(ranges.at("old").min, 320.0);
}

TEST(Session, OptionRangesForGeneralizedIssue) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  const auto ranges = s.option_ranges("Scheme", "area");
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges.at("P").count, 3u);
  EXPECT_EQ(ranges.at("Q").count, 1u);
  EXPECT_DOUBLE_EQ(ranges.at("Q").min, 90.0);
}

TEST(Session, OptionRangesRespectEliminations) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block.HW");
  s.set_requirement("Size", 200.0);  // V1 eliminates Scheme=Q
  const auto ranges = s.option_ranges("Scheme", "area");
  EXPECT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges.contains("P"));
}

TEST(Session, OptionRangesIgnoreNonFilteringIssues) {
  auto layer = std::make_unique<DesignSpaceLayer>("n");
  Cdo& root = layer->space().add_root("R");
  root.add_property(Property::design_issue("Count", ValueDomain::options({"1", "2"}), "")
                        .without_core_filtering());
  Core c("c1", "R");
  c.set_metric("area", 5);
  layer->add_library("l").add(std::move(c));
  layer->index_cores();
  ExplorationSession s(*layer, "R");
  const auto ranges = s.option_ranges("Count", "area");
  EXPECT_EQ(ranges.at("1").count, 1u);  // integration parameter: full base set
  EXPECT_EQ(ranges.at("2").count, 1u);
}

TEST(Session, TraceRecordsNarrative) {
  auto layer = rich_layer();
  ExplorationSession s(*layer, "Block");
  s.set_requirement("Size", 64.0);
  s.decide("Style", "HW");
  bool saw_descend = false;
  for (const auto& line : s.trace()) {
    if (line.find("descended to 'Block.HW'") != std::string::npos) saw_descend = true;
  }
  EXPECT_TRUE(saw_descend);
  const std::string report = s.report();
  EXPECT_NE(report.find("Style = HW"), std::string::npos);
  EXPECT_NE(report.find("Candidate cores"), std::string::npos);
}

TEST(Session, BindingsIncludeDefaults) {
  auto layer = std::make_unique<DesignSpaceLayer>("d");
  Cdo& root = layer->space().add_root("R");
  root.add_property(Property::design_issue("Radix", ValueDomain::powers_of_two(), "")
                        .with_default(Value::number(2)));
  ExplorationSession s(*layer, "R");
  EXPECT_EQ(get_or_empty(s.bindings(), "Radix"), Value::number(2));
  s.decide("Radix", 4.0);
  EXPECT_EQ(get_or_empty(s.bindings(), "Radix"), Value::number(4));
}

}  // namespace
}  // namespace dslayer::dsl
