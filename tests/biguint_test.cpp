#include <gtest/gtest.h>

#include "bigint/biguint.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dslayer::bigint {
namespace {

TEST(BigUint, DefaultIsZero) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_dec(), "0");
  EXPECT_EQ(z.to_hex(), "0");
}

TEST(BigUint, FromU64) {
  EXPECT_EQ(BigUint(0).limb_count(), 0u);
  EXPECT_EQ(BigUint(1).to_u64(), 1u);
  EXPECT_EQ(BigUint(0xFFFFFFFFULL).limb_count(), 1u);
  EXPECT_EQ(BigUint(0x100000000ULL).limb_count(), 2u);
  EXPECT_EQ(BigUint(0xDEADBEEFCAFEF00DULL).to_u64(), 0xDEADBEEFCAFEF00DULL);
}

TEST(BigUint, DecStringRoundTrip) {
  const char* cases[] = {"0", "1", "9", "10", "4294967295", "4294967296",
                         "340282366920938463463374607431768211456",
                         "123456789012345678901234567890123456789012345678901234567890"};
  for (const char* s : cases) {
    EXPECT_EQ(BigUint::from_dec(s).to_dec(), s) << s;
  }
}

TEST(BigUint, HexStringRoundTrip) {
  const char* cases[] = {"1", "f", "10", "ffffffff", "100000000",
                         "deadbeefcafef00d123456789abcdef0"};
  for (const char* s : cases) {
    EXPECT_EQ(BigUint::from_hex(s).to_hex(), s) << s;
  }
  EXPECT_EQ(BigUint::from_hex("0x1f").to_u64(), 31u);
  EXPECT_EQ(BigUint::from_hex("DEAD"), BigUint::from_hex("dead"));
}

TEST(BigUint, BadLiteralsThrow) {
  EXPECT_THROW(BigUint::from_dec(""), ArithmeticError);
  EXPECT_THROW(BigUint::from_dec("12a"), ArithmeticError);
  EXPECT_THROW(BigUint::from_hex(""), ArithmeticError);
  EXPECT_THROW(BigUint::from_hex("xyz"), ArithmeticError);
}

TEST(BigUint, ComparisonOrdering) {
  const BigUint a = BigUint::from_dec("999999999999999999999");
  const BigUint b = BigUint::from_dec("1000000000000000000000");
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
  EXPECT_LE(a, a);
  EXPECT_LT(BigUint(0), BigUint(1));
}

TEST(BigUint, AdditionCarriesAcrossLimbs) {
  const BigUint a = BigUint::from_hex("ffffffffffffffff");
  EXPECT_EQ((a + BigUint(1)).to_hex(), "10000000000000000");
}

TEST(BigUint, SubtractionBorrows) {
  const BigUint a = BigUint::from_hex("10000000000000000");
  EXPECT_EQ((a - BigUint(1)).to_hex(), "ffffffffffffffff");
  EXPECT_EQ(a - a, BigUint(0));
}

TEST(BigUint, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUint(1) - BigUint(2), ArithmeticError);
}

TEST(BigUint, MultiplicationKnownValues) {
  const BigUint a = BigUint::from_dec("12345678901234567890");
  const BigUint b = BigUint::from_dec("98765432109876543210");
  EXPECT_EQ((a * b).to_dec(), "1219326311370217952237463801111263526900");
  EXPECT_EQ(a * BigUint(0), BigUint(0));
  EXPECT_EQ(a * BigUint(1), a);
}

TEST(BigUint, ShiftsAreInverse) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const BigUint x = BigUint::random_bits(rng, 200 + static_cast<unsigned>(i));
    const unsigned s = static_cast<unsigned>(rng.next_below(130));
    EXPECT_EQ((x << s) >> s, x);
  }
}

TEST(BigUint, ShiftLeftMultipliesByPowerOfTwo) {
  const BigUint x = BigUint::from_dec("123456789");
  EXPECT_EQ(x << 5, x * BigUint(32));
  EXPECT_EQ(x << 0, x);
}

TEST(BigUint, ShiftRightDropsBits) {
  EXPECT_EQ(BigUint(0b1011) >> 1, BigUint(0b101));
  EXPECT_EQ(BigUint(1) >> 1, BigUint(0));
  EXPECT_EQ(BigUint(7) >> 64, BigUint(0));
}

TEST(BigUint, BitAccess) {
  const BigUint x = BigUint::from_hex("8000000000000001");
  EXPECT_TRUE(x.bit(0));
  EXPECT_TRUE(x.bit(63));
  EXPECT_FALSE(x.bit(1));
  EXPECT_FALSE(x.bit(64));
  EXPECT_EQ(x.bit_length(), 64u);
}

TEST(BigUint, DivModSmallDivisor) {
  const BigUint n = BigUint::from_dec("1000000000000000000007");
  const auto dm = divmod(n, BigUint(13));
  EXPECT_EQ(dm.quotient * BigUint(13) + dm.remainder, n);
  EXPECT_LT(dm.remainder, BigUint(13));
}

TEST(BigUint, DivModKnownValue) {
  const BigUint n = BigUint::from_dec("10000000000000000000000000000000000000001");
  const BigUint d = BigUint::from_dec("333333333333333333333");
  const auto dm = divmod(n, d);
  EXPECT_EQ(dm.quotient.to_dec(), "30000000000000000000");
  EXPECT_EQ(dm.remainder.to_dec(), "10000000000000000001");
}

TEST(BigUint, DivisionByZeroThrows) {
  EXPECT_THROW(divmod(BigUint(1), BigUint(0)), ArithmeticError);
}

TEST(BigUint, DividendSmallerThanDivisor) {
  const auto dm = divmod(BigUint(5), BigUint::from_dec("1000000000000"));
  EXPECT_TRUE(dm.quotient.is_zero());
  EXPECT_EQ(dm.remainder, BigUint(5));
}

// Property sweep: divmod round-trips for random operand sizes (exercises the
// Knuth-D correction paths).
class DivModProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(DivModProperty, RoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const unsigned nbits = 1 + static_cast<unsigned>(rng.next_below(1200));
    const unsigned dbits = 1 + static_cast<unsigned>(rng.next_below(nbits));
    const BigUint n = BigUint::random_bits(rng, nbits);
    const BigUint d = BigUint::random_bits(rng, dbits);
    const auto dm = divmod(n, d);
    EXPECT_EQ(dm.quotient * d + dm.remainder, n);
    EXPECT_LT(dm.remainder, d);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivModProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Property sweep: ring axioms on random values.
class RingProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RingProperty, Axioms) {
  Rng rng(GetParam() * 77);
  for (int i = 0; i < 40; ++i) {
    const BigUint a = BigUint::random_bits(rng, 64 + static_cast<unsigned>(rng.next_below(512)));
    const BigUint b = BigUint::random_bits(rng, 64 + static_cast<unsigned>(rng.next_below(512)));
    const BigUint c = BigUint::random_bits(rng, 64 + static_cast<unsigned>(rng.next_below(512)));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ((a + b) - b, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingProperty, ::testing::Values(1u, 2u, 3u));

TEST(BigUint, RandomBitsExactLength) {
  Rng rng(42);
  for (unsigned bits : {1u, 2u, 31u, 32u, 33u, 64u, 65u, 768u, 1024u}) {
    EXPECT_EQ(BigUint::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigUint, RandomBelowRespectsBound) {
  Rng rng(43);
  const BigUint bound = BigUint::from_dec("1000000000000000000000000000007");
  for (int i = 0; i < 100; ++i) EXPECT_LT(BigUint::random_below(rng, bound), bound);
}

TEST(Gcd, KnownValues) {
  EXPECT_EQ(gcd(BigUint(12), BigUint(18)), BigUint(6));
  EXPECT_EQ(gcd(BigUint(17), BigUint(13)), BigUint(1));
  EXPECT_EQ(gcd(BigUint(0), BigUint(5)), BigUint(5));
  EXPECT_EQ(gcd(BigUint(5), BigUint(0)), BigUint(5));
}

TEST(Gcd, LargeCommonFactor) {
  const BigUint f = BigUint::from_dec("123456789012345678901");
  EXPECT_EQ(gcd(f * BigUint(6), f * BigUint(4)), f * BigUint(2));
}

TEST(ModInverse, RoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 40; ++i) {
    BigUint m = BigUint::random_bits(rng, 128 + static_cast<unsigned>(rng.next_below(256)));
    if (!m.is_odd()) m += BigUint(1);
    BigUint a = BigUint::random_below(rng, m);
    if (!(gcd(a, m) == BigUint(1))) continue;
    const BigUint inv = mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigUint(1));
    EXPECT_LT(inv, m);
  }
}

TEST(ModInverse, NonCoprimeThrows) {
  EXPECT_THROW(mod_inverse(BigUint(4), BigUint(8)), ArithmeticError);
}

TEST(PowU64, KnownValues) {
  EXPECT_EQ(pow_u64(BigUint(2), 10), BigUint(1024));
  EXPECT_EQ(pow_u64(BigUint(3), 0), BigUint(1));
  EXPECT_EQ(pow_u64(BigUint(10), 30).to_dec(), "1000000000000000000000000000000");
}

TEST(BigUint, ToU64OverflowThrows) {
  EXPECT_THROW(BigUint::from_dec("18446744073709551616").to_u64(), ArithmeticError);
}

}  // namespace
}  // namespace dslayer::bigint
