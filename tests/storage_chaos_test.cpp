// Kill-anywhere crash-recovery chaos (tier-2).
//
// Each iteration forks a child that applies a seed-derived mutation
// history to a DurableCatalog and — after a random number of completed
// operations — arms one random storage failpoint in crash-once mode, so
// the process std::abort()s at that write/fsync/rename boundary. The
// child appends the index of every ACKNOWLEDGED operation to a progress
// file (write + fsync) before moving on.
//
// The parent then reboots the catalog from the same directory and checks
// the recovered bytes (dsl::export_layer) against the oracle: replaying
// the operation prefix the child acknowledged, or that prefix plus the
// single in-flight operation — never anything else. Crashes land inside
// appends, checkpoint snapshot writes/renames, and WAL resets; recovery
// must be byte-identical every time, for at least 500 iterations.

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "dsl/layer.hpp"
#include "dsl/serialize.hpp"
#include "storage/catalog_journal.hpp"
#include "storage/durable_catalog.hpp"
#include "storage/file_io.hpp"
#include "storage/wal.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {
namespace {

using dsl::Cdo;
using dsl::Core;
using dsl::DesignSpaceLayer;
using dsl::PredicateAtom;
using dsl::Property;
using dsl::PropertyPath;
using dsl::Value;
using dsl::ValueDomain;
using dslayer::Rng;

constexpr const char* kCrashSites[] = {
    "storage.wal.open",      "storage.wal.append",       "storage.wal.sync",
    "storage.wal.truncate",  "storage.snapshot.write",   "storage.snapshot.sync",
    "storage.snapshot.rename",
};

std::string scratch_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "dslayer_storage_chaos/" + tag;
  for (const std::string& name : list_directory(dir)) remove_file(dir + "/" + name);
  ensure_directory(dir);
  return dir;
}

std::unique_ptr<DesignSpaceLayer> make_layer() {
  auto layer = std::make_unique<DesignSpaceLayer>("chaos");
  Cdo& root = layer->space().add_root("Block");
  root.add_property(Property::generalized_issue("Speed", {"Fast", "Slow"}, ""));
  root.add_property(Property::design_issue("Width", ValueDomain::powers_of_two(), ""));
  root.specialize("Fast");
  root.specialize("Slow");
  return layer;
}

/// One step of the seed-derived history. kCheckpoint has no layer effect;
/// everything else is a CatalogRecord.
struct Op {
  bool checkpoint = false;
  CatalogRecord record;
};

std::vector<Op> make_ops(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  const std::uint64_t count = rng.next_in(2, 10);
  std::uint64_t core_serial = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t roll = rng.next_below(10);
    Op op;
    if (roll < 6) {
      std::vector<CoreRecord> cores;
      const std::uint64_t batch = rng.next_in(1, 4);
      for (std::uint64_t b = 0; b < batch; ++b) {
        Core core(cat("core_", seed, "_", core_serial++), "Block");
        core.bind("Speed", Value::text(rng.next_bool() ? "Fast" : "Slow"));
        if (rng.next_bool(0.7)) {
          core.bind("Width", Value::number(static_cast<double>(1u << rng.next_in(0, 7))));
        }
        if (rng.next_bool(0.5)) {
          core.set_metric("area", static_cast<double>(rng.next_in(1, 10000)));
        }
        cores.push_back(to_record(core));
      }
      op.record = CatalogRecord::add_cores(cat("lib", rng.next_below(2)), std::move(cores));
    } else if (roll < 7) {
      op.record = CatalogRecord::add_constraint(dsl::ConsistencyConstraint::inconsistent_when(
          cat("CC_", i), "chaos", {PropertyPath::parse("Speed@Block")},
          {PropertyPath::parse("Width@Block")},
          {PredicateAtom::equals("Speed", Value::text("Fast")),
           PredicateAtom::compares("Width", PredicateAtom::Cmp::kGe,
                                   static_cast<double>(1u << rng.next_in(4, 7)))}));
    } else if (roll < 8) {
      op.checkpoint = true;
    } else {
      op.record = CatalogRecord::index_cores();
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// Oracle: the export after applying the first `prefix` ops to a fresh
/// layer (checkpoints skipped — they do not change the catalog).
std::string oracle_export(const std::vector<Op>& ops, std::size_t prefix) {
  auto layer = make_layer();
  for (std::size_t i = 0; i < prefix; ++i) {
    if (!ops[i].checkpoint) apply_record(*layer, ops[i].record);
  }
  return dsl::export_layer(*layer);
}

/// Child body: runs the history with a crash-once failpoint armed after
/// `arm_after` acknowledged ops, recording every ack in `progress_path`.
/// Never returns normally into gtest — _exit()s.
[[noreturn]] void run_child(const std::string& dir, const std::string& progress_path,
                            const std::vector<Op>& ops, const char* site,
                            std::size_t arm_after) {
  // A crash-once abort must not spend seconds dumping a million-core
  // address space per iteration.
  struct rlimit no_core = {0, 0};
  setrlimit(RLIMIT_CORE, &no_core);
  try {
    auto layer = make_layer();
    DurableCatalog durable(*layer, {.dir = dir});
    File progress = File::open_readwrite(progress_path);
    progress.seek_end();
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (i == arm_after) {
        support::FailpointRegistry::instance().arm(site, support::FailpointMode::kCrashOnce);
      }
      if (ops[i].checkpoint) {
        durable.checkpoint();
      } else {
        durable.apply_and_log(ops[i].record);
      }
      // Ack AFTER the operation is on disk: the oracle's lower bound.
      progress.write_all(cat(i, "\n"));
      progress.sync();
    }
    _exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaos child failed: %s\n", e.what());
    _exit(3);
  }
}

/// Highest acknowledged op index + 1 (i.e. the acked prefix length).
std::size_t read_acked(const std::string& progress_path) {
  if (!path_exists(progress_path)) return 0;
  const std::string text = read_file(progress_path);
  std::size_t acked = 0;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) break;  // torn ack line: not acknowledged
    acked = std::stoull(text.substr(begin, end - begin)) + 1;
    begin = end + 1;
  }
  return acked;
}

TEST(StorageChaos, KillAnywhereRecoversByteIdentical) {
  Rng seed_rng(0xC4A05u);
  const int kIterations = 520;
  int crashes = 0;
  int clean_runs = 0;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    const std::uint64_t seed = seed_rng.next_u64();
    Rng rng(seed);
    const std::vector<Op> ops = make_ops(seed ^ 0x5eed);
    const char* site = kCrashSites[rng.next_below(std::size(kCrashSites))];
    const std::size_t arm_after = rng.next_below(ops.size());

    const std::string dir = scratch_dir(cat("iter", iteration));
    const std::string progress_path = cat(dir, "/progress");

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) run_child(dir, progress_path, ops, site, arm_after);

    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      ASSERT_EQ(WTERMSIG(status), SIGABRT) << "iteration " << iteration;
      ++crashes;
    } else {
      ASSERT_TRUE(WIFEXITED(status));
      ASSERT_EQ(WEXITSTATUS(status), 0)
          << "iteration " << iteration << " child error (site " << site << ")";
      ++clean_runs;
    }

    // Reboot from whatever the crash left on disk.
    const std::size_t acked = read_acked(progress_path);
    auto rebooted = make_layer();
    std::string recovered;
    try {
      DurableOptions boot_options;
      boot_options.dir = dir;
      boot_options.verify_snapshot_payloads = true;
      DurableCatalog durable(*rebooted, boot_options);
      recovered = dsl::export_layer(*rebooted);
    } catch (const std::exception& e) {
      FAIL() << "iteration " << iteration << " site " << site << " acked " << acked
             << ": recovery threw: " << e.what();
    }

    // The recovered catalog is the acked prefix, or acked + the single
    // in-flight op (acked but the crash hit between WAL append and the
    // progress-file ack). Nothing else is acceptable.
    const std::string at_acked = oracle_export(ops, acked);
    if (recovered != at_acked) {
      const std::size_t attempted = std::min(acked + 1, ops.size());
      EXPECT_EQ(recovered, oracle_export(ops, attempted))
          << "iteration " << iteration << " site " << site << " acked " << acked << "/"
          << ops.size();
    }
  }
  // The schedule must actually exercise crashes (and some clean runs, when
  // the armed site is never reached).
  EXPECT_GT(crashes, kIterations / 4) << "crashes " << crashes << " clean " << clean_runs;
  EXPECT_GT(clean_runs, 0);
  std::printf("chaos: %d crashes, %d clean runs across %d iterations\n", crashes, clean_runs,
              kIterations);
}

TEST(StorageChaos, RepeatedCrashesOnOneDirectoryConverge) {
  // A catalog that keeps crashing at different points must still converge
  // to the full history once a run completes: rerun the SAME history over
  // the SAME directory, crashing somewhere new each time, skipping the
  // already-acked prefix like a resuming importer would.
  const std::string dir = scratch_dir("converge");
  const std::string progress_path = cat(dir, "/progress");
  const std::vector<Op> ops = make_ops(424242);
  Rng rng(31337);
  int attempts = 0;
  for (; attempts < 200; ++attempts) {
    const char* site = kCrashSites[rng.next_below(std::size(kCrashSites))];
    const std::size_t already = read_acked(progress_path);
    if (already >= ops.size()) break;
    const std::size_t arm_after = already + rng.next_below(ops.size() - already);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Resume: replay recovery happens inside DurableCatalog's boot; the
      // child just continues from the acked prefix.
      struct rlimit no_core = {0, 0};
      setrlimit(RLIMIT_CORE, &no_core);
      try {
        auto layer = make_layer();
        DurableCatalog durable(*layer, {.dir = dir});
        File progress = File::open_readwrite(progress_path);
        progress.seek_end();
        for (std::size_t i = already; i < ops.size(); ++i) {
          if (i == arm_after) {
            support::FailpointRegistry::instance().arm(site,
                                                       support::FailpointMode::kCrashOnce);
          }
          if (ops[i].checkpoint) {
            durable.checkpoint();
          } else {
            durable.apply_and_log(ops[i].record);
          }
          progress.write_all(cat(i, "\n"));
          progress.sync();
        }
        _exit(0);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "converge child failed: %s\n", e.what());
        _exit(3);
      }
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFEXITED(status)) ASSERT_EQ(WEXITSTATUS(status), 0);
  }
  ASSERT_LT(attempts, 200) << "history never completed";

  auto rebooted = make_layer();
  DurableCatalog durable(*rebooted, {.dir = dir});
  EXPECT_EQ(dsl::export_layer(*rebooted), oracle_export(ops, ops.size()));
}

}  // namespace
}  // namespace dslayer::storage
