#include <gtest/gtest.h>

#include <vector>

#include "bigint/modular.hpp"
#include "bigint/montgomery_variants.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace dslayer::bigint {
namespace {

struct WordOperands {
  std::vector<std::uint32_t> a, b, m;
  std::uint32_t m_prime;
  BigUint expected;  // a * b * R^-1 mod m
};

WordOperands random_operands(Rng& rng, unsigned bits) {
  BigUint m = BigUint::random_bits(rng, bits);
  if (!m.is_odd()) m += BigUint(1);
  const BigUint a = BigUint::random_below(rng, m);
  const BigUint b = BigUint::random_below(rng, m);
  const std::size_t s = m.limb_count();

  WordOperands ops;
  ops.a.resize(s);
  ops.b.resize(s);
  ops.m.resize(s);
  for (std::size_t i = 0; i < s; ++i) {
    ops.a[i] = a.limb(i);
    ops.b[i] = b.limb(i);
    ops.m[i] = m.limb(i);
  }
  ops.m_prime = mont_word_inverse(ops.m[0]);
  BigUint r{1};
  r <<= static_cast<unsigned>(s * 32);
  const BigUint rinv = mod_inverse(r % m, m);
  ops.expected = ((a * b) % m) * rinv % m;
  return ops;
}

TEST(MontWordInverse, IsNegatedInverse) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t m0 = static_cast<std::uint32_t>(rng.next_u64()) | 1u;
    const std::uint32_t mp = mont_word_inverse(m0);
    EXPECT_EQ(static_cast<std::uint32_t>(m0 * mp), 0xFFFFFFFFu) << m0;
  }
}

TEST(MontWordInverse, EvenWordThrows) {
  EXPECT_THROW(mont_word_inverse(4u), PreconditionError);
}

TEST(Variants, ToStringNames) {
  EXPECT_EQ(to_string(MontVariant::kSOS), "SOS");
  EXPECT_EQ(to_string(MontVariant::kCIOS), "CIOS");
  EXPECT_EQ(to_string(MontVariant::kFIOS), "FIOS");
  EXPECT_EQ(to_string(MontVariant::kFIPS), "FIPS");
  EXPECT_EQ(to_string(MontVariant::kCIHS), "CIHS");
}

TEST(Variants, RejectsBadInputs) {
  std::vector<std::uint32_t> a{1}, b{1}, m{15}, out(1), m2{16};
  // even modulus
  EXPECT_THROW(mont_mul_cios(a, b, m2, 1, out, nullptr), PreconditionError);
  // size mismatch
  std::vector<std::uint32_t> a2{1, 2};
  EXPECT_THROW(mont_mul_cios(a2, b, m, mont_word_inverse(15), out, nullptr), PreconditionError);
  // unreduced operand
  std::vector<std::uint32_t> big{20};
  EXPECT_THROW(mont_mul_cios(big, b, m, mont_word_inverse(15), out, nullptr), PreconditionError);
}

// Every variant computes a*b*R^-1 mod m, across operand sizes and seeds.
class VariantCorrectness
    : public ::testing::TestWithParam<std::tuple<MontVariant, unsigned>> {};

TEST_P(VariantCorrectness, MatchesReference) {
  const auto [variant, bits] = GetParam();
  Rng rng(bits * 31 + static_cast<unsigned>(variant));
  for (int i = 0; i < 25; ++i) {
    const WordOperands ops = random_operands(rng, bits);
    std::vector<std::uint32_t> out(ops.m.size());
    mont_mul(variant, ops.a, ops.b, ops.m, ops.m_prime, out, nullptr);
    EXPECT_EQ(BigUint::from_limbs(out), ops.expected)
        << to_string(variant) << " bits=" << bits << " iter=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllSizes, VariantCorrectness,
    ::testing::Combine(::testing::ValuesIn(kAllMontVariants),
                       ::testing::Values(32u, 33u, 64u, 96u, 256u, 768u, 1024u)),
    [](const auto& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param)) + "b";
    });

// Edge operands: zero, one, m-1.
class VariantEdgeCases : public ::testing::TestWithParam<MontVariant> {};

TEST_P(VariantEdgeCases, ZeroOneAndMaxOperands) {
  Rng rng(11);
  BigUint m = BigUint::random_bits(rng, 160);
  if (!m.is_odd()) m += BigUint(1);
  const std::size_t s = m.limb_count();
  std::vector<std::uint32_t> mv(s), zero(s, 0), one(s, 0), max(s), out(s);
  for (std::size_t i = 0; i < s; ++i) mv[i] = m.limb(i);
  one[0] = 1;
  const BigUint m_minus_1 = m - BigUint(1);
  for (std::size_t i = 0; i < s; ++i) max[i] = m_minus_1.limb(i);
  const std::uint32_t mp = mont_word_inverse(mv[0]);

  BigUint r{1};
  r <<= static_cast<unsigned>(s * 32);
  const BigUint rinv = mod_inverse(r % m, m);

  mont_mul(GetParam(), zero, max, mv, mp, out, nullptr);
  EXPECT_TRUE(BigUint::from_limbs(out).is_zero());

  mont_mul(GetParam(), one, one, mv, mp, out, nullptr);
  EXPECT_EQ(BigUint::from_limbs(out), rinv % m);

  mont_mul(GetParam(), max, max, mv, mp, out, nullptr);
  EXPECT_EQ(BigUint::from_limbs(out), (m_minus_1 * m_minus_1 % m) * rinv % m);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, VariantEdgeCases, ::testing::ValuesIn(kAllMontVariants),
                         [](const auto& info) { return to_string(info.param); });

TEST(OpCounts, QuadraticInWordCount) {
  // mults must grow ~4x when the operand doubles (2s^2 + O(s) law of [12]).
  Rng rng(5);
  for (MontVariant v : kAllMontVariants) {
    const WordOperands small = random_operands(rng, 256);   // s = 8
    const WordOperands large = random_operands(rng, 512);   // s = 16
    std::vector<std::uint32_t> out_s(small.m.size()), out_l(large.m.size());
    OpCounts cs, cl;
    mont_mul(v, small.a, small.b, small.m, small.m_prime, out_s, &cs);
    mont_mul(v, large.a, large.b, large.m, large.m_prime, out_l, &cl);
    EXPECT_GT(cs.word_mults, 0u);
    const double ratio = static_cast<double>(cl.word_mults) / static_cast<double>(cs.word_mults);
    EXPECT_GT(ratio, 3.3) << to_string(v);
    EXPECT_LT(ratio, 4.7) << to_string(v);
  }
}

TEST(OpCounts, MultCountNearTheoreticalLaw) {
  // [12]: all five methods need 2s^2 + s single-precision multiplications
  // (give or take the quotient-digit products).
  Rng rng(6);
  const WordOperands ops = random_operands(rng, 1024);  // s = 32
  const double s = 32.0;
  for (MontVariant v : kAllMontVariants) {
    std::vector<std::uint32_t> out(ops.m.size());
    OpCounts c;
    mont_mul(v, ops.a, ops.b, ops.m, ops.m_prime, out, &c);
    EXPECT_GE(static_cast<double>(c.word_mults), 2 * s * s) << to_string(v);
    EXPECT_LE(static_cast<double>(c.word_mults), 2 * s * s + 3 * s) << to_string(v);
  }
}

TEST(OpCounts, AccumulateAcrossRuns) {
  Rng rng(8);
  const WordOperands ops = random_operands(rng, 128);
  std::vector<std::uint32_t> out(ops.m.size());
  OpCounts total;
  mont_mul_cios(ops.a, ops.b, ops.m, ops.m_prime, out, &total);
  const OpCounts once = total;
  mont_mul_cios(ops.a, ops.b, ops.m, ops.m_prime, out, &total);
  EXPECT_EQ(total.word_mults, 2 * once.word_mults);
  EXPECT_EQ(total.loads, 2 * once.loads);
}

TEST(Variants, SingleWordModulus) {
  // s = 1 exercises all the loop boundaries.
  std::vector<std::uint32_t> a{123456u}, b{654321u}, m{0xFFFFFFFBu}, out(1);
  const std::uint32_t mp = mont_word_inverse(m[0]);
  const BigUint mb(0xFFFFFFFBu);
  BigUint r{1};
  r <<= 32;
  const BigUint rinv = mod_inverse(r % mb, mb);
  const BigUint expected = (BigUint(123456u) * BigUint(654321u) % mb) * rinv % mb;
  for (MontVariant v : kAllMontVariants) {
    mont_mul(v, a, b, m, mp, out, nullptr);
    EXPECT_EQ(BigUint::from_limbs(out), expected) << to_string(v);
  }
}

}  // namespace
}  // namespace dslayer::bigint
