// Chaos suite (tier-2): the full service stack under concurrent load
// with failpoints randomly arming and firing at every injection site,
// writer epochs churning, deadlines expiring, and the LRU session table
// thrashing. The invariants under test are the service's fault-tolerance
// promises, not command semantics:
//
//   * exactly-once — every submitted request receives exactly one
//     terminal response through the retrying client, whatever mix of
//     injected faults it hit on the way;
//   * no deadlock / no crash — the run completes (ctest --timeout is the
//     watchdog) with every worker, conductor, and producer joined;
//   * counter coherence — executor accepted == executed after drain,
//     session-manager created == closed + evicted + live, failpoint
//     fires <= hits;
//   * recovery — with all failpoints disarmed, the same stack serves a
//     clean request.
//
// Deterministic: all randomness flows from seeded SplitMix64 streams
// (per-thread, seed = base ^ thread id); failpoint delays are bounded
// and count-limited so wall time stays bounded. Run under ASan and TSan
// in CI (scripts/ci.sh chaos stages).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "domains/crypto.hpp"
#include "service/batch_runner.hpp"
#include "service/client.hpp"
#include "service/request_executor.hpp"
#include "service/session_manager.hpp"
#include "service/shared_layer.hpp"
#include "support/error.hpp"
#include "support/failpoint.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace dslayer {
namespace {

using service::ErrorCode;
using service::Request;
using service::RequestExecutor;
using service::Response;
using service::ResponseStatus;
using service::ServiceClient;
using service::SessionManager;
using service::SharedLayer;
using support::FailpointRegistry;

constexpr const char* kOmm = "Operator.Modular.Multiplier";

/// Disarms every failpoint when a test exits, pass or fail.
struct FailpointGuard {
  ~FailpointGuard() { FailpointRegistry::instance().reset(); }
  FailpointRegistry& registry = FailpointRegistry::instance();
};

Request make(std::uint64_t id, const std::string& session, const std::string& command,
             double deadline_ms = 0.0) {
  Request request;
  request.id = id;
  request.session = session;
  request.command = command;
  request.deadline_ms = deadline_ms;
  return request;
}

/// Every injection site in the stack, armed round-robin by the chaos
/// conductor. Delays are small and count-limited so the run stays fast;
/// crash-once is deliberately absent (it would kill the test runner).
const char* const kChaosSpecs[] = {
    "service.executor.enqueue=error:4",
    "service.executor.dequeue=error:4",
    "service.executor.dequeue=delay:1:4",
    "service.session.execute=error:4",
    "service.session.evict=error:2",
    "service.session.migrate=error:2",
    "service.shared_layer.publish=error:1",
    "service.shared_layer.prime=error:1",
    "service.shared_layer.publish=delay:2:2",
    "dsl.candidates.sweep=delay:2:4",
    "dsl.candidates.sweep=error:4",
    "telemetry.jsonl_write=error:4",
};

TEST(ServiceChaos, ExactlyOneTerminalResponsePerRequestUnderRandomFaults) {
  FailpointGuard failpoints;
  auto layer = domains::build_crypto_layer();
  SharedLayer shared(*layer);

  SessionManager::Options session_options;
  session_options.max_sessions = 8;  // force LRU churn across 16 names
  session_options.degraded_after_ms = 50.0;
  SessionManager manager(shared, session_options);

  RequestExecutor::Options executor_options;
  executor_options.workers = 4;
  executor_options.queue_capacity = 64;
  executor_options.max_queue_wait_ms = 200.0;  // shedding on, but rare
  RequestExecutor executor(manager, executor_options);

  ServiceClient::Options client_options;
  client_options.max_attempts = 3;
  client_options.base_backoff_ms = 1.0;
  client_options.max_backoff_ms = 4.0;
  ServiceClient client(executor, client_options);

  constexpr int kProducers = 8;
  constexpr int kRequestsPerProducer = 650;  // 5200 total
  constexpr std::uint64_t kSeed = 0xC4A05C4A05ULL;

  const char* const commands[] = {
      "req EffectiveOperandLength 768",
      "retract EffectiveOperandLength",
      "candidates",
      "report",
      "help",
      "decide ImplementationStyle Hardware",
      "retract ImplementationStyle",
      "definitely-not-a-command",
  };

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> next_id{0};
  std::atomic<bool> stop_conductor{false};

  // Conductor: walks the spec list deterministically, re-arming a few
  // sites at a time, and churns writer epochs (which themselves hit the
  // publish/prime failpoints and must leave the layer readable).
  std::thread conductor([&] {
    Rng rng(kSeed ^ 0xC0DDu);
    std::size_t spec_cursor = 0;
    while (!stop_conductor.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 3; ++i) {
        const char* spec = kChaosSpecs[spec_cursor++ % std::size(kChaosSpecs)];
        ASSERT_TRUE(failpoints.registry.arm_spec(spec)) << spec;
      }
      if (rng.next_bool(0.3)) {
        try {
          shared.write([](dsl::DesignSpaceLayer&) {});
        } catch (const Error&) {
          // Injected publish/prime fault: the epoch still advanced and
          // the caches were re-primed — exactly what the writer path
          // promises under failure.
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(kSeed ^ static_cast<std::uint64_t>(p + 1));
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        const std::string session = cat("s", rng.next_below(16));
        std::string command;
        if (rng.next_bool(0.15)) {
          command = cat("open ", kOmm);
        } else {
          command = commands[rng.next_below(std::size(commands))];
        }
        // A third of the traffic carries tight deadlines (1..24ms), so
        // both expiry-in-queue and mid-sweep cancellation occur.
        const double deadline_ms =
            rng.next_bool(0.33) ? static_cast<double>(1 + rng.next_below(24)) : 0.0;
        client.submit(make(next_id.fetch_add(1) + 1, session, command, deadline_ms),
                      [&delivered](Response) { delivered.fetch_add(1, std::memory_order_relaxed); });
        if (rng.next_bool(0.05)) std::this_thread::yield();
      }
    });
  }
  for (auto& producer : producers) producer.join();
  client.drain();
  stop_conductor = true;
  conductor.join();
  failpoints.registry.reset();
  client.drain();  // retries armed before the reset finish against a clean stack
  executor.drain();

  // Exactly-once: one terminal response per submitted request.
  const std::uint64_t submitted = next_id.load();
  EXPECT_EQ(submitted, static_cast<std::uint64_t>(kProducers) * kRequestsPerProducer);
  EXPECT_EQ(delivered.load(), submitted);
  const auto client_stats = client.stats();
  EXPECT_EQ(client_stats.submitted, submitted);
  EXPECT_EQ(client_stats.delivered, submitted);

  // Counter coherence: nothing accepted was dropped, nothing left queued.
  const auto executor_stats = executor.stats();
  EXPECT_EQ(executor_stats.executed, executor_stats.accepted);
  EXPECT_EQ(executor_stats.queue_depth, 0u);

  const auto manager_stats = manager.stats();
  EXPECT_EQ(manager_stats.created,
            manager_stats.closed + manager_stats.evicted + manager.session_count());

  // Failpoint ledger: a site can only fire on an evaluation.
  for (const auto& info : failpoints.registry.list()) {
    EXPECT_LE(info.fires, info.hits) << info.name;
  }

  // Recovery: disarmed, the same stack serves a clean request.
  Response clean;
  executor.submit(make(submitted + 1, "postchaos", cat("open ", kOmm)),
                  [&clean](Response response) { clean = std::move(response); });
  executor.drain();
  EXPECT_EQ(clean.status, ResponseStatus::kOk) << clean.output;

  client.shutdown();
  executor.shutdown();
}

TEST(ServiceChaos, ContinuousDequeueFaultsStillAnswerEveryRequest) {
  FailpointGuard failpoints;
  auto layer = domains::build_crypto_layer();
  SharedLayer shared(*layer);
  SessionManager manager(shared);
  RequestExecutor executor(manager);

  // Unlimited error mode at the dequeue boundary: every request fails —
  // but every request must still fail WITH a response, and workers must
  // survive to deliver all of them.
  failpoints.registry.arm("service.executor.dequeue", support::FailpointMode::kError);
  constexpr int kRequests = 200;
  std::atomic<int> internal{0}, other{0};
  for (int i = 0; i < kRequests; ++i) {
    executor.submit(make(static_cast<std::uint64_t>(i + 1), cat("s", i % 4), "help"),
                    [&](Response response) {
                      (response.code == ErrorCode::kInternal ? internal : other)++;
                    });
  }
  executor.drain();
  EXPECT_EQ(internal.load(), kRequests);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(executor.stats().errors, static_cast<std::uint64_t>(kRequests));

  failpoints.registry.reset();
  std::atomic<int> ok{0};
  executor.submit(make(kRequests + 1, "s0", "help"), [&](Response response) {
    if (response.status == ResponseStatus::kOk) ++ok;
  });
  executor.drain();
  EXPECT_EQ(ok.load(), 1);
}

TEST(ServiceChaos, ServeFrontEndSurvivesMidStreamFailpointDirectives) {
  FailpointGuard failpoints;
  auto layer = domains::build_crypto_layer();
  SharedLayer shared(*layer);
  SessionManager manager(shared);
  RequestExecutor::Options options;
  options.workers = 2;
  RequestExecutor executor(manager, options);

  // A serve stream that arms faults against itself mid-flight: every
  // request line still yields exactly one `== ` response header.
  std::string script;
  script += cat("a open ", kOmm, "\n");
  script += "!failpoint service.session.execute=error:3\n";
  for (int i = 0; i < 12; ++i) script += cat("s", i % 3, " help\n");
  script += "!failpoint dsl.candidates.sweep=delay:2:2\n";
  script += "a@1 candidates\n";  // 1ms deadline vs 2ms injected stall
  script += "a report\n";
  script += "!failpoint\n";

  std::istringstream in(script);
  std::ostringstream out;
  const auto summary = service::run_serve(manager, executor, in, out);
  EXPECT_EQ(summary.requests, 15u);
  const std::string text = out.str();
  std::size_t headers = 0;
  for (std::size_t pos = text.find("== "); pos != std::string::npos;
       pos = text.find("== ", pos + 3)) {
    ++headers;
  }
  EXPECT_EQ(headers, 15u) << text;
  EXPECT_NE(text.find("code=internal"), std::string::npos) << text;
  executor.shutdown();
}

}  // namespace
}  // namespace dslayer
