#include <gtest/gtest.h>

#include "analysis/evaluation_space.hpp"
#include "domains/crypto.hpp"  // metric name constants
#include "domains/media.hpp"
#include "dsl/exploration.hpp"
#include "support/rng.hpp"

namespace dslayer::domains {
namespace {

class MediaLayerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { layer_ = build_media_layer().release(); }
  static void TearDownTestSuite() {
    delete layer_;
    layer_ = nullptr;
  }
  static dsl::DesignSpaceLayer* layer_;
};

dsl::DesignSpaceLayer* MediaLayerTest::layer_ = nullptr;

TEST_F(MediaLayerTest, WellFormed) {
  EXPECT_TRUE(layer_->validate().empty());
  EXPECT_TRUE(layer_->index_warnings().empty());
}

TEST_F(MediaLayerTest, FiveHardCoresPlusSoftware) {
  const dsl::Cdo* idct = layer_->space().find(kPathIdct);
  ASSERT_NE(idct, nullptr);
  EXPECT_EQ(layer_->cores_under(*idct).size(), 6u);
  const dsl::Cdo* hw = layer_->space().find(kPathIdctHw);
  EXPECT_EQ(layer_->cores_under(*hw).size(), 5u);
}

TEST_F(MediaLayerTest, CoresSplitByTechnologyFamily) {
  const dsl::Cdo* um035 = layer_->space().find("IDCT.Hardware.um035");
  const dsl::Cdo* um070 = layer_->space().find("IDCT.Hardware.um070");
  ASSERT_NE(um035, nullptr);
  ASSERT_NE(um070, nullptr);
  EXPECT_EQ(layer_->cores_at(*um035).size(), 3u);  // IDCT 1, 2, 5
  EXPECT_EQ(layer_->cores_at(*um070).size(), 2u);  // IDCT 3, 4
}

TEST_F(MediaLayerTest, EvalPointsExposeFiveHardCores) {
  const auto points = idct_eval_points(*layer_);
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    EXPECT_GT(p.metric("area"), 0.0) << p.id;
    EXPECT_GT(p.metric("delay_ns"), 0.0) << p.id;
    EXPECT_TRUE(p.attributes.contains("FabricationTechnology"));
  }
}

TEST_F(MediaLayerTest, ClusteringRecoversFig3Groups) {
  // The paper's Fig. 3: {IDCT 1, 2, 5} vs {IDCT 3, 4}.
  const auto points = idct_eval_points(*layer_);
  const auto clustering = analysis::cluster_k(points, {"area", "delay_ns"}, 2);
  std::map<std::string, int> by_id;
  for (std::size_t i = 0; i < points.size(); ++i) by_id[points[i].id] = clustering.assignment[i];
  EXPECT_EQ(by_id["IDCT 1"], by_id["IDCT 2"]);
  EXPECT_EQ(by_id["IDCT 1"], by_id["IDCT 5"]);
  EXPECT_EQ(by_id["IDCT 3"], by_id["IDCT 4"]);
  EXPECT_NE(by_id["IDCT 1"], by_id["IDCT 3"]);
}

TEST_F(MediaLayerTest, TechnologyExplainsClustersBest) {
  const auto points = idct_eval_points(*layer_);
  const auto suggestions = analysis::suggest_hierarchy(points, {"area", "delay_ns"}, 3);
  ASSERT_FALSE(suggestions.empty());
  EXPECT_EQ(suggestions[0].issue, "FabricationTechnology");
  EXPECT_GT(suggestions[0].info_gain, 0.3);
  EXPECT_EQ(suggestions[0].groups.at("0.35um").size(), 3u);
  EXPECT_EQ(suggestions[0].groups.at("0.70um").size(), 2u);
}

TEST_F(MediaLayerTest, SameAlgorithmDifferentClusters) {
  // The paper's key observation: designs 1 and 3 (here: same Row-Column
  // algorithm, different technologies) land in different clusters, so the
  // algorithm-level view alone is uninformative.
  const auto points = idct_eval_points(*layer_);
  const auto clustering = analysis::cluster_k(points, {"area", "delay_ns"}, 2);
  int c1 = -1, c3 = -1;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].id == "IDCT 1") c1 = clustering.assignment[i];
    if (points[i].id == "IDCT 3") c3 = clustering.assignment[i];
  }
  EXPECT_NE(c1, c3);
  // And IDCT 1 / IDCT 3 really do share the algorithm attribute.
  const auto attr = [&points](const char* id) {
    for (const auto& p : points) {
      if (p.id == id) return p.attributes.at(kIdctAlgorithm);
    }
    return std::string{};
  };
  EXPECT_EQ(attr("IDCT 1"), attr("IDCT 3"));
}

TEST_F(MediaLayerTest, ExplorationDescendsTechnologyFamilies) {
  dsl::ExplorationSession s(*layer_, kPathIdct);
  s.set_requirement(kIdctPrecision, 12.0);
  s.decide("ImplementationStyle", "Hardware");
  EXPECT_EQ(s.candidates().size(), 5u);
  s.decide("FabricationTechnology", "0.35um");
  EXPECT_EQ(s.candidates().size(), 3u);
  s.decide(kIdctAlgorithm, "Row-Column");
  EXPECT_EQ(s.candidates().size(), 2u);  // IDCT 1 and IDCT 5
  s.decide("LayoutStyle", "std-cell");
  ASSERT_EQ(s.candidates().size(), 1u);
  EXPECT_EQ(s.candidates()[0]->name(), "IDCT 1");
}

TEST_F(MediaLayerTest, FamiliesHaveDistinctMetricRanges) {
  // Committing to a family gives the designer a much tighter range — the
  // point of pruning by evaluation-space proximity.
  dsl::ExplorationSession all(*layer_, kPathIdctHw);
  dsl::ExplorationSession fast(*layer_, "IDCT.Hardware.um035");
  const auto r_all = all.metric_range(kMetricArea);
  const auto r_fast = fast.metric_range(kMetricArea);
  ASSERT_TRUE(r_all.has_value());
  ASSERT_TRUE(r_fast.has_value());
  EXPECT_LT(r_fast->max - r_fast->min, (r_all->max - r_all->min) * 0.5);
}

TEST_F(MediaLayerTest, HardCoresExecuteTheirAlgorithm) {
  // The media cores are real implementations: each hard core's algorithm
  // family computes the transform within conformance error of the
  // double-precision reference.
  const dsl::Cdo* hw = layer_->space().find(kPathIdctHw);
  Rng rng(5);
  dct::IntBlock coeffs{};
  dct::Block exact{};
  for (std::size_t k = 0; k < 64; ++k) {
    coeffs[k] = static_cast<std::int32_t>(rng.next_in(-300, 300));
    exact[k] = coeffs[k];
  }
  const dct::Block reference = dct::idct_8x8_reference(exact);
  for (const dsl::Core* core : layer_->cores_under(*hw)) {
    const dct::IntBlock out = execute_idct_core(*core, coeffs);
    for (std::size_t k = 0; k < 64; ++k) {
      EXPECT_NEAR(static_cast<double>(out[k]), reference[k], 2.0) << core->name() << " k=" << k;
    }
  }
}

TEST_F(MediaLayerTest, SoftwareCoreIsNotExecutableAsHardware) {
  const dsl::Cdo* idct = layer_->space().find(kPathIdct);
  for (const dsl::Core* core : layer_->cores_under(*idct)) {
    if (core->binding("ImplementationStyle")->as_text() != "Software") continue;
    EXPECT_THROW(execute_idct_core(*core, dct::IntBlock{}), PreconditionError);
  }
}

TEST_F(MediaLayerTest, BehavioralDescriptionsAttachedToFamilies) {
  const dsl::Cdo* um035 = layer_->space().find("IDCT.Hardware.um035");
  EXPECT_EQ(um035->local_behaviors().size(), 2u);
}

}  // namespace
}  // namespace dslayer::domains
