#include <gtest/gtest.h>

#include "dsl/layer.hpp"
#include "support/error.hpp"

namespace dslayer::dsl {
namespace {

/// Layer with hierarchy Block -> {Fast, Slow}, Fast -> {X, Y}.
std::unique_ptr<DesignSpaceLayer> make_layer() {
  auto layer = std::make_unique<DesignSpaceLayer>("test");
  Cdo& root = layer->space().add_root("Block");
  root.add_property(Property::generalized_issue("Speed", {"Fast", "Slow"}, ""));
  Cdo& fast = root.specialize("Fast");
  fast.add_property(Property::generalized_issue("Flavor", {"X", "Y"}, ""));
  fast.specialize("X");
  fast.specialize("Y");
  root.specialize("Slow");
  return layer;
}

Core core_with(std::string name, std::initializer_list<std::pair<std::string, Value>> bindings) {
  Core c(std::move(name), "Block");
  for (auto& [k, v] : bindings) c.bind(k, v);
  return c;
}

TEST(Core, BindingAndMetricAccess) {
  Core c("c1", "Block");
  c.bind("Speed", Value::text("Fast")).set_metric("area", 100.0);
  EXPECT_EQ(c.binding("Speed"), Value::text("Fast"));
  EXPECT_FALSE(c.binding("Missing").has_value());
  EXPECT_EQ(c.metric("area"), 100.0);
  EXPECT_FALSE(c.metric("power").has_value());
  c.add_view("rt", "ip://x/rtl.v");
  ASSERT_EQ(c.views().size(), 1u);
  EXPECT_EQ(c.views()[0].level, "rt");
}

TEST(Core, Validations) {
  EXPECT_THROW(Core("", "Block"), DefinitionError);
  EXPECT_THROW(Core("x", ""), DefinitionError);
  Core c("x", "Block");
  EXPECT_THROW(c.bind("", Value::number(1)), PreconditionError);
  EXPECT_THROW(c.bind("k", Value{}), PreconditionError);
}

TEST(Library, DuplicateCoreNameThrows) {
  ReuseLibrary lib("vendor");
  lib.add(Core("c1", "Block"));
  EXPECT_THROW(lib.add(Core("c1", "Block")), DefinitionError);
  EXPECT_EQ(lib.size(), 1u);
}

TEST(Library, StampsLibraryName) {
  ReuseLibrary lib("vendor");
  const Core& c = lib.add(Core("c1", "Block"));
  EXPECT_EQ(c.library(), "vendor");
}

TEST(Layer, DuplicateLibraryThrows) {
  auto layer = make_layer();
  layer->add_library("a");
  EXPECT_THROW(layer->add_library("a"), DefinitionError);
}

TEST(Layer, IndexDescendsGeneralizedIssues) {
  auto layer = make_layer();
  ReuseLibrary& lib = layer->add_library("v");
  lib.add(core_with("deep", {{"Speed", Value::text("Fast")}, {"Flavor", Value::text("X")}}));
  lib.add(core_with("mid", {{"Speed", Value::text("Fast")}}));
  lib.add(core_with("top", {}));
  EXPECT_EQ(layer->index_cores(), 3u);
  EXPECT_TRUE(layer->index_warnings().empty());

  const Cdo* root = layer->space().find("Block");
  const Cdo* fast = layer->space().find("Block.Fast");
  const Cdo* x = layer->space().find("Block.Fast.X");
  EXPECT_EQ(layer->cores_at(*x).size(), 1u);     // "deep"
  EXPECT_EQ(layer->cores_at(*fast).size(), 1u);  // "mid" stays at the family
  EXPECT_EQ(layer->cores_at(*root).size(), 1u);  // "top" undiscriminated
  EXPECT_EQ(layer->cores_under(*fast).size(), 2u);
  EXPECT_EQ(layer->cores_under(*root).size(), 3u);
}

TEST(Layer, IndexMultipleLibraries) {
  // Fig. 1: one layer spanning several reuse libraries.
  auto layer = make_layer();
  layer->add_library("a").add(core_with("a1", {{"Speed", Value::text("Fast")}}));
  layer->add_library("b").add(core_with("b1", {{"Speed", Value::text("Slow")}}));
  EXPECT_EQ(layer->index_cores(), 2u);
  EXPECT_EQ(layer->libraries().size(), 2u);
  const Cdo* root = layer->space().find("Block");
  EXPECT_EQ(layer->cores_under(*root).size(), 2u);
}

TEST(Layer, IndexWarnsOnBadClassPath) {
  auto layer = make_layer();
  layer->add_library("v").add(Core("lost", "NoSuchClass"));
  EXPECT_EQ(layer->index_cores(), 0u);
  ASSERT_EQ(layer->index_warnings().size(), 1u);
  EXPECT_NE(layer->index_warnings()[0].find("NoSuchClass"), std::string::npos);
}

TEST(Layer, IndexWarnsOnBadOptionButKeepsCore) {
  auto layer = make_layer();
  layer->add_library("v").add(core_with("odd", {{"Speed", Value::text("Warp")}}));
  EXPECT_EQ(layer->index_cores(), 1u);  // indexed at Block, with a warning
  EXPECT_EQ(layer->index_warnings().size(), 1u);
  EXPECT_EQ(layer->cores_at(*layer->space().find("Block")).size(), 1u);
}

TEST(Layer, ReindexIsIdempotent) {
  auto layer = make_layer();
  layer->add_library("v").add(core_with("c", {{"Speed", Value::text("Slow")}}));
  layer->index_cores();
  layer->index_cores();
  EXPECT_EQ(layer->cores_under(*layer->space().find("Block")).size(), 1u);
}

TEST(Layer, ConstraintManagement) {
  auto layer = make_layer();
  layer->add_constraint(ConsistencyConstraint::inconsistent_options(
      "T1", "", {}, {PropertyPath::parse("Flavor@*.Fast")},
      [](const Bindings&) { return false; }));
  EXPECT_THROW(layer->add_constraint(ConsistencyConstraint::inconsistent_options(
                   "T1", "", {}, {PropertyPath::parse("X")},
                   [](const Bindings&) { return false; })),
               DefinitionError);
  EXPECT_EQ(layer->constraints_at(*layer->space().find("Block.Fast")).size(), 1u);
  EXPECT_TRUE(layer->constraints_at(*layer->space().find("Block.Slow")).empty());
}

TEST(Layer, ValidateFindsUnspecializedOptions) {
  auto layer = std::make_unique<DesignSpaceLayer>("broken");
  Cdo& root = layer->space().add_root("Block");
  root.add_property(Property::generalized_issue("Speed", {"Fast", "Slow"}, ""));
  root.specialize("Fast");  // "Slow" left dangling
  const auto findings = layer->validate();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("Slow"), std::string::npos);
}

TEST(Layer, ValidateFindsDanglingConstraintAndEstimator) {
  auto layer = make_layer();
  layer->add_constraint(ConsistencyConstraint::inconsistent_options(
      "T1", "", {}, {PropertyPath::parse("X@No.Such.Cdo")},
      [](const Bindings&) { return false; }));
  layer->add_constraint(ConsistencyConstraint::estimator(
      "T2", "", {}, PropertyPath::parse("Y@Block"), "NoSuchTool"));
  const auto findings = layer->validate();
  EXPECT_EQ(findings.size(), 2u);
}

TEST(Layer, ValidateCleanOnWellFormed) {
  EXPECT_TRUE(make_layer()->validate().empty());
}

TEST(Layer, CoreFilterRegistry) {
  auto layer = make_layer();
  EXPECT_EQ(layer->core_filter("Latency"), nullptr);
  layer->set_core_filter("Latency", [](const Core&, const Bindings&) { return true; });
  ASSERT_NE(layer->core_filter("Latency"), nullptr);
}

TEST(Layer, DefaultContextBuilderReadsConventionalNames) {
  auto layer = make_layer();
  const auto bd = behavior::montgomery_bd(2, 64);
  Bindings b;
  b["EffectiveOperandLength"] = Value::number(768);
  b["Radix"] = Value::number(4);
  b["SliceWidth"] = Value::number(32);
  b["FabricationTechnology"] = Value::text("0.70um");
  const auto input = layer->build_context(b, bd);
  EXPECT_EQ(input.eol_bits, 768u);
  EXPECT_EQ(input.radix, 4u);
  EXPECT_EQ(input.datapath_bits, 32u);
  EXPECT_EQ(input.technology.process, tech::Process::k070um);
  EXPECT_EQ(input.bd, &bd);
}

TEST(Layer, CustomContextBuilderWins) {
  auto layer = make_layer();
  layer->set_context_builder([](const Bindings&, const behavior::BehavioralDescription& bd) {
    estimation::EstimateInput in;
    in.bd = &bd;
    in.eol_bits = 42;
    return in;
  });
  const auto bd = behavior::montgomery_bd(2, 64);
  EXPECT_EQ(layer->build_context({}, bd).eol_bits, 42u);
}

TEST(Layer, DocumentListsEverything) {
  auto layer = make_layer();
  layer->add_library("vendor-a");
  const std::string doc = layer->document();
  EXPECT_NE(doc.find("Design Space Layer: test"), std::string::npos);
  EXPECT_NE(doc.find("CDO Block"), std::string::npos);
  EXPECT_NE(doc.find("vendor-a"), std::string::npos);
  EXPECT_NE(doc.find("BehaviorDelayEstimator"), std::string::npos);
}

}  // namespace
}  // namespace dslayer::dsl
