// Tier-2 round-trip fuzz oracles for the durable catalog.
//
// Three representations of the same catalog must agree byte-for-byte
// under dsl::export_layer:
//   1. the live layer the mutations were applied to,
//   2. export -> import_layer -> export (the text interchange),
//   3. a WAL written through DurableCatalog, recovered into a fresh
//      layer by boot-time replay,
// and a snapshot + tail replay must land on the same bytes too. Each
// iteration draws a random mutation history (libraries, typed bindings,
// metrics, views, declarative constraints, interleaved re-indexes) and a
// random crash/checkpoint schedule.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dsl/layer.hpp"
#include "dsl/serialize.hpp"
#include "storage/catalog_journal.hpp"
#include "storage/durable_catalog.hpp"
#include "storage/file_io.hpp"
#include "storage/wal.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace dslayer::storage {
namespace {

using dsl::Cdo;
using dsl::Core;
using dsl::DesignSpaceLayer;
using dsl::PredicateAtom;
using dsl::Property;
using dsl::PropertyPath;
using dsl::Value;
using dsl::ValueDomain;
using dslayer::Rng;

std::string scratch_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "dslayer_storage_fuzz/" + tag;
  for (const std::string& name : list_directory(dir)) remove_file(dir + "/" + name);
  ensure_directory(dir);
  return dir;
}

/// The code-defined part every replica rebuilds before replay.
std::unique_ptr<DesignSpaceLayer> make_layer() {
  auto layer = std::make_unique<DesignSpaceLayer>("fuzz");
  Cdo& root = layer->space().add_root("Block");
  root.add_property(Property::generalized_issue("Speed", {"Fast", "Slow"}, ""));
  root.add_property(Property::design_issue("Width", ValueDomain::powers_of_two(), ""));
  root.specialize("Fast");
  root.specialize("Slow");
  return layer;
}

/// Journaled declarative constraints export as `# constraint` comment
/// lines that import_layer deliberately does NOT reconstruct (constraints
/// are code; the WAL/snapshot is their durable carrier). The text
/// interchange oracle therefore compares catalog DATA: everything except
/// those comment lines.
std::string strip_constraint_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size() - 1;
    const std::string_view line(text.data() + begin, end - begin);
    if (!line.starts_with("# constraint ")) out.append(text, begin, end - begin + 1);
    begin = end + 1;
  }
  return out;
}

CoreRecord random_core(Rng& rng, std::uint64_t serial) {
  Core core(cat("core_", serial), "Block");
  if (rng.next_bool(0.8)) {
    core.bind("Speed", Value::text(rng.next_bool() ? "Fast" : "Slow"));
  }
  if (rng.next_bool(0.8)) {
    core.bind("Width", Value::number(static_cast<double>(1u << rng.next_in(0, 7))));
  }
  if (rng.next_bool(0.5)) {
    core.set_metric("area", static_cast<double>(rng.next_in(1, 100000)));
  }
  if (rng.next_bool(0.3)) {
    core.set_metric("power", rng.next_double() * 10.0);
  }
  if (rng.next_bool(0.4)) {
    core.add_view("rt", cat("ip://core_", serial, "/rtl.v"));
  }
  return to_record(core);
}

CatalogRecord random_record(Rng& rng, std::uint64_t& core_serial, std::uint64_t& cc_serial) {
  const std::uint64_t roll = rng.next_below(10);
  if (roll < 7) {
    std::vector<CoreRecord> cores;
    const std::uint64_t batch = rng.next_in(1, 5);
    for (std::uint64_t i = 0; i < batch; ++i) cores.push_back(random_core(rng, core_serial++));
    return CatalogRecord::add_cores(cat("lib", rng.next_below(3)), std::move(cores));
  }
  if (roll < 8 && cc_serial < 16) {
    // Declarative constraints journal as data. IDs must be unique.
    return CatalogRecord::add_constraint(dsl::ConsistencyConstraint::inconsistent_when(
        cat("CC", cc_serial++), "fuzz", {PropertyPath::parse("Speed@Block")},
        {PropertyPath::parse("Width@Block")},
        {PredicateAtom::equals("Speed", Value::text("Fast")),
         PredicateAtom::compares("Width", PredicateAtom::Cmp::kGe,
                                 static_cast<double>(1u << rng.next_in(4, 7)))}));
  }
  return CatalogRecord::index_cores();
}

TEST(StorageFuzz, ExportImportWalAndSnapshotAgreeByteForByte) {
  Rng seed_rng(20260808);
  const int kIterations = 40;
  for (int iteration = 0; iteration < kIterations; ++iteration) {
    Rng rng(seed_rng.next_u64());
    const std::string dir = scratch_dir(cat("iter", iteration));

    // Mutation history applied both to a live layer and through a WAL.
    auto live = make_layer();
    std::uint64_t core_serial = 0;
    std::uint64_t cc_serial = 0;
    {
      DurableCatalog durable(*live, {.dir = dir});
      const std::uint64_t records = rng.next_in(1, 40);
      for (std::uint64_t i = 0; i < records; ++i) {
        durable.apply_and_log(random_record(rng, core_serial, cc_serial));
        if (rng.next_bool(0.1)) durable.checkpoint();  // random checkpoint schedule
      }
      durable.apply_and_log(CatalogRecord::index_cores());
    }
    const std::string live_text = dsl::export_layer(*live);

    // Oracle 1: the text interchange round-trips the catalog DATA to
    // identical bytes (declarative constraints travel via the WAL and
    // snapshot, not the text format — see strip_constraint_comments).
    const dsl::ImportResult imported = dsl::import_layer(live_text);
    EXPECT_TRUE(imported.warnings.empty());
    EXPECT_EQ(dsl::export_layer(*imported.layer), strip_constraint_comments(live_text))
        << "iteration " << iteration;

    // Oracle 2: a cold boot (snapshot + WAL tail replay) lands on the
    // same bytes as the layer the history was applied to.
    auto rebooted = make_layer();
    {
      DurableCatalog durable(*rebooted, {.dir = dir, .verify_snapshot_payloads = true});
      EXPECT_EQ(dsl::export_layer(*rebooted), live_text) << "iteration " << iteration;

      // Oracle 3: booting is idempotent — a second reload replays the
      // same journal to the same bytes.
      durable.reload();
      EXPECT_EQ(dsl::export_layer(*rebooted), live_text) << "iteration " << iteration;
    }
  }
}

TEST(StorageFuzz, RecoveryTruncatesArbitraryTailDamage) {
  Rng seed_rng(987654321);
  for (int iteration = 0; iteration < 60; ++iteration) {
    Rng rng(seed_rng.next_u64());
    const std::string dir = scratch_dir(cat("tail", iteration));
    const std::string path = dir + "/catalog.wal";

    std::vector<std::string> payloads;
    {
      WalWriter writer(path, {});
      const std::uint64_t count = rng.next_in(1, 20);
      for (std::uint64_t i = 0; i < count; ++i) {
        payloads.push_back(std::string(rng.next_in(0, 200), static_cast<char>('a' + i % 26)));
        writer.append(payloads.back());
      }
    }

    // Damage: truncate at a random byte, or append random garbage, or both.
    std::string bytes = read_file(path);
    bool truncated = false;
    if (rng.next_bool(0.6)) {
      const std::size_t keep = rng.next_below(bytes.size() + 1);
      truncated = keep < bytes.size();
      bytes.resize(keep);
    }
    if (rng.next_bool(0.5)) {
      const std::uint64_t garbage = rng.next_in(1, 64);
      for (std::uint64_t i = 0; i < garbage; ++i) {
        bytes.push_back(static_cast<char>(rng.next_below(256)));
      }
    }
    if (bytes.size() < 8) continue;  // header itself torn: out of contract
    {
      File f = File::create_truncate(path);
      f.write_all(bytes);
      f.sync();
    }

    // Recovery must yield a strict prefix of the original payloads and
    // must be idempotent (second scan sees a clean file).
    const WalRecovery recovered = recover_wal(path);
    ASSERT_LE(recovered.records.size(), payloads.size());
    for (std::size_t i = 0; i < recovered.records.size(); ++i) {
      EXPECT_EQ(recovered.records[i], payloads[i]) << "iteration " << iteration;
    }
    if (!truncated) {
      // Garbage-only damage: every original payload survives.
      EXPECT_EQ(recovered.records.size(), payloads.size()) << "iteration " << iteration;
    }
    EXPECT_EQ(recover_wal(path).truncated_bytes, 0u) << "iteration " << iteration;
  }
}

}  // namespace
}  // namespace dslayer::storage
