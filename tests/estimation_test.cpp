#include <gtest/gtest.h>

#include "estimation/estimators.hpp"
#include "support/error.hpp"

namespace dslayer::estimation {
namespace {

EstimateInput input_for(const behavior::BehavioralDescription& bd, unsigned radix = 2) {
  EstimateInput in;
  in.bd = &bd;
  in.eol_bits = 768;
  in.radix = radix;
  in.datapath_bits = 64;
  in.technology = tech::technology(tech::Process::k035um, tech::LayoutStyle::kStandardCell);
  return in;
}

TEST(DelayEstimator, NullBdThrows) {
  BehaviorDelayEstimator tool;
  EXPECT_THROW(tool.estimate(EstimateInput{}), PreconditionError);
}

TEST(DelayEstimator, RanksRadix2BelowRadix4) {
  // Radix-2 Montgomery's loop has gated partial products; radix 4 has real
  // digit multiplies in the path.
  const auto bd2 = behavior::montgomery_bd(2, 64);
  const auto bd4 = behavior::montgomery_bd(4, 64);
  BehaviorDelayEstimator tool;
  EXPECT_LT(tool.estimate(input_for(bd2, 2)), tool.estimate(input_for(bd4, 4)));
}

TEST(DelayEstimator, TechnologyScales) {
  const auto bd = behavior::montgomery_bd(2, 64);
  BehaviorDelayEstimator tool;
  EstimateInput in = input_for(bd);
  const double fast = tool.estimate(in);
  in.technology = tech::technology(tech::Process::k070um, tech::LayoutStyle::kStandardCell);
  EXPECT_NEAR(tool.estimate(in) / fast, 2.0, 0.01);
}

TEST(DelayEstimator, UsesLoopPathWhenLoopExists) {
  // The straight-line tail (final subtraction) must not dominate the rank.
  const auto bd = behavior::montgomery_bd(2, 64);
  BehaviorDelayEstimator tool;
  const auto delay_fn = [](const behavior::BehavioralDescription::Op& op) {
    return BehaviorDelayEstimator::op_delay_ns(
        op, tech::technology(tech::Process::k035um, tech::LayoutStyle::kStandardCell));
  };
  EXPECT_DOUBLE_EQ(tool.estimate(input_for(bd)), bd.loop_critical_path(delay_fn));
}

TEST(CyclesEstimator, MatchesTripCount) {
  const auto bd = behavior::montgomery_bd(2, 64);
  LatencyCyclesEstimator tool;
  EXPECT_DOUBLE_EQ(tool.estimate(input_for(bd, 2)), 769.0);
  EstimateInput in4 = input_for(bd, 4);
  EXPECT_DOUBLE_EQ(tool.estimate(in4), 385.0);
}

TEST(AreaEstimator, FusedIdctSmallerThanRowCol) {
  // Fewer multipliers -> less area (the Loeffler-style trade-off).
  const auto rc = behavior::idct_row_col_bd(16);
  const auto fused = behavior::idct_fused_bd(16);
  BehaviorAreaEstimator tool;
  EXPECT_GT(tool.estimate(input_for(rc)), tool.estimate(input_for(fused)));
}

TEST(PowerEstimator, PositiveAndTechDependent) {
  const auto bd = behavior::idct_row_col_bd(16);
  BehaviorPowerEstimator tool;
  EstimateInput in = input_for(bd);
  const double p35 = tool.estimate(in);
  in.technology = tech::technology(tech::Process::k070um, tech::LayoutStyle::kStandardCell);
  const double p70 = tool.estimate(in);
  EXPECT_GT(p35, 0.0);
  EXPECT_NE(p35, p70);
}

TEST(Registry, StandardToolsPresent) {
  const EstimatorRegistry reg = EstimatorRegistry::standard();
  EXPECT_NE(reg.find("BehaviorDelayEstimator"), nullptr);
  EXPECT_NE(reg.find("LatencyCyclesEstimator"), nullptr);
  EXPECT_NE(reg.find("BehaviorAreaEstimator"), nullptr);
  EXPECT_NE(reg.find("BehaviorPowerEstimator"), nullptr);
  EXPECT_EQ(reg.find("NoSuchTool"), nullptr);
  EXPECT_EQ(reg.names().size(), 4u);
}

TEST(Registry, DuplicateNameThrows) {
  EstimatorRegistry reg = EstimatorRegistry::standard();
  EXPECT_THROW(reg.add(std::make_unique<BehaviorDelayEstimator>()), DefinitionError);
  EXPECT_THROW(reg.add(nullptr), PreconditionError);
}

TEST(Registry, UnitsDeclared) {
  const EstimatorRegistry reg = EstimatorRegistry::standard();
  EXPECT_EQ(reg.find("BehaviorDelayEstimator")->unit(), Unit::kNanoseconds);
  EXPECT_EQ(reg.find("BehaviorPowerEstimator")->unit(), Unit::kMilliwatts);
}

TEST(OpDelay, PowerOfTwoRadixOpsAreFree) {
  behavior::BehavioralDescription::Op op;
  op.kind = behavior::OpKind::kDivRadix;
  op.width_bits = 64;
  EXPECT_DOUBLE_EQ(BehaviorDelayEstimator::op_delay_ns(
                       op, tech::technology(tech::Process::k035um,
                                            tech::LayoutStyle::kStandardCell)),
                   0.0);
}

}  // namespace
}  // namespace dslayer::estimation
